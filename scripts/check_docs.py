#!/usr/bin/env python3
"""Docs consistency checker, run by scripts/ci.sh.

Two checks, both over the human-facing documentation set (README.md and
docs/*.md, plus any root-level markdown they link to):

1. Link integrity: every relative markdown link `[text](path)` or
   `[text](path#anchor)` must point at an existing file, and when an
   anchor is given, the target file must contain a heading that
   GitHub-slugifies to that anchor.

2. Formulation coverage: every public builder declared in
   src/strqubo/builders.hpp (`qubo::QuboModel build_*`) must appear by
   name in docs/FORMULATIONS.md, so the derivation catalog cannot
   silently fall behind the API.

3. Service coverage: every public class/struct and free function declared
   in src/service/*.hpp must appear by name in docs/ARCHITECTURE.md, so
   the serving-layer docs cannot silently fall behind the API.

4. Conformance coverage: every public class/struct and free function
   declared in src/conformance/*.hpp must appear by name in
   docs/conformance.md, so the encoding-proof kit's docs cannot silently
   fall behind the API.

5. Server coverage: every public class/struct and free function declared
   in src/server/*.hpp must appear by name in docs/server.md, so the
   operator's manual cannot silently fall behind the daemon's API.

6. Incremental coverage: every public class/struct and free function
   declared in src/smtlib/incremental.hpp must appear by name in
   docs/incremental.md, so the hot re-solve contract (invalidation rules,
   warm-start semantics) cannot silently fall behind the API.

7. Route coverage: every public class/struct and free function declared
   in src/route/*.hpp must appear by name in docs/routing.md, so the
   adaptive router's docs (decision lanes, confidence gates, replay
   harness) cannot silently fall behind the API.

8. Caching coverage: every public class/struct and free function declared
   in src/canon/*.hpp must appear by name in docs/caching.md, so the
   cache-layer catalog (keys, scopes, invalidation, tenant sharing)
   cannot silently fall behind the canonicalizer/answer-cache API.

Exits non-zero with one line per problem.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
BUILDER_RE = re.compile(r"qubo::QuboModel\s+(build_\w+)\s*\(")
# Public service API surface: top-level types, and free functions declared
# at column 0 (member functions are indented and thus excluded).
SERVICE_TYPE_RE = re.compile(r"^(?:class|struct)\s+(\w+)", re.MULTILINE)
SERVICE_FUNC_RE = re.compile(
    r"^[A-Za-z_][\w:<>, ]*\s+(\w+)\s*\(", re.MULTILINE
)


def github_slug(heading: str) -> str:
    """GitHub's heading → anchor slug rule (close enough for our docs)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    body = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(h) for h in HEADING_RE.findall(body)}


def check_links() -> list:
    errors = []
    for doc in DOC_FILES:
        body = CODE_FENCE_RE.sub("", doc.read_text(encoding="utf-8"))
        for target in LINK_RE.findall(body):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            path_part, _, anchor = target.partition("#")
            dest = doc if not path_part else (doc.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{doc.relative_to(REPO)}: broken link -> {target}")
                continue
            if anchor and dest.suffix == ".md" and anchor not in anchors_of(dest):
                errors.append(
                    f"{doc.relative_to(REPO)}: missing anchor -> {target}"
                )
    return errors


def check_formulation_coverage() -> list:
    header = (REPO / "src/strqubo/builders.hpp").read_text(encoding="utf-8")
    catalog = (REPO / "docs/FORMULATIONS.md").read_text(encoding="utf-8")
    return [
        f"docs/FORMULATIONS.md: public op `{name}` is undocumented"
        for name in sorted(set(BUILDER_RE.findall(header)))
        if name not in catalog
    ]


def check_service_coverage() -> list:
    doc = (REPO / "docs/ARCHITECTURE.md").read_text(encoding="utf-8")
    names = set()
    for header in sorted((REPO / "src/service").glob("*.hpp")):
        body = header.read_text(encoding="utf-8")
        names.update(SERVICE_TYPE_RE.findall(body))
        names.update(SERVICE_FUNC_RE.findall(body))
    return [
        f"docs/ARCHITECTURE.md: service API `{name}` is undocumented"
        for name in sorted(names)
        if name not in doc
    ]


def check_conformance_coverage() -> list:
    doc = (REPO / "docs/conformance.md").read_text(encoding="utf-8")
    names = set()
    for header in sorted((REPO / "src/conformance").glob("*.hpp")):
        body = header.read_text(encoding="utf-8")
        names.update(SERVICE_TYPE_RE.findall(body))
        names.update(SERVICE_FUNC_RE.findall(body))
    return [
        f"docs/conformance.md: conformance API `{name}` is undocumented"
        for name in sorted(names)
        if name not in doc
    ]


def check_server_coverage() -> list:
    doc = (REPO / "docs/server.md").read_text(encoding="utf-8")
    names = set()
    for header in sorted((REPO / "src/server").glob("*.hpp")):
        body = header.read_text(encoding="utf-8")
        names.update(SERVICE_TYPE_RE.findall(body))
        names.update(SERVICE_FUNC_RE.findall(body))
    return [
        f"docs/server.md: server API `{name}` is undocumented"
        for name in sorted(names)
        if name not in doc
    ]


def check_incremental_coverage() -> list:
    doc = (REPO / "docs/incremental.md").read_text(encoding="utf-8")
    body = (REPO / "src/smtlib/incremental.hpp").read_text(encoding="utf-8")
    names = set(SERVICE_TYPE_RE.findall(body))
    names.update(SERVICE_FUNC_RE.findall(body))
    return [
        f"docs/incremental.md: incremental API `{name}` is undocumented"
        for name in sorted(names)
        if name not in doc
    ]


def check_route_coverage() -> list:
    doc = (REPO / "docs/routing.md").read_text(encoding="utf-8")
    names = set()
    for header in sorted((REPO / "src/route").glob("*.hpp")):
        body = header.read_text(encoding="utf-8")
        names.update(SERVICE_TYPE_RE.findall(body))
        names.update(SERVICE_FUNC_RE.findall(body))
    return [
        f"docs/routing.md: route API `{name}` is undocumented"
        for name in sorted(names)
        if name not in doc
    ]


def check_caching_coverage() -> list:
    doc = (REPO / "docs/caching.md").read_text(encoding="utf-8")
    names = set()
    for header in sorted((REPO / "src/canon").glob("*.hpp")):
        body = header.read_text(encoding="utf-8")
        names.update(SERVICE_TYPE_RE.findall(body))
        names.update(SERVICE_FUNC_RE.findall(body))
    return [
        f"docs/caching.md: canon API `{name}` is undocumented"
        for name in sorted(names)
        if name not in doc
    ]


def main() -> int:
    errors = (
        check_links()
        + check_formulation_coverage()
        + check_service_coverage()
        + check_conformance_coverage()
        + check_server_coverage()
        + check_incremental_coverage()
        + check_route_coverage()
        + check_caching_coverage()
    )
    for err in errors:
        print(f"check_docs: {err}", file=sys.stderr)
    names = ", ".join(str(d.relative_to(REPO)) for d in DOC_FILES)
    if errors:
        print(f"check_docs: FAILED ({len(errors)} problem(s))", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({names})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

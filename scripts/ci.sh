#!/usr/bin/env bash
# CI driver: build, then the labelled test-stage matrix (tier1 -> stress ->
# fuzz -> conformance; see tests/CMakeLists.txt for what each label covers),
# then sanitizer builds over the concurrency + anneal/qubo hot-path +
# conformance subset.
#
# Usage: scripts/ci.sh [--skip-sanitizers]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"
skip_sanitizers=0
[[ "${1:-}" == "--skip-sanitizers" ]] && skip_sanitizers=1

echo "=== build (build/) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"

# Stage matrix: fast per-module suites gate first, then the service
# concurrency stress, then differential fuzzing vs the classical baseline,
# then the exhaustive-spectrum encoding proofs + golden SMT-LIB corpus.
for label in tier1 stress fuzz conformance; do
  echo "=== tests: ctest -L ${label} ==="
  ctest --test-dir build -L "${label}" --output-on-failure -j "${jobs}"
done

# The batched annealing substrate dispatches between an AVX2 sweep and a
# portable scalar fallback at runtime; run tier1 again with the fallback
# pinned so both code paths stay green on every change.
echo "=== tests: ctest -L tier1 (QSMT_NO_AVX2=1 scalar fallback) ==="
QSMT_NO_AVX2=1 ctest --test-dir build -L tier1 --output-on-failure -j "${jobs}"

echo "=== docs consistency (links + formulation coverage) ==="
python3 scripts/check_docs.py

# Seconds-scale correctness pass over the quantum hot path: kernel
# best-energy parity vs the retained reference and a bit-identical warm
# embedding-cache hit. Perf gates stay in the full (JSON-writing) run —
# CI machines are too noisy to threshold throughput.
echo "=== quantum_bench --smoke ==="
./build/bench/quantum_bench --smoke

# Same seconds-scale pass over the batched annealing substrate: every
# replica-count/fusion configuration must stay bit-identical to the scalar
# single-read path (the throughput gate, like above, only fires in the
# full run).
echo "=== batch_bench --smoke ==="
./build/bench/batch_bench --smoke

# Server stage: the daemon's tier1/stress/conformance suites already ran in
# the label matrix above (server_test, server_stress_test,
# server_corpus_test); this is the seconds-scale end-to-end pass — the full
# socket path under one and eight concurrent connections, verdict-only
# replies, no session leaks. Throughput gates, as above, only fire in the
# full (JSON-writing) run.
echo "=== server_bench --smoke ==="
./build/bench/server_bench --smoke

# Incremental stage: warm and cold drivers replay the same forced-witness
# mutate-one-conjunct chain and must agree byte-for-byte on every verdict
# and model. The >= 3x warm-vs-cold speedup gate, as above, only fires in
# the full (JSON-writing) run.
echo "=== incremental_bench --smoke ==="
./build/bench/incremental_bench --smoke

# Routing stage: a trained router against the full race over a seeded
# mixed workload — byte-equal verdicts are a hard failure, and routed
# mean latency must stay at or under the full race's. The >= 1.5x
# cores-per-job reduction gate, as above, only fires in the full
# (JSON-writing) run.
echo "=== route_bench --smoke ==="
./build/bench/route_bench --smoke

# Answer-cache stage: a warmed canonical answer cache serves a duplicate
# stream at hit rate 1.0 with byte-identical verdicts; warm-vs-cold mean
# latency must clear 3x here (the >= 10x gate fires in the full,
# JSON-writing run — BENCH_answercache.json is the tracked baseline).
echo "=== answer_cache_bench --smoke ==="
./build/bench/answer_cache_bench --smoke

if [[ "${skip_sanitizers}" == "1" ]]; then
  echo "=== sanitizer stages skipped ==="
  exit 0
fi

# Test subset for the (slower) sanitizer builds: the anneal/qubo hot path
# plus the service worker pool — the threaded cancellation/racing schedules
# are exactly what ASan/UBSan should see — plus the conformance suites,
# whose Gray-code spectrum sweeps and exact-solver corpus replays touch
# every builder's full state space, plus the server suites (the socket
# transport's reader threads, admission gate, and disconnect-cancellation
# races), plus the incremental differential chains (fragment-cache LRU
# mutation under reuse, context-carried clause memory, and the shared-cache
# concurrency schedules), plus the router suites (the shared win/loss
# table is mutated from every worker thread at enqueue and completion,
# and the fuzz differential drives it through full 216-job streams), plus
# the answer-cache suites (one shared LRU mutated from every submitting
# thread and tenant session, with hit-serving racing inserts and
# evictions). The binaries run directly (rather than via ctest) so the
# subset is exact regardless of which gtest case names discovery
# registered.
subset=(annealer_test hotpath_test batched_kernel_test qubo_builder_test
        qubo_model_test adjacency_test sample_set_test schedule_test
        builders_test pimc_test embedding_test embedded_sampler_test
        quantum_hotpath_test quantum_conformance_test
        service_test conformance_test corpus_test
        server_test server_stress_test incremental_test
        router_test router_fuzz_test
        canon_test answer_cache_test answer_fuzz_test)

for san in address undefined; do
  echo "=== ${san} sanitizer build (build-${san}/) ==="
  cmake -B "build-${san}" -S . -DQSMT_SANITIZE="${san}" >/dev/null
  cmake --build "build-${san}" -j "${jobs}" --target "${subset[@]}"
  for test in "${subset[@]}"; do
    echo "--- ${san}: ${test}"
    "build-${san}/tests/${test}" --gtest_brief=1
  done
done

echo "=== ci.sh: all stages passed ==="

#!/usr/bin/env bash
# CI driver: full build + test, then sanitizer builds over the anneal/qubo
# hot-path subset (the code the annealing overhaul touches most).
#
# Usage: scripts/ci.sh [--skip-sanitizers]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"
skip_sanitizers=0
[[ "${1:-}" == "--skip-sanitizers" ]] && skip_sanitizers=1

echo "=== build + full test suite (build/) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"
ctest --test-dir build --output-on-failure -j "${jobs}"

echo "=== docs consistency (links + formulation coverage) ==="
python3 scripts/check_docs.py

if [[ "${skip_sanitizers}" == "1" ]]; then
  echo "=== sanitizer stages skipped ==="
  exit 0
fi

# Hot-path test subset for the (slower) sanitizer builds. The binaries run
# directly (rather than via ctest) so the subset is exact regardless of
# which gtest case names discovery registered.
subset=(annealer_test hotpath_test qubo_builder_test qubo_model_test
        adjacency_test sample_set_test schedule_test builders_test)

for san in address undefined; do
  echo "=== ${san} sanitizer build (build-${san}/) ==="
  cmake -B "build-${san}" -S . -DQSMT_SANITIZE="${san}" >/dev/null
  cmake --build "build-${san}" -j "${jobs}" --target "${subset[@]}"
  for test in "${subset[@]}"; do
    echo "--- ${san}: ${test}"
    "build-${san}/tests/${test}" --gtest_brief=1
  done
done

echo "=== ci.sh: all stages passed ==="

file(REMOVE_RECURSE
  "CMakeFiles/dpllt_test.dir/dpllt_test.cpp.o"
  "CMakeFiles/dpllt_test.dir/dpllt_test.cpp.o.d"
  "dpllt_test"
  "dpllt_test.pdb"
  "dpllt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpllt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

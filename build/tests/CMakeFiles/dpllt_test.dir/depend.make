# Empty dependencies file for dpllt_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dpllt_test.
# This may be replaced when dependencies are built.

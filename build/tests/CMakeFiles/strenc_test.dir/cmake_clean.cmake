file(REMOVE_RECURSE
  "CMakeFiles/strenc_test.dir/strenc_test.cpp.o"
  "CMakeFiles/strenc_test.dir/strenc_test.cpp.o.d"
  "strenc_test"
  "strenc_test.pdb"
  "strenc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strenc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for strenc_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/quadratization_test.dir/quadratization_test.cpp.o"
  "CMakeFiles/quadratization_test.dir/quadratization_test.cpp.o.d"
  "quadratization_test"
  "quadratization_test.pdb"
  "quadratization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadratization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for quadratization_test.
# This may be replaced when dependencies are built.

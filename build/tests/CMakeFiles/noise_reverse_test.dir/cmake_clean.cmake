file(REMOVE_RECURSE
  "CMakeFiles/noise_reverse_test.dir/noise_reverse_test.cpp.o"
  "CMakeFiles/noise_reverse_test.dir/noise_reverse_test.cpp.o.d"
  "noise_reverse_test"
  "noise_reverse_test.pdb"
  "noise_reverse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_reverse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for noise_reverse_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sample_set_test.dir/sample_set_test.cpp.o"
  "CMakeFiles/sample_set_test.dir/sample_set_test.cpp.o.d"
  "sample_set_test"
  "sample_set_test.pdb"
  "sample_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

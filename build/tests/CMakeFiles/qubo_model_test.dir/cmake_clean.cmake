file(REMOVE_RECURSE
  "CMakeFiles/qubo_model_test.dir/qubo_model_test.cpp.o"
  "CMakeFiles/qubo_model_test.dir/qubo_model_test.cpp.o.d"
  "qubo_model_test"
  "qubo_model_test.pdb"
  "qubo_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qubo_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

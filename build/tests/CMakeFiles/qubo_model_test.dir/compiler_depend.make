# Empty compiler generated dependencies file for qubo_model_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for ising_test.
# This may be replaced when dependencies are built.

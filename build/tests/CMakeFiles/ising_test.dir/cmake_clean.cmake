file(REMOVE_RECURSE
  "CMakeFiles/ising_test.dir/ising_test.cpp.o"
  "CMakeFiles/ising_test.dir/ising_test.cpp.o.d"
  "ising_test"
  "ising_test.pdb"
  "ising_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ising_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/embedded_sampler_test.dir/embedded_sampler_test.cpp.o"
  "CMakeFiles/embedded_sampler_test.dir/embedded_sampler_test.cpp.o.d"
  "embedded_sampler_test"
  "embedded_sampler_test.pdb"
  "embedded_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

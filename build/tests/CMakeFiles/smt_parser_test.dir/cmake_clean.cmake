file(REMOVE_RECURSE
  "CMakeFiles/smt_parser_test.dir/smt_parser_test.cpp.o"
  "CMakeFiles/smt_parser_test.dir/smt_parser_test.cpp.o.d"
  "smt_parser_test"
  "smt_parser_test.pdb"
  "smt_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

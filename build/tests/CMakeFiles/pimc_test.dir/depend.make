# Empty dependencies file for pimc_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pimc_test.dir/pimc_test.cpp.o"
  "CMakeFiles/pimc_test.dir/pimc_test.cpp.o.d"
  "pimc_test"
  "pimc_test.pdb"
  "pimc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/penalties_test.dir/penalties_test.cpp.o"
  "CMakeFiles/penalties_test.dir/penalties_test.cpp.o.d"
  "penalties_test"
  "penalties_test.pdb"
  "penalties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/penalties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

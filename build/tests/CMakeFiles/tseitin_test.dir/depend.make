# Empty dependencies file for tseitin_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tseitin_test.cpp" "tests/CMakeFiles/tseitin_test.dir/tseitin_test.cpp.o" "gcc" "tests/CMakeFiles/tseitin_test.dir/tseitin_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/qsmt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/qsmt_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/qsmt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/qsmt_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/qsmt_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/smtlib/CMakeFiles/qsmt_smtlib.dir/DependInfo.cmake"
  "/root/repo/build/src/strqubo/CMakeFiles/qsmt_strqubo.dir/DependInfo.cmake"
  "/root/repo/build/src/anneal/CMakeFiles/qsmt_anneal.dir/DependInfo.cmake"
  "/root/repo/build/src/qubo/CMakeFiles/qsmt_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/strenc/CMakeFiles/qsmt_strenc.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/qsmt_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qsmt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

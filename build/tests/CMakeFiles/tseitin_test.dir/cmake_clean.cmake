file(REMOVE_RECURSE
  "CMakeFiles/tseitin_test.dir/tseitin_test.cpp.o"
  "CMakeFiles/tseitin_test.dir/tseitin_test.cpp.o.d"
  "tseitin_test"
  "tseitin_test.pdb"
  "tseitin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tseitin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

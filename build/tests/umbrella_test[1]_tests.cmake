add_test([=[UmbrellaHeader.ExposesTheWholeApi]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=UmbrellaHeader.ExposesTheWholeApi]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[UmbrellaHeader.ExposesTheWholeApi]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS UmbrellaHeader.ExposesTheWholeApi)

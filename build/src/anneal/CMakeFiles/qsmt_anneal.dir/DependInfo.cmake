
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anneal/autotune.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/autotune.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/autotune.cpp.o.d"
  "/root/repo/src/anneal/exact.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/exact.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/exact.cpp.o.d"
  "/root/repo/src/anneal/greedy.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/greedy.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/greedy.cpp.o.d"
  "/root/repo/src/anneal/noise.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/noise.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/noise.cpp.o.d"
  "/root/repo/src/anneal/pimc.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/pimc.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/pimc.cpp.o.d"
  "/root/repo/src/anneal/population.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/population.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/population.cpp.o.d"
  "/root/repo/src/anneal/random_sampler.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/random_sampler.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/random_sampler.cpp.o.d"
  "/root/repo/src/anneal/reverse.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/reverse.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/reverse.cpp.o.d"
  "/root/repo/src/anneal/sample_set.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/sample_set.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/sample_set.cpp.o.d"
  "/root/repo/src/anneal/schedule.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/schedule.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/schedule.cpp.o.d"
  "/root/repo/src/anneal/simulated_annealer.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/simulated_annealer.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/simulated_annealer.cpp.o.d"
  "/root/repo/src/anneal/tabu.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/tabu.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/tabu.cpp.o.d"
  "/root/repo/src/anneal/tempering.cpp" "src/anneal/CMakeFiles/qsmt_anneal.dir/tempering.cpp.o" "gcc" "src/anneal/CMakeFiles/qsmt_anneal.dir/tempering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qsmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/qubo/CMakeFiles/qsmt_qubo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

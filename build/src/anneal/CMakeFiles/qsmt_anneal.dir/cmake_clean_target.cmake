file(REMOVE_RECURSE
  "libqsmt_anneal.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/qsmt_anneal.dir/autotune.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/autotune.cpp.o.d"
  "CMakeFiles/qsmt_anneal.dir/exact.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/exact.cpp.o.d"
  "CMakeFiles/qsmt_anneal.dir/greedy.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/greedy.cpp.o.d"
  "CMakeFiles/qsmt_anneal.dir/noise.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/noise.cpp.o.d"
  "CMakeFiles/qsmt_anneal.dir/pimc.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/pimc.cpp.o.d"
  "CMakeFiles/qsmt_anneal.dir/population.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/population.cpp.o.d"
  "CMakeFiles/qsmt_anneal.dir/random_sampler.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/random_sampler.cpp.o.d"
  "CMakeFiles/qsmt_anneal.dir/reverse.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/reverse.cpp.o.d"
  "CMakeFiles/qsmt_anneal.dir/sample_set.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/sample_set.cpp.o.d"
  "CMakeFiles/qsmt_anneal.dir/schedule.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/schedule.cpp.o.d"
  "CMakeFiles/qsmt_anneal.dir/simulated_annealer.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/simulated_annealer.cpp.o.d"
  "CMakeFiles/qsmt_anneal.dir/tabu.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/tabu.cpp.o.d"
  "CMakeFiles/qsmt_anneal.dir/tempering.cpp.o"
  "CMakeFiles/qsmt_anneal.dir/tempering.cpp.o.d"
  "libqsmt_anneal.a"
  "libqsmt_anneal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsmt_anneal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

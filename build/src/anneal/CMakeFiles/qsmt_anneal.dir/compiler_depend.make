# Empty compiler generated dependencies file for qsmt_anneal.
# This may be replaced when dependencies are built.

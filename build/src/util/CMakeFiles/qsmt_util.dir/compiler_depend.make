# Empty compiler generated dependencies file for qsmt_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libqsmt_util.a"
)

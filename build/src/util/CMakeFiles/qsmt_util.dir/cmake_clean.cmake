file(REMOVE_RECURSE
  "CMakeFiles/qsmt_util.dir/rng.cpp.o"
  "CMakeFiles/qsmt_util.dir/rng.cpp.o.d"
  "CMakeFiles/qsmt_util.dir/stopwatch.cpp.o"
  "CMakeFiles/qsmt_util.dir/stopwatch.cpp.o.d"
  "libqsmt_util.a"
  "libqsmt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsmt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/qsmt_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/qsmt_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/smt2_render.cpp" "src/workload/CMakeFiles/qsmt_workload.dir/smt2_render.cpp.o" "gcc" "src/workload/CMakeFiles/qsmt_workload.dir/smt2_render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qsmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/strqubo/CMakeFiles/qsmt_strqubo.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/qsmt_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/anneal/CMakeFiles/qsmt_anneal.dir/DependInfo.cmake"
  "/root/repo/build/src/qubo/CMakeFiles/qsmt_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/strenc/CMakeFiles/qsmt_strenc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libqsmt_workload.a"
)

# Empty dependencies file for qsmt_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/qsmt_workload.dir/generator.cpp.o"
  "CMakeFiles/qsmt_workload.dir/generator.cpp.o.d"
  "CMakeFiles/qsmt_workload.dir/smt2_render.cpp.o"
  "CMakeFiles/qsmt_workload.dir/smt2_render.cpp.o.d"
  "libqsmt_workload.a"
  "libqsmt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsmt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

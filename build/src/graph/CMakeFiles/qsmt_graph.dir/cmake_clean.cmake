file(REMOVE_RECURSE
  "CMakeFiles/qsmt_graph.dir/chimera.cpp.o"
  "CMakeFiles/qsmt_graph.dir/chimera.cpp.o.d"
  "CMakeFiles/qsmt_graph.dir/embedded_sampler.cpp.o"
  "CMakeFiles/qsmt_graph.dir/embedded_sampler.cpp.o.d"
  "CMakeFiles/qsmt_graph.dir/embedding.cpp.o"
  "CMakeFiles/qsmt_graph.dir/embedding.cpp.o.d"
  "CMakeFiles/qsmt_graph.dir/graph.cpp.o"
  "CMakeFiles/qsmt_graph.dir/graph.cpp.o.d"
  "CMakeFiles/qsmt_graph.dir/topologies.cpp.o"
  "CMakeFiles/qsmt_graph.dir/topologies.cpp.o.d"
  "libqsmt_graph.a"
  "libqsmt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsmt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/chimera.cpp" "src/graph/CMakeFiles/qsmt_graph.dir/chimera.cpp.o" "gcc" "src/graph/CMakeFiles/qsmt_graph.dir/chimera.cpp.o.d"
  "/root/repo/src/graph/embedded_sampler.cpp" "src/graph/CMakeFiles/qsmt_graph.dir/embedded_sampler.cpp.o" "gcc" "src/graph/CMakeFiles/qsmt_graph.dir/embedded_sampler.cpp.o.d"
  "/root/repo/src/graph/embedding.cpp" "src/graph/CMakeFiles/qsmt_graph.dir/embedding.cpp.o" "gcc" "src/graph/CMakeFiles/qsmt_graph.dir/embedding.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/qsmt_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/qsmt_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/topologies.cpp" "src/graph/CMakeFiles/qsmt_graph.dir/topologies.cpp.o" "gcc" "src/graph/CMakeFiles/qsmt_graph.dir/topologies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qsmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/qubo/CMakeFiles/qsmt_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/anneal/CMakeFiles/qsmt_anneal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

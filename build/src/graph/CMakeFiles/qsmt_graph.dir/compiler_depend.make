# Empty compiler generated dependencies file for qsmt_graph.
# This may be replaced when dependencies are built.

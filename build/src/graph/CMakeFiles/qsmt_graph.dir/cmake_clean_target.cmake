file(REMOVE_RECURSE
  "libqsmt_graph.a"
)

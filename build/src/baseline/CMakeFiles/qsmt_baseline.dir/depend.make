# Empty dependencies file for qsmt_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/qsmt_baseline.dir/classical.cpp.o"
  "CMakeFiles/qsmt_baseline.dir/classical.cpp.o.d"
  "libqsmt_baseline.a"
  "libqsmt_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsmt_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

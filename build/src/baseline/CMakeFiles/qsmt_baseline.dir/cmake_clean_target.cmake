file(REMOVE_RECURSE
  "libqsmt_baseline.a"
)

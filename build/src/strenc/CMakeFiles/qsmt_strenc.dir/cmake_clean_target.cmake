file(REMOVE_RECURSE
  "libqsmt_strenc.a"
)

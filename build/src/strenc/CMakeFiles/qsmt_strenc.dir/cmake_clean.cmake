file(REMOVE_RECURSE
  "CMakeFiles/qsmt_strenc.dir/ascii7.cpp.o"
  "CMakeFiles/qsmt_strenc.dir/ascii7.cpp.o.d"
  "libqsmt_strenc.a"
  "libqsmt_strenc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsmt_strenc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

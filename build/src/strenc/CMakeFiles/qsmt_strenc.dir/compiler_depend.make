# Empty compiler generated dependencies file for qsmt_strenc.
# This may be replaced when dependencies are built.

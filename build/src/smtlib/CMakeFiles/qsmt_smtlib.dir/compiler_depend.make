# Empty compiler generated dependencies file for qsmt_smtlib.
# This may be replaced when dependencies are built.

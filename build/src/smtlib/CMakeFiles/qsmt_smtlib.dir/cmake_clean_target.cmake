file(REMOVE_RECURSE
  "libqsmt_smtlib.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smtlib/ast.cpp" "src/smtlib/CMakeFiles/qsmt_smtlib.dir/ast.cpp.o" "gcc" "src/smtlib/CMakeFiles/qsmt_smtlib.dir/ast.cpp.o.d"
  "/root/repo/src/smtlib/compiler.cpp" "src/smtlib/CMakeFiles/qsmt_smtlib.dir/compiler.cpp.o" "gcc" "src/smtlib/CMakeFiles/qsmt_smtlib.dir/compiler.cpp.o.d"
  "/root/repo/src/smtlib/driver.cpp" "src/smtlib/CMakeFiles/qsmt_smtlib.dir/driver.cpp.o" "gcc" "src/smtlib/CMakeFiles/qsmt_smtlib.dir/driver.cpp.o.d"
  "/root/repo/src/smtlib/parser.cpp" "src/smtlib/CMakeFiles/qsmt_smtlib.dir/parser.cpp.o" "gcc" "src/smtlib/CMakeFiles/qsmt_smtlib.dir/parser.cpp.o.d"
  "/root/repo/src/smtlib/sexpr.cpp" "src/smtlib/CMakeFiles/qsmt_smtlib.dir/sexpr.cpp.o" "gcc" "src/smtlib/CMakeFiles/qsmt_smtlib.dir/sexpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qsmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/strqubo/CMakeFiles/qsmt_strqubo.dir/DependInfo.cmake"
  "/root/repo/build/src/anneal/CMakeFiles/qsmt_anneal.dir/DependInfo.cmake"
  "/root/repo/build/src/qubo/CMakeFiles/qsmt_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/strenc/CMakeFiles/qsmt_strenc.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/qsmt_regex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/qsmt_smtlib.dir/ast.cpp.o"
  "CMakeFiles/qsmt_smtlib.dir/ast.cpp.o.d"
  "CMakeFiles/qsmt_smtlib.dir/compiler.cpp.o"
  "CMakeFiles/qsmt_smtlib.dir/compiler.cpp.o.d"
  "CMakeFiles/qsmt_smtlib.dir/driver.cpp.o"
  "CMakeFiles/qsmt_smtlib.dir/driver.cpp.o.d"
  "CMakeFiles/qsmt_smtlib.dir/parser.cpp.o"
  "CMakeFiles/qsmt_smtlib.dir/parser.cpp.o.d"
  "CMakeFiles/qsmt_smtlib.dir/sexpr.cpp.o"
  "CMakeFiles/qsmt_smtlib.dir/sexpr.cpp.o.d"
  "libqsmt_smtlib.a"
  "libqsmt_smtlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsmt_smtlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libqsmt_regex.a"
)

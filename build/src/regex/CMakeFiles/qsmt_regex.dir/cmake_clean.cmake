file(REMOVE_RECURSE
  "CMakeFiles/qsmt_regex.dir/nfa.cpp.o"
  "CMakeFiles/qsmt_regex.dir/nfa.cpp.o.d"
  "CMakeFiles/qsmt_regex.dir/pattern.cpp.o"
  "CMakeFiles/qsmt_regex.dir/pattern.cpp.o.d"
  "libqsmt_regex.a"
  "libqsmt_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsmt_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for qsmt_regex.
# This may be replaced when dependencies are built.

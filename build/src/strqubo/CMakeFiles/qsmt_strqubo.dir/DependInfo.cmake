
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strqubo/builders.cpp" "src/strqubo/CMakeFiles/qsmt_strqubo.dir/builders.cpp.o" "gcc" "src/strqubo/CMakeFiles/qsmt_strqubo.dir/builders.cpp.o.d"
  "/root/repo/src/strqubo/constraint.cpp" "src/strqubo/CMakeFiles/qsmt_strqubo.dir/constraint.cpp.o" "gcc" "src/strqubo/CMakeFiles/qsmt_strqubo.dir/constraint.cpp.o.d"
  "/root/repo/src/strqubo/pipeline.cpp" "src/strqubo/CMakeFiles/qsmt_strqubo.dir/pipeline.cpp.o" "gcc" "src/strqubo/CMakeFiles/qsmt_strqubo.dir/pipeline.cpp.o.d"
  "/root/repo/src/strqubo/solver.cpp" "src/strqubo/CMakeFiles/qsmt_strqubo.dir/solver.cpp.o" "gcc" "src/strqubo/CMakeFiles/qsmt_strqubo.dir/solver.cpp.o.d"
  "/root/repo/src/strqubo/verify.cpp" "src/strqubo/CMakeFiles/qsmt_strqubo.dir/verify.cpp.o" "gcc" "src/strqubo/CMakeFiles/qsmt_strqubo.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qsmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/qubo/CMakeFiles/qsmt_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/anneal/CMakeFiles/qsmt_anneal.dir/DependInfo.cmake"
  "/root/repo/build/src/strenc/CMakeFiles/qsmt_strenc.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/qsmt_regex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

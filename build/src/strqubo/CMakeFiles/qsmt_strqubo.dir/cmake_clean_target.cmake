file(REMOVE_RECURSE
  "libqsmt_strqubo.a"
)

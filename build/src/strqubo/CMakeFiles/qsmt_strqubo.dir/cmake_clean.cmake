file(REMOVE_RECURSE
  "CMakeFiles/qsmt_strqubo.dir/builders.cpp.o"
  "CMakeFiles/qsmt_strqubo.dir/builders.cpp.o.d"
  "CMakeFiles/qsmt_strqubo.dir/constraint.cpp.o"
  "CMakeFiles/qsmt_strqubo.dir/constraint.cpp.o.d"
  "CMakeFiles/qsmt_strqubo.dir/pipeline.cpp.o"
  "CMakeFiles/qsmt_strqubo.dir/pipeline.cpp.o.d"
  "CMakeFiles/qsmt_strqubo.dir/solver.cpp.o"
  "CMakeFiles/qsmt_strqubo.dir/solver.cpp.o.d"
  "CMakeFiles/qsmt_strqubo.dir/verify.cpp.o"
  "CMakeFiles/qsmt_strqubo.dir/verify.cpp.o.d"
  "libqsmt_strqubo.a"
  "libqsmt_strqubo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsmt_strqubo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for qsmt_strqubo.
# This may be replaced when dependencies are built.

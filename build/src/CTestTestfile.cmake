# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("qubo")
subdirs("anneal")
subdirs("graph")
subdirs("strenc")
subdirs("regex")
subdirs("strqubo")
subdirs("smtlib")
subdirs("sat")
subdirs("baseline")
subdirs("workload")
subdirs("engine")

# Empty dependencies file for qsmt_qubo.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qubo/adjacency.cpp" "src/qubo/CMakeFiles/qsmt_qubo.dir/adjacency.cpp.o" "gcc" "src/qubo/CMakeFiles/qsmt_qubo.dir/adjacency.cpp.o.d"
  "/root/repo/src/qubo/ising.cpp" "src/qubo/CMakeFiles/qsmt_qubo.dir/ising.cpp.o" "gcc" "src/qubo/CMakeFiles/qsmt_qubo.dir/ising.cpp.o.d"
  "/root/repo/src/qubo/penalties.cpp" "src/qubo/CMakeFiles/qsmt_qubo.dir/penalties.cpp.o" "gcc" "src/qubo/CMakeFiles/qsmt_qubo.dir/penalties.cpp.o.d"
  "/root/repo/src/qubo/quadratization.cpp" "src/qubo/CMakeFiles/qsmt_qubo.dir/quadratization.cpp.o" "gcc" "src/qubo/CMakeFiles/qsmt_qubo.dir/quadratization.cpp.o.d"
  "/root/repo/src/qubo/qubo_model.cpp" "src/qubo/CMakeFiles/qsmt_qubo.dir/qubo_model.cpp.o" "gcc" "src/qubo/CMakeFiles/qsmt_qubo.dir/qubo_model.cpp.o.d"
  "/root/repo/src/qubo/serialize.cpp" "src/qubo/CMakeFiles/qsmt_qubo.dir/serialize.cpp.o" "gcc" "src/qubo/CMakeFiles/qsmt_qubo.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qsmt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

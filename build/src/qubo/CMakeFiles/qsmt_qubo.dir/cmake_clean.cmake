file(REMOVE_RECURSE
  "CMakeFiles/qsmt_qubo.dir/adjacency.cpp.o"
  "CMakeFiles/qsmt_qubo.dir/adjacency.cpp.o.d"
  "CMakeFiles/qsmt_qubo.dir/ising.cpp.o"
  "CMakeFiles/qsmt_qubo.dir/ising.cpp.o.d"
  "CMakeFiles/qsmt_qubo.dir/penalties.cpp.o"
  "CMakeFiles/qsmt_qubo.dir/penalties.cpp.o.d"
  "CMakeFiles/qsmt_qubo.dir/quadratization.cpp.o"
  "CMakeFiles/qsmt_qubo.dir/quadratization.cpp.o.d"
  "CMakeFiles/qsmt_qubo.dir/qubo_model.cpp.o"
  "CMakeFiles/qsmt_qubo.dir/qubo_model.cpp.o.d"
  "CMakeFiles/qsmt_qubo.dir/serialize.cpp.o"
  "CMakeFiles/qsmt_qubo.dir/serialize.cpp.o.d"
  "libqsmt_qubo.a"
  "libqsmt_qubo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsmt_qubo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libqsmt_qubo.a"
)

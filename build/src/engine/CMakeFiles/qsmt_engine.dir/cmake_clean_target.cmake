file(REMOVE_RECURSE
  "libqsmt_engine.a"
)

# Empty dependencies file for qsmt_engine.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/qsmt_engine.dir/engine.cpp.o"
  "CMakeFiles/qsmt_engine.dir/engine.cpp.o.d"
  "libqsmt_engine.a"
  "libqsmt_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsmt_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libqsmt_sat.a"
)

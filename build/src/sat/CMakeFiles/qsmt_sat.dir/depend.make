# Empty dependencies file for qsmt_sat.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/qsmt_sat.dir/cdcl.cpp.o"
  "CMakeFiles/qsmt_sat.dir/cdcl.cpp.o.d"
  "CMakeFiles/qsmt_sat.dir/dimacs.cpp.o"
  "CMakeFiles/qsmt_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/qsmt_sat.dir/dpllt.cpp.o"
  "CMakeFiles/qsmt_sat.dir/dpllt.cpp.o.d"
  "CMakeFiles/qsmt_sat.dir/tseitin.cpp.o"
  "CMakeFiles/qsmt_sat.dir/tseitin.cpp.o.d"
  "libqsmt_sat.a"
  "libqsmt_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsmt_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for quantum_study.
# This may be replaced when dependencies are built.

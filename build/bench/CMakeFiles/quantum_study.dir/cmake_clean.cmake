file(REMOVE_RECURSE
  "CMakeFiles/quantum_study.dir/quantum_study.cpp.o"
  "CMakeFiles/quantum_study.dir/quantum_study.cpp.o.d"
  "quantum_study"
  "quantum_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantum_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table1_repro.dir/table1_repro.cpp.o"
  "CMakeFiles/table1_repro.dir/table1_repro.cpp.o.d"
  "table1_repro"
  "table1_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_repro.
# This may be replaced when dependencies are built.

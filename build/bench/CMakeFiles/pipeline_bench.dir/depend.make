# Empty dependencies file for pipeline_bench.
# This may be replaced when dependencies are built.

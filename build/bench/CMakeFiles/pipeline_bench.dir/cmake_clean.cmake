file(REMOVE_RECURSE
  "CMakeFiles/pipeline_bench.dir/pipeline_bench.cpp.o"
  "CMakeFiles/pipeline_bench.dir/pipeline_bench.cpp.o.d"
  "pipeline_bench"
  "pipeline_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

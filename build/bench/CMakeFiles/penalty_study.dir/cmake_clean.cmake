file(REMOVE_RECURSE
  "CMakeFiles/penalty_study.dir/penalty_study.cpp.o"
  "CMakeFiles/penalty_study.dir/penalty_study.cpp.o.d"
  "penalty_study"
  "penalty_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/penalty_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for penalty_study.
# This may be replaced when dependencies are built.

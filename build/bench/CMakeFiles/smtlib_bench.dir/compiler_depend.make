# Empty compiler generated dependencies file for smtlib_bench.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/smtlib_bench.dir/smtlib_bench.cpp.o"
  "CMakeFiles/smtlib_bench.dir/smtlib_bench.cpp.o.d"
  "smtlib_bench"
  "smtlib_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtlib_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sampler_bench.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sampler_bench.dir/sampler_bench.cpp.o"
  "CMakeFiles/sampler_bench.dir/sampler_bench.cpp.o.d"
  "sampler_bench"
  "sampler_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampler_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for regex_ablation_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/regex_ablation_study.dir/regex_ablation_study.cpp.o"
  "CMakeFiles/regex_ablation_study.dir/regex_ablation_study.cpp.o.d"
  "regex_ablation_study"
  "regex_ablation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_ablation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

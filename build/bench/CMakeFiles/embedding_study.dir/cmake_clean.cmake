file(REMOVE_RECURSE
  "CMakeFiles/embedding_study.dir/embedding_study.cpp.o"
  "CMakeFiles/embedding_study.dir/embedding_study.cpp.o.d"
  "embedding_study"
  "embedding_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for embedding_study.
# This may be replaced when dependencies are built.

# Empty dependencies file for suite_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/suite_study.dir/suite_study.cpp.o"
  "CMakeFiles/suite_study.dir/suite_study.cpp.o.d"
  "suite_study"
  "suite_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

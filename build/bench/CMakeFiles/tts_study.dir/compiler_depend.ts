# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tts_study.

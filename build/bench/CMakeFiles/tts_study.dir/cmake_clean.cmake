file(REMOVE_RECURSE
  "CMakeFiles/tts_study.dir/tts_study.cpp.o"
  "CMakeFiles/tts_study.dir/tts_study.cpp.o.d"
  "tts_study"
  "tts_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tts_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tts_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/quadratization_study.dir/quadratization_study.cpp.o"
  "CMakeFiles/quadratization_study.dir/quadratization_study.cpp.o.d"
  "quadratization_study"
  "quadratization_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadratization_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

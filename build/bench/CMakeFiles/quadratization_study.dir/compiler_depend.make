# Empty compiler generated dependencies file for quadratization_study.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_input_validation "/root/repo/build/examples/input_validation")
set_tests_properties(example_input_validation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smt_cli_demo "/root/repo/build/examples/smt_cli")
set_tests_properties(example_smt_cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_config "/root/repo/build/examples/distributed_config")
set_tests_properties(example_distributed_config PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_path_explorer "/root/repo/build/examples/path_explorer")
set_tests_properties(example_path_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_qubo_tool "/root/repo/build/examples/qubo_tool" "--sampler" "exact")
set_tests_properties(example_qubo_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_benchmark_gen "/root/repo/build/examples/benchmark_gen" "--count" "12")
set_tests_properties(example_benchmark_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sat_cli "/root/repo/build/examples/sat_cli")
set_tests_properties(example_sat_cli PROPERTIES  PASS_REGULAR_EXPRESSION "s SATISFIABLE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")

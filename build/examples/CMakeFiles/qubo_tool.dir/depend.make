# Empty dependencies file for qubo_tool.
# This may be replaced when dependencies are built.

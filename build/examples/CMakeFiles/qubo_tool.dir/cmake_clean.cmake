file(REMOVE_RECURSE
  "CMakeFiles/qubo_tool.dir/qubo_tool.cpp.o"
  "CMakeFiles/qubo_tool.dir/qubo_tool.cpp.o.d"
  "qubo_tool"
  "qubo_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qubo_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

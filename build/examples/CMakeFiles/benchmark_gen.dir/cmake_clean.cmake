file(REMOVE_RECURSE
  "CMakeFiles/benchmark_gen.dir/benchmark_gen.cpp.o"
  "CMakeFiles/benchmark_gen.dir/benchmark_gen.cpp.o.d"
  "benchmark_gen"
  "benchmark_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

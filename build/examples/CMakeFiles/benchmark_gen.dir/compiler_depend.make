# Empty compiler generated dependencies file for benchmark_gen.
# This may be replaced when dependencies are built.

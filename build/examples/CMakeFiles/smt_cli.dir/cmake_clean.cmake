file(REMOVE_RECURSE
  "CMakeFiles/smt_cli.dir/smt_cli.cpp.o"
  "CMakeFiles/smt_cli.dir/smt_cli.cpp.o.d"
  "smt_cli"
  "smt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

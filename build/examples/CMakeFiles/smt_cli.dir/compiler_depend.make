# Empty compiler generated dependencies file for smt_cli.
# This may be replaced when dependencies are built.

# Empty dependencies file for distributed_config.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/distributed_config.dir/distributed_config.cpp.o"
  "CMakeFiles/distributed_config.dir/distributed_config.cpp.o.d"
  "distributed_config"
  "distributed_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

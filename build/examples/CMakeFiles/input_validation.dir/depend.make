# Empty dependencies file for input_validation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/input_validation.dir/input_validation.cpp.o"
  "CMakeFiles/input_validation.dir/input_validation.cpp.o.d"
  "input_validation"
  "input_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/input_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

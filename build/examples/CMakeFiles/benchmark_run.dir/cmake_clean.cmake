file(REMOVE_RECURSE
  "CMakeFiles/benchmark_run.dir/benchmark_run.cpp.o"
  "CMakeFiles/benchmark_run.dir/benchmark_run.cpp.o.d"
  "benchmark_run"
  "benchmark_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

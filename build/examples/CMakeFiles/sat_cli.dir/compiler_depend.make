# Empty compiler generated dependencies file for sat_cli.
# This may be replaced when dependencies are built.

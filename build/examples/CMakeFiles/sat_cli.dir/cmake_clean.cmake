file(REMOVE_RECURSE
  "CMakeFiles/sat_cli.dir/sat_cli.cpp.o"
  "CMakeFiles/sat_cli.dir/sat_cli.cpp.o.d"
  "sat_cli"
  "sat_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

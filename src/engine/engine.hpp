// One-call solving entry point: script text in, verdict out.
//
// Chooses the execution engine the way a production solver front end does:
// plain conjunctive scripts run through the merged-QUBO SmtDriver; scripts
// whose assertions use boolean structure (or / general not) are routed to
// the DPLL(T) engine. Exists so applications (and the smt_cli example) get
// the full solver with a single call, and so the routing logic is library
// code under test rather than example-local.
#pragma once

#include <string>
#include <vector>

#include "anneal/sampler.hpp"
#include "smtlib/ast.hpp"
#include "smtlib/driver.hpp"
#include "strqubo/builders.hpp"

namespace qsmt::engine {

enum class EngineKind {
  kConjunctive,  ///< Merged-QUBO SmtDriver.
  kDpllT,        ///< CDCL case-splitting with the annealer as T-solver.
};

struct ScriptResult {
  smtlib::CheckSatStatus status = smtlib::CheckSatStatus::kUnknown;
  /// Model of the string variable when status == kSat (empty for ground
  /// queries with no free variable).
  std::string variable;
  std::string model_value;
  /// Raw printed output (the z3-style transcript) for CLI display.
  std::string transcript;
  std::vector<std::string> notes;
  EngineKind engine = EngineKind::kConjunctive;
};

/// True when any assertion in the parsed commands needs the boolean engine:
/// an `or` anywhere, or a `not` around anything other than str.contains.
bool needs_boolean_engine(const std::vector<smtlib::Command>& commands);

/// Term-level version of needs_boolean_engine.
bool term_needs_boolean_engine(const smtlib::TermPtr& term);

/// Parses and solves `script`, auto-selecting the engine. `force_dpllt`
/// routes to DPLL(T) regardless. Parse errors propagate as
/// std::invalid_argument.
///
/// `context`, when given, carries incremental state across calls (must
/// outlive them): the conjunctive engine adopts it for fragment reuse,
/// witness reuse, and warm starts; DPLL(T) retains exact theory lemmas in
/// it and treats check-sat-assuming assumptions as true CDCL assumptions
/// instead of flattening them into the assertion set.
ScriptResult solve_script(const std::string& script,
                          const anneal::Sampler& sampler,
                          const strqubo::BuildOptions& options = {},
                          bool force_dpllt = false,
                          smtlib::SolveContext* context = nullptr);

/// Batch entry point: solves every script in order with the same sampler and
/// options, one blocking solve at a time. This is the sequential baseline
/// the concurrent batching layer (qsmt::service::SolveService, and the
/// bench/service_bench throughput comparison) is measured against; callers
/// that want worker-pool parallelism, portfolio racing, deadlines, or
/// cancellation use the service instead.
std::vector<ScriptResult> solve_scripts(const std::vector<std::string>& scripts,
                                        const anneal::Sampler& sampler,
                                        const strqubo::BuildOptions& options = {},
                                        bool force_dpllt = false,
                                        smtlib::SolveContext* context = nullptr);

}  // namespace qsmt::engine

#include "engine/engine.hpp"

#include <map>

#include "sat/dpllt.hpp"
#include "smtlib/parser.hpp"
#include "telemetry/telemetry.hpp"

namespace qsmt::engine {

bool term_needs_boolean_engine(const smtlib::TermPtr& term) {
  if (!term || term->kind != smtlib::Term::Kind::kApply) return false;
  if (term->atom == "or") return true;
  if (term->atom == "not" &&
      !(term->args.size() == 1 && term->args[0] &&
        term->args[0]->is_apply("str.contains"))) {
    return true;
  }
  for (const auto& arg : term->args) {
    if (term_needs_boolean_engine(arg)) return true;
  }
  return false;
}

bool needs_boolean_engine(const std::vector<smtlib::Command>& commands) {
  for (const auto& command : commands) {
    if (const auto* assert_cmd = std::get_if<smtlib::AssertCmd>(&command)) {
      if (term_needs_boolean_engine(assert_cmd->term)) return true;
    } else if (const auto* check =
                   std::get_if<smtlib::CheckSatAssuming>(&command)) {
      for (const auto& assumption : check->assumptions) {
        if (term_needs_boolean_engine(assumption)) return true;
      }
    }
  }
  return false;
}

namespace {

ScriptResult run_conjunctive(const std::vector<smtlib::Command>& commands,
                             const anneal::Sampler& sampler,
                             const strqubo::BuildOptions& options,
                             smtlib::SolveContext* context) {
  ScriptResult result;
  result.engine = EngineKind::kConjunctive;
  smtlib::SmtDriver driver(sampler, options);
  if (context != nullptr) {
    // Non-owning alias: the caller keeps the context alive across scripts.
    driver.adopt_context(
        std::shared_ptr<smtlib::SolveContext>(std::shared_ptr<void>(),
                                              context));
  }
  for (const auto& command : commands) {
    if (!driver.execute(command, result.transcript)) break;
  }
  if (!driver.history().empty()) {
    const smtlib::CheckSatRecord& record = driver.history().back();
    result.status = record.status;
    result.variable = record.variable;
    result.model_value = record.model_value;
    result.notes = record.notes;
  }
  return result;
}

ScriptResult run_dpllt(const std::vector<smtlib::Command>& commands,
                       const anneal::Sampler& sampler,
                       const strqubo::BuildOptions& options,
                       smtlib::SolveContext* context) {
  ScriptResult result;
  result.engine = EngineKind::kDpllT;

  std::vector<smtlib::TermPtr> assertions;
  std::vector<smtlib::TermPtr> assumptions;
  std::map<std::string, smtlib::Sort> declared;
  for (const auto& command : commands) {
    if (const auto* decl = std::get_if<smtlib::DeclareConst>(&command)) {
      declared.emplace(decl->name, decl->sort);
    } else if (const auto* assert_cmd =
                   std::get_if<smtlib::AssertCmd>(&command)) {
      assertions.push_back(assert_cmd->term);
    } else if (const auto* check =
                   std::get_if<smtlib::CheckSatAssuming>(&command)) {
      // Assumptions stay assumptions: forced first decisions in the CDCL
      // engine, so learned clauses remain valid without them.
      for (const auto& assumption : check->assumptions) {
        assumptions.push_back(assumption);
      }
    }
  }

  const sat::DpllTSolver solver(sampler, options, {});
  const sat::DpllTResult solved =
      solver.solve(assertions, assumptions, declared, context);
  result.status = solved.status;
  result.variable = solved.variable;
  result.model_value = solved.model_value;
  result.notes = solved.notes;

  result.transcript = smtlib::status_name(solved.status) + "\n";
  if (solved.status == smtlib::CheckSatStatus::kSat &&
      !solved.variable.empty()) {
    result.transcript += "(model (define-fun " + solved.variable +
                         " () String \"" + solved.model_value + "\"))\n";
  }
  return result;
}

// Final-status counters let a batch run's sat/unsat/unknown split (and the
// conjunctive/DPLL(T) routing decision) show up in the telemetry summary.
void record_script_result(const ScriptResult& result) {
  if (!telemetry::enabled()) return;
  telemetry::counter(result.engine == EngineKind::kDpllT
                         ? "engine.route.dpllt"
                         : "engine.route.conjunctive")
      .add();
  switch (result.status) {
    case smtlib::CheckSatStatus::kSat:
      telemetry::counter("engine.verdict.sat").add();
      break;
    case smtlib::CheckSatStatus::kUnsat:
      telemetry::counter("engine.verdict.unsat").add();
      break;
    case smtlib::CheckSatStatus::kUnknown:
      telemetry::counter("engine.verdict.unknown").add();
      break;
  }
}

}  // namespace

ScriptResult solve_script(const std::string& script,
                          const anneal::Sampler& sampler,
                          const strqubo::BuildOptions& options,
                          bool force_dpllt, smtlib::SolveContext* context) {
  telemetry::Span span("engine.solve_script");
  const std::vector<smtlib::Command> commands = smtlib::parse_script(script);
  ScriptResult result =
      (force_dpllt || needs_boolean_engine(commands))
          ? run_dpllt(commands, sampler, options, context)
          : run_conjunctive(commands, sampler, options, context);
  record_script_result(result);
  return result;
}

std::vector<ScriptResult> solve_scripts(const std::vector<std::string>& scripts,
                                        const anneal::Sampler& sampler,
                                        const strqubo::BuildOptions& options,
                                        bool force_dpllt,
                                        smtlib::SolveContext* context) {
  std::vector<ScriptResult> results;
  results.reserve(scripts.size());
  for (const std::string& script : scripts) {
    results.push_back(
        solve_script(script, sampler, options, force_dpllt, context));
  }
  return results;
}

}  // namespace qsmt::engine

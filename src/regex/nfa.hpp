// Thompson NFA construction and simulation for the regex subset.
//
// The classical automata-based matcher the paper contrasts with (§1 cites
// automata-based string solving and its costs). Used here (a) to verify
// annealer outputs against the pattern, and (b) as the classical baseline
// engine in the crossover benches.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "regex/pattern.hpp"

namespace qsmt::regex {

/// Nondeterministic finite automaton over 7-bit ASCII with epsilon moves.
class Nfa {
 public:
  /// Thompson construction from a parsed pattern.
  static Nfa compile(const Pattern& pattern);

  /// True when the whole input matches (anchored at both ends).
  bool matches(std::string_view input) const;

  /// Length of the shortest accepted string (BFS over the automaton).
  std::size_t shortest_accepted_length() const;

  std::size_t num_states() const noexcept { return states_.size(); }

 private:
  struct State {
    // Transition on any character in `chars` to `next` (chars empty: none).
    std::string chars;
    std::int32_t next = -1;
    // Up to two epsilon successors (enough for Thompson fragments).
    std::int32_t eps[2] = {-1, -1};
  };

  std::size_t add_state();
  void epsilon_closure(std::vector<std::uint8_t>& active) const;

  std::vector<State> states_;
  std::int32_t start_ = -1;
  std::int32_t accept_ = -1;
};

/// Convenience: parse + compile + match.
bool full_match(std::string_view pattern, std::string_view input);

}  // namespace qsmt::regex

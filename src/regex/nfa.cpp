#include "regex/nfa.hpp"

#include <deque>
#include <limits>
#include <queue>

#include "util/require.hpp"

namespace qsmt::regex {

std::size_t Nfa::add_state() {
  states_.emplace_back();
  return states_.size() - 1;
}

Nfa Nfa::compile(const Pattern& pattern) {
  Nfa nfa;
  // Chain of fragments; each element contributes a char move s --chars--> t
  // plus epsilon edges per its quantifier:
  //   one:   (no extra edges)
  //   plus:  t --eps--> s              (repeat)
  //   star:  t --eps--> s, s --eps--> t (repeat or skip)
  //   opt:   s --eps--> t              (skip)
  // A state may carry up to two epsilon edges (its own element's skip plus
  // the previous element's loop-back), so edges take the first free slot.
  auto add_eps = [&nfa](std::size_t from, std::size_t to) {
    for (auto& slot : nfa.states_[from].eps) {
      if (slot < 0) {
        slot = static_cast<std::int32_t>(to);
        return;
      }
    }
    throw std::logic_error("Nfa::compile: epsilon slots exhausted");
  };

  const std::size_t start = nfa.add_state();
  std::size_t current = start;
  for (const Element& element : pattern.elements) {
    const std::size_t s = current;
    const std::size_t t = nfa.add_state();
    nfa.states_[s].chars = element.chars;
    nfa.states_[s].next = static_cast<std::int32_t>(t);
    switch (element.quantifier) {
      case Quantifier::kOne:
        break;
      case Quantifier::kPlus:
        add_eps(t, s);
        break;
      case Quantifier::kStar:
        add_eps(t, s);
        add_eps(s, t);
        break;
      case Quantifier::kOpt:
        add_eps(s, t);
        break;
    }
    current = t;
  }
  nfa.start_ = static_cast<std::int32_t>(start);
  nfa.accept_ = static_cast<std::int32_t>(current);
  return nfa;
}

void Nfa::epsilon_closure(std::vector<std::uint8_t>& active) const {
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (active[i]) stack.push_back(i);
  }
  while (!stack.empty()) {
    const std::size_t s = stack.back();
    stack.pop_back();
    for (std::int32_t e : states_[s].eps) {
      if (e >= 0 && !active[static_cast<std::size_t>(e)]) {
        active[static_cast<std::size_t>(e)] = 1;
        stack.push_back(static_cast<std::size_t>(e));
      }
    }
  }
}

bool Nfa::matches(std::string_view input) const {
  require(start_ >= 0, "Nfa::matches: automaton not compiled");
  std::vector<std::uint8_t> active(states_.size(), 0);
  active[static_cast<std::size_t>(start_)] = 1;
  epsilon_closure(active);

  std::vector<std::uint8_t> next(states_.size(), 0);
  for (char c : input) {
    std::fill(next.begin(), next.end(), 0);
    bool any = false;
    for (std::size_t s = 0; s < states_.size(); ++s) {
      if (!active[s]) continue;
      const State& state = states_[s];
      if (state.next >= 0 && state.chars.find(c) != std::string::npos) {
        next[static_cast<std::size_t>(state.next)] = 1;
        any = true;
      }
    }
    if (!any) return false;
    std::swap(active, next);
    epsilon_closure(active);
  }
  return active[static_cast<std::size_t>(accept_)] != 0;
}

std::size_t Nfa::shortest_accepted_length() const {
  require(start_ >= 0, "Nfa::shortest_accepted_length: not compiled");
  // BFS counting character moves; epsilon moves are free.
  std::vector<std::size_t> dist(states_.size(),
                                std::numeric_limits<std::size_t>::max());
  std::deque<std::size_t> queue;
  dist[static_cast<std::size_t>(start_)] = 0;
  queue.push_back(static_cast<std::size_t>(start_));
  while (!queue.empty()) {
    const std::size_t s = queue.front();
    queue.pop_front();
    const State& state = states_[s];
    for (std::int32_t e : state.eps) {
      if (e >= 0 && dist[static_cast<std::size_t>(e)] > dist[s]) {
        dist[static_cast<std::size_t>(e)] = dist[s];
        queue.push_front(static_cast<std::size_t>(e));  // 0-weight edge.
      }
    }
    if (state.next >= 0 && !state.chars.empty()) {
      const auto t = static_cast<std::size_t>(state.next);
      if (dist[t] > dist[s] + 1) {
        dist[t] = dist[s] + 1;
        queue.push_back(t);
      }
    }
  }
  return dist[static_cast<std::size_t>(accept_)];
}

bool full_match(std::string_view pattern, std::string_view input) {
  return Nfa::compile(parse_pattern(pattern)).matches(input);
}

}  // namespace qsmt::regex

// Parser and fixed-length expansion for the paper's regex subset (§4.11):
// literal characters, character classes, and the plus quantifier, e.g.
// a[tyz]+b — extended (per the paper's §6 future-work direction) with the
// star and optional quantifiers. Backslash escapes the next character so
// literal '+', '*', '?', '[', ']', and backslash remain expressible.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qsmt::regex {

/// Repetition attached to one element.
enum class Quantifier {
  kOne,   ///< Exactly once (no suffix).
  kPlus,  ///< One or more ('+', the paper's subset).
  kStar,  ///< Zero or more ('*', extension).
  kOpt,   ///< Zero or one ('?', extension).
};

/// One parsed pattern element: a literal or a character class, with its
/// quantifier. Classes keep their characters deduplicated in first-
/// appearance order (the QUBO encoding divides by |chars|, §4.11).
struct Element {
  std::string chars;  ///< Size 1 for a literal; >= 1 for a class.
  bool is_class = false;
  Quantifier quantifier = Quantifier::kOne;

  bool matches(char c) const { return chars.find(c) != std::string::npos; }

  /// Minimum repetitions (1 for One/Plus, 0 for Star/Opt).
  std::size_t min_count() const {
    return quantifier == Quantifier::kOne || quantifier == Quantifier::kPlus
               ? 1
               : 0;
  }
  /// True when the element can repeat without bound (Plus/Star).
  bool unbounded() const {
    return quantifier == Quantifier::kPlus || quantifier == Quantifier::kStar;
  }
  /// Back-compat helper: true for the paper's '+' quantifier.
  bool plus() const { return quantifier == Quantifier::kPlus; }
};

struct Pattern {
  std::vector<Element> elements;
  std::string source;  ///< Original pattern text.

  /// Minimum string length the pattern can match.
  std::size_t min_length() const;

  /// True when some element is unbounded ('+' or '*').
  bool has_plus() const;
};

/// Parses the subset. Throws std::invalid_argument on malformed input
/// (empty pattern, unbalanced '[', empty class, leading quantifier, double
/// quantifier, bad escape).
Pattern parse_pattern(std::string_view text);

/// A per-position token after expanding the pattern to a fixed length: each
/// output position is constrained to one character set. The paper's QUBO
/// encoder works on this expansion ("if we have the regex a[bc]+ and we are
/// generating a string of length 3 ... a literal, a character class, and
/// another character class").
struct PositionToken {
  std::string chars;
  bool is_class = false;
};

/// Expands `pattern` to exactly `length` positions: every element takes its
/// minimum count, extra repetitions go to the first unbounded element, and
/// when there is none, optional elements absorb one extra each in order.
/// Throws std::invalid_argument when no assignment reaches `length`.
std::vector<PositionToken> expand_to_length(const Pattern& pattern,
                                            std::size_t length);

}  // namespace qsmt::regex

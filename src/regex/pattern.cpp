#include "regex/pattern.hpp"

#include "util/require.hpp"

namespace qsmt::regex {

std::size_t Pattern::min_length() const {
  std::size_t total = 0;
  for (const Element& e : elements) total += e.min_count();
  return total;
}

bool Pattern::has_plus() const {
  for (const Element& e : elements) {
    if (e.unbounded()) return true;
  }
  return false;
}

namespace {

void append_unique(std::string& chars, char c) {
  if (chars.find(c) == std::string::npos) chars.push_back(c);
}

bool is_quantifier(char c) { return c == '+' || c == '*' || c == '?'; }

Quantifier quantifier_of(char c) {
  switch (c) {
    case '+':
      return Quantifier::kPlus;
    case '*':
      return Quantifier::kStar;
    default:
      return Quantifier::kOpt;
  }
}

}  // namespace

Pattern parse_pattern(std::string_view text) {
  require(!text.empty(), "parse_pattern: empty pattern");
  Pattern pattern;
  pattern.source = std::string(text);

  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (is_quantifier(c)) {
      require(!pattern.elements.empty(),
              "parse_pattern: quantifier with nothing to repeat");
      require(pattern.elements.back().quantifier == Quantifier::kOne,
              "parse_pattern: double quantifier is not in the supported "
              "subset");
      pattern.elements.back().quantifier = quantifier_of(c);
      ++i;
    } else if (c == '[') {
      Element element;
      element.is_class = true;
      ++i;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == ']') {
          closed = true;
          ++i;
          break;
        }
        char cc = text[i];
        if (cc == '\\') {
          require(i + 1 < text.size(), "parse_pattern: dangling escape");
          cc = text[i + 1];
          ++i;
        }
        append_unique(element.chars, cc);
        ++i;
      }
      require(closed, "parse_pattern: unterminated character class");
      require(!element.chars.empty(), "parse_pattern: empty character class");
      pattern.elements.push_back(std::move(element));
    } else if (c == ']') {
      throw std::invalid_argument("parse_pattern: unmatched ']'");
    } else {
      char literal = c;
      if (c == '\\') {
        require(i + 1 < text.size(), "parse_pattern: dangling escape");
        literal = text[i + 1];
        ++i;
      }
      Element element;
      element.chars.push_back(literal);
      pattern.elements.push_back(std::move(element));
      ++i;
    }
  }
  require(!pattern.elements.empty(), "parse_pattern: pattern has no elements");
  return pattern;
}

std::vector<PositionToken> expand_to_length(const Pattern& pattern,
                                            std::size_t length) {
  const std::size_t base = pattern.min_length();
  require(length >= base,
          "expand_to_length: length shorter than the pattern's minimum");
  std::size_t extra = length - base;

  // Per-element repetition counts: minimum first, then distribute extras.
  std::vector<std::size_t> counts(pattern.elements.size());
  for (std::size_t e = 0; e < pattern.elements.size(); ++e) {
    counts[e] = pattern.elements[e].min_count();
  }
  // All extra repetitions go to the first unbounded element (any
  // distribution yields a valid match; this one is deterministic).
  for (std::size_t e = 0; e < pattern.elements.size() && extra > 0; ++e) {
    if (pattern.elements[e].unbounded()) {
      counts[e] += extra;
      extra = 0;
    }
  }
  // No unbounded element: optional elements absorb one extra each.
  for (std::size_t e = 0; e < pattern.elements.size() && extra > 0; ++e) {
    if (pattern.elements[e].quantifier == Quantifier::kOpt) {
      counts[e] += 1;
      --extra;
    }
  }
  require(extra == 0,
          "expand_to_length: pattern cannot match a string of this length");

  std::vector<PositionToken> tokens;
  tokens.reserve(length);
  for (std::size_t e = 0; e < pattern.elements.size(); ++e) {
    const Element& element = pattern.elements[e];
    for (std::size_t r = 0; r < counts[e]; ++r) {
      tokens.push_back(PositionToken{element.chars, element.is_class});
    }
  }
  return tokens;
}

}  // namespace qsmt::regex

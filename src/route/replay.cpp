#include "route/replay.hpp"

#include <iomanip>
#include <sstream>

namespace qsmt::route {

std::vector<ReplayedDecision> replay(Router& router,
                                     const std::vector<ReplayStep>& stream) {
  std::vector<ReplayedDecision> decisions;
  decisions.reserve(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const ReplayStep& step = stream[i];
    ReplayedDecision replayed;
    replayed.step = i;
    replayed.decision = router.decide(step.features);
    replayed.outcome = step.outcome;

    const std::string& bucket = replayed.decision.bucket;
    const std::size_t winner = step.outcome.winner;
    if (replayed.decision.action == RouteAction::kRace) {
      if (winner == RecordedOutcome::kNoWinner) {
        for (std::size_t m = 0; m < router.num_members(); ++m) {
          router.record_loss(bucket, m);
        }
      } else {
        router.record_win(bucket, winner, /*was_race=*/true);
      }
    } else {
      replayed.hit = replayed.decision.member == winner;
      if (replayed.hit) {
        router.record_win(bucket, winner, /*was_race=*/false);
      } else {
        // Routed member failed to decide: the service falls back to racing
        // the remaining members, where the recorded winner (if any) wins.
        router.record_fallback(bucket, replayed.decision.member);
        if (winner != RecordedOutcome::kNoWinner) {
          router.record_win(bucket, winner, /*was_race=*/false);
        }
      }
    }
    decisions.push_back(std::move(replayed));
  }
  return decisions;
}

std::string step_line(const ReplayedDecision& decision, const Router& router) {
  auto member_name = [&](std::size_t index) -> std::string {
    if (index < router.num_members()) return router.member_names()[index];
    return "?";
  };

  std::ostringstream out;
  out << '#' << std::setfill('0') << std::setw(2) << decision.step << ' '
      << decision.decision.bucket << ' ';
  if (decision.decision.action == RouteAction::kRace) {
    out << "race("
        << (decision.decision.reason == RaceReason::kExplore
                ? "explore"
                : "low_confidence")
        << ')';
    if (decision.outcome.winner == RecordedOutcome::kNoWinner) {
      out << " winner=none";
    } else {
      out << " winner=" << member_name(decision.outcome.winner);
    }
  } else {
    out << "route member=" << member_name(decision.decision.member);
    if (decision.hit) {
      out << " hit";
    } else if (decision.outcome.winner == RecordedOutcome::kNoWinner) {
      out << " miss winner=none";
    } else {
      out << " miss winner=" << member_name(decision.outcome.winner);
    }
  }
  return out.str();
}

std::string transcript(const std::vector<ReplayedDecision>& decisions,
                       const Router& router) {
  std::string out;
  for (const ReplayedDecision& decision : decisions) {
    out += step_line(decision, router);
    out += '\n';
  }
  return out;
}

}  // namespace qsmt::route

// Replayable routing-decision harness (the ISSUE 9 test archetype).
//
// A recorded workload is a stream of ReplayStep: the job's structural
// features plus the ground-truth per-member outcome (which member's witness
// verified first, or that nobody decided). replay() drives the stream
// through a Router exactly the way SolveService does — decide, dispatch,
// feed the outcome back — and renders each decision as one transcript
// line. Because the router's only nondeterminism knob is the per-bucket
// decision counter (no RNG), the transcript is a pure function of
// (RouterOptions, stream): tests pin it verbatim, so any routing-policy
// change shows up as a readable test diff rather than a silent behaviour
// shift (tests/router_test.cpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "route/features.hpp"
#include "route/router.hpp"

namespace qsmt::route {

/// Ground truth for one recorded job: which portfolio member's witness
/// verified (race order under one worker), or kNoWinner when every member
/// exhausted its attempts undecided.
struct RecordedOutcome {
  static constexpr std::size_t kNoWinner = static_cast<std::size_t>(-1);
  std::size_t winner = kNoWinner;
};

struct ReplayStep {
  JobFeatures features;
  RecordedOutcome outcome;
};

/// What one replayed step did, mirroring the service's dispatch + feedback
/// protocol (see step_line() for the rendering):
///  * kRace decision          -> winner wins the race (losses to siblings),
///                               or every member takes a loss on kNoWinner;
///  * kRoute hitting winner   -> routed member records a win;
///  * kRoute missing winner   -> fallback recorded against the routed
///                               member, then the true winner wins the
///                               fallback race.
struct ReplayedDecision {
  std::size_t step = 0;
  RouteDecision decision;
  RecordedOutcome outcome;
  /// kRoute only: routed member matched the recorded winner.
  bool hit = false;
};

/// Drives the stream through `router` and returns one entry per step.
std::vector<ReplayedDecision> replay(Router& router,
                                     const std::vector<ReplayStep>& stream);

/// One pinned transcript line, e.g.
///   "#04 equality/v6/diag/unit race(low_confidence) winner=sa-fast"
///   "#17 includes/v5/quad/wide route member=sa-fast hit"
///   "#21 reverse/v6/diag/unit route member=pimc-light miss winner=sa-fast"
std::string step_line(const ReplayedDecision& decision, const Router& router);

/// The whole transcript, one step_line per entry, '\n'-terminated.
std::string transcript(const std::vector<ReplayedDecision>& decisions,
                       const Router& router);

}  // namespace qsmt::route

#include "route/features.hpp"

#include <bit>
#include <map>
#include <mutex>
#include <variant>

#include "conformance/registry.hpp"

namespace qsmt::route {
namespace {

GapClass classify_gap(double floor) noexcept {
  if (floor < 0.5) return GapClass::kFractional;
  if (floor < 1.5) return GapClass::kUnit;
  return GapClass::kWide;
}

// Minimum proven gap_floor per op family over the conformance registry's
// positive cases (negative controls document known-by-design defects; their
// floors describe the defect, not the production formulation). Built once:
// all_cases() materializes every exhaustive-spectrum model, which is far too
// heavy to run per job.
const std::map<std::string, GapClass>& gap_table() {
  static const std::map<std::string, GapClass> table = [] {
    std::map<std::string, double> floors;
    for (const auto& kase : conformance::all_cases()) {
      if (!kase.expect_sound || !kase.expect_complete) continue;
      auto [it, inserted] = floors.emplace(kase.op, kase.gap_floor);
      if (!inserted && kase.gap_floor < it->second) it->second = kase.gap_floor;
    }
    std::map<std::string, GapClass> classed;
    for (const auto& [op, floor] : floors) classed.emplace(op, classify_gap(floor));
    return classed;
  }();
  return table;
}

}  // namespace

std::string JobFeatures::bucket_key() const {
  std::string key = op;
  key += "/v";
  key += std::to_string(size_bucket);
  key += '/';
  key += density_class_name(density);
  key += '/';
  key += gap_class_name(gap);
  return key;
}

const char* density_class_name(DensityClass density) noexcept {
  switch (density) {
    case DensityClass::kDiagonal: return "diag";
    case DensityClass::kQuadratic: return "quad";
    case DensityClass::kAncilla: return "ancilla";
  }
  return "diag";
}

const char* gap_class_name(GapClass gap) noexcept {
  switch (gap) {
    case GapClass::kFractional: return "frac";
    case GapClass::kUnit: return "unit";
    case GapClass::kWide: return "wide";
  }
  return "unit";
}

std::size_t size_bucket_of(std::size_t num_variables) noexcept {
  return std::bit_width(num_variables);
}

DensityClass density_class_of(const strqubo::Constraint& constraint) {
  return std::visit(
      [](const auto& c) -> DensityClass {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, strqubo::Includes> ||
                      std::is_same_v<T, strqubo::Palindrome>) {
          // Position one-hots / mirrored-bit XNOR gadgets: quadratic
          // couplings dominate the model.
          return DensityClass::kQuadratic;
        } else if constexpr (std::is_same_v<T, strqubo::RegexMatch>) {
          // Character classes compile to quadratic disjunction gadgets;
          // literal-only patterns stay diagonal like Equality.
          return c.pattern.find('[') != std::string::npos
                     ? DensityClass::kQuadratic
                     : DensityClass::kDiagonal;
        } else if constexpr (std::is_same_v<T, strqubo::NotContains> ||
                             std::is_same_v<T, strqubo::BoundedLength>) {
          // The only formulations that allocate auxiliary variables beyond
          // the 7n string bits (quadratized windows / length selectors).
          return DensityClass::kAncilla;
        } else {
          return DensityClass::kDiagonal;
        }
      },
      constraint);
}

GapClass gap_class_of(const std::string& op) {
  const auto& table = gap_table();
  auto it = table.find(op);
  return it == table.end() ? GapClass::kUnit : it->second;
}

JobFeatures extract_features(const strqubo::Constraint& constraint) {
  JobFeatures features;
  features.op = strqubo::constraint_name(constraint);
  features.num_variables = strqubo::constraint_num_variables(constraint);
  features.size_bucket = size_bucket_of(features.num_variables);
  features.density = density_class_of(constraint);
  features.gap = gap_class_of(features.op);
  return features;
}

}  // namespace qsmt::route

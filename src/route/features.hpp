// Structural job features for adaptive portfolio routing.
//
// The router (route/router.hpp) never inspects a QUBO matrix or runs a
// sampler to pick a lane: every feature here is O(constraint) to extract —
// the op family, the variable count the builder will allocate, a density
// class derived from which penalty machinery the formulation uses, and a
// spectrum-gap class looked up from the conformance kit's proven per-op gap
// floors (src/conformance/registry.cpp). Features fold into a small string
// bucket key; the router keeps one win/loss table row per bucket, so jobs
// that look alike share dispatch history (Bian et al., arXiv 1811.02524:
// spend reads on the sampler history says wins this shape).
#pragma once

#include <cstddef>
#include <string>

#include "strqubo/constraint.hpp"

namespace qsmt::route {

/// Which penalty machinery the formulation uses — the structural axis that
/// separates "annealer-easy" diagonal models from gadget-heavy ones.
enum class DensityClass {
  kDiagonal,   ///< Diagonal-only bias models (§4.1-§4.3, §4.5-§4.9, literals).
  kQuadratic,  ///< Quadratic penalty gadgets (includes, palindrome, classes).
  kAncilla,    ///< Auxiliary variables beyond the string bits (quadratized
               ///< not-contains windows, bounded-length selectors).
};

/// Coarse class of the conformance-proven spectrum gap between the ground
/// band and the best classically-violating object for this op family.
enum class GapClass {
  kFractional,  ///< Gap floor below A/2 (soft-biased encodings, §4.11 classes).
  kUnit,        ///< Gap floor about A (most generating formulations).
  kWide,        ///< Gap floor 2A or better (strong-multiplier windows).
};

/// Cheap structural description of one constraint job. Everything the
/// router keys on; extraction never builds the model.
struct JobFeatures {
  /// Op family as reported by strqubo::constraint_name ("equality", ...).
  std::string op;
  /// QUBO variables the builder will allocate (constraint_num_variables).
  std::size_t num_variables = 0;
  /// Log2 bucket of num_variables (size_bucket_of), so one table row covers
  /// a band of similar model sizes instead of one row per exact size.
  std::size_t size_bucket = 0;
  DensityClass density = DensityClass::kDiagonal;
  GapClass gap = GapClass::kUnit;

  /// The routing-table key: "op/v<size_bucket>/<density>/<gap>". Two jobs
  /// with equal keys share dispatch history.
  std::string bucket_key() const;
};

const char* density_class_name(DensityClass density) noexcept;
const char* gap_class_name(GapClass gap) noexcept;

/// Log2 size bucketing: 0 for an empty model, otherwise bit_width(n).
std::size_t size_bucket_of(std::size_t num_variables) noexcept;

/// Density class from the constraint's structure alone (no build): which
/// alternative it is, plus — for regex — whether the pattern uses classes.
DensityClass density_class_of(const strqubo::Constraint& constraint);

/// Spectrum-gap class for an op family: the minimum proven gap_floor over
/// the conformance registry's cases for that op (computed once per process;
/// ops without a registry case default to kUnit).
GapClass gap_class_of(const std::string& op);

/// Full feature extraction for one constraint job.
JobFeatures extract_features(const strqubo::Constraint& constraint);

}  // namespace qsmt::route

#include "route/router.hpp"

#include <sstream>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace qsmt::route {
namespace {

void bump(const char* name) {
  if (telemetry::enabled()) telemetry::counter(name).add();
}

}  // namespace

Router::Router(std::vector<std::string> member_names, RouterOptions options)
    : member_names_(std::move(member_names)), options_(options) {}

bool Router::confident_best(const Bucket& bucket, std::size_t* best) const {
  std::uint64_t observations = 0;
  double best_rate = -1.0;
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < bucket.members.size(); ++i) {
    const MemberCell& cell = bucket.members[i];
    const std::uint64_t seen = cell.wins + cell.losses;
    observations += seen;
    // Win RATE, not win count: fallback losses recorded against a routed
    // member erode its rate, so a member that stops winning a bucket loses
    // its routing claim there instead of coasting on stale wins. Strict >
    // keeps ties at the lowest index — deterministic, and the same order a
    // single-worker race tries members in.
    const double rate =
        seen == 0 ? 0.0
                  : static_cast<double>(cell.wins) / static_cast<double>(seen);
    if (rate > best_rate) {
      best_rate = rate;
      best_index = i;
    }
  }
  if (observations < options_.min_observations) return false;
  if (best_rate < options_.min_win_rate) return false;
  *best = best_index;
  return true;
}

RouteDecision Router::decide(const JobFeatures& features) {
  RouteDecision decision;
  decision.bucket = features.bucket_key();

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.decisions;
  bump("route.decisions");

  auto it = buckets_.find(decision.bucket);
  if (it == buckets_.end()) {
    if (options_.max_buckets != 0 && buckets_.size() >= options_.max_buckets) {
      // Table full: novel shapes race (and stay untrained) rather than
      // evicting a learned bucket.
      ++stats_.races_low_confidence;
      bump("route.race.low_confidence");
      return decision;
    }
    it = buckets_.emplace(decision.bucket, Bucket{}).first;
    it->second.members.resize(member_names_.size());
    stats_.buckets = buckets_.size();
  }
  Bucket& bucket = it->second;
  const std::uint64_t ordinal = bucket.decisions++;

  std::size_t best = 0;
  if (!confident_best(bucket, &best)) {
    ++stats_.races_low_confidence;
    bump("route.race.low_confidence");
    return decision;
  }
  if (options_.explore_period != 0 && ordinal % options_.explore_period == 0) {
    decision.reason = RaceReason::kExplore;
    ++stats_.races_explore;
    bump("route.race.explore");
    return decision;
  }
  decision.action = RouteAction::kRoute;
  decision.reason = RaceReason::kNone;
  decision.member = best;
  ++stats_.routed;
  bump("route.routed");
  return decision;
}

void Router::record_win(const std::string& bucket_key, std::size_t member,
                        bool was_race) {
  if (member >= member_names_.size()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(bucket_key);
  if (it == buckets_.end()) return;
  Bucket& bucket = it->second;
  ++bucket.members[member].wins;
  ++stats_.wins_recorded;
  bump("route.record.wins");
  if (was_race) {
    // The win proves every sibling lost this race; routed dispatches ran
    // nobody else, so there is nothing to debit.
    for (std::size_t i = 0; i < bucket.members.size(); ++i) {
      if (i == member) continue;
      ++bucket.members[i].losses;
      ++stats_.losses_recorded;
      bump("route.record.losses");
    }
  }
}

void Router::record_loss(const std::string& bucket_key, std::size_t member) {
  if (member >= member_names_.size()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(bucket_key);
  if (it == buckets_.end()) return;
  ++it->second.members[member].losses;
  ++stats_.losses_recorded;
  bump("route.record.losses");
}

void Router::record_fallback(const std::string& bucket_key,
                             std::size_t member) {
  if (member >= member_names_.size()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.fallbacks;
  bump("route.fallbacks");
  auto it = buckets_.find(bucket_key);
  if (it == buckets_.end()) return;
  ++it->second.members[member].losses;
  ++stats_.losses_recorded;
  bump("route.record.losses");
}

RouterStats Router::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<BucketRecord> Router::table() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BucketRecord> records;
  records.reserve(buckets_.size());
  for (const auto& [key, bucket] : buckets_) {
    BucketRecord record;
    record.bucket = key;
    record.decisions = bucket.decisions;
    record.members.reserve(bucket.members.size());
    for (std::size_t i = 0; i < bucket.members.size(); ++i) {
      record.members.push_back(MemberRecord{member_names_[i],
                                            bucket.members[i].wins,
                                            bucket.members[i].losses});
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::string Router::save_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "qsmt-router-snapshot v1\n";
  for (const auto& [key, bucket] : buckets_) {
    out << "bucket " << key << ' ' << bucket.decisions << '\n';
    for (std::size_t i = 0; i < bucket.members.size(); ++i) {
      const MemberCell& cell = bucket.members[i];
      if (cell.wins == 0 && cell.losses == 0) continue;
      out << "member " << member_names_[i] << ' ' << cell.wins << ' '
          << cell.losses << '\n';
    }
  }
  return out.str();
}

bool Router::load_snapshot(const std::string& snapshot) {
  std::istringstream in(snapshot);
  std::string line;
  if (!std::getline(in, line) || line != "qsmt-router-snapshot v1") {
    return false;
  }

  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < member_names_.size(); ++i) {
    index_of.emplace(member_names_[i], i);
  }

  std::map<std::string, Bucket> loaded;
  Bucket* current = nullptr;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "bucket") {
      std::string key;
      std::uint64_t decisions = 0;
      if (!(fields >> key >> decisions)) return false;
      Bucket bucket;
      bucket.decisions = decisions;
      bucket.members.resize(member_names_.size());
      current = &loaded.emplace(std::move(key), std::move(bucket))
                     .first->second;
    } else if (kind == "member") {
      std::string name;
      std::uint64_t wins = 0;
      std::uint64_t losses = 0;
      if (current == nullptr || !(fields >> name >> wins >> losses)) {
        return false;
      }
      auto it = index_of.find(name);
      if (it == index_of.end()) continue;  // renamed/removed member
      current->members[it->second].wins = wins;
      current->members[it->second].losses = losses;
    } else {
      return false;
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  buckets_ = std::move(loaded);
  stats_.buckets = buckets_.size();
  return true;
}

}  // namespace qsmt::route

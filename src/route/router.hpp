// Adaptive portfolio router: the win/loss table that converts "race every
// member on every job" into "dispatch the member history says wins here."
//
// The service consults decide() before enqueueing a job's member tasks.
// Each decision lands in one of three lanes:
//
//   kRoute — one bucket (features.hpp) has enough observations and a clear
//            enough winner; only that member runs. Seeds are preserved, so
//            a routed run of member M is bit-identical to M's leg of the
//            full race.
//   kRace (low_confidence) — the bucket is unseen or contested; every
//            member races exactly as before and the outcome trains the
//            table.
//   kRace (explore) — even in confident buckets, every explore_period-th
//            decision races deliberately so the table never goes stale
//            when the workload (or a member's implementation) shifts. The
//            explore trigger is a per-bucket decision counter, NOT a RNG —
//            replaying a recorded decision stream (replay.hpp) reproduces
//            the dispatch sequence exactly.
//
// Outcomes feed back through record_win / record_loss / record_fallback;
// every mutation also bumps a route.* telemetry counter (docs/telemetry.md)
// and a deterministic RouterStats mirror. The table serializes to a
// name-keyed text snapshot (save_snapshot / load_snapshot) so learned
// dispatch survives restarts and portfolio reordering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "route/features.hpp"

namespace qsmt::route {

struct RouterOptions {
  /// Win/loss outcomes (summed across members) a bucket must accumulate
  /// before routing can engage there — one full race of an N-member
  /// portfolio records N outcomes.
  std::size_t min_observations = 3;
  /// Minimum win rate (wins / (wins + losses)) the bucket's best member
  /// must hold to be routed to. Fallback losses push a failing member back
  /// under this bar, reopening the race.
  double min_win_rate = 0.55;
  /// In confident buckets, every explore_period-th decision still races
  /// (deterministic per-bucket counter). 0 disables exploration.
  std::size_t explore_period = 16;
  /// Bucket-table size cap; decide() answers kRace for novel buckets past
  /// it (existing buckets keep learning). 0 means unbounded.
  std::size_t max_buckets = 4096;
};

enum class RouteAction {
  kRoute,  ///< Dispatch only `member`.
  kRace,   ///< Race the full portfolio.
};

/// Why a kRace decision raced (kRoute decisions carry kNone).
enum class RaceReason {
  kNone,
  kLowConfidence,  ///< Bucket unseen, under-observed, or contested.
  kExplore,        ///< Confident bucket, periodic deliberate race.
};

struct RouteDecision {
  RouteAction action = RouteAction::kRace;
  RaceReason reason = RaceReason::kLowConfidence;
  /// Portfolio index to dispatch when action == kRoute.
  std::size_t member = 0;
  /// The bucket this decision consulted (feedback goes back to it).
  std::string bucket;
};

/// Deterministic mirror of the route.* telemetry counters, readable even
/// with QSMT_TELEMETRY=off.
struct RouterStats {
  std::uint64_t decisions = 0;
  std::uint64_t routed = 0;
  std::uint64_t races_low_confidence = 0;
  std::uint64_t races_explore = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t wins_recorded = 0;
  std::uint64_t losses_recorded = 0;
  std::uint64_t buckets = 0;
};

/// One member's ledger inside a bucket (snapshot / introspection view).
struct MemberRecord {
  std::string name;
  std::uint64_t wins = 0;
  std::uint64_t losses = 0;
};

/// One bucket's ledger (introspection view; see Router::table()).
struct BucketRecord {
  std::string bucket;
  std::uint64_t decisions = 0;
  std::vector<MemberRecord> members;
};

class Router {
 public:
  /// `member_names` fixes the portfolio this router learns over, in
  /// portfolio index order (service::portfolio_names). Decisions return
  /// indices into this list; snapshots are keyed by name so a reordered
  /// portfolio re-maps cleanly on load.
  Router(std::vector<std::string> member_names, RouterOptions options = {});

  std::size_t num_members() const noexcept { return member_names_.size(); }
  const std::vector<std::string>& member_names() const noexcept {
    return member_names_;
  }
  const RouterOptions& options() const noexcept { return options_; }

  /// The dispatch decision for one job. Mutates the bucket's decision
  /// counter (that is what makes explore deterministic), so two decide()
  /// calls on the same features may answer differently — by design.
  RouteDecision decide(const JobFeatures& features);

  /// Member `member` produced the verified winning witness for a job in
  /// `bucket`; every other racing member (all of them for a race, none for
  /// a routed dispatch) is recorded as a loss.
  void record_win(const std::string& bucket, std::size_t member,
                  bool was_race);

  /// Member `member` lost (raced and was beaten, errored out, or exhausted
  /// its attempts) in `bucket`.
  void record_loss(const std::string& bucket, std::size_t member);

  /// A routed dispatch of `member` failed to decide its job and the
  /// service fell back to racing the remaining members. Counts as a loss
  /// for `member` plus a fallback, so a member that starts failing a
  /// bucket loses its routing claim there.
  void record_fallback(const std::string& bucket, std::size_t member);

  RouterStats stats() const;

  /// Full table contents, bucket-sorted (tests, debugging, snapshots).
  std::vector<BucketRecord> table() const;

  /// Serializes the ledger to a line-oriented text snapshot:
  ///   qsmt-router-snapshot v1
  ///   bucket <key> <decisions>
  ///   member <name> <wins> <losses>
  /// Member lines attach to the preceding bucket line.
  std::string save_snapshot() const;

  /// Replaces the ledger from save_snapshot() output. Member lines naming
  /// members absent from this router's portfolio are dropped (that is the
  /// reordering/renaming story). Returns false (ledger untouched) on a
  /// malformed snapshot.
  bool load_snapshot(const std::string& snapshot);

 private:
  struct MemberCell {
    std::uint64_t wins = 0;
    std::uint64_t losses = 0;
  };
  struct Bucket {
    std::uint64_t decisions = 0;
    std::vector<MemberCell> members;
  };

  // Bucket's best member by win share; answers routing only when the
  // confidence gates pass. Caller holds mutex_.
  bool confident_best(const Bucket& bucket, std::size_t* best) const;

  const std::vector<std::string> member_names_;
  const RouterOptions options_;

  mutable std::mutex mutex_;
  std::map<std::string, Bucket> buckets_;
  RouterStats stats_;
};

}  // namespace qsmt::route

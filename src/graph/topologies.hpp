// Additional annealer hardware topologies beyond Chimera.
//
// Real annealing accelerators differ in connectivity: D-Wave machines use
// Chimera/Pegasus minors, CMOS/digital annealers (Hitachi, Fujitsu-style)
// use king-graph lattices, and idealised studies use complete or grid
// couplings. The embedding benches sweep these to show how topology
// richness trades against chain length.
#pragma once

#include "graph/graph.hpp"

namespace qsmt::graph {

/// rows x cols lattice with horizontal/vertical couplers only (finalized).
Graph make_grid(std::size_t rows, std::size_t cols);

/// rows x cols lattice with king's-move couplers (grid plus diagonals) — the
/// topology of CMOS-annealer-style accelerators (finalized).
Graph make_king(std::size_t rows, std::size_t cols);

/// Complete graph K_n (ideal all-to-all coupling; finalized).
Graph make_complete(std::size_t n);

/// Complete bipartite graph K_{a,b} (one Chimera unit cell generalised;
/// finalized).
Graph make_complete_bipartite(std::size_t a, std::size_t b);

}  // namespace qsmt::graph

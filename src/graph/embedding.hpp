// Greedy minor-embedding of a logical problem graph into a hardware graph.
//
// Real annealers only provide couplers along their topology's edges, so a
// dense logical QUBO must be minor-embedded: each logical variable becomes a
// connected *chain* of physical qubits, with chains of adjacent logical
// variables touching along at least one hardware edge. This implements a
// simplified minorminer-style heuristic: logical variables are placed in
// descending-degree order; each new variable roots its chain at the free
// qubit minimising the summed BFS distance to all already-placed neighbour
// chains, then absorbs the connecting shortest paths.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "qubo/qubo_model.hpp"

namespace qsmt::graph {

/// chains[v] lists the physical qubits representing logical variable v.
struct Embedding {
  std::vector<std::vector<std::uint32_t>> chains;

  std::size_t num_logical() const noexcept { return chains.size(); }
  std::size_t total_physical() const;
  std::size_t max_chain_length() const;

  /// Checks the embedding is valid for `logical` on `target`: chains are
  /// nonempty, disjoint, connected in `target`, and every logical edge has
  /// at least one physical edge between the two chains.
  bool is_valid(const Graph& logical, const Graph& target) const;
};

/// Problem graph of a QUBO: one node per variable, one edge per nonzero
/// quadratic term (finalized).
Graph logical_graph(const qubo::QuboModel& model);

/// Attempts the embedding; returns std::nullopt when the heuristic fails
/// (e.g. the hardware graph is too small). `num_attempts` restarts with
/// different tie-breaking orders; the best (fewest total qubits) result wins.
std::optional<Embedding> find_embedding(const Graph& logical,
                                        const Graph& target,
                                        std::uint64_t seed = 0,
                                        std::size_t num_attempts = 4);

}  // namespace qsmt::graph

#include "graph/graph.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace qsmt::graph {

void Graph::add_edge(std::size_t u, std::size_t v) {
  require(u != v, "Graph::add_edge: self loops not allowed");
  require(!finalized_, "Graph::add_edge: graph already finalized");
  if (u > v) std::swap(u, v);
  num_nodes_ = std::max(num_nodes_, v + 1);
  edges_.emplace_back(static_cast<std::uint32_t>(u),
                      static_cast<std::uint32_t>(v));
}

void Graph::finalize() {
  require(!finalized_, "Graph::finalize: already finalized");
  std::sort(edges_.begin(), edges_.end());
  const auto dup = std::adjacent_find(edges_.begin(), edges_.end());
  require(dup == edges_.end(), "Graph::finalize: duplicate edge");

  std::vector<std::size_t> degree(num_nodes_, 0);
  for (const auto& [u, v] : edges_) {
    ++degree[u];
    ++degree[v];
  }
  row_start_.assign(num_nodes_ + 1, 0);
  for (std::size_t i = 0; i < num_nodes_; ++i)
    row_start_[i + 1] = row_start_[i] + degree[i];
  adjacency_.resize(row_start_[num_nodes_]);
  std::vector<std::size_t> cursor(row_start_.begin(), row_start_.end() - 1);
  for (const auto& [u, v] : edges_) {
    adjacency_[cursor[u]++] = v;
    adjacency_[cursor[v]++] = u;
  }
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(row_start_[i]),
              adjacency_.begin() + static_cast<std::ptrdiff_t>(row_start_[i + 1]));
  }
  finalized_ = true;
}

std::span<const std::uint32_t> Graph::neighbors(std::size_t u) const {
  require(finalized_, "Graph::neighbors: call finalize() first");
  require_in_range(u < num_nodes_, "Graph::neighbors: node out of range");
  return {adjacency_.data() + row_start_[u], row_start_[u + 1] - row_start_[u]};
}

bool Graph::has_edge(std::size_t u, std::size_t v) const {
  require(finalized_, "Graph::has_edge: call finalize() first");
  if (u >= num_nodes_ || v >= num_nodes_ || u == v) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), static_cast<std::uint32_t>(v));
}

std::size_t Graph::degree(std::size_t u) const {
  require(finalized_, "Graph::degree: call finalize() first");
  require_in_range(u < num_nodes_, "Graph::degree: node out of range");
  return row_start_[u + 1] - row_start_[u];
}

}  // namespace qsmt::graph

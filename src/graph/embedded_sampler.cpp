#include "graph/embedded_sampler.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace qsmt::graph {

EmbeddedSampler::EmbeddedSampler(const Graph& target,
                                 EmbeddedSamplerParams params)
    : target_(target),
      params_(std::move(params)),
      cache_(params_.embedding_cache
                 ? params_.embedding_cache
                 : std::make_shared<EmbeddingCache>()) {
  require(target_.finalized(), "EmbeddedSampler: target graph not finalized");
}

qubo::QuboModel EmbeddedSampler::embed_model(const qubo::QuboModel& logical,
                                             const Embedding& embedding,
                                             double chain_strength) const {
  qubo::QuboModel physical(target_.num_nodes());

  // Chain ownership lookup.
  std::vector<std::int64_t> owner(target_.num_nodes(), -1);
  for (std::size_t v = 0; v < embedding.chains.size(); ++v) {
    for (std::uint32_t q : embedding.chains[v])
      owner[q] = static_cast<std::int64_t>(v);
  }

  // Linear terms: split equally across the chain.
  for (std::size_t v = 0; v < logical.num_variables(); ++v) {
    const double lin = logical.linear_terms()[v];
    if (lin == 0.0) continue;
    const auto& chain = embedding.chains[v];
    for (std::uint32_t q : chain)
      physical.add_linear(q, lin / static_cast<double>(chain.size()));
  }

  // Quadratic terms: split equally across available physical couplers.
  for (const auto& [key, value] : logical.quadratic_terms()) {
    if (value == 0.0) continue;
    const auto a = static_cast<std::size_t>(key >> 32);
    const auto b = static_cast<std::size_t>(key & 0xffffffffULL);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> couplers;
    for (std::uint32_t q : embedding.chains[a]) {
      for (std::uint32_t w : target_.neighbors(q)) {
        if (owner[w] == static_cast<std::int64_t>(b)) couplers.emplace_back(q, w);
      }
    }
    require(!couplers.empty(),
            "embed_model: logical edge has no physical coupler");
    for (const auto& [q, w] : couplers) {
      physical.add_quadratic(q, w,
                             value / static_cast<double>(couplers.size()));
    }
  }

  // Intra-chain ferromagnetic couplings: equality gadget on every hardware
  // edge internal to a chain (disagreement costs chain_strength per edge).
  for (const auto& chain : embedding.chains) {
    for (std::uint32_t q : chain) {
      for (std::uint32_t w : target_.neighbors(q)) {
        if (w <= q || owner[w] != owner[q]) continue;
        physical.add_linear(q, chain_strength);
        physical.add_linear(w, chain_strength);
        physical.add_quadratic(q, w, -2.0 * chain_strength);
      }
    }
  }
  return physical;
}

anneal::SampleSet EmbeddedSampler::sample(const qubo::QuboModel& model) const {
  EmbeddedSampleStats stats;
  return sample_with_stats(model, stats);
}

std::size_t EmbeddedSampler::embedding_cache_hits() const {
  return cache_->hits();
}

anneal::SampleSet EmbeddedSampler::sample_with_stats(
    const qubo::QuboModel& model, EmbeddedSampleStats& stats) const {
  telemetry::Span span("graph.embedded_sample");
  span.arg("num_variables", static_cast<double>(model.num_variables()));
  const bool telemetry_on = telemetry::enabled();
  const Graph logical = logical_graph(model);

  // The cache emits embed.cache.hits/.misses itself; a hit skips
  // find_embedding entirely, which is the whole point for the redundant
  // structure of string QUBOs.
  std::optional<Embedding> embedding = cache_->lookup(logical);
  if (!embedding) {
    telemetry::Span find_span("graph.find_embedding");
    embedding = find_embedding(logical, target_, params_.embedding_seed,
                               params_.embedding_attempts);
    find_span.close();
    if (embedding) cache_->insert(logical, *embedding);
  }
  if (!embedding) {
    throw std::runtime_error(
        "EmbeddedSampler: could not embed model onto target topology");
  }

  if (telemetry_on) {
    static const auto chain_length = telemetry::histogram(
        "graph.chain_length", telemetry::Unit::kCount);
    for (const auto& chain : embedding->chains) {
      chain_length.record(static_cast<double>(chain.size()));
    }
  }

  const double chain_strength = params_.chain_strength.value_or(
      1.5 * std::max(model.max_abs_coefficient(), 1.0));
  telemetry::Span embed_span("graph.embed_model");
  const qubo::QuboModel physical =
      embed_model(model, *embedding, chain_strength);
  embed_span.close();
  if (telemetry_on) {
    telemetry::gauge("graph.chain_strength").set(chain_strength);
    telemetry::gauge("graph.physical_variables")
        .set(static_cast<double>(embedding->total_physical()));
  }

  const anneal::SimulatedAnnealer inner(params_.anneal);
  const anneal::SampleSet physical_samples = inner.sample(physical);

  telemetry::Span unembed_span("graph.unembed");
  anneal::SampleSet logical_samples;
  std::size_t broken_chains = 0;
  std::size_t chain_checks = 0;
  std::size_t discarded = 0;

  for (const auto& phys : physical_samples) {
    std::vector<std::uint8_t> bits(model.num_variables(), 0);
    bool any_broken = false;
    for (std::size_t v = 0; v < model.num_variables(); ++v) {
      const auto& chain = embedding->chains[v];
      std::size_t ones = 0;
      for (std::uint32_t q : chain) ones += phys.bits[q];
      chain_checks += phys.num_occurrences;
      if (ones != 0 && ones != chain.size()) {
        broken_chains += phys.num_occurrences;
        any_broken = true;
      }
      bits[v] = (2 * ones > chain.size()) ? 1 : 0;  // Majority, ties -> 0.
    }
    if (any_broken &&
        params_.chain_break_resolution == ChainBreakResolution::kDiscard) {
      discarded += phys.num_occurrences;
      continue;
    }
    const double energy = model.energy(bits);
    logical_samples.add(std::move(bits), energy, phys.num_occurrences);
  }
  logical_samples.aggregate();
  unembed_span.close();
  if (telemetry_on) {
    telemetry::counter("graph.chain_checks")
        .add(static_cast<std::uint64_t>(chain_checks));
    telemetry::counter("graph.chain_breaks")
        .add(static_cast<std::uint64_t>(broken_chains));
    telemetry::counter("graph.discarded_samples")
        .add(static_cast<std::uint64_t>(discarded));
    if (chain_checks != 0) {
      telemetry::histogram("graph.chain_break_rate", telemetry::Unit::kRatio)
          .record(static_cast<double>(broken_chains) /
                  static_cast<double>(chain_checks));
    }
  }

  stats.embedding = std::move(*embedding);
  stats.chain_break_fraction =
      chain_checks == 0 ? 0.0
                        : static_cast<double>(broken_chains) /
                              static_cast<double>(chain_checks);
  stats.discarded_samples = discarded;
  stats.physical_variables = stats.embedding.total_physical();
  return logical_samples;
}

}  // namespace qsmt::graph

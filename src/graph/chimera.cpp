#include "graph/chimera.hpp"

#include "util/require.hpp"

namespace qsmt::graph {

std::size_t chimera_to_linear(const ChimeraCoord& coord, std::size_t cols,
                              std::size_t shore) {
  return ((coord.row * cols) + coord.col) * 2 * shore + coord.side * shore +
         coord.offset;
}

ChimeraCoord chimera_from_linear(std::size_t id, std::size_t cols,
                                 std::size_t shore) {
  const std::size_t cell = id / (2 * shore);
  const std::size_t within = id % (2 * shore);
  return ChimeraCoord{cell / cols, cell % cols, within / shore,
                      within % shore};
}

Graph make_chimera(std::size_t rows, std::size_t cols, std::size_t shore) {
  require(rows >= 1 && cols >= 1 && shore >= 1,
          "make_chimera: all dimensions must be positive");
  Graph g(rows * cols * 2 * shore);
  auto id = [&](std::size_t r, std::size_t c, std::size_t side,
                std::size_t k) {
    return chimera_to_linear(ChimeraCoord{r, c, side, k}, cols, shore);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      // Intra-cell K_{t,t}.
      for (std::size_t a = 0; a < shore; ++a) {
        for (std::size_t b = 0; b < shore; ++b) {
          g.add_edge(id(r, c, 0, a), id(r, c, 1, b));
        }
      }
      // Vertical-side qubits couple down the column.
      if (r + 1 < rows) {
        for (std::size_t k = 0; k < shore; ++k) {
          g.add_edge(id(r, c, 0, k), id(r + 1, c, 0, k));
        }
      }
      // Horizontal-side qubits couple along the row.
      if (c + 1 < cols) {
        for (std::size_t k = 0; k < shore; ++k) {
          g.add_edge(id(r, c, 1, k), id(r, c + 1, 1, k));
        }
      }
    }
  }
  g.finalize();
  return g;
}

}  // namespace qsmt::graph

// Minimal undirected graph used to describe annealer hardware topologies.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace qsmt::graph {

/// Undirected simple graph with contiguous 0..n-1 node ids and CSR-style
/// adjacency built lazily on finalize().
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_nodes) : num_nodes_(num_nodes) {}

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Adds an undirected edge (u, v); self-loops and duplicates are rejected
  /// with std::invalid_argument. Grows the node count if needed.
  void add_edge(std::size_t u, std::size_t v);

  /// Must be called after the last add_edge and before neighbor queries.
  void finalize();

  bool finalized() const noexcept { return finalized_; }

  /// Neighbors of `u` in ascending order. Requires finalize().
  std::span<const std::uint32_t> neighbors(std::size_t u) const;

  /// True when (u, v) is an edge. Requires finalize(). O(log degree).
  bool has_edge(std::size_t u, std::size_t v) const;

  /// All edges as (u, v) pairs with u < v.
  std::span<const std::pair<std::uint32_t, std::uint32_t>> edges()
      const noexcept {
    return edges_;
  }

  std::size_t degree(std::size_t u) const;

 private:
  std::size_t num_nodes_ = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
  std::vector<std::size_t> row_start_;
  std::vector<std::uint32_t> adjacency_;
  bool finalized_ = false;
};

}  // namespace qsmt::graph

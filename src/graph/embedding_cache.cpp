#include "graph/embedding_cache.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace qsmt::graph {

std::uint64_t structure_hash(const Graph& graph) {
  require(graph.finalized(), "structure_hash: graph must be finalized");
  // splitmix64 as the per-word mixer — the same finalizer the RNG seeding
  // uses, strong enough that collisions are handled (verified edge lists),
  // not feared.
  std::uint64_t h = mix_seed(0x9e3779b97f4a7c15ULL, graph.num_nodes());
  for (const auto& [u, v] : graph.edges()) {
    h = mix_seed(h, (static_cast<std::uint64_t>(u) << 32) | v);
  }
  return h;
}

EmbeddingCache::EmbeddingCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

bool EmbeddingCache::matches(const Entry& entry, const Graph& logical) const {
  return entry.num_nodes == logical.num_nodes() &&
         std::equal(entry.edges.begin(), entry.edges.end(),
                    logical.edges().begin(), logical.edges().end());
}

std::optional<Embedding> EmbeddingCache::lookup(const Graph& logical) {
  const std::uint64_t hash = structure_hash(logical);
  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, end] = index_.equal_range(hash);
  for (; it != end; ++it) {
    if (!matches(*it->second, logical)) continue;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    if (telemetry::enabled()) telemetry::counter("embed.cache.hits").add();
    return lru_.front().embedding;
  }
  ++misses_;
  if (telemetry::enabled()) telemetry::counter("embed.cache.misses").add();
  return std::nullopt;
}

void EmbeddingCache::insert(const Graph& logical, const Embedding& embedding) {
  const std::uint64_t hash = structure_hash(logical);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto [it, end] = index_.equal_range(hash); it != end; ++it) {
    if (matches(*it->second, logical)) return;  // Racing inserts: keep first.
  }
  Entry entry;
  entry.hash = hash;
  entry.num_nodes = logical.num_nodes();
  entry.edges.assign(logical.edges().begin(), logical.edges().end());
  entry.embedding = embedding;
  entry.bytes = entry.edges.size() * sizeof(entry.edges.front());
  for (const auto& chain : embedding.chains) {
    entry.bytes += chain.size() * sizeof(std::uint32_t) + sizeof(chain);
  }
  entry.bytes += 64;  // list/map node overhead.
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_.emplace(hash, lru_.begin());
  if (lru_.size() > capacity_) {
    const auto victim = std::prev(lru_.end());
    for (auto [it, end] = index_.equal_range(victim->hash); it != end; ++it) {
      if (it->second == victim) {
        index_.erase(it);
        break;
      }
    }
    bytes_ -= victim->bytes;
    lru_.pop_back();
    ++evictions_;
    if (telemetry::enabled()) {
      telemetry::counter("embed.cache.evictions").add();
    }
  }
  publish_occupancy_locked();
}

void EmbeddingCache::publish_occupancy_locked() {
  if (telemetry::enabled()) {
    telemetry::gauge("embed.cache.size").set(static_cast<double>(lru_.size()));
    telemetry::gauge("embed.cache.entries")
        .set(static_cast<double>(lru_.size()));
    telemetry::gauge("embed.cache.bytes", telemetry::Unit::kBytes)
        .set(static_cast<double>(bytes_));
  }
}

std::size_t EmbeddingCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t EmbeddingCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t EmbeddingCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::size_t EmbeddingCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::size_t EmbeddingCache::bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

}  // namespace qsmt::graph

#include "graph/embedding.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace qsmt::graph {

std::size_t Embedding::total_physical() const {
  std::size_t total = 0;
  for (const auto& chain : chains) total += chain.size();
  return total;
}

std::size_t Embedding::max_chain_length() const {
  std::size_t best = 0;
  for (const auto& chain : chains) best = std::max(best, chain.size());
  return best;
}

bool Embedding::is_valid(const Graph& logical, const Graph& target) const {
  if (chains.size() < logical.num_nodes()) return false;
  const std::size_t nt = target.num_nodes();
  std::vector<std::int64_t> owner(nt, -1);
  for (std::size_t v = 0; v < chains.size(); ++v) {
    if (chains[v].empty()) return false;
    for (std::uint32_t q : chains[v]) {
      if (q >= nt || owner[q] != -1) return false;
      owner[q] = static_cast<std::int64_t>(v);
    }
  }
  // Chain connectivity via BFS inside each chain. One epoch-stamped `seen`
  // buffer serves every chain (no per-chain allocation or clear), and the
  // owner array doubles as the O(1) chain-membership test.
  std::vector<std::uint32_t> seen(nt, 0);
  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> frontier;
  for (std::size_t v = 0; v < chains.size(); ++v) {
    const auto& chain = chains[v];
    ++epoch;
    frontier.assign(1, chain.front());
    seen[chain.front()] = epoch;
    std::size_t visited = 1;
    while (!frontier.empty()) {
      const std::uint32_t u = frontier.back();
      frontier.pop_back();
      for (std::uint32_t w : target.neighbors(u)) {
        if (seen[w] == epoch) continue;
        if (owner[w] != static_cast<std::int64_t>(v)) continue;
        seen[w] = epoch;
        ++visited;
        frontier.push_back(w);
      }
    }
    if (visited != chain.size()) return false;
  }
  // Every logical edge needs a physical edge between the chains.
  for (const auto& [a, b] : logical.edges()) {
    bool connected = false;
    for (std::uint32_t q : chains[a]) {
      for (std::uint32_t w : target.neighbors(q)) {
        if (owner[w] == static_cast<std::int64_t>(b)) {
          connected = true;
          break;
        }
      }
      if (connected) break;
    }
    if (!connected) return false;
  }
  return true;
}

Graph logical_graph(const qubo::QuboModel& model) {
  Graph g(model.num_variables());
  for (const auto& [key, value] : model.quadratic_terms()) {
    if (value == 0.0) continue;
    g.add_edge(key >> 32, key & 0xffffffffULL);
  }
  g.finalize();
  return g;
}

namespace {

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

// Epoch-stamped BFS field: dist/parent entries are meaningful only where
// stamp[q] == epoch, so starting a fresh BFS is a counter bump instead of two
// O(V) buffer reassignments (which dominated embed_once on large hardware
// graphs). One field per placed logical neighbour, reused across variables
// and — via the caller's scratch vector — across the whole attempt.
struct BfsField {
  std::vector<std::uint32_t> dist;
  std::vector<std::uint32_t> parent;
  std::vector<std::uint32_t> stamp;
  std::vector<std::uint32_t> queue;
  std::uint32_t epoch = 0;

  void begin(std::size_t n) {
    if (stamp.size() != n) {
      dist.resize(n);
      parent.resize(n);
      stamp.assign(n, 0);
      epoch = 0;
    }
    if (++epoch == 0) {  // Wrapped: one explicit invalidation, then restart.
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
    queue.clear();
  }
  bool reached(std::uint32_t q) const { return stamp[q] == epoch; }
  void set(std::uint32_t q, std::uint32_t d, std::uint32_t p) {
    dist[q] = d;
    parent[q] = p;
    stamp[q] = epoch;
  }
};

// BFS over free qubits from every qubit adjacent to `chain`, recording
// distance and a parent pointer for path reconstruction. Qubits inside any
// chain are obstacles; qubits adjacent to `chain` get distance 1 with their
// parent inside the source chain (which terminates the path walk).
void bfs_from_chain(const Graph& target, const std::vector<std::uint32_t>& chain,
                    const std::vector<std::int64_t>& owner, BfsField& field) {
  field.begin(target.num_nodes());
  for (std::uint32_t q : chain) {
    for (std::uint32_t w : target.neighbors(q)) {
      if (owner[w] != -1 || field.reached(w)) continue;
      field.set(w, 1, q);
      field.queue.push_back(w);
    }
  }
  for (std::size_t head = 0; head < field.queue.size(); ++head) {
    const std::uint32_t u = field.queue[head];
    for (std::uint32_t w : target.neighbors(u)) {
      if (owner[w] != -1 || field.reached(w)) continue;
      field.set(w, field.dist[u] + 1, u);
      field.queue.push_back(w);
    }
  }
}

std::optional<Embedding> embed_once(const Graph& logical, const Graph& target,
                                    Xoshiro256& rng,
                                    std::vector<BfsField>& fields) {
  const std::size_t nl = logical.num_nodes();
  const std::size_t nt = target.num_nodes();
  Embedding embedding;
  embedding.chains.assign(nl, {});
  std::vector<std::int64_t> owner(nt, -1);

  // Maintained free list: free_nodes holds every unowned qubit, pos[q] its
  // slot, and claiming swap-pops in O(1). Pops scramble the iteration order,
  // so every consumer below breaks ties on the qubit id explicitly — which
  // reproduces the old ascending owner-array scans bit for bit.
  std::vector<std::uint32_t> free_nodes(nt);
  std::iota(free_nodes.begin(), free_nodes.end(), 0);
  std::vector<std::uint32_t> pos(nt);
  std::iota(pos.begin(), pos.end(), 0);
  auto claim_node = [&](std::uint32_t q, std::size_t v) {
    owner[q] = static_cast<std::int64_t>(v);
    const std::uint32_t slot = pos[q];
    const std::uint32_t last = free_nodes.back();
    free_nodes[slot] = last;
    pos[last] = slot;
    free_nodes.pop_back();
  };

  // Descending degree with random tie-break.
  std::vector<std::size_t> order(nl);
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::uint64_t> tie(nl);
  for (auto& t : tie) t = rng();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t da = logical.degree(a);
    const std::size_t db = logical.degree(b);
    return da != db ? da > db : tie[a] > tie[b];
  });

  std::vector<std::size_t> placed_neighbors;
  for (std::size_t v : order) {
    placed_neighbors.clear();
    for (std::uint32_t u : logical.neighbors(v)) {
      if (!embedding.chains[u].empty()) placed_neighbors.push_back(u);
    }

    if (placed_neighbors.empty()) {
      // Seed anywhere free: uniform pick over the free qubits in ascending-id
      // order, matching the pre-free-list behaviour (which indexed a sorted
      // free vector). Runs once per connected component, so the O(V) order
      // walk is cold; every hot consumer uses the free list.
      if (free_nodes.empty()) return std::nullopt;
      std::size_t k = rng.below(free_nodes.size());
      std::uint32_t pick = kUnreached;
      for (std::uint32_t q = 0; q < nt; ++q) {
        if (owner[q] != -1) continue;
        if (k == 0) {
          pick = q;
          break;
        }
        --k;
      }
      embedding.chains[v].push_back(pick);
      claim_node(pick, v);
      continue;
    }

    // Distance fields from each placed neighbour chain.
    if (fields.size() < placed_neighbors.size()) {
      fields.resize(placed_neighbors.size());
    }
    for (std::size_t k = 0; k < placed_neighbors.size(); ++k) {
      bfs_from_chain(target, embedding.chains[placed_neighbors[k]], owner,
                     fields[k]);
    }

    // Root = free qubit reachable from all neighbour chains with minimum
    // (total distance, qubit id). Iterates the free list instead of all V
    // qubits; the id tie-break keeps the winner identical to the old
    // ascending full scan.
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    std::uint32_t root = kUnreached;
    for (std::uint32_t q : free_nodes) {
      std::uint64_t cost = 0;
      bool reachable = true;
      for (std::size_t k = 0; k < placed_neighbors.size(); ++k) {
        if (!fields[k].reached(q)) {
          reachable = false;
          break;
        }
        cost += fields[k].dist[q];
      }
      if (!reachable) continue;
      if (cost < best_cost || (cost == best_cost && q < root)) {
        best_cost = cost;
        root = q;
      }
    }
    if (root == kUnreached) return std::nullopt;

    // Chain = root plus the path back toward each neighbour chain.
    auto claim = [&](std::uint32_t q) {
      if (owner[q] == -1) {
        claim_node(q, v);
        embedding.chains[v].push_back(q);
      }
    };
    claim(root);
    for (std::size_t k = 0; k < placed_neighbors.size(); ++k) {
      const BfsField& field = fields[k];
      std::uint32_t cur = root;
      // Walk parents until we step into the neighbour chain. Every walked
      // qubit was reached by BFS k, so its parent entry is current.
      while (field.reached(cur)) {
        const std::uint32_t p = field.parent[cur];
        if (owner[p] == static_cast<std::int64_t>(placed_neighbors[k])) break;
        // p may already belong to v's chain (shared prefix) — claim is
        // idempotent for v but must not steal from other chains.
        if (owner[p] != -1 && owner[p] != static_cast<std::int64_t>(v)) break;
        claim(p);
        cur = p;
      }
    }
  }
  return embedding;
}

}  // namespace

std::optional<Embedding> find_embedding(const Graph& logical,
                                        const Graph& target,
                                        std::uint64_t seed,
                                        std::size_t num_attempts) {
  require(logical.finalized() && target.finalized(),
          "find_embedding: graphs must be finalized");
  const std::size_t nl = logical.num_nodes();
  std::vector<std::optional<Embedding>> results(num_attempts);

  // Attempts are independent restarts (counter-seeded RNG per attempt), so
  // they run in parallel. Early exit: once some attempt produces a *perfect*
  // embedding (every chain a single qubit — the minimum possible total),
  // attempts with a HIGHER index are skipped. A skipped attempt could at
  // best tie that total and would lose the lowest-index tie-break below, so
  // the exit never changes the selected winner and the result stays
  // bit-identical across thread counts and schedules.
  std::atomic<std::size_t> first_perfect{num_attempts};

#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t a = 0; a < static_cast<std::ptrdiff_t>(num_attempts);
       ++a) {
    const auto attempt = static_cast<std::size_t>(a);
    if (attempt > first_perfect.load(std::memory_order_relaxed)) continue;
    Xoshiro256 rng(seed, attempt);
    std::vector<BfsField> fields;
    auto candidate = embed_once(logical, target, rng, fields);
    if (!candidate || !candidate->is_valid(logical, target)) continue;
    if (candidate->total_physical() == nl) {
      std::size_t cur = first_perfect.load(std::memory_order_relaxed);
      while (attempt < cur &&
             !first_perfect.compare_exchange_weak(cur, attempt,
                                                  std::memory_order_relaxed)) {
      }
    }
    results[attempt] = std::move(candidate);
  }

  // Winner: fewest total qubits, lowest attempt index on ties — exactly the
  // sequential keep-only-if-strictly-better rule this loop replaced.
  std::optional<Embedding> best;
  for (auto& candidate : results) {
    if (!candidate) continue;
    if (!best || candidate->total_physical() < best->total_physical()) {
      best = std::move(*candidate);
    }
  }
  return best;
}

}  // namespace qsmt::graph

#include "graph/embedding.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace qsmt::graph {

std::size_t Embedding::total_physical() const {
  std::size_t total = 0;
  for (const auto& chain : chains) total += chain.size();
  return total;
}

std::size_t Embedding::max_chain_length() const {
  std::size_t best = 0;
  for (const auto& chain : chains) best = std::max(best, chain.size());
  return best;
}

bool Embedding::is_valid(const Graph& logical, const Graph& target) const {
  if (chains.size() < logical.num_nodes()) return false;
  std::vector<std::int64_t> owner(target.num_nodes(), -1);
  for (std::size_t v = 0; v < chains.size(); ++v) {
    if (chains[v].empty()) return false;
    for (std::uint32_t q : chains[v]) {
      if (q >= target.num_nodes() || owner[q] != -1) return false;
      owner[q] = static_cast<std::int64_t>(v);
    }
  }
  // Chain connectivity via BFS inside each chain.
  for (const auto& chain : chains) {
    std::vector<std::uint32_t> frontier{chain.front()};
    std::vector<bool> seen_chain(target.num_nodes(), false);
    seen_chain[chain.front()] = true;
    std::size_t visited = 1;
    while (!frontier.empty()) {
      const std::uint32_t u = frontier.back();
      frontier.pop_back();
      for (std::uint32_t w : target.neighbors(u)) {
        if (seen_chain[w]) continue;
        if (std::find(chain.begin(), chain.end(), w) == chain.end()) continue;
        seen_chain[w] = true;
        ++visited;
        frontier.push_back(w);
      }
    }
    if (visited != chain.size()) return false;
  }
  // Every logical edge needs a physical edge between the chains.
  for (const auto& [a, b] : logical.edges()) {
    bool connected = false;
    for (std::uint32_t q : chains[a]) {
      for (std::uint32_t w : target.neighbors(q)) {
        if (owner[w] == static_cast<std::int64_t>(b)) {
          connected = true;
          break;
        }
      }
      if (connected) break;
    }
    if (!connected) return false;
  }
  return true;
}

Graph logical_graph(const qubo::QuboModel& model) {
  Graph g(model.num_variables());
  for (const auto& [key, value] : model.quadratic_terms()) {
    if (value == 0.0) continue;
    g.add_edge(key >> 32, key & 0xffffffffULL);
  }
  g.finalize();
  return g;
}

namespace {

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

// BFS over free qubits from every qubit adjacent to `chain`, recording
// distance and a parent pointer for path reconstruction. Qubits inside any
// chain are obstacles; qubits adjacent to `chain` get distance 1.
void bfs_from_chain(const Graph& target, const std::vector<std::uint32_t>& chain,
                    const std::vector<std::int64_t>& owner,
                    std::vector<std::uint32_t>& dist,
                    std::vector<std::uint32_t>& parent) {
  dist.assign(target.num_nodes(), kUnreached);
  parent.assign(target.num_nodes(), kUnreached);
  std::queue<std::uint32_t> queue;
  for (std::uint32_t q : chain) {
    for (std::uint32_t w : target.neighbors(q)) {
      if (owner[w] != -1 || dist[w] != kUnreached) continue;
      dist[w] = 1;
      parent[w] = q;  // Parent inside the source chain terminates the path.
      queue.push(w);
    }
  }
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop();
    for (std::uint32_t w : target.neighbors(u)) {
      if (owner[w] != -1 || dist[w] != kUnreached) continue;
      dist[w] = dist[u] + 1;
      parent[w] = u;
      queue.push(w);
    }
  }
}

std::optional<Embedding> embed_once(const Graph& logical, const Graph& target,
                                    Xoshiro256& rng) {
  const std::size_t nl = logical.num_nodes();
  Embedding embedding;
  embedding.chains.assign(nl, {});
  std::vector<std::int64_t> owner(target.num_nodes(), -1);

  // Descending degree with random tie-break.
  std::vector<std::size_t> order(nl);
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::uint64_t> tie(nl);
  for (auto& t : tie) t = rng();
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t da = logical.degree(a);
    const std::size_t db = logical.degree(b);
    return da != db ? da > db : tie[a] > tie[b];
  });

  std::vector<std::uint32_t> dist;
  std::vector<std::uint32_t> parent;

  for (std::size_t v : order) {
    std::vector<std::size_t> placed_neighbors;
    for (std::uint32_t u : logical.neighbors(v)) {
      if (!embedding.chains[u].empty()) placed_neighbors.push_back(u);
    }

    if (placed_neighbors.empty()) {
      // Seed anywhere free.
      std::vector<std::uint32_t> free_nodes;
      for (std::uint32_t q = 0; q < target.num_nodes(); ++q) {
        if (owner[q] == -1) free_nodes.push_back(q);
      }
      if (free_nodes.empty()) return std::nullopt;
      const std::uint32_t pick =
          free_nodes[rng.below(free_nodes.size())];
      embedding.chains[v].push_back(pick);
      owner[pick] = static_cast<std::int64_t>(v);
      continue;
    }

    // Distance fields from each placed neighbour chain.
    std::vector<std::vector<std::uint32_t>> dists(placed_neighbors.size());
    std::vector<std::vector<std::uint32_t>> parents(placed_neighbors.size());
    for (std::size_t k = 0; k < placed_neighbors.size(); ++k) {
      bfs_from_chain(target, embedding.chains[placed_neighbors[k]], owner,
                     dist, parent);
      dists[k] = dist;
      parents[k] = parent;
    }

    // Root = free qubit reachable from all neighbour chains with minimum
    // total distance.
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    std::uint32_t root = kUnreached;
    for (std::uint32_t q = 0; q < target.num_nodes(); ++q) {
      if (owner[q] != -1) continue;
      std::uint64_t cost = 0;
      bool reachable = true;
      for (const auto& d : dists) {
        if (d[q] == kUnreached) {
          reachable = false;
          break;
        }
        cost += d[q];
      }
      if (reachable && cost < best_cost) {
        best_cost = cost;
        root = q;
      }
    }
    if (root == kUnreached) return std::nullopt;

    // Chain = root plus the path back toward each neighbour chain.
    auto claim = [&](std::uint32_t q) {
      if (owner[q] == -1) {
        owner[q] = static_cast<std::int64_t>(v);
        embedding.chains[v].push_back(q);
      }
    };
    claim(root);
    for (std::size_t k = 0; k < placed_neighbors.size(); ++k) {
      std::uint32_t cur = root;
      // Walk parents until we step into the neighbour chain.
      while (true) {
        const std::uint32_t p = parents[k][cur];
        if (p == kUnreached) break;  // cur is adjacent to the chain already.
        if (owner[p] == static_cast<std::int64_t>(placed_neighbors[k])) break;
        // p may already belong to v's chain (shared prefix) — claim is
        // idempotent for v but must not steal from other chains.
        if (owner[p] != -1 && owner[p] != static_cast<std::int64_t>(v)) break;
        claim(p);
        cur = p;
      }
    }
  }
  return embedding;
}

}  // namespace

std::optional<Embedding> find_embedding(const Graph& logical,
                                        const Graph& target,
                                        std::uint64_t seed,
                                        std::size_t num_attempts) {
  require(logical.finalized() && target.finalized(),
          "find_embedding: graphs must be finalized");
  std::optional<Embedding> best;
  for (std::size_t attempt = 0; attempt < num_attempts; ++attempt) {
    Xoshiro256 rng(seed, attempt);
    auto candidate = embed_once(logical, target, rng);
    if (!candidate) continue;
    if (!candidate->is_valid(logical, target)) continue;
    if (!best || candidate->total_physical() < best->total_physical()) {
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace qsmt::graph

// D-Wave Chimera topology generator.
//
// Chimera C(m, n, t) is an m x n grid of unit cells; each cell is a K_{t,t}
// bipartite block of 2t qubits. Horizontal-side qubits couple to the
// neighbouring cell in the same row, vertical-side qubits to the
// neighbouring cell in the same column. D-Wave 2000Q hardware is C(16,16,4).
//
// Linear index of qubit (row i, column j, side u ∈ {0,1}, offset k < t):
//   id = ((i * n) + j) * 2t + u * t + k.
#pragma once

#include "graph/graph.hpp"

namespace qsmt::graph {

struct ChimeraCoord {
  std::size_t row;
  std::size_t col;
  std::size_t side;    ///< 0 = vertical-side qubits, 1 = horizontal-side.
  std::size_t offset;  ///< 0..t-1 within the side.
};

/// Builds the Chimera C(rows, cols, shore) graph (finalized).
Graph make_chimera(std::size_t rows, std::size_t cols, std::size_t shore = 4);

/// Linear id of a Chimera coordinate.
std::size_t chimera_to_linear(const ChimeraCoord& coord, std::size_t cols,
                              std::size_t shore);

/// Inverse of chimera_to_linear.
ChimeraCoord chimera_from_linear(std::size_t id, std::size_t cols,
                                 std::size_t shore);

}  // namespace qsmt::graph

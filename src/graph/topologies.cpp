#include "graph/topologies.hpp"

#include "util/require.hpp"

namespace qsmt::graph {

namespace {
std::size_t node_at(std::size_t row, std::size_t col, std::size_t cols) {
  return row * cols + col;
}
}  // namespace

Graph make_grid(std::size_t rows, std::size_t cols) {
  require(rows >= 1 && cols >= 1, "make_grid: dimensions must be positive");
  Graph g(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(node_at(r, c, cols), node_at(r, c + 1, cols));
      if (r + 1 < rows) g.add_edge(node_at(r, c, cols), node_at(r + 1, c, cols));
    }
  }
  g.finalize();
  return g;
}

Graph make_king(std::size_t rows, std::size_t cols) {
  require(rows >= 1 && cols >= 1, "make_king: dimensions must be positive");
  Graph g(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(node_at(r, c, cols), node_at(r, c + 1, cols));
      if (r + 1 < rows) {
        g.add_edge(node_at(r, c, cols), node_at(r + 1, c, cols));
        if (c + 1 < cols) {
          g.add_edge(node_at(r, c, cols), node_at(r + 1, c + 1, cols));
        }
        if (c > 0) {
          g.add_edge(node_at(r, c, cols), node_at(r + 1, c - 1, cols));
        }
      }
    }
  }
  g.finalize();
  return g;
}

Graph make_complete(std::size_t n) {
  require(n >= 1, "make_complete: n must be positive");
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  g.finalize();
  return g;
}

Graph make_complete_bipartite(std::size_t a, std::size_t b) {
  require(a >= 1 && b >= 1,
          "make_complete_bipartite: both sides must be nonempty");
  Graph g(a + b);
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < b; ++j) g.add_edge(i, a + j);
  }
  g.finalize();
  return g;
}

}  // namespace qsmt::graph

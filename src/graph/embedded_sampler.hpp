// Hardware-simulation sampler: minor-embeds a logical QUBO onto an annealer
// topology, anneals the *physical* model, and unembeds the results.
//
// This reproduces the part of the D-Wave stack (EmbeddingComposite) that the
// paper defers to future hardware runs: logical couplings are split across
// the available inter-chain couplers, every intra-chain edge receives a
// ferromagnetic chain coupling of `chain_strength`, and physical samples are
// mapped back by per-chain vote. Samples whose chains disagree are "broken";
// they are either repaired by majority vote or discarded, and the fraction
// of broken chains is reported so benches can study chain-strength tradeoffs.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "anneal/sampler.hpp"
#include "anneal/simulated_annealer.hpp"
#include "graph/embedding.hpp"
#include "graph/embedding_cache.hpp"
#include "graph/graph.hpp"

namespace qsmt::graph {

enum class ChainBreakResolution {
  kMajorityVote,  ///< Broken chain takes its majority bit (ties -> 0).
  kDiscard,       ///< Samples with any broken chain are dropped.
};

struct EmbeddedSamplerParams {
  /// Ferromagnetic intra-chain coupling strength. When unset, defaults to
  /// 1.5 x the largest |coefficient| of the logical model (a common
  /// uniform-torque-compensation stand-in).
  std::optional<double> chain_strength;
  ChainBreakResolution chain_break_resolution =
      ChainBreakResolution::kMajorityVote;
  anneal::SimulatedAnnealerParams anneal;
  std::uint64_t embedding_seed = 0;
  std::size_t embedding_attempts = 4;
  /// Structure-keyed embedding cache (see graph/embedding_cache.hpp). When
  /// null the sampler creates a private one; pass a shared instance so
  /// several samplers — e.g. every attempt of a service portfolio lane —
  /// reuse each other's warm embeddings.
  std::shared_ptr<EmbeddingCache> embedding_cache;
};

struct EmbeddedSampleStats {
  Embedding embedding;
  /// Fraction of (sample, chain) pairs whose chain disagreed internally.
  double chain_break_fraction = 0.0;
  std::size_t discarded_samples = 0;
  std::size_t physical_variables = 0;
};

class EmbeddedSampler final : public anneal::Sampler {
 public:
  /// `target` must outlive the sampler.
  EmbeddedSampler(const Graph& target, EmbeddedSamplerParams params = {});

  /// Embeds, anneals the physical model, unembeds. Throws
  /// std::runtime_error when no embedding is found.
  anneal::SampleSet sample(const qubo::QuboModel& model) const override;

  /// Like sample() but also returns embedding statistics.
  anneal::SampleSet sample_with_stats(const qubo::QuboModel& model,
                                      EmbeddedSampleStats& stats) const;

  std::string name() const override { return "embedded-annealer"; }

  /// Builds the physical (embedded) QUBO for inspection/testing.
  qubo::QuboModel embed_model(const qubo::QuboModel& logical,
                              const Embedding& embedding,
                              double chain_strength) const;

  /// Number of embeddings this sampler has been served from its cache
  /// (monitoring / tests). Embeddings are keyed by the logical problem's
  /// edge set, so repeated solves of same-shaped models (the common case:
  /// every palindrome of one length shares a graph) skip the embedding
  /// search. With a shared cache this counts the shared instance's hits.
  std::size_t embedding_cache_hits() const;

  /// The cache this sampler resolves embeddings through (never null).
  const std::shared_ptr<EmbeddingCache>& embedding_cache() const noexcept {
    return cache_;
  }

 private:
  const Graph& target_;
  EmbeddedSamplerParams params_;
  std::shared_ptr<EmbeddingCache> cache_;
};

}  // namespace qsmt::graph

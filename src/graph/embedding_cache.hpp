// Structure-keyed minor-embedding cache.
//
// String QUBOs are highly redundant in shape: every palindrome constraint of
// one length yields the same logical graph, every equality of one operand
// size likewise — only the coefficients differ, and an embedding depends on
// the structure alone. Caching embeddings by the canonical logical edge set
// therefore turns the minor-embedding search (which dominates small-problem
// embedded solves) into a hash lookup for all but the first solve of each
// shape.
//
// Entries are keyed by a 64-bit hash of (node count, sorted edge list) and
// verified against the stored edge list on every hit, so a hash collision
// costs one extra compare instead of ever serving a wrong embedding. The
// cache is bounded LRU and thread-safe: one instance can be shared across
// samplers (EmbeddedSamplerParams::embedding_cache), which is how the solve
// service lets every attempt of a portfolio lane reuse warm embeddings.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/embedding.hpp"
#include "graph/graph.hpp"

namespace qsmt::graph {

/// Canonical 64-bit structure hash of a finalized graph: node count plus the
/// sorted edge list (Graph::finalize sorts edges, so isomorphic *labelled*
/// graphs — same node ids, same edges — hash identically regardless of
/// insertion order). Exposed for tests.
std::uint64_t structure_hash(const Graph& graph);

class EmbeddingCache {
 public:
  /// `capacity` bounds the number of distinct graph shapes retained; the
  /// least-recently-used entry is evicted beyond that.
  explicit EmbeddingCache(std::size_t capacity = 64);

  /// Returns the cached embedding for `logical`'s structure, refreshing its
  /// LRU position, or std::nullopt. Emits embed.cache.hits / .misses.
  std::optional<Embedding> lookup(const Graph& logical);

  /// Stores `embedding` for `logical`'s structure (no-op if already
  /// present). Evicts the LRU entry when over capacity and keeps the
  /// embed.cache.size gauge current.
  void insert(const Graph& logical, const Embedding& embedding);

  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t evictions() const;
  std::size_t size() const;
  /// Approximate retained footprint (stored edge lists + embedding chains),
  /// the value mirrored into the embed.cache.bytes gauge (embed.cache.entries
  /// mirrors size()).
  std::size_t bytes() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::size_t num_nodes = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    Embedding embedding;
    std::size_t bytes = 0;
  };

  bool matches(const Entry& entry, const Graph& logical) const;
  void publish_occupancy_locked();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_multimap<std::uint64_t, std::list<Entry>::iterator> index_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace qsmt::graph

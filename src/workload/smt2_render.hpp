// Rendering constraint instances as SMT-LIB 2 scripts.
//
// Turns generated instances into the .smt2 benchmark format (paper §2.1.1),
// closing the loop generator -> script -> parser -> compiler -> solver.
// Every supported constraint renders to a (declare-const)/(assert ...)
// script ending in (check-sat)(get-model).
#pragma once

#include <optional>
#include <string>

#include "strqubo/constraint.hpp"

namespace qsmt::workload {

/// Renders one constraint as a complete SMT-LIB script over variable
/// `variable`. Returns std::nullopt for Includes (a ground position query
/// with no free string variable in the SMT fragment used here).
std::optional<std::string> to_smt2(const strqubo::Constraint& constraint,
                                   const std::string& variable = "x");

/// The assert lines only (no declare-const / check-sat), for embedding
/// several constraints in one script. Same Includes caveat.
std::optional<std::string> to_smt2_asserts(
    const strqubo::Constraint& constraint, const std::string& variable);

}  // namespace qsmt::workload

// Seeded random constraint-instance generation.
//
// The SMT-LIB initiative the paper describes (§2.1.1) exists to provide
// libraries of benchmarks; this module is the equivalent for the string
// fragment implemented here: reproducible random instances of every
// operation, used by the property-based test suites, the benchmark-suite
// bench (E11), and as fuzz input for the SMT front end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "strqubo/constraint.hpp"
#include "util/rng.hpp"

namespace qsmt::workload {

struct GeneratorParams {
  std::size_t min_length = 2;
  std::size_t max_length = 8;
  /// Alphabet random strings are drawn from.
  std::string alphabet = "abcdefghijklmnopqrstuvwxyz";
  std::uint64_t seed = 0;
};

/// Which operation family to draw. kAny picks uniformly from all of them.
enum class Kind {
  kEquality,
  kConcat,
  kSubstringMatch,
  kIncludes,
  kIndexOf,
  kReplaceAll,
  kReplace,
  kReverse,
  kPalindrome,
  kRegexMatch,
  kCharAt,
  kNotContains,
  kAny,
};

/// Short name for reports ("equality", "regex-match", ...).
std::string kind_name(Kind kind);

/// All concrete kinds (everything except kAny), in declaration order.
const std::vector<Kind>& all_kinds();

class Generator {
 public:
  explicit Generator(GeneratorParams params = {});

  /// Draws one random instance of `kind`. Every generated instance is
  /// satisfiable by construction (the generator plants a witness).
  strqubo::Constraint next(Kind kind = Kind::kAny);

  /// Draws `count` instances cycling through all kinds (a balanced suite).
  std::vector<strqubo::Constraint> suite(std::size_t count);

  /// A random string over the configured alphabet with length in
  /// [min_length, max_length].
  std::string random_string();

 private:
  char random_char();
  std::size_t random_length();

  GeneratorParams params_;
  Xoshiro256 rng_;
};

}  // namespace qsmt::workload

#include "workload/generator.hpp"

#include "util/require.hpp"

namespace qsmt::workload {

std::string kind_name(Kind kind) {
  switch (kind) {
    case Kind::kEquality:
      return "equality";
    case Kind::kConcat:
      return "concat";
    case Kind::kSubstringMatch:
      return "substring-match";
    case Kind::kIncludes:
      return "includes";
    case Kind::kIndexOf:
      return "index-of";
    case Kind::kReplaceAll:
      return "replace-all";
    case Kind::kReplace:
      return "replace";
    case Kind::kReverse:
      return "reverse";
    case Kind::kPalindrome:
      return "palindrome";
    case Kind::kRegexMatch:
      return "regex-match";
    case Kind::kCharAt:
      return "char-at";
    case Kind::kNotContains:
      return "not-contains";
    case Kind::kAny:
      return "any";
  }
  return "?";
}

const std::vector<Kind>& all_kinds() {
  static const std::vector<Kind> kKinds{
      Kind::kEquality,   Kind::kConcat,  Kind::kSubstringMatch,
      Kind::kIncludes,   Kind::kIndexOf, Kind::kReplaceAll,
      Kind::kReplace,    Kind::kReverse, Kind::kPalindrome,
      Kind::kRegexMatch, Kind::kCharAt,  Kind::kNotContains};
  return kKinds;
}

Generator::Generator(GeneratorParams params)
    : params_(params), rng_(params.seed, 0x6e6e72ULL) {
  require(!params_.alphabet.empty(), "Generator: alphabet must be non-empty");
  require(params_.min_length >= 1 && params_.min_length <= params_.max_length,
          "Generator: need 1 <= min_length <= max_length");
}

char Generator::random_char() {
  return params_.alphabet[rng_.below(params_.alphabet.size())];
}

std::size_t Generator::random_length() {
  return params_.min_length +
         rng_.below(params_.max_length - params_.min_length + 1);
}

std::string Generator::random_string() {
  std::string s(random_length(), '\0');
  for (char& c : s) c = random_char();
  return s;
}

strqubo::Constraint Generator::next(Kind kind) {
  if (kind == Kind::kAny) {
    kind = all_kinds()[rng_.below(all_kinds().size())];
  }
  switch (kind) {
    case Kind::kEquality:
      return strqubo::Equality{random_string()};
    case Kind::kConcat:
      return strqubo::Concat{random_string(), random_string()};
    case Kind::kSubstringMatch: {
      const std::string text = random_string();
      const std::size_t sub_len = 1 + rng_.below(text.size());
      const std::size_t at = rng_.below(text.size() - sub_len + 1);
      return strqubo::SubstringMatch{text.size(), text.substr(at, sub_len)};
    }
    case Kind::kIncludes: {
      std::string text = random_string();
      // Half the time plant the needle, half the time likely-miss.
      std::string needle;
      if (rng_.coin()) {
        const std::size_t sub_len = 1 + rng_.below(text.size());
        const std::size_t at = rng_.below(text.size() - sub_len + 1);
        needle = text.substr(at, sub_len);
      } else {
        needle.push_back(random_char());
        needle.push_back(random_char());
        if (needle.size() > text.size()) text += random_string();
      }
      return strqubo::Includes{text, needle};
    }
    case Kind::kIndexOf: {
      const std::size_t length = random_length();
      const std::size_t sub_len = 1 + rng_.below(length);
      const std::size_t index = rng_.below(length - sub_len + 1);
      std::string sub(sub_len, '\0');
      for (char& c : sub) c = random_char();
      return strqubo::IndexOf{length, sub, index};
    }
    case Kind::kReplaceAll: {
      const std::string input = random_string();
      return strqubo::ReplaceAll{input, input[rng_.below(input.size())],
                                 random_char()};
    }
    case Kind::kReplace: {
      const std::string input = random_string();
      return strqubo::Replace{input, input[rng_.below(input.size())],
                              random_char()};
    }
    case Kind::kReverse:
      return strqubo::Reverse{random_string()};
    case Kind::kPalindrome:
      return strqubo::Palindrome{random_length()};
    case Kind::kRegexMatch: {
      // literal [class]+ literal — always satisfiable at length >= 3.
      std::string klass;
      klass.push_back(random_char());
      char second = random_char();
      if (second == klass[0]) second = second == 'a' ? 'b' : 'a';
      klass.push_back(second);
      std::string pattern;
      pattern.push_back(random_char());
      pattern += "[" + klass + "]+";
      pattern.push_back(random_char());
      const std::size_t length =
          std::max<std::size_t>(3, random_length());
      return strqubo::RegexMatch{pattern, length};
    }
    case Kind::kCharAt: {
      const std::size_t length = random_length();
      return strqubo::CharAt{length, rng_.below(length), random_char()};
    }
    case Kind::kNotContains: {
      const std::size_t length = random_length();
      std::string forbidden;
      forbidden.push_back(random_char());
      if (rng_.coin()) forbidden.push_back(random_char());
      return strqubo::NotContains{length, forbidden};
    }
    case Kind::kAny:
      break;
  }
  throw std::invalid_argument("Generator::next: unreachable kind");
}

std::vector<strqubo::Constraint> Generator::suite(std::size_t count) {
  std::vector<strqubo::Constraint> instances;
  instances.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    instances.push_back(next(all_kinds()[i % all_kinds().size()]));
  }
  return instances;
}

}  // namespace qsmt::workload

#include "workload/smt2_render.hpp"

#include <sstream>

#include "regex/pattern.hpp"

namespace qsmt::workload {

namespace {

/// SMT-LIB string literal with "" quote doubling.
std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    out.push_back(c);
    if (c == '"') out.push_back('"');
  }
  out.push_back('"');
  return out;
}

std::string length_fact(const std::string& variable, std::size_t length) {
  std::ostringstream out;
  out << "(assert (= (str.len " << variable << ") " << length << "))\n";
  return out.str();
}

/// RegLan term for one pattern element (without its '+').
std::string element_term(const regex::Element& element) {
  if (!element.is_class || element.chars.size() == 1) {
    return "(str.to_re " + quoted(std::string(1, element.chars[0])) + ")";
  }
  std::string out = "(re.union";
  for (char c : element.chars) {
    out += " (str.to_re " + quoted(std::string(1, c)) + ")";
  }
  out += ")";
  return out;
}

std::string regex_term(const std::string& pattern) {
  const regex::Pattern parsed = regex::parse_pattern(pattern);
  std::vector<std::string> parts;
  parts.reserve(parsed.elements.size());
  for (const regex::Element& element : parsed.elements) {
    std::string term = element_term(element);
    switch (element.quantifier) {
      case regex::Quantifier::kOne:
        break;
      case regex::Quantifier::kPlus:
        term = "(re.+ " + term + ")";
        break;
      case regex::Quantifier::kStar:
        term = "(re.* " + term + ")";
        break;
      case regex::Quantifier::kOpt:
        term = "(re.opt " + term + ")";
        break;
    }
    parts.push_back(std::move(term));
  }
  if (parts.size() == 1) return parts[0];
  std::string out = "(re.++";
  for (const std::string& part : parts) out += " " + part;
  out += ")";
  return out;
}

}  // namespace

std::optional<std::string> to_smt2_asserts(
    const strqubo::Constraint& constraint, const std::string& variable) {
  using namespace strqubo;
  std::ostringstream out;
  const bool ok = std::visit(
      [&](const auto& c) -> bool {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, Equality>) {
          out << "(assert (= " << variable << " " << quoted(c.target)
              << "))\n";
        } else if constexpr (std::is_same_v<T, Concat>) {
          out << "(assert (= " << variable << " (str.++ " << quoted(c.lhs)
              << " " << quoted(c.rhs) << ")))\n";
        } else if constexpr (std::is_same_v<T, SubstringMatch>) {
          out << length_fact(variable, c.length);
          out << "(assert (str.contains " << variable << " "
              << quoted(c.substring) << "))\n";
        } else if constexpr (std::is_same_v<T, Includes>) {
          return false;  // Ground position query; no free-variable form.
        } else if constexpr (std::is_same_v<T, IndexOf>) {
          out << length_fact(variable, c.length);
          out << "(assert (= (str.indexof " << variable << " "
              << quoted(c.substring) << " 0) " << c.index << "))\n";
        } else if constexpr (std::is_same_v<T, Length>) {
          return false;  // The paper's bit-prefix form has no SMT-LIB twin.
        } else if constexpr (std::is_same_v<T, ReplaceAll>) {
          out << "(assert (= " << variable << " (str.replace_all "
              << quoted(c.input) << " " << quoted(std::string(1, c.from))
              << " " << quoted(std::string(1, c.to)) << ")))\n";
        } else if constexpr (std::is_same_v<T, Replace>) {
          out << "(assert (= " << variable << " (str.replace "
              << quoted(c.input) << " " << quoted(std::string(1, c.from))
              << " " << quoted(std::string(1, c.to)) << ")))\n";
        } else if constexpr (std::is_same_v<T, Reverse>) {
          out << "(assert (= " << variable << " (str.rev " << quoted(c.input)
              << ")))\n";
        } else if constexpr (std::is_same_v<T, Palindrome>) {
          out << length_fact(variable, c.length);
          out << "(assert (qsmt.is_palindrome " << variable << "))\n";
        } else if constexpr (std::is_same_v<T, RegexMatch>) {
          out << length_fact(variable, c.length);
          out << "(assert (str.in_re " << variable << " "
              << regex_term(c.pattern) << "))\n";
        } else if constexpr (std::is_same_v<T, CharAt>) {
          out << length_fact(variable, c.length);
          out << "(assert (= (str.at " << variable << " " << c.index << ") "
              << quoted(std::string(1, c.ch)) << "))\n";
        } else if constexpr (std::is_same_v<T, NotContains>) {
          out << length_fact(variable, c.length);
          out << "(assert (not (str.contains " << variable << " "
              << quoted(c.substring) << ")))\n";
        } else {
          // BoundedLength: standard SMT-LIB has no NUL-padded-buffer form.
          static_assert(std::is_same_v<T, BoundedLength>);
          return false;
        }
        return true;
      },
      constraint);
  if (!ok) return std::nullopt;
  return out.str();
}

std::optional<std::string> to_smt2(const strqubo::Constraint& constraint,
                                   const std::string& variable) {
  const auto asserts = to_smt2_asserts(constraint, variable);
  if (!asserts) return std::nullopt;
  std::ostringstream out;
  out << "(set-logic QF_S)\n(declare-const " << variable << " String)\n"
      << *asserts << "(check-sat)\n(get-model)\n";
  return out.str();
}

}  // namespace qsmt::workload

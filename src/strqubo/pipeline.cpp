#include "strqubo/pipeline.hpp"

#include "util/require.hpp"

namespace qsmt::strqubo {

Pipeline::Pipeline(Constraint first) : first_(std::move(first)) {
  require(produces_string(first_),
          "Pipeline: first stage must produce a string");
}

Pipeline& Pipeline::then(Transform transform) {
  transforms_.push_back(std::move(transform));
  return *this;
}

Constraint materialize(const Transform& transform, const std::string& input) {
  return std::visit(
      [&](const auto& t) -> Constraint {
        using T = std::decay_t<decltype(t)>;
        if constexpr (std::is_same_v<T, ThenReverse>) {
          return Reverse{input};
        } else if constexpr (std::is_same_v<T, ThenReplaceAll>) {
          return ReplaceAll{input, t.from, t.to};
        } else if constexpr (std::is_same_v<T, ThenReplace>) {
          return Replace{input, t.from, t.to};
        } else {
          static_assert(std::is_same_v<T, ThenConcat>);
          return Concat{input, t.suffix};
        }
      },
      transform);
}

Pipeline::Result Pipeline::run(const StringConstraintSolver& solver) const {
  Result result;
  result.all_satisfied = true;

  SolveResult first = solver.solve(first_);
  require(first.text.has_value(),
          "Pipeline::run: first stage produced no string");
  result.all_satisfied &= first.satisfied;
  std::string current = *first.text;
  result.stages.push_back(StageResult{first_, std::move(first)});

  for (const Transform& transform : transforms_) {
    Constraint stage = materialize(transform, current);
    SolveResult solved = solver.solve(stage);
    require(solved.text.has_value(),
            "Pipeline::run: transform stage produced no string");
    result.all_satisfied &= solved.satisfied;
    current = *solved.text;
    result.stages.push_back(StageResult{std::move(stage), std::move(solved)});
  }
  result.final_value = std::move(current);
  return result;
}

}  // namespace qsmt::strqubo

// StringConstraintSolver: the public facade of the library.
//
// Implements the paper's Figure 1 pipeline end to end: constraint ->
// binary variables -> QUBO matrix -> (simulated/quantum/embedded) annealer
// -> decode -> classical consistency check.
#pragma once

#include <optional>
#include <string>

#include "anneal/sampler.hpp"
#include "qubo/adjacency.hpp"
#include "strqubo/builders.hpp"
#include "strqubo/constraint.hpp"

namespace qsmt::strqubo {

struct SolveResult {
  /// Decoded string for string-producing constraints.
  std::optional<std::string> text;
  /// Decoded first-occurrence position for Includes (nullopt = "none
  /// selected", i.e. the annealer asserts the substring does not occur).
  std::optional<std::size_t> position;
  /// Classical verification verdict on the decoded answer.
  bool satisfied = false;
  /// Energy of the sample the answer was decoded from (the lowest-energy
  /// sample whose decoding verifies, else the overall lowest).
  double energy = 0.0;
  /// Number of QUBO variables in the built model.
  std::size_t num_variables = 0;
  /// Number of quadratic terms in the built model.
  std::size_t num_interactions = 0;
  /// Wall-clock seconds spent building the model / sampling.
  double build_seconds = 0.0;
  double sample_seconds = 0.0;
  /// All samples, best-first (aggregated).
  anneal::SampleSet samples;
};

/// A constraint with its QUBO model and CSR adjacency prebuilt: the unit of
/// reuse for re-solvers. Retry loops, sweep escalation, and the portfolio
/// racing service (src/service) build one of these per distinct constraint
/// and re-sample it across samplers, attempts, and jobs without paying the
/// build again. Immutable after prepare(); safe to share across threads.
struct PreparedConstraint {
  Constraint constraint;
  qubo::QuboModel model;
  qubo::QuboAdjacency adjacency;
  /// Wall-clock seconds the one-time build took (steady clock).
  double build_seconds = 0.0;
};

/// Builds `constraint`'s model and adjacency once, under the `strqubo.build`
/// telemetry span — the entry point of the prebuilt-adjacency hot path.
PreparedConstraint prepare(const Constraint& constraint,
                           const BuildOptions& options = {});

class StringConstraintSolver {
 public:
  /// `sampler` must outlive the solver.
  explicit StringConstraintSolver(const anneal::Sampler& sampler,
                                  BuildOptions options = {});

  /// Builds the constraint's QUBO, samples it, decodes and verifies the
  /// best sample.
  SolveResult solve(const Constraint& constraint) const;

  /// Hot path: same, but with the model and its CSR adjacency prebuilt by
  /// the caller — re-solvers (retry loops, sweep escalation) build both once
  /// and re-sample at different budgets. `model`/`adjacency` must correspond
  /// to `constraint` under this solver's options; build_seconds is reported
  /// as 0 (the caller already paid it).
  SolveResult solve(const Constraint& constraint, const qubo::QuboModel& model,
                    const qubo::QuboAdjacency& adjacency) const;

  /// Hot path over a PreparedConstraint; build_seconds is copied from the
  /// preparation (the one-time cost the caller already paid).
  SolveResult solve(const PreparedConstraint& prepared) const;

  /// Builds without solving (for inspection and the Table 1 harness).
  qubo::QuboModel build_model(const Constraint& constraint) const;

  const BuildOptions& options() const noexcept { return options_; }
  const anneal::Sampler& sampler() const noexcept { return *sampler_; }

 private:
  const anneal::Sampler* sampler_;
  BuildOptions options_;
};

/// Decodes the best sample of an Includes model: the selected position, or
/// nullopt when no position variable is set. When several are set (one-hot
/// penalty violated), the smallest selected index is reported.
std::optional<std::size_t> decode_includes_position(
    std::span<const std::uint8_t> bits);

/// The post-sampling half of StringConstraintSolver::solve: decodes
/// `samples` (best-energy first, falling through the set in energy order)
/// and classically verifies each decoding against `constraint`, under the
/// strqubo.verify telemetry span. Returns a SolveResult with satisfied /
/// text / position / energy filled in; model-size, timing, and samples
/// fields are left for the caller. Exposed so the service's cross-job
/// batching can de-multiplex one fused kernel invocation into per-job
/// verdicts without re-entering the solver facade.
SolveResult decode_and_verify(const Constraint& constraint,
                              const anneal::SampleSet& samples);

/// Solves with escalating annealer effort: runs the simulated annealer at a
/// doubling sweep budget (initial_sweeps, 2x, 4x, ...) until the decoded
/// answer verifies or max_attempts budgets were tried — the retry loop a
/// production deployment wraps around an incomplete sampler. Each attempt
/// uses a fresh RNG stream, so retries are genuinely independent.
struct RetryParams {
  std::size_t num_reads = 48;
  std::size_t initial_sweeps = 64;
  std::size_t max_attempts = 4;
  std::uint64_t seed = 0;
};
struct RetryResult {
  SolveResult result;          ///< The final (first verified) attempt.
  std::size_t attempts = 0;    ///< Budgets tried.
  std::size_t final_sweeps = 0;
};
RetryResult solve_with_retries(const Constraint& constraint,
                               const RetryParams& params = {},
                               const BuildOptions& options = {});

/// Enumerates distinct verified solutions of a string-producing constraint
/// from a sample set, best-energy first, up to `limit`. Open constraints
/// (palindromes, regex, substring placement) often have many satisfying
/// strings and a multi-read annealer visits several per call — this is how
/// the suite exposes them (the paper: annealing "would produce a different
/// string every time, while still obeying the given constraints").
std::vector<std::string> enumerate_solutions(const Constraint& constraint,
                                             const anneal::SampleSet& samples,
                                             std::size_t limit = 16);

}  // namespace qsmt::strqubo

// Constraint IR: one value type per string operation the paper's solver
// supports (§4.1-§4.11). The QUBO builders (builders.hpp), the classical
// verifier (verify.hpp), the classical baseline solver (src/baseline) and
// the SMT-LIB compiler (src/smtlib) all speak this IR.
#pragma once

#include <cstddef>
#include <string>
#include <variant>

namespace qsmt::strqubo {

/// §4.1 — generate a string S equal to `target`.
struct Equality {
  std::string target;
};

/// §4.2 — generate the concatenation of `lhs` and `rhs`.
struct Concat {
  std::string lhs;
  std::string rhs;
};

/// §4.3 — generate a string of `length` containing `substring` (encoded at
/// every start position; later encodings overwrite earlier ones).
struct SubstringMatch {
  std::size_t length;
  std::string substring;
};

/// §4.4 — decide where, in `text`, `substring` begins (position variables,
/// not string generation).
struct Includes {
  std::string text;
  std::string substring;
};

/// §4.5 — generate a string of `length` with `substring` at `index`;
/// remaining positions are softly biased toward letters.
struct IndexOf {
  std::size_t length;
  std::string substring;
  std::size_t index;
};

/// §4.6 — the paper's bit-prefix length check over a string of
/// `string_length` characters: first 7*`desired_length` bits 1, rest 0.
struct Length {
  std::size_t string_length;
  std::size_t desired_length;
};

/// §4.7 — generate `input` with every occurrence of `from` replaced by `to`.
struct ReplaceAll {
  std::string input;
  char from;
  char to;
};

/// §4.8 — generate `input` with the first occurrence of `from` replaced.
struct Replace {
  std::string input;
  char from;
  char to;
};

/// §4.9 — generate the reverse of `input`.
struct Reverse {
  std::string input;
};

/// §4.10 — generate a palindrome of `length` (mirrored-bit XNOR gadgets).
struct Palindrome {
  std::size_t length;
};

/// §4.11 — generate a string of `length` matching `pattern` (literals,
/// character classes, '+').
struct RegexMatch {
  std::string pattern;
  std::size_t length;
};

/// Extension (paper §6 future work: "more formulations ... for other string
/// constraints") — generate a string of `length` with `ch` at `index`;
/// remaining positions are softly biased toward letters.
struct CharAt {
  std::size_t length;
  std::size_t index;
  char ch;
};

/// Extension — generate a string of `length` that does NOT contain
/// `substring`. A negative constraint needs higher-order penalties: each
/// window's "spells the substring" indicator is quadratized with ancilla
/// variables (see qubo/quadratization.hpp), making this the one operation
/// whose QUBO grows auxiliary variables beyond the 7n string bits.
struct NotContains {
  std::size_t length;
  std::string substring;
};

/// Extension — generate a NUL-padded buffer of `capacity` characters whose
/// content length (position of the first NUL) lies in
/// [min_length, max_length]. One-hot length-selector variables couple each
/// position to "letter content" below the chosen length and NUL at/above
/// it, so the annealer picks the length and the content together — the
/// production replacement for the paper's bit-prefix Length form (§4.6).
struct BoundedLength {
  std::size_t capacity;
  std::size_t min_length;
  std::size_t max_length;
};

using Constraint =
    std::variant<Equality, Concat, SubstringMatch, Includes, IndexOf, Length,
                 ReplaceAll, Replace, Reverse, Palindrome, RegexMatch, CharAt,
                 NotContains, BoundedLength>;

/// Short operation name ("equality", "includes", ...) for reports.
std::string constraint_name(const Constraint& constraint);

/// One-line human-readable description ("reverse 'hello'", ...).
std::string describe(const Constraint& constraint);

/// Number of QUBO variables the builder will allocate for this constraint.
std::size_t constraint_num_variables(const Constraint& constraint);

/// True when solving yields a generated string (everything except Includes,
/// which yields a position).
bool produces_string(const Constraint& constraint);

/// Exact structural key: enumerates every field of every variant with
/// unambiguous separators, so two constraints share a key iff they build
/// the same QUBO under fixed build options. describe() is for humans and
/// may collide (or change); this is the cache/fusion key used by the
/// service's prepared-model cache and the incremental fragment cache.
std::string structure_key(const Constraint& constraint);

}  // namespace qsmt::strqubo

// QUBO builders: one function per string operation in paper §4.1-§4.11.
//
// Every generating formulation follows the paper's conventions: 7 bits per
// ASCII character (strenc::variable_index), penalty strength A = 1 by
// default, and diagonal entries -A where the target bit is 1 / +A where it
// is 0. Operations with structural constraints (includes, palindrome,
// one-hot regex classes) add quadratic penalty gadgets.
#pragma once

#include <optional>

#include "qubo/qubo_model.hpp"
#include "regex/pattern.hpp"
#include "strqubo/constraint.hpp"

namespace qsmt::strqubo {

/// How §4.11 character classes are encoded.
enum class RegexClassEncoding {
  /// Paper-faithful: each class character contributes ±A/|class| per bit.
  /// Bits on which class members disagree end up unbiased, so classes whose
  /// members differ in several bits can decode to characters outside the
  /// class (an artifact the ablation bench E6 measures).
  kPaperAveraged,
  /// Extension: one selector variable per class character with a one-hot
  /// penalty; the selected character's bit pattern is enforced exactly.
  kOneHotSelectors,
};

struct BuildOptions {
  /// Penalty strength A (paper: "we set A to be 1").
  double strength = 1.0;
  /// B — quadratic one-hot penalty for the includes formulation (§4.4).
  double one_hot_penalty = 2.0;
  /// D — increment of the cumulative first-match preference C_i (§4.4).
  double first_match_increment = 0.5;
  /// Uniform per-position selection cost θ added to every includes diagonal.
  /// The paper's objective alone makes selecting a zero-match position free
  /// (ties with "no occurrence") and can prefer pairs of matches over one;
  /// θ = A(m - 1/2), the default when unset, makes the ground state exactly
  /// "first full match, or nothing". Set to 0 for the paper's literal
  /// objective (documented in DESIGN.md).
  std::optional<double> includes_selection_cost;
  /// IndexOf (§4.5): multiplier for the "stronger" constraints at the fixed
  /// substring window (paper suggests 2x).
  double strong_multiplier = 2.0;
  /// IndexOf (§4.5): weight of the "softer" constraints at free positions
  /// (paper suggests 0.1x). Applied as a bias toward the 11xxxxx bit prefix
  /// so free positions decode to letters (ASCII 96-127).
  double soft_weight = 0.1;
  /// Palindrome (§4.10): optional soft bias toward the letter bit-prefix at
  /// every position; 0 is the paper-faithful pure mirror formulation.
  double palindrome_printable_bias = 0.0;
  RegexClassEncoding regex_encoding = RegexClassEncoding::kPaperAveraged;
};

/// §4.1 — diagonal-only 7n x 7n model whose unique ground state encodes
/// `target` (ground energy -A x number of 1-bits in the target encoding).
qubo::QuboModel build_equality(const std::string& target,
                               const BuildOptions& options = {});

/// §4.2 — equality against lhs + rhs.
qubo::QuboModel build_concat(const std::string& lhs, const std::string& rhs,
                             const BuildOptions& options = {});

/// §4.3 — substring encoded at every start position, later overwriting
/// earlier; positions never covered stay unconstrained.
qubo::QuboModel build_substring_match(std::size_t length,
                                      const std::string& substring,
                                      const BuildOptions& options = {});

/// §4.4 — model over n-m+1 position variables; ground state sets x_i = 1 at
/// the first index where substring matches text.
qubo::QuboModel build_includes(const std::string& text,
                               const std::string& substring,
                               const BuildOptions& options = {});

/// §4.5 — strong ±(strong_multiplier * A) at the substring window, soft
/// letter-prefix bias elsewhere.
qubo::QuboModel build_index_of(std::size_t length, const std::string& substring,
                               std::size_t index,
                               const BuildOptions& options = {});

/// §4.6 — paper-faithful bit-prefix length formulation: diagonal -A for the
/// first 7 * desired_length variables, +A for the rest.
qubo::QuboModel build_length(std::size_t string_length,
                             std::size_t desired_length,
                             const BuildOptions& options = {});

/// Extension (documented in DESIGN.md): length L over printable strings —
/// the first L characters are biased toward letters and the tail is pinned
/// to NUL, which composes with other generating constraints.
qubo::QuboModel build_length_printable(std::size_t string_length,
                                       std::size_t desired_length,
                                       const BuildOptions& options = {});

/// §4.7 — encode `input` with all occurrences of `from` replaced by `to`.
qubo::QuboModel build_replace_all(const std::string& input, char from, char to,
                                  const BuildOptions& options = {});

/// §4.8 — encode `input` with only the first occurrence replaced.
qubo::QuboModel build_replace(const std::string& input, char from, char to,
                              const BuildOptions& options = {});

/// §4.9 — encode the reverse of `input`.
qubo::QuboModel build_reverse(const std::string& input,
                              const BuildOptions& options = {});

/// §4.10 — mirrored-bit XNOR gadgets; middle character free for odd length.
qubo::QuboModel build_palindrome(std::size_t length,
                                 const BuildOptions& options = {});

/// §4.11 — literal/class/plus pattern expanded to `length` positions.
/// With kOneHotSelectors the model gains selector variables appended after
/// the 7 * length string bits (layout documented in regex_selector_base()).
qubo::QuboModel build_regex(const std::string& pattern, std::size_t length,
                            const BuildOptions& options = {});

/// First selector variable index for one-hot regex models (== 7 * length).
std::size_t regex_selector_base(std::size_t length);

/// Extension — `ch` pinned at `index` (strong), soft letter bias elsewhere.
/// The SMT-LIB front end maps (= (str.at x k) "c") here.
qubo::QuboModel build_char_at(std::size_t length, std::size_t index, char ch,
                              const BuildOptions& options = {});

/// Extension — negative containment. Every window of |substring| characters
/// gets a quadratized "spells the substring" indicator (ancillas appended
/// after the 7 * length string bits) whose activation costs
/// 2 * strong_multiplier * A; free positions get the soft letter bias so
/// the output decodes to letters. See qubo/quadratization.hpp.
qubo::QuboModel build_not_contains(std::size_t length,
                                   const std::string& substring,
                                   const BuildOptions& options = {});

/// Extension — bounded content length over a NUL-padded buffer. One-hot
/// length selectors s_k (k in [min_length, max_length], appended after the
/// 7 * capacity string bits) couple every position to letter content below
/// k and NUL at/above k; a per-selector neutraliser keeps all lengths at
/// equal ground energy (0), so the annealer picks length and content
/// jointly and uniformly. The production replacement for §4.6.
qubo::QuboModel build_bounded_length(std::size_t capacity,
                                     std::size_t min_length,
                                     std::size_t max_length,
                                     const BuildOptions& options = {});

/// Dispatches on the constraint alternative to the builder above.
qubo::QuboModel build(const Constraint& constraint,
                      const BuildOptions& options = {});

/// Known ground-state energy of a generating formulation where available
/// (diagonal formulations: sum of negative diagonal entries; palindrome/
/// includes: see implementation). Used by benches for success accounting.
double expected_ground_energy(const Constraint& constraint,
                              const BuildOptions& options = {});

/// Deterministic fingerprint of every BuildOptions field that changes a
/// built QUBO ('\x1f'-separated). Shared by the incremental fragment cache
/// (smtlib::fragment_key) and the canonical answer cache (src/canon), so
/// both layers agree on when two solves were configured identically.
std::string options_fingerprint(const BuildOptions& options);

}  // namespace qsmt::strqubo

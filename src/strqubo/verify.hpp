// Classical ground-truth checkers for every constraint.
//
// The annealer is a heuristic; a production solver must confirm that a
// decoded sample actually satisfies the original constraint (the
// "transformed back to the original theory, and checked for consistency"
// step of the SMT loop the paper describes in §1). These checkers are also
// the oracles for the test suite and the baseline solver.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "strqubo/constraint.hpp"

namespace qsmt::strqubo {

/// True when `candidate` satisfies a string-producing constraint.
/// For Includes (which produces a position, not a string) this returns
/// false; use verify_position instead.
bool verify_string(const Constraint& constraint, std::string_view candidate);

/// True when `position` is the correct answer for an Includes constraint:
/// the first index where the substring occurs. std::nullopt represents
/// "no occurrence".
bool verify_position(const Includes& constraint,
                     std::optional<std::size_t> position);

/// The unique expected output for constraints that have one (equality,
/// concat, replace, replaceAll, reverse, and the paper-faithful length
/// formulation); std::nullopt for constraints with many valid outputs.
std::optional<std::string> expected_string(const Constraint& constraint);

/// Classical replaceAll used by both the builder and the verifier.
std::string replace_all_chars(std::string input, char from, char to);

/// Classical first-occurrence replace.
std::string replace_first_char(std::string input, char from, char to);

}  // namespace qsmt::strqubo

#include "strqubo/constraint.hpp"

#include <sstream>

#include "strenc/ascii7.hpp"

namespace qsmt::strqubo {

namespace {

struct NameVisitor {
  std::string operator()(const Equality&) const { return "equality"; }
  std::string operator()(const Concat&) const { return "concat"; }
  std::string operator()(const SubstringMatch&) const {
    return "substring-match";
  }
  std::string operator()(const Includes&) const { return "includes"; }
  std::string operator()(const IndexOf&) const { return "index-of"; }
  std::string operator()(const Length&) const { return "length"; }
  std::string operator()(const ReplaceAll&) const { return "replace-all"; }
  std::string operator()(const Replace&) const { return "replace"; }
  std::string operator()(const Reverse&) const { return "reverse"; }
  std::string operator()(const Palindrome&) const { return "palindrome"; }
  std::string operator()(const RegexMatch&) const { return "regex-match"; }
  std::string operator()(const CharAt&) const { return "char-at"; }
  std::string operator()(const NotContains&) const { return "not-contains"; }
  std::string operator()(const BoundedLength&) const {
    return "bounded-length";
  }
};

struct DescribeVisitor {
  std::string operator()(const Equality& c) const {
    return "generate string equal to '" + c.target + "'";
  }
  std::string operator()(const Concat& c) const {
    return "concatenate '" + c.lhs + "' and '" + c.rhs + "'";
  }
  std::string operator()(const SubstringMatch& c) const {
    std::ostringstream out;
    out << "generate a string of length " << c.length
        << " containing the substring '" << c.substring << "'";
    return out.str();
  }
  std::string operator()(const Includes& c) const {
    return "find where '" + c.substring + "' begins in '" + c.text + "'";
  }
  std::string operator()(const IndexOf& c) const {
    std::ostringstream out;
    out << "generate a string of length " << c.length
        << " that contains the substring '" << c.substring << "' at index "
        << c.index;
    return out.str();
  }
  std::string operator()(const Length& c) const {
    std::ostringstream out;
    out << "check a string of " << c.string_length << " chars has length "
        << c.desired_length << " (bit-prefix form)";
    return out.str();
  }
  std::string operator()(const ReplaceAll& c) const {
    std::ostringstream out;
    out << "replace all '" << c.from << "' with '" << c.to << "' in '"
        << c.input << "'";
    return out.str();
  }
  std::string operator()(const Replace& c) const {
    std::ostringstream out;
    out << "replace first '" << c.from << "' with '" << c.to << "' in '"
        << c.input << "'";
    return out.str();
  }
  std::string operator()(const Reverse& c) const {
    return "reverse '" + c.input + "'";
  }
  std::string operator()(const Palindrome& c) const {
    std::ostringstream out;
    out << "generate a palindrome with length " << c.length;
    return out.str();
  }
  std::string operator()(const RegexMatch& c) const {
    std::ostringstream out;
    out << "generate the regex " << c.pattern << " with length " << c.length;
    return out.str();
  }
  std::string operator()(const CharAt& c) const {
    std::ostringstream out;
    out << "generate a string of length " << c.length << " with '" << c.ch
        << "' at index " << c.index;
    return out.str();
  }
  std::string operator()(const NotContains& c) const {
    std::ostringstream out;
    out << "generate a string of length " << c.length
        << " that does not contain '" << c.substring << "'";
    return out.str();
  }
  std::string operator()(const BoundedLength& c) const {
    std::ostringstream out;
    out << "generate a buffer of " << c.capacity
        << " chars whose content length is in [" << c.min_length << ", "
        << c.max_length << "]";
    return out.str();
  }
};

struct NumVarsVisitor {
  std::size_t operator()(const Equality& c) const {
    return strenc::num_variables(c.target.size());
  }
  std::size_t operator()(const Concat& c) const {
    return strenc::num_variables(c.lhs.size() + c.rhs.size());
  }
  std::size_t operator()(const SubstringMatch& c) const {
    return strenc::num_variables(c.length);
  }
  std::size_t operator()(const Includes& c) const {
    return c.text.size() >= c.substring.size()
               ? c.text.size() - c.substring.size() + 1
               : 0;
  }
  std::size_t operator()(const IndexOf& c) const {
    return strenc::num_variables(c.length);
  }
  std::size_t operator()(const Length& c) const {
    return strenc::num_variables(c.string_length);
  }
  std::size_t operator()(const ReplaceAll& c) const {
    return strenc::num_variables(c.input.size());
  }
  std::size_t operator()(const Replace& c) const {
    return strenc::num_variables(c.input.size());
  }
  std::size_t operator()(const Reverse& c) const {
    return strenc::num_variables(c.input.size());
  }
  std::size_t operator()(const Palindrome& c) const {
    return strenc::num_variables(c.length);
  }
  std::size_t operator()(const RegexMatch& c) const {
    return strenc::num_variables(c.length);
  }
  std::size_t operator()(const CharAt& c) const {
    return strenc::num_variables(c.length);
  }
  std::size_t operator()(const NotContains& c) const {
    return strenc::num_variables(c.length);
  }
  std::size_t operator()(const BoundedLength& c) const {
    return strenc::num_variables(c.capacity);
  }
};

}  // namespace

std::string constraint_name(const Constraint& constraint) {
  return std::visit(NameVisitor{}, constraint);
}

std::string describe(const Constraint& constraint) {
  return std::visit(DescribeVisitor{}, constraint);
}

std::size_t constraint_num_variables(const Constraint& constraint) {
  return std::visit(NumVarsVisitor{}, constraint);
}

bool produces_string(const Constraint& constraint) {
  return !std::holds_alternative<Includes>(constraint);
}

namespace {

struct KeyVisitor {
  std::ostringstream& out;
  static constexpr char sep = '\x1f';

  void operator()(const Equality& c) const { out << "eq" << sep << c.target; }
  void operator()(const Concat& c) const {
    out << "concat" << sep << c.lhs << sep << c.rhs;
  }
  void operator()(const SubstringMatch& c) const {
    out << "substr" << sep << c.length << sep << c.substring;
  }
  void operator()(const Includes& c) const {
    out << "includes" << sep << c.text << sep << c.substring;
  }
  void operator()(const IndexOf& c) const {
    out << "indexof" << sep << c.length << sep << c.substring << sep
        << c.index;
  }
  void operator()(const Length& c) const {
    out << "length" << sep << c.string_length << sep << c.desired_length;
  }
  void operator()(const ReplaceAll& c) const {
    out << "replaceall" << sep << c.input << sep << c.from << sep << c.to;
  }
  void operator()(const Replace& c) const {
    out << "replace" << sep << c.input << sep << c.from << sep << c.to;
  }
  void operator()(const Reverse& c) const {
    out << "reverse" << sep << c.input;
  }
  void operator()(const Palindrome& c) const {
    out << "palindrome" << sep << c.length;
  }
  void operator()(const RegexMatch& c) const {
    out << "regex" << sep << c.pattern << sep << c.length;
  }
  void operator()(const CharAt& c) const {
    out << "charat" << sep << c.length << sep << c.index << sep << c.ch;
  }
  void operator()(const NotContains& c) const {
    out << "notcontains" << sep << c.length << sep << c.substring;
  }
  void operator()(const BoundedLength& c) const {
    out << "boundedlen" << sep << c.capacity << sep << c.min_length << sep
        << c.max_length;
  }
};

}  // namespace

std::string structure_key(const Constraint& constraint) {
  std::ostringstream out;
  std::visit(KeyVisitor{out}, constraint);
  return out.str();
}

}  // namespace qsmt::strqubo

#include "strqubo/solver.hpp"

#include <algorithm>

#include "strenc/ascii7.hpp"
#include "strqubo/verify.hpp"
#include "anneal/simulated_annealer.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace qsmt::strqubo {

namespace {

void record_solve_verdict(bool satisfied) {
  if (!telemetry::enabled()) return;
  telemetry::counter(satisfied ? "strqubo.solve.satisfied"
                               : "strqubo.solve.unsatisfied")
      .add();
}

}  // namespace

StringConstraintSolver::StringConstraintSolver(const anneal::Sampler& sampler,
                                               BuildOptions options)
    : sampler_(&sampler), options_(options) {}

PreparedConstraint prepare(const Constraint& constraint,
                           const BuildOptions& options) {
  Stopwatch build_timer;
  telemetry::Span build_span("strqubo.build");
  qubo::QuboModel model = build(constraint, options);
  qubo::QuboAdjacency adjacency(model);
  build_span.close();
  return PreparedConstraint{constraint, std::move(model), std::move(adjacency),
                            build_timer.elapsed_seconds()};
}

qubo::QuboModel StringConstraintSolver::build_model(
    const Constraint& constraint) const {
  return build(constraint, options_);
}

std::optional<std::size_t> decode_includes_position(
    std::span<const std::uint8_t> bits) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) return i;
  }
  return std::nullopt;
}

RetryResult solve_with_retries(const Constraint& constraint,
                               const RetryParams& params,
                               const BuildOptions& options) {
  require(params.max_attempts >= 1,
          "solve_with_retries: max_attempts must be >= 1");
  require(params.initial_sweeps >= 1 && params.num_reads >= 1,
          "solve_with_retries: need positive reads and sweeps");
  // Every attempt re-samples the same QUBO at a doubled budget; build the
  // model and its CSR adjacency once and reuse them across attempts.
  const PreparedConstraint prepared = prepare(constraint, options);

  RetryResult retry;
  std::size_t sweeps = params.initial_sweeps;
  for (std::size_t attempt = 0; attempt < params.max_attempts; ++attempt) {
    anneal::SimulatedAnnealerParams sa;
    sa.num_reads = params.num_reads;
    sa.num_sweeps = sweeps;
    sa.seed = mix_seed(params.seed, attempt + 1);
    const anneal::SimulatedAnnealer annealer(sa);
    const StringConstraintSolver solver(annealer, options);
    retry.result = solver.solve(prepared);
    retry.final_sweeps = sweeps;
    ++retry.attempts;
    if (telemetry::enabled()) {
      telemetry::counter("strqubo.retry.attempts").add();
    }
    if (retry.result.satisfied) break;
    sweeps *= 2;
  }
  retry.result.build_seconds = prepared.build_seconds;
  if (telemetry::enabled()) {
    telemetry::histogram("strqubo.retry.final_sweeps", telemetry::Unit::kCount)
        .record(static_cast<double>(retry.final_sweeps));
  }
  return retry;
}

std::vector<std::string> enumerate_solutions(const Constraint& constraint,
                                             const anneal::SampleSet& samples,
                                             std::size_t limit) {
  require(produces_string(constraint),
          "enumerate_solutions: constraint must produce a string");
  const std::size_t string_bits = constraint_num_variables(constraint);
  std::vector<std::string> solutions;
  for (const anneal::Sample& sample : samples) {
    if (solutions.size() >= limit) break;
    if (sample.bits.size() < string_bits) continue;
    const std::string candidate = strenc::decode_string(
        std::span(sample.bits).subspan(0, string_bits));
    if (!verify_string(constraint, candidate)) continue;
    if (std::find(solutions.begin(), solutions.end(), candidate) !=
        solutions.end()) {
      continue;
    }
    solutions.push_back(candidate);
  }
  return solutions;
}

SolveResult StringConstraintSolver::solve(const Constraint& constraint) const {
  return solve(prepare(constraint, options_));
}

SolveResult StringConstraintSolver::solve(
    const PreparedConstraint& prepared) const {
  SolveResult result =
      solve(prepared.constraint, prepared.model, prepared.adjacency);
  result.build_seconds = prepared.build_seconds;
  return result;
}

SolveResult decode_and_verify(const Constraint& constraint,
                              const anneal::SampleSet& samples) {
  require(!samples.empty(), "decode_and_verify: sample set is empty");
  telemetry::Span verify_span("strqubo.verify");
  SolveResult result;

  // Decode the best-energy sample first; when several states tie at the
  // bottom of the landscape (common for class encodings), fall through the
  // sample set in energy order and keep the first decoding that passes the
  // classical consistency check — the paper's "transformed back to the
  // original theory, and checked for consistency" step applied per sample.
  if (const auto* includes = std::get_if<Includes>(&constraint)) {
    result.position = decode_includes_position(samples[0].bits);
    result.energy = samples[0].energy;
    result.satisfied = verify_position(*includes, result.position);
    for (std::size_t s = 1; !result.satisfied && s < samples.size(); ++s) {
      const auto position = decode_includes_position(samples[s].bits);
      if (verify_position(*includes, position)) {
        result.position = position;
        result.energy = samples[s].energy;
        result.satisfied = true;
      }
    }
    record_solve_verdict(result.satisfied);
    return result;
  }

  // String-producing constraints: the first 7 * length bits are the string;
  // one-hot regex models append selector variables after them, which the
  // decoder must ignore.
  const std::size_t string_bits = constraint_num_variables(constraint);
  auto decode = [&](const anneal::Sample& sample) {
    return strenc::decode_string(std::span(sample.bits)
                                     .subspan(0, std::min(string_bits,
                                                          sample.bits.size())));
  };
  result.text = decode(samples[0]);
  result.energy = samples[0].energy;
  result.satisfied = verify_string(constraint, *result.text);
  for (std::size_t s = 1; !result.satisfied && s < samples.size(); ++s) {
    const std::string candidate = decode(samples[s]);
    if (verify_string(constraint, candidate)) {
      result.text = candidate;
      result.energy = samples[s].energy;
      result.satisfied = true;
    }
  }
  record_solve_verdict(result.satisfied);
  return result;
}

SolveResult StringConstraintSolver::solve(
    const Constraint& constraint, const qubo::QuboModel& model,
    const qubo::QuboAdjacency& adjacency) const {
  SolveResult result;

  Stopwatch sample_timer;
  {
    telemetry::Span sample_span("strqubo.sample");
    sample_span.arg("num_variables",
                    static_cast<double>(model.num_variables()));
    result.samples = sampler_->supports_adjacency_sampling()
                         ? sampler_->sample(adjacency)
                         : sampler_->sample(model);
  }
  result.sample_seconds = sample_timer.elapsed_seconds();
  require(!result.samples.empty(),
          "StringConstraintSolver::solve: sampler returned no samples");

  SolveResult verdict = decode_and_verify(constraint, result.samples);
  result.text = std::move(verdict.text);
  result.position = verdict.position;
  result.satisfied = verdict.satisfied;
  result.energy = verdict.energy;
  result.num_variables = model.num_variables();
  result.num_interactions = model.num_interactions();
  return result;
}

}  // namespace qsmt::strqubo

// Sequential constraint combination (paper §4.12).
//
// "We perform each operation sequentially ... we will take the output
// solution of the first iteration of our solver, and pass it through as the
// input to the second solver." A Pipeline is a first generating constraint
// followed by transforms; each transform is materialised into a fresh
// constraint over the previous stage's decoded output and solved on the
// annealer like any other.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "strqubo/solver.hpp"

namespace qsmt::strqubo {

/// Transforms applied to the previous stage's output string.
struct ThenReverse {};
struct ThenReplaceAll {
  char from;
  char to;
};
struct ThenReplace {
  char from;
  char to;
};
struct ThenConcat {
  std::string suffix;
};

using Transform =
    std::variant<ThenReverse, ThenReplaceAll, ThenReplace, ThenConcat>;

class Pipeline {
 public:
  /// First stage: any string-producing constraint.
  explicit Pipeline(Constraint first);

  Pipeline& then(Transform transform);

  struct StageResult {
    Constraint constraint;  ///< The materialised constraint that was solved.
    SolveResult result;
  };

  struct Result {
    std::vector<StageResult> stages;
    std::string final_value;
    bool all_satisfied = false;
  };

  /// Runs every stage through `solver`, feeding outputs forward. Throws
  /// std::invalid_argument when the first constraint is not string-producing.
  Result run(const StringConstraintSolver& solver) const;

  std::size_t num_stages() const noexcept { return 1 + transforms_.size(); }

 private:
  Constraint first_;
  std::vector<Transform> transforms_;
};

/// The constraint a transform denotes once its input string is known.
Constraint materialize(const Transform& transform, const std::string& input);

}  // namespace qsmt::strqubo

#include "strqubo/builders.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "qubo/builder.hpp"
#include "qubo/penalties.hpp"
#include "qubo/quadratization.hpp"
#include "strenc/ascii7.hpp"
#include "util/require.hpp"

namespace qsmt::strqubo {

namespace {

using strenc::kBitsPerChar;
using strenc::variable_index;

/// Encodes character `c` at string position `pos` with strength `a`,
/// overwriting any previous diagonal entries for those bits (the paper's
/// "we overwrite the previous entries" semantics, §4.3).
void pin_char(qubo::QuboBuilder& model, std::size_t pos, char c, double a) {
  const auto bits = strenc::encode_char(c);
  for (std::size_t b = 0; b < kBitsPerChar; ++b) {
    model.set_linear(variable_index(pos, b), bits[b] ? -a : a);
  }
}

/// Soft bias toward the 11xxxxx bit prefix (ASCII 96-127: the letter
/// region) used for "any character can appear" positions (§4.5).
void bias_letter_prefix(qubo::QuboBuilder& model, std::size_t pos, double w) {
  model.set_linear(variable_index(pos, 0), -w);
  model.set_linear(variable_index(pos, 1), -w);
}

std::string apply_replace_all(std::string s, char from, char to) {
  std::replace(s.begin(), s.end(), from, to);
  return s;
}

std::string apply_replace_first(std::string s, char from, char to) {
  const auto at = s.find(from);
  if (at != std::string::npos) s[at] = to;
  return s;
}

}  // namespace

qubo::QuboModel build_equality(const std::string& target,
                               const BuildOptions& options) {
  require(strenc::is_ascii7(target), "build_equality: target must be ASCII");
  qubo::QuboBuilder model(strenc::num_variables(target.size()));
  for (std::size_t pos = 0; pos < target.size(); ++pos) {
    pin_char(model, pos, target[pos], options.strength);
  }
  return model.build();
}

qubo::QuboModel build_concat(const std::string& lhs, const std::string& rhs,
                             const BuildOptions& options) {
  return build_equality(lhs + rhs, options);
}

qubo::QuboModel build_substring_match(std::size_t length,
                                      const std::string& substring,
                                      const BuildOptions& options) {
  require(!substring.empty(), "build_substring_match: empty substring");
  require(substring.size() <= length,
          "build_substring_match: substring longer than target length");
  require(strenc::is_ascii7(substring),
          "build_substring_match: substring must be ASCII");
  qubo::QuboBuilder model(strenc::num_variables(length));
  // Encode the substring at every possible starting position; conflicting
  // entries overwrite, so the last start position wins and earlier starts
  // leave only their non-overlapping prefix (§4.3: "cat" in 4 -> "ccat").
  const std::size_t last_start = length - substring.size();
  for (std::size_t start = 0; start <= last_start; ++start) {
    for (std::size_t k = 0; k < substring.size(); ++k) {
      pin_char(model, start + k, substring[k], options.strength);
    }
  }
  return model.build();
}

qubo::QuboModel build_includes(const std::string& text,
                               const std::string& substring,
                               const BuildOptions& options) {
  require(!substring.empty(), "build_includes: empty substring");
  require(substring.size() <= text.size(),
          "build_includes: substring longer than text");
  const std::size_t n = text.size();
  const std::size_t m = substring.size();
  const std::size_t positions = n - m + 1;
  qubo::QuboBuilder model(positions);

  // Objective (§4.4.2): reward each candidate start by the number of
  // matching characters, Q(i,i) -= A * Σ_j δ(t_{i+j}, s_j). The uniform
  // selection cost θ (see BuildOptions) keeps partial matches and empty
  // selections from tying with or beating the true first-match ground state.
  const double theta = options.includes_selection_cost.value_or(
      options.strength * (static_cast<double>(m) - 0.5));
  for (std::size_t i = 0; i < positions; ++i) {
    std::size_t matches = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (text[i + j] == substring[j]) ++matches;
    }
    model.add_linear(i,
                     theta - options.strength * static_cast<double>(matches));
  }

  // Penalty (§4.4.3a): B Σ_{i<j} x_i x_j — at most one selected position.
  for (std::size_t i = 0; i < positions; ++i) {
    for (std::size_t j = i + 1; j < positions; ++j) {
      model.add_quadratic(i, j, options.one_hot_penalty);
    }
  }

  // Penalty (§4.4.3b): cumulative C_i preferring the first full match.
  // C_i counts D for every full match strictly before i, so the first
  // matching position carries the smallest surcharge.
  double c = 0.0;
  for (std::size_t i = 0; i < positions; ++i) {
    const bool full_match = text.compare(i, m, substring) == 0;
    if (full_match) {
      model.add_linear(i, c);
      c += options.first_match_increment;
    }
  }
  return model.build();
}

qubo::QuboModel build_index_of(std::size_t length,
                               const std::string& substring, std::size_t index,
                               const BuildOptions& options) {
  require(!substring.empty(), "build_index_of: empty substring");
  require(index + substring.size() <= length,
          "build_index_of: substring does not fit at index");
  require(strenc::is_ascii7(substring),
          "build_index_of: substring must be ASCII");
  qubo::QuboBuilder model(strenc::num_variables(length));
  const double strong = options.strong_multiplier * options.strength;
  const double soft = options.soft_weight * options.strength;
  for (std::size_t pos = 0; pos < length; ++pos) {
    if (pos >= index && pos < index + substring.size()) {
      pin_char(model, pos, substring[pos - index], strong);
    } else {
      bias_letter_prefix(model, pos, soft);
    }
  }
  return model.build();
}

qubo::QuboModel build_length(std::size_t string_length,
                             std::size_t desired_length,
                             const BuildOptions& options) {
  require(desired_length <= string_length,
          "build_length: desired length exceeds string length");
  // Paper-faithful (§4.6): the first 7L bits should be 1, the rest 0.
  const std::size_t n = strenc::num_variables(string_length);
  const std::size_t boundary = strenc::num_variables(desired_length);
  qubo::QuboBuilder model(n);
  for (std::size_t i = 0; i < n; ++i) {
    model.set_linear(i, i < boundary ? -options.strength : options.strength);
  }
  return model.build();
}

qubo::QuboModel build_length_printable(std::size_t string_length,
                                       std::size_t desired_length,
                                       const BuildOptions& options) {
  require(desired_length <= string_length,
          "build_length_printable: desired length exceeds string length");
  qubo::QuboBuilder model(strenc::num_variables(string_length));
  const double soft = options.soft_weight * options.strength;
  for (std::size_t pos = 0; pos < string_length; ++pos) {
    if (pos < desired_length) {
      bias_letter_prefix(model, pos, soft);
    } else {
      pin_char(model, pos, '\0', options.strength);
    }
  }
  return model.build();
}

qubo::QuboModel build_replace_all(const std::string& input, char from, char to,
                                  const BuildOptions& options) {
  return build_equality(apply_replace_all(input, from, to), options);
}

qubo::QuboModel build_replace(const std::string& input, char from, char to,
                              const BuildOptions& options) {
  return build_equality(apply_replace_first(input, from, to), options);
}

qubo::QuboModel build_reverse(const std::string& input,
                              const BuildOptions& options) {
  return build_equality(std::string(input.rbegin(), input.rend()), options);
}

qubo::QuboModel build_palindrome(std::size_t length,
                                 const BuildOptions& options) {
  require(length >= 1, "build_palindrome: length must be positive");
  qubo::QuboBuilder model(strenc::num_variables(length));
  // §4.10: for each mirrored character pair and each bit, an XNOR gadget
  // A (x_i + x_j - 2 x_i x_j): zero energy iff the bits agree.
  for (std::size_t j = 0; j < length / 2; ++j) {
    const std::size_t mirror = length - 1 - j;
    for (std::size_t b = 0; b < kBitsPerChar; ++b) {
      qubo::add_equal_bits(model, variable_index(j, b),
                           variable_index(mirror, b), options.strength);
    }
  }
  if (options.palindrome_printable_bias > 0.0) {
    for (std::size_t pos = 0; pos < length; ++pos) {
      model.add_linear(variable_index(pos, 0),
                       -options.palindrome_printable_bias);
      model.add_linear(variable_index(pos, 1),
                       -options.palindrome_printable_bias);
    }
  }
  return model.build();
}

std::size_t regex_selector_base(std::size_t length) {
  return strenc::num_variables(length);
}

qubo::QuboModel build_regex(const std::string& pattern, std::size_t length,
                            const BuildOptions& options) {
  const regex::Pattern parsed = regex::parse_pattern(pattern);
  const auto tokens = regex::expand_to_length(parsed, length);
  qubo::QuboBuilder model(strenc::num_variables(length));

  std::size_t next_selector = regex_selector_base(length);
  for (std::size_t pos = 0; pos < tokens.size(); ++pos) {
    const auto& token = tokens[pos];
    if (!token.is_class || token.chars.size() == 1) {
      // Literal (or singleton class): the §4.1 diagonal row.
      pin_char(model, pos, token.chars[0], options.strength);
      continue;
    }
    if (options.regex_encoding == RegexClassEncoding::kPaperAveraged) {
      // §4.11: every class character contributes ±A / |chars| per bit.
      const double share =
          options.strength / static_cast<double>(token.chars.size());
      for (char c : token.chars) {
        const auto bits = strenc::encode_char(c);
        for (std::size_t b = 0; b < kBitsPerChar; ++b) {
          model.add_linear(variable_index(pos, b), bits[b] ? -share : share);
        }
      }
    } else {
      // Extension: one-hot selector per class character. Selecting s_c
      // forces the position's bits to bin(c) via XOR-shaped couplings:
      //   target bit 1:  A s_c (1 - x_b)
      //   target bit 0:  A s_c x_b
      std::vector<std::size_t> selectors;
      selectors.reserve(token.chars.size());
      for (std::size_t k = 0; k < token.chars.size(); ++k) {
        selectors.push_back(next_selector++);
      }
      model.ensure_variables(next_selector);
      qubo::add_one_hot(model, selectors, options.strength * 2.0);
      for (std::size_t k = 0; k < token.chars.size(); ++k) {
        const auto bits = strenc::encode_char(token.chars[k]);
        for (std::size_t b = 0; b < kBitsPerChar; ++b) {
          const std::size_t x = variable_index(pos, b);
          if (bits[b]) {
            model.add_linear(selectors[k], options.strength);
            model.add_quadratic(selectors[k], x, -options.strength);
          } else {
            model.add_quadratic(selectors[k], x, options.strength);
          }
        }
      }
    }
  }
  return model.build();
}

qubo::QuboModel build_char_at(std::size_t length, std::size_t index, char ch,
                              const BuildOptions& options) {
  require(index < length, "build_char_at: index out of range");
  qubo::QuboBuilder model(strenc::num_variables(length));
  const double strong = options.strong_multiplier * options.strength;
  const double soft = options.soft_weight * options.strength;
  for (std::size_t pos = 0; pos < length; ++pos) {
    if (pos == index) {
      pin_char(model, pos, ch, strong);
    } else {
      bias_letter_prefix(model, pos, soft);
    }
  }
  return model.build();
}

qubo::QuboModel build_not_contains(std::size_t length,
                                   const std::string& substring,
                                   const BuildOptions& options) {
  require(!substring.empty(), "build_not_contains: empty substring");
  require(strenc::is_ascii7(substring),
          "build_not_contains: substring must be ASCII");
  qubo::QuboBuilder model(strenc::num_variables(length));
  const double soft = options.soft_weight * options.strength;
  for (std::size_t pos = 0; pos < length; ++pos) {
    bias_letter_prefix(model, pos, soft);
  }
  if (substring.size() > length) return model.build();  // Cannot occur; bias only.

  // For every window, an indicator y = AND over the window's 84 bit
  // agreements (bit set where the substring bit is 1, cleared where 0),
  // quadratized with ancillas; y firing costs far more than any bias gain.
  const double gadget = options.strength;
  const double violation = 2.0 * options.strong_multiplier * options.strength;
  for (std::size_t start = 0; start + substring.size() <= length; ++start) {
    std::vector<qubo::BoolLiteral> window;
    window.reserve(substring.size() * kBitsPerChar);
    for (std::size_t k = 0; k < substring.size(); ++k) {
      const auto bits = strenc::encode_char(substring[k]);
      for (std::size_t b = 0; b < kBitsPerChar; ++b) {
        window.push_back(qubo::BoolLiteral{
            variable_index(start + k, b), bits[b] != 0});
      }
    }
    const std::size_t indicator =
        qubo::add_conjunction(model, window, gadget);
    model.add_linear(indicator, violation);
  }
  return model.build();
}

qubo::QuboModel build_bounded_length(std::size_t capacity,
                                     std::size_t min_length,
                                     std::size_t max_length,
                                     const BuildOptions& options) {
  require(min_length <= max_length && max_length <= capacity,
          "build_bounded_length: need min <= max <= capacity");
  qubo::QuboBuilder model(strenc::num_variables(capacity));
  const double soft = options.soft_weight * options.strength;

  // One selector per candidate content length.
  std::vector<std::size_t> selectors;
  selectors.reserve(max_length - min_length + 1);
  const std::size_t base = strenc::num_variables(capacity);
  for (std::size_t k = min_length; k <= max_length; ++k) {
    selectors.push_back(base + (k - min_length));
  }
  model.ensure_variables(base + selectors.size());
  qubo::add_one_hot(model, selectors, 2.0 * options.strength);

  for (std::size_t s = 0; s < selectors.size(); ++s) {
    const std::size_t k = min_length + s;
    for (std::size_t pos = 0; pos < capacity; ++pos) {
      if (pos < k) {
        // Content: letter-prefix bias conditioned on this selector. The
        // neutraliser on the selector's linear term keeps every k at the
        // same ground energy (otherwise longer content is always cheaper).
        model.add_quadratic(selectors[s], variable_index(pos, 0), -soft);
        model.add_quadratic(selectors[s], variable_index(pos, 1), -soft);
        model.add_linear(selectors[s], 2.0 * soft);
      } else {
        // Padding: every set bit costs A while this selector is active.
        for (std::size_t b = 0; b < kBitsPerChar; ++b) {
          model.add_quadratic(selectors[s], variable_index(pos, b),
                              options.strength);
        }
      }
    }
  }
  return model.build();
}

qubo::QuboModel build(const Constraint& constraint,
                      const BuildOptions& options) {
  return std::visit(
      [&](const auto& c) -> qubo::QuboModel {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, Equality>) {
          return build_equality(c.target, options);
        } else if constexpr (std::is_same_v<T, Concat>) {
          return build_concat(c.lhs, c.rhs, options);
        } else if constexpr (std::is_same_v<T, SubstringMatch>) {
          return build_substring_match(c.length, c.substring, options);
        } else if constexpr (std::is_same_v<T, Includes>) {
          return build_includes(c.text, c.substring, options);
        } else if constexpr (std::is_same_v<T, IndexOf>) {
          return build_index_of(c.length, c.substring, c.index, options);
        } else if constexpr (std::is_same_v<T, Length>) {
          return build_length(c.string_length, c.desired_length, options);
        } else if constexpr (std::is_same_v<T, ReplaceAll>) {
          return build_replace_all(c.input, c.from, c.to, options);
        } else if constexpr (std::is_same_v<T, Replace>) {
          return build_replace(c.input, c.from, c.to, options);
        } else if constexpr (std::is_same_v<T, Reverse>) {
          return build_reverse(c.input, options);
        } else if constexpr (std::is_same_v<T, Palindrome>) {
          return build_palindrome(c.length, options);
        } else if constexpr (std::is_same_v<T, RegexMatch>) {
          return build_regex(c.pattern, c.length, options);
        } else if constexpr (std::is_same_v<T, CharAt>) {
          return build_char_at(c.length, c.index, c.ch, options);
        } else if constexpr (std::is_same_v<T, NotContains>) {
          return build_not_contains(c.length, c.substring, options);
        } else {
          static_assert(std::is_same_v<T, BoundedLength>);
          return build_bounded_length(c.capacity, c.min_length, c.max_length,
                                      options);
        }
      },
      constraint);
}

double expected_ground_energy(const Constraint& constraint,
                              const BuildOptions& options) {
  const qubo::QuboModel model = build(constraint, options);
  if (model.num_interactions() == 0) {
    // Diagonal-only model: each bit independently takes its cheaper value.
    double e = model.offset();
    for (double v : model.linear_terms()) e += std::min(0.0, v);
    return e;
  }
  if (std::holds_alternative<Palindrome>(constraint)) {
    // The mirror gadgets reach zero on any palindrome, and the optional
    // letter-prefix bias (2 bits per character) is simultaneously
    // satisfiable at both mirrored positions, so the ground energy is just
    // the bias total.
    const auto& pal = std::get<Palindrome>(constraint);
    return model.offset() - options.palindrome_printable_bias * 2.0 *
                                static_cast<double>(pal.length);
  }
  if (std::holds_alternative<Includes>(constraint)) {
    // With the pairwise penalty, the ground state selects the single best
    // diagonal (or nothing when all diagonals are >= 0).
    double best = 0.0;
    for (double v : model.linear_terms()) best = std::min(best, v);
    return model.offset() + best;
  }
  if (std::holds_alternative<BoundedLength>(constraint)) {
    // Feasible states sit at 0: the one-hot gadget and NUL couplings are
    // satisfied exactly, and the selector neutraliser cancels the content
    // bias for every admissible length.
    return 0.0;
  }
  if (std::holds_alternative<RegexMatch>(constraint) &&
      options.regex_encoding == RegexClassEncoding::kOneHotSelectors) {
    // Feasible selections satisfy every gadget exactly: only the literal
    // positions' diagonal rows contribute.
    const auto& rm = std::get<RegexMatch>(constraint);
    const auto tokens = regex::expand_to_length(regex::parse_pattern(rm.pattern),
                                                rm.length);
    double e = 0.0;
    for (const auto& token : tokens) {
      if (!token.is_class || token.chars.size() == 1) {
        for (std::uint8_t bit : strenc::encode_char(token.chars[0])) {
          if (bit) e -= options.strength;
        }
      }
    }
    return e;
  }
  throw std::invalid_argument(
      "expected_ground_energy: no closed form for this constraint");
}

std::string options_fingerprint(const BuildOptions& options) {
  std::ostringstream out;
  out << options.strength << '\x1f' << options.one_hot_penalty << '\x1f'
      << options.first_match_increment << '\x1f';
  if (options.includes_selection_cost) {
    out << *options.includes_selection_cost;
  } else {
    out << "auto";
  }
  out << '\x1f' << options.strong_multiplier << '\x1f' << options.soft_weight
      << '\x1f' << options.palindrome_printable_bias << '\x1f'
      << static_cast<int>(options.regex_encoding);
  return out.str();
}

}  // namespace qsmt::strqubo

#include "strqubo/verify.hpp"

#include <algorithm>

#include "regex/nfa.hpp"
#include "strenc/ascii7.hpp"

namespace qsmt::strqubo {

std::string replace_all_chars(std::string input, char from, char to) {
  std::replace(input.begin(), input.end(), from, to);
  return input;
}

std::string replace_first_char(std::string input, char from, char to) {
  const auto at = input.find(from);
  if (at != std::string::npos) input[at] = to;
  return input;
}

std::optional<std::string> expected_string(const Constraint& constraint) {
  return std::visit(
      [](const auto& c) -> std::optional<std::string> {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, Equality>) {
          return c.target;
        } else if constexpr (std::is_same_v<T, Concat>) {
          return c.lhs + c.rhs;
        } else if constexpr (std::is_same_v<T, ReplaceAll>) {
          return replace_all_chars(c.input, c.from, c.to);
        } else if constexpr (std::is_same_v<T, Replace>) {
          return replace_first_char(c.input, c.from, c.to);
        } else if constexpr (std::is_same_v<T, Reverse>) {
          return std::string(c.input.rbegin(), c.input.rend());
        } else if constexpr (std::is_same_v<T, Length>) {
          // Paper-faithful bit-prefix form decodes to L DEL characters
          // followed by NULs (all-ones then all-zeros bit blocks).
          std::string s(c.string_length, '\0');
          std::fill_n(s.begin(), c.desired_length, '\x7f');
          return s;
        } else {
          return std::nullopt;
        }
      },
      constraint);
}

bool verify_string(const Constraint& constraint, std::string_view candidate) {
  return std::visit(
      [&](const auto& c) -> bool {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, Equality>) {
          return candidate == c.target;
        } else if constexpr (std::is_same_v<T, Concat>) {
          return candidate == c.lhs + c.rhs;
        } else if constexpr (std::is_same_v<T, SubstringMatch>) {
          return candidate.size() == c.length &&
                 candidate.find(c.substring) != std::string_view::npos;
        } else if constexpr (std::is_same_v<T, Includes>) {
          return false;  // Produces a position; see verify_position.
        } else if constexpr (std::is_same_v<T, IndexOf>) {
          return candidate.size() == c.length &&
                 candidate.compare(c.index, c.substring.size(), c.substring) ==
                     0;
        } else if constexpr (std::is_same_v<T, Length>) {
          if (candidate.size() != c.string_length) return false;
          for (std::size_t i = 0; i < candidate.size(); ++i) {
            const char want = i < c.desired_length ? '\x7f' : '\0';
            if (candidate[i] != want) return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, ReplaceAll>) {
          return candidate == replace_all_chars(c.input, c.from, c.to);
        } else if constexpr (std::is_same_v<T, Replace>) {
          return candidate == replace_first_char(c.input, c.from, c.to);
        } else if constexpr (std::is_same_v<T, Reverse>) {
          return candidate == std::string(c.input.rbegin(), c.input.rend());
        } else if constexpr (std::is_same_v<T, Palindrome>) {
          if (candidate.size() != c.length) return false;
          return std::equal(candidate.begin(),
                            candidate.begin() +
                                static_cast<std::ptrdiff_t>(candidate.size() / 2),
                            candidate.rbegin());
        } else if constexpr (std::is_same_v<T, RegexMatch>) {
          return candidate.size() == c.length &&
                 regex::full_match(c.pattern, candidate);
        } else if constexpr (std::is_same_v<T, CharAt>) {
          return candidate.size() == c.length && c.index < candidate.size() &&
                 candidate[c.index] == c.ch;
        } else if constexpr (std::is_same_v<T, NotContains>) {
          return candidate.size() == c.length &&
                 candidate.find(c.substring) == std::string_view::npos;
        } else {
          static_assert(std::is_same_v<T, BoundedLength>);
          if (candidate.size() != c.capacity) return false;
          // Content length = position of the first NUL; everything after
          // must be NUL padding.
          std::size_t content = candidate.size();
          for (std::size_t i = 0; i < candidate.size(); ++i) {
            if (candidate[i] == '\0') {
              content = i;
              break;
            }
          }
          for (std::size_t i = content; i < candidate.size(); ++i) {
            if (candidate[i] != '\0') return false;
          }
          return content >= c.min_length && content <= c.max_length;
        }
      },
      constraint);
}

bool verify_position(const Includes& constraint,
                     std::optional<std::size_t> position) {
  const auto found = constraint.text.find(constraint.substring);
  if (found == std::string::npos) return !position.has_value();
  return position.has_value() && *position == found;
}

}  // namespace qsmt::strqubo

// Exact unsatisfiability certificates for small string conjunctions.
//
// The annealer is one-sided: it can exhibit witnesses but never prove their
// absence, so without this module every genuinely-unsatisfiable query
// degrades to `unknown`. certify_unsat() closes that gap for the cases
// where a classical proof is cheap, and is *sound by construction* — it
// reports `proven` only when one of its routes is a complete argument:
//
//   1. length conflict   — every string-producing constraint fixes the
//                          generated string's character count exactly (all
//                          verify_string implementations check size first),
//                          so conjuncts that disagree admit no witness;
//   2. impossible regex  — the pattern's fixed-length expansion does not
//                          reach the demanded length (reachable lengths are
//                          an interval, so failure to expand is a proof);
//   3. pinned witness    — a conjunct with a *unique* satisfying string
//                          (strqubo::expected_string) that violates another
//                          conjunct rules out every assignment at once;
//   4. bounded search    — exhaustive DFS over the full 7-bit alphabet with
//                          conservative prefix pruning (prefix_feasible
//                          never discards a live prefix), run only when the
//                          string is at most kMaxExhaustiveLength chars.
//
// A `proven = false` result means nothing: the query may still be
// unsatisfiable, just not provably so within these routes.
#pragma once

#include <string>
#include <vector>

#include "strqubo/constraint.hpp"

namespace qsmt::baseline {

/// Strings up to this many characters (128^3 candidates) are searched
/// exhaustively by route 4.
inline constexpr std::size_t kMaxExhaustiveLength = 3;

struct UnsatCertificate {
  /// True only when unsatisfiability was PROVED (never heuristic).
  bool proven = false;
  /// Human-readable certificate ("conjuncts pin different lengths ...").
  std::string reason;
};

/// Attempts to prove a conjunction of string-producing constraints over one
/// shared variable unsatisfiable. Conjunctions containing Includes (which
/// produces a position, not a string) are never certified here.
UnsatCertificate certify_unsat(
    const std::vector<strqubo::Constraint>& constraints);

}  // namespace qsmt::baseline

#include "baseline/unsat.hpp"

#include <optional>
#include <stdexcept>

#include "baseline/classical.hpp"
#include "regex/pattern.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/verify.hpp"

namespace qsmt::baseline {

namespace {

std::size_t constraint_length(const strqubo::Constraint& constraint) {
  return strqubo::constraint_num_variables(constraint) / strenc::kBitsPerChar;
}

/// Depth-first search over all 7-bit strings of `length`, pruning prefixes
/// no constraint can extend. prefix_feasible is conservative-true, so the
/// search is complete: returning false proves no witness exists.
bool witness_exists(const std::vector<strqubo::Constraint>& constraints,
                    std::string& prefix, std::size_t length) {
  if (prefix.size() == length) {
    for (const auto& c : constraints) {
      if (!strqubo::verify_string(c, prefix)) return false;
    }
    return true;
  }
  for (int ch = 0; ch < 128; ++ch) {
    prefix.push_back(static_cast<char>(ch));
    bool live = true;
    for (const auto& c : constraints) {
      if (!prefix_feasible(c, prefix, length)) {
        live = false;
        break;
      }
    }
    const bool found = live && witness_exists(constraints, prefix, length);
    prefix.pop_back();
    if (found) return true;
  }
  return false;
}

}  // namespace

UnsatCertificate certify_unsat(
    const std::vector<strqubo::Constraint>& constraints) {
  UnsatCertificate certificate;
  if (constraints.empty()) return certificate;  // Trivially satisfiable.
  for (const auto& c : constraints) {
    if (!strqubo::produces_string(c)) return certificate;
  }

  // Route 1: length conflict.
  const std::size_t length = constraint_length(constraints.front());
  for (const auto& c : constraints) {
    if (constraint_length(c) != length) {
      certificate.proven = true;
      certificate.reason = "conjuncts pin different string lengths: '" +
                           strqubo::describe(constraints.front()) + "' needs " +
                           std::to_string(length) + " characters but '" +
                           strqubo::describe(c) + "' needs " +
                           std::to_string(constraint_length(c));
      return certificate;
    }
  }

  // Route 2: a regex pattern whose expansion cannot reach the length.
  for (const auto& c : constraints) {
    const auto* re = std::get_if<strqubo::RegexMatch>(&c);
    if (re == nullptr) continue;
    regex::Pattern pattern;
    try {
      pattern = regex::parse_pattern(re->pattern);
    } catch (const std::invalid_argument&) {
      // Malformed pattern: the builder reports it, not us — and the later
      // routes must not run, since verifying any witness against this
      // constraint would rethrow the parse error.
      return certificate;
    }
    try {
      regex::expand_to_length(pattern, re->length);
    } catch (const std::invalid_argument& e) {
      certificate.proven = true;
      certificate.reason = "regex '" + re->pattern +
                           "' matches no string of length " +
                           std::to_string(re->length) + " (" + e.what() + ")";
      return certificate;
    }
  }

  // Route 3: a conjunct with a unique satisfying string that violates a
  // sibling conjunct refutes the whole conjunction.
  for (const auto& pinned : constraints) {
    const std::optional<std::string> witness = strqubo::expected_string(pinned);
    if (!witness) continue;
    for (const auto& other : constraints) {
      if (strqubo::verify_string(other, *witness)) continue;
      certificate.proven = true;
      certificate.reason = "the only string satisfying '" +
                           strqubo::describe(pinned) + "' (" +
                           (strenc::is_printable(*witness)
                                ? "\"" + *witness + "\""
                                : std::to_string(witness->size()) + " chars") +
                           ") violates '" + strqubo::describe(other) + "'";
      return certificate;
    }
  }

  // Route 4: exhaustive search with conservative pruning.
  if (length <= kMaxExhaustiveLength) {
    std::string prefix;
    prefix.reserve(length);
    if (!witness_exists(constraints, prefix, length)) {
      certificate.proven = true;
      certificate.reason =
          "exhaustive search over all 128^" + std::to_string(length) +
          " strings of length " + std::to_string(length) + " found no witness";
    }
  }
  return certificate;
}

}  // namespace qsmt::baseline

#include "baseline/classical.hpp"

#include <algorithm>

#include "regex/nfa.hpp"
#include "strqubo/verify.hpp"
#include "util/require.hpp"

namespace qsmt::baseline {

namespace {

using strqubo::Constraint;

/// The target length of the string a constraint generates.
std::size_t target_length(const Constraint& constraint) {
  return strqubo::constraint_num_variables(constraint) / 7;
}

std::string construct_regex_witness(const std::string& pattern,
                                    std::size_t length) {
  const auto parsed = regex::parse_pattern(pattern);
  const auto tokens = regex::expand_to_length(parsed, length);
  std::string witness;
  witness.reserve(length);
  for (const auto& token : tokens) witness.push_back(token.chars[0]);
  return witness;
}

}  // namespace

BaselineResult DirectBaseline::solve(const Constraint& constraint) const {
  BaselineResult result;
  if (const auto* includes = std::get_if<strqubo::Includes>(&constraint)) {
    const auto at = includes->text.find(includes->substring);
    if (at != std::string::npos) result.position = at;
    result.satisfied = strqubo::verify_position(*includes, result.position);
    return result;
  }

  std::string witness;
  if (auto expected = strqubo::expected_string(constraint)) {
    witness = std::move(*expected);
  } else if (const auto* sub = std::get_if<strqubo::SubstringMatch>(&constraint)) {
    witness.assign(sub->length, 'a');
    witness.replace(0, sub->substring.size(), sub->substring);
  } else if (const auto* idx = std::get_if<strqubo::IndexOf>(&constraint)) {
    witness.assign(idx->length, 'a');
    witness.replace(idx->index, idx->substring.size(), idx->substring);
  } else if (const auto* pal = std::get_if<strqubo::Palindrome>(&constraint)) {
    witness.assign(pal->length, 'a');
    for (std::size_t i = 0; i < pal->length / 2; ++i) {
      const char c = static_cast<char>('a' + static_cast<char>(i % 26));
      witness[i] = c;
      witness[pal->length - 1 - i] = c;
    }
  } else if (const auto* re = std::get_if<strqubo::RegexMatch>(&constraint)) {
    witness = construct_regex_witness(re->pattern, re->length);
  } else if (const auto* at = std::get_if<strqubo::CharAt>(&constraint)) {
    witness.assign(at->length, 'a');
    witness[at->index] = at->ch;
  } else if (const auto* nc = std::get_if<strqubo::NotContains>(&constraint)) {
    // A constant string avoids any substring that is not itself constant of
    // the same character; fall to 'b' when it is.
    witness.assign(nc->length, 'a');
    if (witness.find(nc->substring) != std::string::npos) {
      witness.assign(nc->length, 'b');
    }
  } else if (const auto* bl = std::get_if<strqubo::BoundedLength>(&constraint)) {
    witness.assign(bl->capacity, '\0');
    std::fill_n(witness.begin(),
                static_cast<std::ptrdiff_t>(bl->min_length), 'a');
  }
  result.text = witness;
  result.satisfied = strqubo::verify_string(constraint, witness);
  return result;
}

bool prefix_feasible(const Constraint& constraint, const std::string& prefix,
                     std::size_t length) {
  return std::visit(
      [&](const auto& c) -> bool {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, strqubo::Includes>) {
          return true;  // Includes is not an enumeration problem.
        } else if constexpr (std::is_same_v<T, strqubo::SubstringMatch>) {
          // Feasible iff some start window is consistent with the fixed
          // prefix characters.
          if (c.substring.size() > length) return false;
          for (std::size_t start = 0; start + c.substring.size() <= length;
               ++start) {
            bool ok = true;
            for (std::size_t k = 0; k < c.substring.size(); ++k) {
              const std::size_t at = start + k;
              if (at < prefix.size() && prefix[at] != c.substring[k]) {
                ok = false;
                break;
              }
            }
            if (ok) return true;
          }
          return false;
        } else if constexpr (std::is_same_v<T, strqubo::IndexOf>) {
          for (std::size_t k = 0; k < c.substring.size(); ++k) {
            const std::size_t at = c.index + k;
            if (at < prefix.size() && prefix[at] != c.substring[k])
              return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, strqubo::CharAt>) {
          return c.index >= prefix.size() || prefix[c.index] == c.ch;
        } else if constexpr (std::is_same_v<T, strqubo::NotContains>) {
          return prefix.find(c.substring) == std::string::npos;
        } else if constexpr (std::is_same_v<T, strqubo::BoundedLength>) {
          // A NUL before min_length or content after a NUL is a dead end;
          // a non-NUL at or beyond max_length is too.
          const auto first_nul = prefix.find('\0');
          if (first_nul == std::string::npos) {
            return prefix.size() <= c.max_length;
          }
          if (first_nul < c.min_length) return false;
          for (std::size_t i = first_nul; i < prefix.size(); ++i) {
            if (prefix[i] != '\0') return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, strqubo::Palindrome>) {
          for (std::size_t i = 0; i < prefix.size(); ++i) {
            const std::size_t mirror = length - 1 - i;
            if (mirror < prefix.size() && prefix[mirror] != prefix[i])
              return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, strqubo::RegexMatch>) {
          // Check the prefix against the fixed-length token expansion. This
          // is exact for '+'-free patterns; with '+' the expansion is only
          // one of several shapes, so mismatches degrade to "maybe".
          const auto tokens = regex::expand_to_length(
              regex::parse_pattern(c.pattern), length);
          for (std::size_t p = 0; p < prefix.size(); ++p) {
            if (tokens[p].chars.find(prefix[p]) == std::string::npos) {
              // The fixed expansion is only one of several shapes when the
              // pattern has '+'; fall back to "maybe" in that case.
              return regex::parse_pattern(c.pattern).has_plus();
            }
          }
          return true;
        } else {
          // Deterministic-output constraints: prefix must match the witness.
          const auto expected = strqubo::expected_string(constraint);
          if (!expected || expected->size() != length) return false;
          return expected->compare(0, prefix.size(), prefix) == 0;
        }
      },
      constraint);
}

EnumerationBaseline::EnumerationBaseline(Params params)
    : params_(std::move(params)) {
  require(!params_.alphabet.empty(),
          "EnumerationBaseline: alphabet must not be empty");
}

BaselineResult EnumerationBaseline::solve(const Constraint& constraint) const {
  BaselineResult result;
  if (const auto* includes = std::get_if<strqubo::Includes>(&constraint)) {
    // Enumerating positions: linear scan counts as one node per position.
    for (std::size_t i = 0;
         i + includes->substring.size() <= includes->text.size(); ++i) {
      ++result.nodes_explored;
      if (includes->text.compare(i, includes->substring.size(),
                                 includes->substring) == 0) {
        result.position = i;
        break;
      }
    }
    result.satisfied = strqubo::verify_position(*includes, result.position);
    return result;
  }

  const std::size_t length = target_length(constraint);
  std::string candidate;
  candidate.reserve(length);

  // Iterative DFS over alphabet^length with prefix pruning.
  // stack[i] = index into alphabet currently tried at position i.
  std::vector<std::size_t> stack;
  stack.reserve(length);
  bool found = false;

  auto push = [&](std::size_t alpha_index) {
    stack.push_back(alpha_index);
    candidate.push_back(params_.alphabet[alpha_index]);
  };
  auto pop = [&] {
    stack.pop_back();
    candidate.pop_back();
  };

  if (length == 0) {
    result.text = "";
    result.satisfied = strqubo::verify_string(constraint, "");
    return result;
  }

  push(0);
  while (!stack.empty()) {
    if (++result.nodes_explored > params_.max_nodes) {
      result.budget_exhausted = true;
      break;
    }
    const bool live =
        !params_.prune || prefix_feasible(constraint, candidate, length);
    if (live && candidate.size() == length &&
        strqubo::verify_string(constraint, candidate)) {
      found = true;
      break;
    }
    if (live && candidate.size() < length) {
      push(0);
      continue;
    }
    // Backtrack to the next sibling.
    while (!stack.empty()) {
      const std::size_t next = stack.back() + 1;
      pop();
      if (next < params_.alphabet.size()) {
        push(next);
        break;
      }
    }
  }

  if (found) {
    result.text = candidate;
    result.satisfied = true;
  }
  return result;
}

}  // namespace qsmt::baseline

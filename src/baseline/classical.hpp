// Classical string-constraint solvers over the same constraint IR.
//
// Two baselines bracket the classical spectrum the paper positions itself
// against (§1: automata methods vs. large search spaces):
//
//  * DirectBaseline — the rewriting/constructive route a mature solver
//    takes: each operation has a closed-form witness (transform the input,
//    place the substring, walk the NFA). Always succeeds, effectively O(n).
//
//  * EnumerationBaseline — the naive search route: depth-first enumeration
//    of candidate strings over a caller-chosen alphabet with per-position
//    prefix pruning. Exponential in string length; its node counter is the
//    cost metric in the crossover benches (E5).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "strqubo/constraint.hpp"

namespace qsmt::baseline {

struct BaselineResult {
  std::optional<std::string> text;
  std::optional<std::size_t> position;  ///< For Includes.
  bool satisfied = false;
  std::uint64_t nodes_explored = 0;     ///< Search nodes (enumeration only).
  bool budget_exhausted = false;        ///< Enumeration hit its node cap.
};

/// Constructive solver: always returns a satisfying witness when one
/// exists within the constraint's own alphabet.
class DirectBaseline {
 public:
  BaselineResult solve(const strqubo::Constraint& constraint) const;
};

/// Depth-first enumeration with prefix pruning.
class EnumerationBaseline {
 public:
  struct Params {
    /// Candidate alphabet for free positions.
    std::string alphabet = "abcdefghijklmnopqrstuvwxyz";
    /// Give up after this many search nodes (budget_exhausted = true).
    std::uint64_t max_nodes = 50'000'000;
    /// Prune branches whose prefix cannot extend to a solution.
    bool prune = true;
  };

  EnumerationBaseline() : EnumerationBaseline(Params{}) {}
  explicit EnumerationBaseline(Params params);

  BaselineResult solve(const strqubo::Constraint& constraint) const;

 private:
  Params params_;
};

/// True when `prefix` (the first prefix.size() characters of a candidate of
/// total size `length`) can still be extended to satisfy `constraint`.
/// Conservative: may return true for dead prefixes, never false for live
/// ones. Exposed for the property tests.
bool prefix_feasible(const strqubo::Constraint& constraint,
                     const std::string& prefix, std::size_t length);

}  // namespace qsmt::baseline

#include "server/admission.hpp"

#include <algorithm>
#include <chrono>

#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace qsmt::server {

AdmissionGate::AdmissionGate(std::size_t max_inflight, std::size_t max_waiting)
    : max_inflight_(max_inflight), max_waiting_(max_waiting) {
  require(max_inflight_ >= 1, "AdmissionGate: max_inflight must be >= 1");
}

void AdmissionGate::publish_depth_locked() const {
  if (telemetry::enabled()) {
    telemetry::gauge("server.queue.depth")
        .set(static_cast<double>(line_.size()));
  }
}

AdmissionGate::Outcome AdmissionGate::acquire(
    const std::function<bool()>& abandon) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) return Outcome::kClosed;
  if (inflight_ < max_inflight_ && line_.empty()) {
    ++inflight_;
    ++admitted_;
    publish_depth_locked();
    return Outcome::kAdmitted;
  }
  if (line_.size() >= max_waiting_) {
    ++rejected_;
    if (telemetry::enabled()) {
      telemetry::counter("server.admission.rejects").add();
    }
    return Outcome::kRejected;
  }
  const std::uint64_t ticket = next_ticket_++;
  line_.push_back(ticket);
  publish_depth_locked();
  const auto leave_line = [&] {
    line_.erase(std::find(line_.begin(), line_.end(), ticket));
    publish_depth_locked();
    cv_.notify_all();
  };
  for (;;) {
    // Bounded waits so the abandon probe (client liveness) gets polled
    // even when no slot frees for a long time.
    cv_.wait_for(lock, std::chrono::milliseconds(20));
    if (closed_) {
      leave_line();
      return Outcome::kClosed;
    }
    if (abandon && abandon()) {
      leave_line();
      ++abandoned_;
      return Outcome::kAbandoned;
    }
    if (inflight_ < max_inflight_ && !line_.empty() &&
        line_.front() == ticket) {
      line_.pop_front();
      publish_depth_locked();
      ++inflight_;
      ++admitted_;
      cv_.notify_all();
      return Outcome::kAdmitted;
    }
  }
}

void AdmissionGate::release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (inflight_ > 0) --inflight_;
  }
  cv_.notify_all();
}

void AdmissionGate::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

AdmissionGate::Stats AdmissionGate::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.admitted = admitted_;
  stats.rejected = rejected_;
  stats.abandoned = abandoned_;
  stats.inflight = inflight_;
  stats.waiting = line_.size();
  return stats;
}

}  // namespace qsmt::server

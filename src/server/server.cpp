#include "server/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace qsmt::server {

namespace {

/// Non-destructive connection liveness probe: peek one byte without
/// blocking. 0 = orderly shutdown (client gone); EAGAIN = idle but alive;
/// pending data = alive.
bool socket_alive(int fd) {
  char probe;
  const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n > 0) return true;
  if (n == 0) return false;
  return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t default_inflight(const service::SolveService& service,
                             std::size_t configured) {
  if (configured != 0) return configured;
  return service.num_workers() > 0 ? service.num_workers() : 1;
}

}  // namespace

/// Book-keeping for one live socket connection, shared between its handler
/// thread and shutdown() so either side can sever it.
struct Server::Connection {
  int fd = -1;
  std::shared_ptr<Session> session;
  std::atomic<bool> closed{false};

  /// Forces recv() on the handler thread to return so it exits cleanly.
  void sever() {
    if (!closed.exchange(true)) ::shutdown(fd, SHUT_RDWR);
  }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      service_(options_.service),
      gate_(default_inflight(service_, options_.max_inflight),
            options_.max_waiting) {}

Server::~Server() { shutdown(); }

std::shared_ptr<route::Router> Server::tenant_router(
    std::uint64_t tenant) const {
  if (!options_.tenant_routing) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenant_routers_.find(tenant);
  if (it == tenant_routers_.end()) {
    it = tenant_routers_
             .emplace(tenant, std::make_shared<route::Router>(
                                  service_.portfolio_names(),
                                  *options_.tenant_routing))
             .first;
  }
  return it->second;
}

SessionOptions Server::session_options(std::uint64_t tenant) const {
  SessionOptions session;
  session.deadline = options_.check_sat_deadline;
  session.seed = options_.seed + tenant;
  session.tenant = tenant;
  session.router = tenant_router(tenant);
  return session;
}

int Server::run_stdio(std::istream& in, std::ostream& out) {
  const std::uint64_t tenant = [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    return next_tenant_++;
  }();
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    telemetry::counter("server.sessions.opened").add();
  }
  Session session(service_, &gate_, session_options(tenant));
  std::string line;
  while (std::getline(in, line)) {
    line += '\n';
    const std::string reply = session.consume(line);
    if (!reply.empty()) out << reply << std::flush;
    if (session.exited()) break;
  }
  const std::string tail = session.finish();
  if (!tail.empty()) out << tail << std::flush;
  session.disconnect();
  sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    telemetry::counter("server.sessions.closed").add();
  }
  return 0;
}

std::uint16_t Server::listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("qsmt-server: socket() failed");
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw std::runtime_error(std::string("qsmt-server: bind() failed: ") +
                             std::strerror(errno));
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    ::close(fd);
    throw std::runtime_error("qsmt-server: listen() failed");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    throw std::runtime_error("qsmt-server: getsockname() failed");
  }
  listen_fd_ = fd;
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  return port_.load(std::memory_order_acquire);
}

void Server::serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener closed (shutdown) or fatal error.
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    const std::uint64_t tenant = next_tenant_++;
    threads_.emplace_back(
        [this, fd, tenant] { handle_connection(fd, tenant); });
  }
}

void Server::start() {
  accept_thread_ = std::thread([this] { serve(); });
}

void Server::handle_connection(int fd, std::uint64_t tenant) {
  const std::uint64_t opened =
      sessions_opened_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (telemetry::enabled()) {
    telemetry::counter("server.sessions.opened").add();
    telemetry::gauge("server.sessions.active")
        .set(static_cast<double>(
            opened - sessions_closed_.load(std::memory_order_relaxed)));
  }
  auto connection = std::make_shared<Connection>();
  connection->fd = fd;
  SessionOptions session_opts = session_options(tenant);
  session_opts.alive = [fd] { return socket_alive(fd); };
  connection->session =
      std::make_shared<Session>(service_, &gate_, session_opts);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.push_back(connection);
  }

  Session& session = *connection->session;
  FrameDecoder decoder(options_.max_frame_bytes);
  char buffer[4096];
  bool client_gone = false;
  while (!connection->closed.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      client_gone = true;
      break;
    }
    decoder.feed({buffer, static_cast<std::size_t>(n)});
    bool exited = false;
    while (auto payload = decoder.next()) {
      frames_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) telemetry::counter("server.frames").add();
      // Exactly one reply frame per request frame (possibly empty), so
      // clients can pair replies to requests positionally.
      const std::string reply = session.consume(*payload);
      if (!send_all(fd, encode_frame(reply))) {
        client_gone = true;
        break;
      }
      if (session.exited()) {
        exited = true;
        break;
      }
    }
    if (client_gone || exited) break;
    if (decoder.error() != FrameError::kNone) {
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        telemetry::counter("server.frame.errors").add();
      }
      send_all(fd, encode_frame(error_reply(
                       decoder.error() == FrameError::kBadMagic
                           ? "protocol error: bad frame magic"
                           : "protocol error: frame exceeds size limit")));
      break;
    }
  }
  // A vanished client cancels its in-flight work (exactly once — the
  // liveness probe inside check-sat may already have done it).
  if (client_gone) session.disconnect();
  disconnect_cancels_.fetch_add(session.stats().disconnect_cancels,
                                std::memory_order_relaxed);
  connection->sever();
  ::close(fd);
  const std::uint64_t closed =
      sessions_closed_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (telemetry::enabled()) {
    telemetry::counter("server.sessions.closed").add();
    telemetry::gauge("server.sessions.active")
        .set(static_cast<double>(
            sessions_opened_.load(std::memory_order_relaxed) - closed));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  connections_.erase(
      std::find(connections_.begin(), connections_.end(), connection));
}

void Server::shutdown() {
  if (stopping_.exchange(true)) {
    // Second call: threads may still be joining on the first; nothing to do.
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Sever every live connection: recv unblocks, handlers disconnect their
  // sessions (cancelling in-flight jobs) and drain out.
  std::vector<std::shared_ptr<Connection>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live = connections_;
  }
  for (const auto& connection : live) {
    connection->session->disconnect();
    connection->sever();
  }
  gate_.close();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

Server::Stats Server::stats() const {
  Stats stats;
  stats.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  stats.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  stats.frames = frames_.load(std::memory_order_relaxed);
  stats.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  stats.disconnect_cancels =
      disconnect_cancels_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace qsmt::server

// Minimal blocking client for the qsmt-server socket protocol.
//
// Speaks the length-prefixed frame protocol (server/protocol.hpp) over a
// localhost TCP connection: request() sends one frame of SMT-LIB text and
// blocks for the matching reply frame. Used by the server tests, the
// server bench, and as the reference client implementation the protocol
// section of docs/server.md walks through — production clients in other
// languages need ~30 lines to do the same.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "server/protocol.hpp"

namespace qsmt::server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:`port`. Throws std::runtime_error on failure.
  void connect(std::uint16_t port);

  /// True between a successful connect() and close() / a stream error.
  bool connected() const noexcept { return fd_ >= 0; }

  /// One round trip: frames `script`, sends it, blocks for the reply
  /// frame, returns its payload (the printed SMT-LIB output; may be
  /// empty). Throws std::runtime_error on protocol errors or disconnect.
  std::string request(std::string_view script);

  /// Fire-and-forget send (pipelining); pair with read_reply().
  void send(std::string_view script);

  /// Blocks for the next reply frame payload.
  std::string read_reply();

  void close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace qsmt::server

// One client's SMT-LIB session against the shared solve service.
//
// A Session owns the incremental command scanner plus the full SmtDriver
// assertion context (declarations, assertions, push/pop frames, model
// history) for one connection, and overrides only the check-sat strategy:
// the deterministic presolve tree (falsified ground fact, unsupported atom,
// empty query, exact unsat certificate) answers locally and instantly, and
// anything that genuinely needs a sampler is dispatched to the shared
// service::SolveService worker pool. Single string-producing constraints
// are submitted as *constraint* jobs, so sibling sessions' structurally
// identical queries share the prepared-model cache and fuse into batched
// kernel invocations (PortfolioMember::batched); everything else rides the
// script-job path. Every other command (push/pop, get-model, get-value,
// echo, reset, ...) inherits the in-process driver's semantics verbatim —
// that is what makes the server's replies bit-compatible with SmtDriver.
//
// Multi-tenancy hooks: an optional AdmissionGate bounds concurrent
// check-sats fairly across sessions (overload answers with an (error ...)
// reply instead of queueing without bound), a per-check-sat deadline rides
// the service's CancelToken plumbing, and disconnect() cancels the
// in-flight job exactly once so a vanished client returns its workers to
// the pool within one sweep.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "server/protocol.hpp"
#include "service/service.hpp"

namespace qsmt::server {

class AdmissionGate;

struct SessionOptions {
  /// Deadline for each dispatched check-sat (0 = the service default).
  std::chrono::nanoseconds deadline{0};
  /// Base seed; successive check-sats derive independent streams from it.
  std::uint64_t seed = 0;
  /// Tenant id echoed as the job tag (telemetry, fairness audits).
  std::uint64_t tenant = 0;
  /// Liveness probe polled while a check-sat is in flight (the socket
  /// transport peeks the connection). Returning false triggers the same
  /// exactly-once cancellation as disconnect().
  std::function<bool()> alive;
  /// This tenant's adaptive portfolio router (docs/routing.md): every
  /// constraint job the session dispatches consults and trains it via
  /// JobOptions::router. Per-tenant tables keep one tenant's workload mix
  /// from steering another's dispatch; null leaves jobs on the service's
  /// shared router (or full races when that is unset too).
  std::shared_ptr<route::Router> router;
};

class Session {
 public:
  /// `service` (and `gate`, when given) must outlive the session.
  Session(service::SolveService& service, SessionOptions options = {});
  Session(service::SolveService& service, AdmissionGate* gate,
          SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Feeds raw SMT-LIB text (any fragmentation), executes every command
  /// that is now complete, and returns the accumulated reply text. Command
  /// errors (parse failures, duplicate declarations, overload rejections)
  /// become (error "...") lines; the session survives them. Malformed
  /// top-level input (a stray ')') discards the current buffer with an
  /// error reply.
  std::string consume(std::string_view text);

  /// Call once at end of stream: an unterminated command still buffered in
  /// the scanner becomes an (error ...) reply (the stream analogue of the
  /// in-process parser throwing on unbalanced parentheses); otherwise
  /// returns the empty string.
  std::string finish();

  /// True after (exit), a disconnect, or fatally malformed input on a
  /// framed transport.
  bool exited() const;

  /// Marks the client gone and cancels the in-flight check-sat, if any,
  /// exactly once (idempotent; also reached via SessionOptions::alive).
  void disconnect();

  /// Per-session counters (exposed so the server can report per-tenant
  /// latency and the tests can assert exactly-once cancellation).
  struct Stats {
    std::uint64_t commands = 0;
    std::uint64_t check_sats = 0;
    std::uint64_t errors = 0;
    std::uint64_t overload_rejects = 0;
    std::uint64_t disconnect_cancels = 0;
    /// Check-sats this session had answered straight from the shared
    /// canonical answer cache (JobResult::answer_cache_hit); exactly one
    /// bump per served hit, so per-tenant hit rates sum to the service's
    /// Stats::answer_hits.
    std::uint64_t answer_hits = 0;
    double solve_seconds_total = 0.0;
  };
  Stats stats() const;

 private:
  class Driver;

  std::string run_command(const std::string& text);
  /// False once disconnected or the liveness probe fails.
  bool client_alive() const;
  /// Registers (and returns) the cancel source for a dispatched job.
  CancelSource install_in_flight();
  void clear_in_flight();

  service::SolveService* service_;
  AdmissionGate* gate_;
  SessionOptions options_;
  CommandScanner scanner_;
  std::unique_ptr<Driver> driver_;

  mutable std::mutex mutex_;
  bool exited_ = false;
  bool disconnected_ = false;
  bool in_flight_cancelled_ = false;
  std::unique_ptr<CancelSource> in_flight_;
  Stats stats_;
};

}  // namespace qsmt::server

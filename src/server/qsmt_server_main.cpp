// qsmt-server binary: the SMT-LIB solver daemon (docs/server.md).
//
//   qsmt-server                       # stdio session (default)
//   qsmt-server --listen 0            # localhost socket, ephemeral port
//   qsmt-server --listen 7411 --workers 8 --deadline-ms 2000
//   qsmt-server --exact               # deterministic exhaustive portfolio
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "canon/answer_cache.hpp"
#include "server/server.hpp"
#include "service/service.hpp"

namespace {

void usage() {
  std::cout <<
      R"(qsmt-server: SMT-LIB v2 string-solver daemon (see docs/server.md)

  --stdio                serve one SMT-LIB session on stdin/stdout (default)
  --listen PORT          serve the framed socket protocol on 127.0.0.1:PORT
                         (0 picks an ephemeral port, printed on stderr)
  --workers N            solve-service worker threads (0 = hardware)
  --exact                single exhaustive-enumeration portfolio lane:
                         deterministic verdicts, <= 30 QUBO variables
  --deadline-ms N        per-check-sat deadline (0 = none)
  --max-inflight N       concurrently admitted check-sats (0 = per worker)
  --max-waiting N        admission line length before overload rejection
  --max-frame-bytes N    socket frame payload ceiling
  --seed N               base RNG seed for tenant streams
  --answer-cache-mb N    canonical answer cache shared across every session
                         and tenant, N MiB budget (0 disables; default 8)
  --answer-snapshot F    load the answer cache from file F at boot (ignored
                         when missing/malformed) and save it back on clean
                         shutdown, so a warmed cache survives restarts
  --help                 this text
)";
}

std::uint64_t parse_u64(const std::string& flag, const char* value) {
  if (value == nullptr) {
    std::cerr << "qsmt-server: " << flag << " needs a value\n";
    std::exit(2);
  }
  return std::strtoull(value, nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qsmt;

  server::ServerOptions options;
  bool use_socket = false;
  std::uint16_t port = 0;
  std::size_t answer_cache_mb = 8;
  std::string answer_snapshot_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--stdio") {
      use_socket = false;
    } else if (arg == "--listen") {
      use_socket = true;
      port = static_cast<std::uint16_t>(parse_u64(arg, value));
      ++i;
    } else if (arg == "--workers") {
      options.service.num_workers =
          static_cast<std::size_t>(parse_u64(arg, value));
      ++i;
    } else if (arg == "--exact") {
      options.service.portfolio = {service::exact_member("exact")};
    } else if (arg == "--deadline-ms") {
      options.check_sat_deadline =
          std::chrono::milliseconds(parse_u64(arg, value));
      ++i;
    } else if (arg == "--max-inflight") {
      options.max_inflight = static_cast<std::size_t>(parse_u64(arg, value));
      ++i;
    } else if (arg == "--max-waiting") {
      options.max_waiting = static_cast<std::size_t>(parse_u64(arg, value));
      ++i;
    } else if (arg == "--max-frame-bytes") {
      options.max_frame_bytes =
          static_cast<std::size_t>(parse_u64(arg, value));
      ++i;
    } else if (arg == "--seed") {
      options.seed = parse_u64(arg, value);
      ++i;
    } else if (arg == "--answer-cache-mb") {
      answer_cache_mb = static_cast<std::size_t>(parse_u64(arg, value));
      ++i;
    } else if (arg == "--answer-snapshot") {
      if (value == nullptr) {
        std::cerr << "qsmt-server: --answer-snapshot needs a value\n";
        return 2;
      }
      answer_snapshot_path = value;
      ++i;
    } else {
      std::cerr << "qsmt-server: unknown flag " << arg << " (--help)\n";
      return 2;
    }
  }

  // One answer cache for the whole daemon: every session and tenant shares
  // it through the solve service, so tenant B's alpha-variant of tenant A's
  // query is answered from A's verified verdict.
  std::shared_ptr<canon::AnswerCache> answer_cache;
  if (answer_cache_mb > 0) {
    canon::AnswerCacheOptions cache_options;
    cache_options.max_bytes = answer_cache_mb << 20;
    answer_cache = std::make_shared<canon::AnswerCache>(cache_options);
    options.service.answer_cache = answer_cache;
    if (!answer_snapshot_path.empty()) {
      std::ifstream in(answer_snapshot_path);
      if (in) {
        std::ostringstream text;
        text << in.rdbuf();
        if (answer_cache->load_snapshot(text.str())) {
          std::cerr << "qsmt-server: answer cache warmed with "
                    << answer_cache->size() << " entries\n";
        } else {
          std::cerr << "qsmt-server: ignoring malformed answer snapshot "
                    << answer_snapshot_path << "\n";
        }
      }
    }
  }
  const auto save_snapshot = [&] {
    if (!answer_cache || answer_snapshot_path.empty()) return;
    std::ofstream out(answer_snapshot_path, std::ios::trunc);
    if (out) {
      out << answer_cache->save_snapshot();
    } else {
      std::cerr << "qsmt-server: cannot write answer snapshot "
                << answer_snapshot_path << "\n";
    }
  };

  server::Server server(options);
  if (!use_socket) {
    const int rc = server.run_stdio(std::cin, std::cout);
    save_snapshot();
    return rc;
  }
  const std::uint16_t bound = server.listen(port);
  std::cerr << "qsmt-server: listening on 127.0.0.1:" << bound << "\n";
  server.serve();
  save_snapshot();
  return 0;
}

// qsmt-server binary: the SMT-LIB solver daemon (docs/server.md).
//
//   qsmt-server                       # stdio session (default)
//   qsmt-server --listen 0            # localhost socket, ephemeral port
//   qsmt-server --listen 7411 --workers 8 --deadline-ms 2000
//   qsmt-server --exact               # deterministic exhaustive portfolio
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "server/server.hpp"
#include "service/service.hpp"

namespace {

void usage() {
  std::cout <<
      R"(qsmt-server: SMT-LIB v2 string-solver daemon (see docs/server.md)

  --stdio                serve one SMT-LIB session on stdin/stdout (default)
  --listen PORT          serve the framed socket protocol on 127.0.0.1:PORT
                         (0 picks an ephemeral port, printed on stderr)
  --workers N            solve-service worker threads (0 = hardware)
  --exact                single exhaustive-enumeration portfolio lane:
                         deterministic verdicts, <= 30 QUBO variables
  --deadline-ms N        per-check-sat deadline (0 = none)
  --max-inflight N       concurrently admitted check-sats (0 = per worker)
  --max-waiting N        admission line length before overload rejection
  --max-frame-bytes N    socket frame payload ceiling
  --seed N               base RNG seed for tenant streams
  --help                 this text
)";
}

std::uint64_t parse_u64(const std::string& flag, const char* value) {
  if (value == nullptr) {
    std::cerr << "qsmt-server: " << flag << " needs a value\n";
    std::exit(2);
  }
  return std::strtoull(value, nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qsmt;

  server::ServerOptions options;
  bool use_socket = false;
  std::uint16_t port = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--stdio") {
      use_socket = false;
    } else if (arg == "--listen") {
      use_socket = true;
      port = static_cast<std::uint16_t>(parse_u64(arg, value));
      ++i;
    } else if (arg == "--workers") {
      options.service.num_workers =
          static_cast<std::size_t>(parse_u64(arg, value));
      ++i;
    } else if (arg == "--exact") {
      options.service.portfolio = {service::exact_member("exact")};
    } else if (arg == "--deadline-ms") {
      options.check_sat_deadline =
          std::chrono::milliseconds(parse_u64(arg, value));
      ++i;
    } else if (arg == "--max-inflight") {
      options.max_inflight = static_cast<std::size_t>(parse_u64(arg, value));
      ++i;
    } else if (arg == "--max-waiting") {
      options.max_waiting = static_cast<std::size_t>(parse_u64(arg, value));
      ++i;
    } else if (arg == "--max-frame-bytes") {
      options.max_frame_bytes =
          static_cast<std::size_t>(parse_u64(arg, value));
      ++i;
    } else if (arg == "--seed") {
      options.seed = parse_u64(arg, value);
      ++i;
    } else {
      std::cerr << "qsmt-server: unknown flag " << arg << " (--help)\n";
      return 2;
    }
  }

  server::Server server(options);
  if (!use_socket) {
    return server.run_stdio(std::cin, std::cout);
  }
  const std::uint16_t bound = server.listen(port);
  std::cerr << "qsmt-server: listening on 127.0.0.1:" << bound << "\n";
  server.serve();
  return 0;
}

// qsmt-server: the network-facing daemon over the solve service.
//
// One Server owns one service::SolveService worker pool, one AdmissionGate,
// and any number of concurrent client sessions over two transports:
//
//  * run_stdio — a single blocking session speaking raw SMT-LIB text on an
//    istream/ostream pair (the classic ESBMC-style solver-subprocess mode);
//  * listen + serve — a localhost TCP listener speaking the length-prefixed
//    frame protocol (server/protocol.hpp), one thread per connection.
//
// Everything that makes the solver fast is shared across tenants because
// it lives in the one service: the worker pool, the prepared-model cache,
// any portfolio member's graph::EmbeddingCache, and the BatchAggregator
// that fuses structure-sharing sibling jobs into single batched kernel
// invocations — eight clients submitting similar small queries behave like
// one in-process batch. The gate keeps them honest: admission is FIFO over
// sessions (round-robin, since each session has at most one outstanding
// check-sat) with immediate, polite rejection when the line is full.
//
// Telemetry: server.sessions.opened/closed, server.sessions.active,
// server.commands, server.checksat.seconds, server.queue.depth,
// server.admission.rejects, server.disconnect.cancelled, server.frames,
// server.frame.errors (docs/telemetry.md has the catalog).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "route/router.hpp"
#include "server/admission.hpp"
#include "server/session.hpp"
#include "service/service.hpp"

namespace qsmt::server {

struct ServerOptions {
  /// Worker pool / portfolio / cache configuration, shared by all tenants.
  service::ServiceOptions service;
  /// Concurrently admitted check-sats (0 = one per pool worker).
  std::size_t max_inflight = 0;
  /// Sessions allowed to wait in line before overload rejection kicks in.
  std::size_t max_waiting = 64;
  /// Per-check-sat deadline applied to every session (0 = none beyond the
  /// service default).
  std::chrono::nanoseconds check_sat_deadline{0};
  /// Socket frame payload ceiling; larger announcements are rejected from
  /// the header alone.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Base seed; sessions derive per-tenant streams from it.
  std::uint64_t seed = 0;
  /// When set, every tenant gets its OWN lazily-created adaptive router
  /// (route::Router over the shared portfolio, with these options) that
  /// its sessions consult and train — divergent workload mixes learn
  /// divergent dispatch without cross-tenant leakage, while the model and
  /// embedding caches stay shared. Unset (default) leaves routing to
  /// ServiceOptions::router (shared table) or off entirely.
  std::optional<route::RouterOptions> tenant_routing;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  /// Shuts down: closes the listener and every live connection, joins all
  /// threads, then joins the pool.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves one blocking stdio session; returns when the client sends
  /// (exit) or closes the stream. Replies flush after every completed
  /// command. Returns 0 (reserved for future error exit codes).
  int run_stdio(std::istream& in, std::ostream& out);

  /// Binds a listening socket on 127.0.0.1 (`port` 0 = ephemeral) and
  /// returns the bound port. Throws std::runtime_error on failure.
  std::uint16_t listen(std::uint16_t port = 0);

  /// Accept loop (blocking); returns after shutdown(). Call listen first.
  void serve();

  /// serve() on an internal thread; returns immediately.
  void start();

  /// Stops accepting, disconnects every session, unblocks waiters, joins
  /// all server threads. Idempotent.
  void shutdown();

  /// Port bound by listen() (0 before).
  std::uint16_t port() const noexcept { return port_; }

  /// The shared pool (stats inspection: cache hits, fused jobs, ...).
  service::SolveService& service() noexcept { return service_; }

  /// The shared admission gate (stats inspection).
  AdmissionGate& gate() noexcept { return gate_; }

  /// The tenant's adaptive router, created on first use when
  /// ServerOptions::tenant_routing is set (null otherwise). Exposed so
  /// tests and operators can inspect — or snapshot/restore — each
  /// tenant's learned dispatch table.
  std::shared_ptr<route::Router> tenant_router(std::uint64_t tenant) const;

  /// Whole-server counters.
  struct Stats {
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_closed = 0;
    std::uint64_t frames = 0;
    std::uint64_t frame_errors = 0;
    std::uint64_t disconnect_cancels = 0;
  };
  Stats stats() const;

 private:
  struct Connection;

  void handle_connection(int fd, std::uint64_t tenant);
  SessionOptions session_options(std::uint64_t tenant) const;

  ServerOptions options_;
  service::SolveService service_;
  AdmissionGate gate_;

  std::atomic<std::uint16_t> port_{0};
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_;
  /// Per-tenant router tables (guarded by mutex_; values are shared_ptr so
  /// sessions keep theirs alive across map growth).
  mutable std::map<std::uint64_t, std::shared_ptr<route::Router>>
      tenant_routers_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> threads_;
  std::thread accept_thread_;
  std::uint64_t next_tenant_ = 0;

  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> sessions_closed_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
  std::atomic<std::uint64_t> disconnect_cancels_{0};
};

}  // namespace qsmt::server

#include "server/session.hpp"

#include <chrono>
#include <future>
#include <stdexcept>
#include <utility>

#include "server/admission.hpp"
#include "smtlib/parser.hpp"
#include "strqubo/constraint.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stopwatch.hpp"

namespace qsmt::server {

namespace {

/// Thrown by the driver when the admission gate turns a check-sat away;
/// the session catches it and replies (error ...) without touching the
/// assertion context, so the client can simply retry.
class OverloadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// splitmix64 step: successive check-sats of one session get independent
/// seed streams without a shared RNG.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t ordinal) {
  std::uint64_t z = base + ordinal * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

/// The service-backed check-sat strategy. Everything except check_sat is
/// the stock SmtDriver, so session replies match the in-process driver's
/// byte for byte on every non-solving command.
class Session::Driver final : public smtlib::SmtDriver {
 public:
  explicit Driver(Session& session)
      : smtlib::SmtDriver(strqubo::BuildOptions{}), session_(&session) {}

 protected:
  smtlib::CheckSatRecord check_sat() override {
    Session& session = *session_;
    telemetry::Span span("server.check_sat");
    smtlib::PresolveResult presolved =
        smtlib::presolve_check_sat(assertions(), declared());
    if (presolved.decided) return presolved.record;

    // The solve needs the shared pool: pass admission first. A session
    // whose client vanished while in line abandons its place.
    if (session.gate_ != nullptr) {
      const AdmissionGate::Outcome outcome =
          session.gate_->acquire([&] { return !session.client_alive(); });
      switch (outcome) {
        case AdmissionGate::Outcome::kAdmitted:
          break;
        case AdmissionGate::Outcome::kRejected:
          throw OverloadError(
              "server overloaded: admission queue full, retry later");
        case AdmissionGate::Outcome::kClosed:
          throw OverloadError("server shutting down");
        case AdmissionGate::Outcome::kAbandoned: {
          smtlib::CheckSatRecord record = std::move(presolved.record);
          record.status = smtlib::CheckSatStatus::kUnknown;
          record.notes.push_back("client disconnected while queued");
          return record;
        }
      }
    }

    smtlib::CheckSatRecord record = std::move(presolved.record);
    Stopwatch solve_timer;
    service::JobOptions job;
    job.deadline = session.options_.deadline;
    job.seed = derive_seed(session.options_.seed, ++check_sat_ordinal_);
    job.tag = session.options_.tenant;
    job.cancel = session.install_in_flight();
    // Incremental hot re-solve: this session's previous sat witness seeds
    // the service's warm-start refinement. Session-local state only — the
    // witness never enters the shared prepared-model cache, so tenants
    // cannot observe each other's models; and every warm result is
    // classically verified, so a stale witness can only cost time, never
    // change a verdict.
    job.warm_start = last_model_;
    // Per-tenant adaptive routing: this session's jobs consult and train
    // its own win/loss table, so tenants with divergent workload mixes
    // learn divergent dispatch instead of fighting over one shared table.
    job.router = session.options_.router;

    std::future<service::JobResult> future;
    const auto& constraints = presolved.query.constraints;
    if (constraints.size() == 1 &&
        strqubo::produces_string(constraints.front())) {
      // The fusable fast path: structurally identical single-constraint
      // queries from *any* session share the service's prepared-model
      // cache and batch into one kernel invocation.
      future = session.service_->submit(constraints.front(), job);
    } else {
      future = session.service_->submit_script(render_script(), job);
    }

    // Poll-wait so a client that hangs up mid-solve is noticed: the
    // liveness probe failing cancels the job exactly once, the portfolio
    // aborts within a sweep, and the future resolves promptly.
    for (;;) {
      const std::future_status status =
          future.wait_for(std::chrono::milliseconds(5));
      if (status == std::future_status::ready) break;
      if (!session.client_alive()) session.disconnect();
    }
    const service::JobResult result = future.get();
    if (session.gate_ != nullptr) session.gate_->release();
    session.clear_in_flight();

    record.status = result.status;
    if (result.text) {
      record.model_value = *result.text;
    } else {
      record.model_value = result.model_value;
    }
    if (record.status == smtlib::CheckSatStatus::kSat) {
      last_model_ = record.model_value;
    }
    for (const std::string& note : result.notes) {
      record.notes.push_back(note);
    }
    if (result.timed_out) record.notes.push_back("deadline exceeded");

    const double seconds = solve_timer.elapsed_seconds();
    {
      std::lock_guard<std::mutex> lock(session.mutex_);
      session.stats_.solve_seconds_total += seconds;
      if (result.answer_cache_hit) ++session.stats_.answer_hits;
    }
    if (telemetry::enabled()) {
      telemetry::histogram("server.checksat.seconds",
                           telemetry::Unit::kSeconds)
          .record(seconds);
    }
    return record;
  }

 private:
  /// Renders the current assertion context back to one conjunctive script
  /// for the service's script-job path (multi-constraint queries and
  /// non-string-producing atoms). to_string emits re-parseable SMT-LIB.
  std::string render_script() const {
    std::string script;
    for (const auto& [name, sort] : declared()) {
      script += "(declare-const " + name + " " + smtlib::sort_name(sort) +
                ")\n";
    }
    for (const auto& term : assertions()) {
      script += "(assert " + smtlib::to_string(term) + ")\n";
    }
    script += "(check-sat)\n";
    return script;
  }

  Session* session_;
  std::uint64_t check_sat_ordinal_ = 0;
  /// Last sat witness this session produced (warm-start seed for the next
  /// check-sat). Never shared across sessions.
  std::optional<std::string> last_model_;
};

Session::Session(service::SolveService& service, SessionOptions options)
    : Session(service, nullptr, std::move(options)) {}

Session::Session(service::SolveService& service, AdmissionGate* gate,
                 SessionOptions options)
    : service_(&service),
      gate_(gate),
      options_(std::move(options)),
      driver_(std::make_unique<Driver>(*this)) {}

Session::~Session() = default;

bool Session::client_alive() const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (disconnected_) return false;
  }
  return !options_.alive || options_.alive();
}

CancelSource Session::install_in_flight() {
  std::lock_guard<std::mutex> lock(mutex_);
  in_flight_ = std::make_unique<CancelSource>();
  in_flight_cancelled_ = false;
  if (disconnected_) {
    // The client vanished between commands; cancel the job on arrival so
    // the pool drops it at the pre-cancelled fast path.
    in_flight_->cancel();
    in_flight_cancelled_ = true;
  }
  return *in_flight_;
}

void Session::clear_in_flight() {
  std::lock_guard<std::mutex> lock(mutex_);
  in_flight_.reset();
}

void Session::disconnect() {
  std::lock_guard<std::mutex> lock(mutex_);
  disconnected_ = true;
  exited_ = true;
  if (in_flight_ && !in_flight_cancelled_) {
    // Exactly once per in-flight job, no matter how many of the liveness
    // probe, the reader loop, and the server shutdown get here.
    in_flight_->cancel();
    in_flight_cancelled_ = true;
    ++stats_.disconnect_cancels;
    if (telemetry::enabled()) {
      telemetry::counter("server.disconnect.cancelled").add();
    }
  }
}

bool Session::exited() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return exited_;
}

std::string Session::finish() {
  if (exited() || !scanner_.partial()) return "";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
  }
  scanner_.reset();
  return error_reply("malformed input: unterminated command at end of input");
}

Session::Stats Session::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string Session::run_command(const std::string& text) {
  std::string out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.commands;
  }
  if (telemetry::enabled()) telemetry::counter("server.commands").add();
  try {
    const std::vector<smtlib::Command> commands = smtlib::parse_script(text);
    for (const smtlib::Command& command : commands) {
      const bool is_check =
          std::holds_alternative<smtlib::CheckSat>(command) ||
          std::holds_alternative<smtlib::CheckSatAssuming>(command);
      if (is_check) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.check_sats;
      }
      if (!driver_->execute(command, out)) {
        std::lock_guard<std::mutex> lock(mutex_);
        exited_ = true;
        break;
      }
    }
  } catch (const OverloadError& error) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.overload_rejects;
    }
    out += error_reply(error.what());
  } catch (const std::exception& error) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.errors;
    }
    out += error_reply(error.what());
  }
  return out;
}

std::string Session::consume(std::string_view text) {
  std::string out;
  if (exited()) return out;
  scanner_.feed(text);
  for (;;) {
    std::optional<std::string> command = scanner_.next();
    if (!command) {
      if (scanner_.failed()) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.errors;
        }
        out += error_reply(
            "malformed input: stray ')' or bare atom at the top level");
        scanner_.reset();
      }
      break;
    }
    out += run_command(*command);
    if (exited()) break;
  }
  return out;
}

}  // namespace qsmt::server

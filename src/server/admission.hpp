// Admission control for the multi-tenant server: a bounded, FIFO-fair
// concurrency gate in front of the solve service.
//
// Every session holds at most one outstanding check-sat (SMT-LIB sessions
// are synchronous), so first-come-first-served admission over sessions IS
// round-robin scheduling across connections: a client that floods
// check-sats still occupies exactly one slot and one place in line per
// round, and can never starve a sibling. The gate bounds two things:
//
//  * inflight — check-sats concurrently submitted to the worker pool
//    (defaults to the pool size: one admitted job per worker keeps the
//    queue inside the service empty and latency predictable);
//  * waiting — sessions blocked in line. When the line is full the gate
//    rejects *immediately* (graceful overload: the session replies
//    (error "server overloaded ...") instead of stalling the client).
//
// close() drains shutdown: current waiters unblock with kClosed and later
// acquires fail fast.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include <condition_variable>

namespace qsmt::server {

class AdmissionGate {
 public:
  /// `max_inflight` >= 1 concurrent admissions; `max_waiting` bounds the
  /// line (0 = reject whenever all slots are busy).
  AdmissionGate(std::size_t max_inflight, std::size_t max_waiting);

  enum class Outcome {
    kAdmitted,   ///< Slot held; caller must release().
    kRejected,   ///< Waiting line full — overload, caller replies an error.
    kClosed,     ///< Gate closed (server shutting down).
    kAbandoned,  ///< Caller's `abandon` probe returned true while in line.
  };

  /// Blocks in FIFO order until a slot frees. `abandon`, when given, is
  /// polled while waiting (the session wires its disconnect probe here so
  /// a vanished client gives up its place in line).
  Outcome acquire(const std::function<bool()>& abandon = {});

  /// Returns an admitted slot. One release() per kAdmitted outcome.
  void release();

  /// Unblocks all waiters with kClosed and fails later acquires fast.
  void close();

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t abandoned = 0;
    std::size_t inflight = 0;
    std::size_t waiting = 0;
  };
  Stats stats() const;

 private:
  void publish_depth_locked() const;

  const std::size_t max_inflight_;
  const std::size_t max_waiting_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::size_t inflight_ = 0;
  /// FIFO of waiting tickets; front is next to admit.
  std::deque<std::uint64_t> line_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t abandoned_ = 0;
};

}  // namespace qsmt::server

// Wire protocol of qsmt-server (docs/server.md is the reference).
//
// Two transports share one command layer:
//
//  * stdio — raw SMT-LIB text; commands are delimited by balanced
//    parentheses (CommandScanner), so a command may arrive split across
//    arbitrarily many reads and several commands may share one read.
//  * socket — length-prefixed frames on localhost: one magic byte 'Q',
//    a 32-bit big-endian payload length, then that many bytes of SMT-LIB
//    text. Every request frame gets exactly one reply frame carrying the
//    printed output (possibly empty). FrameDecoder reassembles frames from
//    partial reads and rejects malformed prefixes and oversized
//    announcements *before* allocating payload space.
//
// Error replies are SMT-LIB style: (error "message") with embedded quotes
// doubled, one per line (error_reply).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace qsmt::server {

/// First byte of every socket frame; anything else is a protocol error.
inline constexpr char kFrameMagic = 'Q';

/// Bytes before the payload: magic + 32-bit big-endian payload length.
inline constexpr std::size_t kFrameHeaderBytes = 5;

/// Default ceiling on a frame payload (1 MiB of SMT-LIB text).
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;

/// Wraps `payload` in a frame: magic byte, big-endian length, payload.
std::string encode_frame(std::string_view payload);

/// Renders an SMT-LIB error reply: (error "message") with quote doubling
/// and a trailing newline.
std::string error_reply(std::string_view message);

/// Why a FrameDecoder refused its input stream.
enum class FrameError {
  kNone,
  kBadMagic,   ///< First byte of a frame was not kFrameMagic.
  kOversized,  ///< Announced payload length exceeded the decoder's limit.
};

/// Incremental frame reassembler. Feed it raw bytes as they arrive; next()
/// yields complete payloads in order. Partial frames wait for more bytes.
/// A malformed prefix (bad magic) or an announced length above the limit
/// latches an error *from the 5 header bytes alone* — the payload is never
/// buffered, so a hostile 4 GiB announcement costs nothing.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxFrameBytes);

  /// Appends raw wire bytes. No-op once an error latched.
  void feed(std::string_view bytes);

  /// Extracts the next complete frame payload, or nullopt when none is
  /// fully buffered yet (or the decoder is in an error state).
  std::optional<std::string> next();

  /// The latched protocol error (kNone while the stream is well-formed).
  FrameError error() const noexcept { return error_; }

  /// Bytes currently buffered (partial header + partial payload).
  std::size_t buffered_bytes() const noexcept { return buffer_.size(); }

 private:
  std::size_t max_payload_;
  std::string buffer_;
  FrameError error_ = FrameError::kNone;
};

/// Incremental SMT-LIB command splitter for the stdio transport: feed()
/// arbitrary text fragments, next() yields one complete top-level
/// s-expression at a time. Understands string literals (with "" escapes)
/// and ; comments, so parentheses inside either do not count. A stray
/// top-level ')' or a bare atom latches an error; reset() clears it along
/// with any buffered text (the stdio loop replies with an error and keeps
/// the session alive).
class CommandScanner {
 public:
  void feed(std::string_view text);

  /// Next complete (...) command, or nullopt when the buffer holds only a
  /// prefix (or the scanner is in an error state).
  std::optional<std::string> next();

  /// True once malformed top-level input latched.
  bool failed() const noexcept { return failed_; }

  /// True when buffered text is a partial command awaiting more input.
  bool partial() const noexcept { return !failed_ && !buffer_.empty(); }

  /// Drops buffered text and clears the error latch.
  void reset();

 private:
  std::string buffer_;
  bool failed_ = false;
};

}  // namespace qsmt::server

#include "server/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace qsmt::server {

Client::~Client() { close(); }

void Client::connect(std::uint16_t port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("qsmt client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(fd);
    throw std::runtime_error(std::string("qsmt client: connect() failed: ") +
                             std::strerror(errno));
  }
  fd_ = fd;
  decoder_ = FrameDecoder();
}

void Client::send(std::string_view script) {
  if (fd_ < 0) throw std::runtime_error("qsmt client: not connected");
  const std::string frame = encode_frame(script);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      throw std::runtime_error("qsmt client: send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::read_reply() {
  if (fd_ < 0) throw std::runtime_error("qsmt client: not connected");
  for (;;) {
    if (auto payload = decoder_.next()) return *payload;
    if (decoder_.error() != FrameError::kNone) {
      close();
      throw std::runtime_error("qsmt client: malformed reply frame");
    }
    char buffer[4096];
    const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close();
      throw std::runtime_error("qsmt client: server closed the connection");
    }
    decoder_.feed({buffer, static_cast<std::size_t>(n)});
  }
}

std::string Client::request(std::string_view script) {
  send(script);
  return read_reply();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace qsmt::server

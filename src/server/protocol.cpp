#include "server/protocol.hpp"

namespace qsmt::server {

std::string encode_frame(std::string_view payload) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame += kFrameMagic;
  frame += static_cast<char>((length >> 24) & 0xff);
  frame += static_cast<char>((length >> 16) & 0xff);
  frame += static_cast<char>((length >> 8) & 0xff);
  frame += static_cast<char>(length & 0xff);
  frame += payload;
  return frame;
}

std::string error_reply(std::string_view message) {
  std::string out = "(error \"";
  for (char c : message) {
    out += c;
    if (c == '"') out += '"';
  }
  out += "\")\n";
  return out;
}

FrameDecoder::FrameDecoder(std::size_t max_payload)
    : max_payload_(max_payload) {}

void FrameDecoder::feed(std::string_view bytes) {
  if (error_ != FrameError::kNone) return;
  // Validate the header as soon as its bytes land so a bad prefix or a
  // hostile length announcement never buffers past these 5 bytes.
  buffer_.append(bytes.data(), bytes.size());
  if (!buffer_.empty() && buffer_.front() != kFrameMagic) {
    error_ = FrameError::kBadMagic;
    buffer_.clear();
    return;
  }
  if (buffer_.size() >= kFrameHeaderBytes) {
    const auto byte = [&](std::size_t i) {
      return static_cast<std::uint32_t>(
          static_cast<unsigned char>(buffer_[i]));
    };
    const std::uint32_t length =
        (byte(1) << 24) | (byte(2) << 16) | (byte(3) << 8) | byte(4);
    if (length > max_payload_) {
      error_ = FrameError::kOversized;
      buffer_.clear();
    }
  }
}

std::optional<std::string> FrameDecoder::next() {
  if (error_ != FrameError::kNone) return std::nullopt;
  if (buffer_.size() < kFrameHeaderBytes) return std::nullopt;
  const auto byte = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t length =
      (byte(1) << 24) | (byte(2) << 16) | (byte(3) << 8) | byte(4);
  if (buffer_.size() < kFrameHeaderBytes + length) return std::nullopt;
  std::string payload = buffer_.substr(kFrameHeaderBytes, length);
  buffer_.erase(0, kFrameHeaderBytes + length);
  // The next frame's header may already be buffered; validate it now so
  // errors latch as early as possible (feed() only checks on arrival).
  if (!buffer_.empty() && buffer_.front() != kFrameMagic) {
    error_ = FrameError::kBadMagic;
    buffer_.clear();
  } else if (buffer_.size() >= kFrameHeaderBytes) {
    const std::uint32_t next_length =
        (byte(1) << 24) | (byte(2) << 16) | (byte(3) << 8) | byte(4);
    if (next_length > max_payload_) {
      error_ = FrameError::kOversized;
      buffer_.clear();
    }
  }
  return payload;
}

void CommandScanner::feed(std::string_view text) {
  if (failed_) return;
  buffer_.append(text.data(), text.size());
}

std::optional<std::string> CommandScanner::next() {
  if (failed_) return std::nullopt;
  std::size_t depth = 0;
  bool in_string = false;
  bool in_comment = false;
  std::size_t start = std::string::npos;
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    const char c = buffer_[i];
    if (in_comment) {
      if (c == '\n') in_comment = false;
      continue;
    }
    if (in_string) {
      // "" is an escaped quote; a lone " closes the literal. A trailing
      // lone " at the buffer end is ambiguous until the next byte arrives,
      // but that only matters inside an unclosed command, which is a
      // partial command either way.
      if (c == '"') {
        if (i + 1 < buffer_.size() && buffer_[i + 1] == '"') {
          ++i;
        } else {
          in_string = false;
        }
      }
      continue;
    }
    switch (c) {
      case ';':
        in_comment = true;
        break;
      case '"':
        in_string = true;
        break;
      case '(':
        if (depth == 0) start = i;
        ++depth;
        break;
      case ')':
        if (depth == 0) {
          failed_ = true;
          return std::nullopt;
        }
        if (--depth == 0) {
          std::string command = buffer_.substr(start, i + 1 - start);
          buffer_.erase(0, i + 1);
          return command;
        }
        break;
      default:
        // Atoms outside any parentheses are not commands; SMT-LIB scripts
        // are lists at the top level.
        if (depth == 0 && c != ' ' && c != '\t' && c != '\r' && c != '\n') {
          failed_ = true;
          return std::nullopt;
        }
        break;
    }
  }
  if (depth == 0 && start == std::string::npos && !in_comment && !in_string) {
    // Only whitespace / finished comments buffered: nothing pending. (An
    // unterminated trailing comment must stay buffered — its continuation
    // arrives with the next feed.)
    buffer_.clear();
  }
  return std::nullopt;
}

void CommandScanner::reset() {
  buffer_.clear();
  failed_ = false;
}

}  // namespace qsmt::server

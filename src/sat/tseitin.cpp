#include "sat/tseitin.hpp"

#include "util/require.hpp"

namespace qsmt::sat {

TseitinEncoder::TseitinEncoder(CdclSolver& solver) : solver_(&solver) {}

Literal TseitinEncoder::encode_atom(const smtlib::TermPtr& term) {
  const std::string key = smtlib::to_string(term);
  auto it = atom_cache_.find(key);
  if (it != atom_cache_.end()) return it->second;
  const std::int32_t var = solver_->add_variable();
  atom_cache_.emplace(key, var);
  atoms_.push_back(term);
  atom_vars_.push_back(var);
  return var;
}

Literal TseitinEncoder::encode(const smtlib::TermPtr& term) {
  require(static_cast<bool>(term), "TseitinEncoder::encode: null term");

  if (term->kind == smtlib::Term::Kind::kBoolLit) {
    // A fresh variable pinned to the constant.
    const std::int32_t var = solver_->add_variable();
    solver_->add_clause({term->bool_value ? var : -var});
    return var;
  }
  if (term->is_apply("not")) {
    require(term->args.size() == 1, "tseitin: not expects one argument");
    return -encode(term->args[0]);
  }
  if (term->is_apply("and") || term->is_apply("or")) {
    require(!term->args.empty(), "tseitin: empty and/or");
    std::vector<Literal> parts;
    parts.reserve(term->args.size());
    for (const auto& arg : term->args) parts.push_back(encode(arg));

    const std::int32_t y = solver_->add_variable();
    if (term->is_apply("and")) {
      // y <-> l1 & ... & ln
      std::vector<Literal> big{y};
      for (Literal l : parts) {
        solver_->add_clause({-y, l});
        big.push_back(-l);
      }
      solver_->add_clause(std::move(big));
    } else {
      // y <-> l1 | ... | ln
      std::vector<Literal> big{-y};
      for (Literal l : parts) {
        solver_->add_clause({y, -l});
        big.push_back(l);
      }
      solver_->add_clause(std::move(big));
    }
    return y;
  }
  // Everything else is a theory atom.
  return encode_atom(term);
}

void TseitinEncoder::assert_term(const smtlib::TermPtr& term) {
  solver_->add_clause({encode(term)});
}

}  // namespace qsmt::sat

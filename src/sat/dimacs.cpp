#include "sat/dimacs.hpp"

#include <sstream>

#include "util/require.hpp"

namespace qsmt::sat {

CnfInstance parse_dimacs(std::istream& in) {
  CnfInstance instance;
  std::size_t declared_clauses = 0;
  bool header_seen = false;
  std::string line;
  std::vector<Literal> clause;

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      require(!header_seen, "parse_dimacs: duplicate header");
      std::istringstream header(line);
      std::string p;
      std::string format;
      header >> p >> format >> instance.num_variables >> declared_clauses;
      require(static_cast<bool>(header) && format == "cnf",
              "parse_dimacs: expected 'p cnf <vars> <clauses>'");
      header_seen = true;
      continue;
    }
    require(header_seen, "parse_dimacs: clause before header");
    std::istringstream body(line);
    long long lit = 0;
    while (body >> lit) {
      if (lit == 0) {
        instance.clauses.push_back(clause);
        clause.clear();
        continue;
      }
      const long long var = lit > 0 ? lit : -lit;
      require(var >= 1 &&
                  static_cast<std::size_t>(var) <= instance.num_variables,
              "parse_dimacs: literal out of declared range");
      clause.push_back(static_cast<Literal>(lit));
    }
  }
  require(header_seen, "parse_dimacs: missing 'p cnf' header");
  require(clause.empty(), "parse_dimacs: unterminated clause (missing 0)");
  require(instance.clauses.size() == declared_clauses,
          "parse_dimacs: clause count does not match header");
  return instance;
}

CnfInstance parse_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

std::string to_dimacs(const CnfInstance& instance) {
  std::ostringstream out;
  out << "p cnf " << instance.num_variables << ' ' << instance.clauses.size()
      << '\n';
  for (const auto& clause : instance.clauses) {
    for (Literal lit : clause) out << lit << ' ';
    out << "0\n";
  }
  return out.str();
}

void load_into(const CnfInstance& instance, CdclSolver& solver) {
  require(solver.num_variables() == 0,
          "load_into: solver must be freshly constructed");
  for (std::size_t v = 0; v < instance.num_variables; ++v) {
    solver.add_variable();
  }
  for (const auto& clause : instance.clauses) {
    solver.add_clause(clause);
  }
}

DimacsResult solve_dimacs(const std::string& text) {
  const CnfInstance instance = parse_dimacs_string(text);
  CdclSolver solver;
  load_into(instance, solver);
  DimacsResult result;
  result.status = solver.solve();
  if (result.status == SolveStatus::kSat) result.model = solver.model();
  return result;
}

}  // namespace qsmt::sat

// DIMACS CNF parsing/emission for the CDCL substrate.
//
// Standard interchange format for SAT instances ("p cnf <vars> <clauses>"
// header, clauses as zero-terminated literal lists, 'c' comment lines).
// Lets the embedded solver run community benchmark files and makes the
// boolean layer testable against external tooling.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/cdcl.hpp"

namespace qsmt::sat {

struct CnfInstance {
  std::size_t num_variables = 0;
  std::vector<std::vector<Literal>> clauses;
};

/// Parses DIMACS CNF text. Throws std::invalid_argument on malformed input
/// (missing header, literal out of range, unterminated clause). The clause
/// count in the header is checked against the body.
CnfInstance parse_dimacs(std::istream& in);
CnfInstance parse_dimacs_string(const std::string& text);

/// Renders an instance back to DIMACS text.
std::string to_dimacs(const CnfInstance& instance);

/// Loads an instance into a solver (variables allocated 1..num_variables).
void load_into(const CnfInstance& instance, CdclSolver& solver);

/// Convenience: parse, solve, and return (status, model). The model is
/// empty for unsat.
struct DimacsResult {
  SolveStatus status = SolveStatus::kUnsat;
  std::vector<Literal> model;
};
DimacsResult solve_dimacs(const std::string& text);

}  // namespace qsmt::sat

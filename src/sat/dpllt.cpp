#include "sat/dpllt.hpp"

#include "sat/tseitin.hpp"
#include "strqubo/verify.hpp"
#include "telemetry/telemetry.hpp"

namespace qsmt::sat {

namespace {

using smtlib::CheckSatStatus;

/// Does `atom`, interpreted over `variable`/`length`, hold on `witness`?
/// Returns std::nullopt when the atom cannot be evaluated classically.
std::optional<bool> atom_holds_on(const smtlib::TermPtr& atom,
                                  const std::string& variable,
                                  const std::string& witness) {
  // Ground atom: fold classically.
  if (auto ground = smtlib::evaluate_ground(atom)) {
    if (const bool* b = std::get_if<bool>(&*ground)) return *b;
    return std::nullopt;
  }
  // Length fact.
  if (atom->is_apply("=") && atom->args.size() == 2) {
    for (int flip = 0; flip < 2; ++flip) {
      const auto& lhs = atom->args[flip == 0 ? 0 : 1];
      const auto& rhs = atom->args[flip == 0 ? 1 : 0];
      if (lhs && lhs->is_apply("str.len") && lhs->args.size() == 1 &&
          lhs->args[0]->kind == smtlib::Term::Kind::kVariable &&
          lhs->args[0]->atom == variable &&
          rhs->kind == smtlib::Term::Kind::kIntLit) {
        return static_cast<std::int64_t>(witness.size()) == rhs->int_value;
      }
    }
  }
  std::string error;
  const auto constraint =
      smtlib::compile_atom(atom, variable, witness.size(), error);
  if (!constraint) return std::nullopt;
  return strqubo::verify_string(*constraint, witness);
}

}  // namespace

DpllTSolver::DpllTSolver(const anneal::Sampler& sampler,
                         strqubo::BuildOptions options, Params params)
    : sampler_(&sampler), options_(options), params_(params) {}

DpllTResult DpllTSolver::solve(
    const std::vector<smtlib::TermPtr>& assertions,
    const std::map<std::string, smtlib::Sort>& declared) const {
  return solve(assertions, {}, declared, nullptr);
}

DpllTResult DpllTSolver::solve(
    const std::vector<smtlib::TermPtr>& assertions,
    const std::vector<smtlib::TermPtr>& assumptions,
    const std::map<std::string, smtlib::Sort>& declared,
    smtlib::SolveContext* context) const {
  DpllTResult result;

  CdclSolver sat;
  TseitinEncoder encoder(sat);
  for (const auto& assertion : assertions) encoder.assert_term(assertion);

  // Assumptions are encoded (their defining clauses are valid regardless of
  // the assumed truth value) but NOT asserted: their literals are handed to
  // the CDCL engine as forced first decisions instead.
  std::vector<Literal> assumption_lits;
  assumption_lits.reserve(assumptions.size());
  for (const auto& assumption : assumptions) {
    assumption_lits.push_back(encoder.encode(assumption));
  }

  // Re-add remembered exact lemmas whose atoms all exist in this encoding.
  // Content keying by printed atom form makes this sound across calls even
  // though the SAT variable numbering is fresh each time.
  if (context != nullptr) {
    for (const auto& lemma : context->clause_memory().lemmas()) {
      std::vector<Literal> clause;
      clause.reserve(lemma.literals.size());
      bool all_present = true;
      for (const auto& [printed, positive] : lemma.literals) {
        const std::int32_t v = encoder.find_atom_variable(printed);
        if (v == 0) {
          all_present = false;
          break;
        }
        clause.push_back(positive ? v : -v);
      }
      if (!all_present) continue;
      sat.add_clause(std::move(clause));
      ++result.lemmas_retained;
    }
    context->stats().clauses_retained += result.lemmas_retained;
    if (telemetry::enabled() && result.lemmas_retained > 0) {
      telemetry::counter("incremental.clauses.retained")
          .add(result.lemmas_retained);
    }
  }

  // When blocking clauses are only approximations of theory conflicts
  // (annealer gave up), a final boolean UNSAT proves nothing.
  bool all_blocks_exact = true;

  for (std::size_t round = 0; round < params_.max_rounds; ++round) {
    if (sat.solve(assumption_lits) == SolveStatus::kUnsat) {
      result.status = all_blocks_exact ? CheckSatStatus::kUnsat
                                       : CheckSatStatus::kUnknown;
      if (!all_blocks_exact) {
        result.notes.push_back(
            "boolean skeleton exhausted, but some assignments were blocked "
            "heuristically");
      }
      result.sat_stats = sat.stats();
      return result;
    }
    ++result.theory_rounds;

    // Split atoms by their boolean value in this model.
    std::vector<smtlib::TermPtr> true_atoms;
    std::vector<std::size_t> atom_indices_true;
    for (std::size_t a = 0; a < encoder.atoms().size(); ++a) {
      if (sat.value(encoder.atom_variable(a))) {
        true_atoms.push_back(encoder.atoms()[a]);
        atom_indices_true.push_back(a);
      }
    }

    auto block_assignment = [&](bool exact) {
      all_blocks_exact &= exact;
      std::vector<Literal> clause;
      clause.reserve(encoder.atoms().size());
      std::vector<std::pair<std::string, bool>> lemma;
      if (exact && context != nullptr) lemma.reserve(encoder.atoms().size());
      for (std::size_t a = 0; a < encoder.atoms().size(); ++a) {
        const std::int32_t v = encoder.atom_variable(a);
        const bool now_true = sat.value(v);
        clause.push_back(now_true ? -v : v);
        if (exact && context != nullptr) {
          lemma.emplace_back(smtlib::to_string(encoder.atoms()[a]), !now_true);
        }
      }
      // Only exact conflicts are sound in later calls; heuristic blocks
      // (the annealer merely gave up) die with this solve.
      if (exact && context != nullptr) {
        context->clause_memory().remember(context->depth(), std::move(lemma));
      }
      sat.add_clause(std::move(clause));
    };

    const smtlib::CompiledQuery query =
        smtlib::compile_assertions(true_atoms, declared);
    if (!query.falsified_ground.empty()) {
      // Ground conflict: this assignment is genuinely theory-inconsistent.
      block_assignment(/*exact=*/true);
      continue;
    }
    if (!query.unsupported.empty()) {
      for (const auto& note : query.unsupported) result.notes.push_back(note);
      block_assignment(/*exact=*/false);
      continue;
    }

    // Witnesses must also FALSIFY every atom assigned false; feeding that
    // requirement into the sample scan (rather than only post-checking)
    // keeps branches alive when the lowest-energy witness happens to
    // coincide with a negated equality.
    std::vector<smtlib::TermPtr> false_atoms;
    for (std::size_t a = 0; a < encoder.atoms().size(); ++a) {
      if (!sat.value(encoder.atom_variable(a))) {
        false_atoms.push_back(encoder.atoms()[a]);
      }
    }
    const std::string variable = query.variable;
    const auto accept = [&](const std::string& witness) {
      for (const auto& atom : false_atoms) {
        const auto holds = atom_holds_on(atom, variable, witness);
        if (holds.has_value() && *holds) return false;
      }
      return true;
    };

    const smtlib::ConjunctionResult theory = smtlib::solve_conjunction(
        query.constraints, *sampler_, options_, accept);
    if (!theory.solved) {
      result.notes.push_back(theory.note);
      block_assignment(/*exact=*/false);
      continue;
    }

    // The witness must also falsify every atom assigned false.
    bool witness_consistent = true;
    for (std::size_t a = 0; a < encoder.atoms().size(); ++a) {
      if (sat.value(encoder.atom_variable(a))) continue;
      const auto holds =
          atom_holds_on(encoder.atoms()[a], query.variable, theory.value);
      if (!holds.has_value() || *holds) {
        witness_consistent = false;
        break;
      }
    }
    if (!witness_consistent) {
      block_assignment(/*exact=*/false);
      continue;
    }

    result.status = CheckSatStatus::kSat;
    result.variable = query.variable;
    result.model_value = theory.value;
    result.sat_stats = sat.stats();
    return result;
  }

  result.status = CheckSatStatus::kUnknown;
  result.notes.push_back("theory round budget exhausted");
  result.sat_stats = sat.stats();
  return result;
}

}  // namespace qsmt::sat

#include "sat/cdcl.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace qsmt::sat {

namespace {

std::int32_t variable_of(Literal lit) { return lit > 0 ? lit : -lit; }

/// Luby restart sequence value for index i (1-based): 1 1 2 1 1 2 4 ...
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t k = 1;
  while ((1ULL << k) - 1 < i) ++k;
  while ((1ULL << k) - 1 != i) {
    i -= (1ULL << (k - 1)) - 1;
    k = 1;
    while ((1ULL << k) - 1 < i) ++k;
  }
  return 1ULL << (k - 1);
}

}  // namespace

std::int32_t CdclSolver::add_variable() {
  ++num_vars_;
  values_.resize(num_vars_ + 1, kUnassigned);
  reasons_.resize(num_vars_ + 1, kNoReason);
  levels_.resize(num_vars_ + 1, 0);
  activities_.resize(num_vars_ + 1, 0.0);
  saved_phase_.resize(num_vars_ + 1, kFalse);
  watches_.resize(2 * (num_vars_ + 1));
  return static_cast<std::int32_t>(num_vars_);
}

std::int8_t CdclSolver::literal_value(Literal lit) const {
  const std::int8_t v = values_[static_cast<std::size_t>(variable_of(lit))];
  if (v == kUnassigned) return kUnassigned;
  return (lit > 0) == (v == kTrue) ? kTrue : kFalse;
}

void CdclSolver::attach_clause(std::int32_t clause_index) {
  const auto& clause = clauses_[static_cast<std::size_t>(clause_index)];
  watches_[watch_index(clause[0])].push_back(clause_index);
  watches_[watch_index(clause[1])].push_back(clause_index);
}

void CdclSolver::add_clause(std::vector<Literal> literals) {
  // Deduplicate and drop tautologies.
  std::sort(literals.begin(), literals.end(), [](Literal a, Literal b) {
    const auto va = variable_of(a);
    const auto vb = variable_of(b);
    return va != vb ? va < vb : a < b;
  });
  literals.erase(std::unique(literals.begin(), literals.end()),
                 literals.end());
  for (std::size_t i = 0; i + 1 < literals.size(); ++i) {
    if (literals[i] == -literals[i + 1]) return;  // Tautology.
  }
  for (Literal lit : literals) {
    require(variable_of(lit) >= 1 &&
                static_cast<std::size_t>(variable_of(lit)) <= num_vars_,
            "CdclSolver::add_clause: literal references unknown variable");
  }

  if (literals.empty()) {
    trivially_unsat_ = true;
    return;
  }
  clauses_.push_back(std::move(literals));
  if (clauses_.back().size() >= 2) {
    attach_clause(static_cast<std::int32_t>(clauses_.size() - 1));
  }
}

void CdclSolver::assign(Literal lit, std::int32_t reason_clause) {
  const auto v = static_cast<std::size_t>(variable_of(lit));
  values_[v] = lit > 0 ? kTrue : kFalse;
  reasons_[v] = reason_clause;
  levels_[v] = decision_level();
  trail_.push_back(lit);
}

std::int32_t CdclSolver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Literal p = trail_[propagate_head_++];
    ++stats_.propagations;
    // Clauses watching ~p must be inspected.
    auto& watch_list = watches_[watch_index(-p)];
    std::size_t keep = 0;
    for (std::size_t w = 0; w < watch_list.size(); ++w) {
      const std::int32_t ci = watch_list[w];
      auto& clause = clauses_[static_cast<std::size_t>(ci)];
      // Ensure the falsified literal sits at position 1.
      if (clause[0] == -p) std::swap(clause[0], clause[1]);
      if (literal_value(clause[0]) == kTrue) {
        watch_list[keep++] = ci;  // Clause satisfied; keep watching.
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t k = 2; k < clause.size(); ++k) {
        if (literal_value(clause[k]) != kFalse) {
          std::swap(clause[1], clause[k]);
          watches_[watch_index(clause[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // No replacement: clause is unit or conflicting.
      watch_list[keep++] = ci;
      if (literal_value(clause[0]) == kFalse) {
        // Conflict: restore the untraversed suffix of the watch list.
        for (std::size_t rest = w + 1; rest < watch_list.size(); ++rest) {
          watch_list[keep++] = watch_list[rest];
        }
        watch_list.resize(keep);
        return ci;
      }
      assign(clause[0], ci);
    }
    watch_list.resize(keep);
  }
  return -1;
}

void CdclSolver::bump_variable(std::int32_t v) {
  auto& activity = activities_[static_cast<std::size_t>(v)];
  activity += activity_increment_;
  if (activity > 1e100) {
    for (auto& a : activities_) a *= 1e-100;
    activity_increment_ *= 1e-100;
  }
}

void CdclSolver::decay_activities() { activity_increment_ /= 0.95; }

void CdclSolver::analyze(std::int32_t conflict, std::vector<Literal>& learned,
                         std::size_t& backjump_level) {
  learned.clear();
  learned.push_back(0);  // Placeholder for the asserting literal.
  std::vector<std::uint8_t> seen(num_vars_ + 1, 0);
  std::size_t counter = 0;
  Literal p = 0;
  std::size_t index = trail_.size();

  std::int32_t reason = conflict;
  do {
    const auto& clause = clauses_[static_cast<std::size_t>(reason)];
    for (Literal q : clause) {
      if (q == p) continue;
      const auto v = static_cast<std::size_t>(variable_of(q));
      if (!seen[v] && levels_[v] > 0) {
        seen[v] = 1;
        bump_variable(variable_of(q));
        if (levels_[v] == decision_level()) {
          ++counter;
        } else {
          learned.push_back(q);
        }
      }
    }
    // Walk back to the most recent seen literal on the trail.
    do {
      --index;
    } while (!seen[static_cast<std::size_t>(variable_of(trail_[index]))]);
    p = trail_[index];
    seen[static_cast<std::size_t>(variable_of(p))] = 0;
    reason = reasons_[static_cast<std::size_t>(variable_of(p))];
    --counter;
  } while (counter > 0);
  learned[0] = -p;

  // Backjump to the second-highest level in the learned clause.
  backjump_level = 0;
  std::size_t second_pos = 1;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    const auto lvl =
        levels_[static_cast<std::size_t>(variable_of(learned[i]))];
    if (lvl > backjump_level) {
      backjump_level = lvl;
      second_pos = i;
    }
  }
  if (learned.size() > 1) std::swap(learned[1], learned[second_pos]);
}

void CdclSolver::backtrack(std::size_t level) {
  if (decision_level() <= level) return;
  const std::size_t boundary = trail_limits_[level];
  for (std::size_t i = trail_.size(); i > boundary; --i) {
    const auto v = static_cast<std::size_t>(variable_of(trail_[i - 1]));
    saved_phase_[v] = values_[v];
    values_[v] = kUnassigned;
    reasons_[v] = kNoReason;
  }
  trail_.resize(boundary);
  trail_limits_.resize(level);
  propagate_head_ = trail_.size();
}

Literal CdclSolver::pick_branch() {
  std::int32_t best = 0;
  double best_activity = -1.0;
  for (std::size_t v = 1; v <= num_vars_; ++v) {
    if (values_[v] == kUnassigned && activities_[v] > best_activity) {
      best_activity = activities_[v];
      best = static_cast<std::int32_t>(v);
    }
  }
  if (best == 0) return 0;
  const bool phase = saved_phase_[static_cast<std::size_t>(best)] == kTrue;
  return phase ? best : -best;
}

SolveStatus CdclSolver::solve() { return solve(std::vector<Literal>{}); }

SolveStatus CdclSolver::solve(const std::vector<Literal>& assumptions) {
  if (trivially_unsat_) return SolveStatus::kUnsat;
  for (Literal lit : assumptions) {
    require(variable_of(lit) >= 1 &&
                static_cast<std::size_t>(variable_of(lit)) <= num_vars_,
            "CdclSolver::solve: assumption references unknown variable");
  }

  // Reset all search state (clauses and activities persist across calls).
  trail_.clear();
  trail_limits_.clear();
  propagate_head_ = 0;
  std::fill(values_.begin(), values_.end(), static_cast<std::int8_t>(kUnassigned));
  std::fill(reasons_.begin(), reasons_.end(), kNoReason);
  std::fill(levels_.begin(), levels_.end(), std::size_t{0});

  // Unit clauses assign at level 0.
  for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
    if (clauses_[ci].size() != 1) continue;
    const Literal lit = clauses_[ci][0];
    const std::int8_t v = literal_value(lit);
    if (v == kFalse) return SolveStatus::kUnsat;
    if (v == kUnassigned) assign(lit, kNoReason);
  }
  if (propagate() >= 0) return SolveStatus::kUnsat;

  std::uint64_t restart_index = 1;
  std::uint64_t conflict_budget = 64 * luby(restart_index);
  std::uint64_t conflicts_since_restart = 0;
  std::vector<Literal> learned;

  while (true) {
    const std::int32_t conflict = propagate();
    if (conflict >= 0) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (decision_level() == 0) return SolveStatus::kUnsat;

      std::size_t backjump_level = 0;
      analyze(conflict, learned, backjump_level);
      backtrack(backjump_level);

      if (learned.size() == 1) {
        // Stored (unwatched — solve()'s level-0 sweep handles size-1
        // clauses) so the derived fact survives into later solve calls
        // instead of dying with this call's trail.
        clauses_.push_back(learned);
        ++stats_.learned_clauses;
        assign(learned[0], kNoReason);
      } else {
        clauses_.push_back(learned);
        ++stats_.learned_clauses;
        const auto ci = static_cast<std::int32_t>(clauses_.size() - 1);
        attach_clause(ci);
        assign(learned[0], ci);
      }
      decay_activities();
      continue;
    }

    // Install assumptions as forced decisions, one decision level each,
    // before any free decision. Because restarts and backjumps land below
    // these levels, the loop re-installs whatever was undone; an assumption
    // already true gets an empty level so level k always corresponds to
    // assumptions[0..k). An assumption found false — by a unit clause, a
    // learned clause, or propagation from earlier assumptions — makes the
    // instance unsat *under the assumptions*; clauses learned so far stay
    // valid without them, since assumptions never enter any clause.
    {
      Literal forced = 0;
      bool falsified = false;
      while (decision_level() < assumptions.size()) {
        const Literal a = assumptions[decision_level()];
        const std::int8_t v = literal_value(a);
        if (v == kFalse) {
          falsified = true;
          break;
        }
        trail_limits_.push_back(trail_.size());
        if (v == kUnassigned) {
          assign(a, kNoReason);
          forced = a;
          break;
        }
      }
      if (falsified) return SolveStatus::kUnsat;
      if (forced != 0) {
        ++stats_.decisions;
        continue;  // Propagate the assumption before installing the next.
      }
    }

    if (trail_.size() == num_vars_) return SolveStatus::kSat;

    if (conflicts_since_restart >= conflict_budget) {
      ++stats_.restarts;
      ++restart_index;
      conflict_budget = 64 * luby(restart_index);
      conflicts_since_restart = 0;
      backtrack(0);
      continue;
    }

    const Literal decision = pick_branch();
    require(decision != 0, "CdclSolver::solve: no decision but trail not full");
    ++stats_.decisions;
    trail_limits_.push_back(trail_.size());
    assign(decision, kNoReason);
  }
}

bool CdclSolver::value(std::int32_t v) const {
  require(v >= 1 && static_cast<std::size_t>(v) <= num_vars_,
          "CdclSolver::value: variable out of range");
  return values_[static_cast<std::size_t>(v)] == kTrue;
}

std::vector<Literal> CdclSolver::model() const {
  std::vector<Literal> m;
  m.reserve(num_vars_);
  for (std::size_t v = 1; v <= num_vars_; ++v) {
    m.push_back(values_[v] == kTrue ? static_cast<Literal>(v)
                                    : -static_cast<Literal>(v));
  }
  return m;
}

}  // namespace qsmt::sat

// DPLL(T) with the QUBO/annealing string solver as the theory solver.
//
// The paper's background section describes the DPLL(T) architecture; this
// module closes the loop: the CDCL engine enumerates assignments to the
// boolean skeleton, each candidate assignment's true atoms are compiled to
// a QUBO conjunction and handed to the annealer, and assignments the theory
// rejects are excluded with blocking clauses.
//
// Completeness notes: the annealer is an incomplete theory solver, so
//  * `sat` answers are always sound — the witness is classically verified
//    against every true atom, and every false atom is checked to *fail* on
//    the witness;
//  * `unsat` is only reported when the boolean skeleton is unsatisfiable
//    using exact blocking clauses alone (ground-fact conflicts);
//  * anything else degrades to `unknown`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "anneal/sampler.hpp"
#include "sat/cdcl.hpp"
#include "smtlib/compiler.hpp"
#include "smtlib/driver.hpp"

namespace qsmt::sat {

struct DpllTResult {
  smtlib::CheckSatStatus status = smtlib::CheckSatStatus::kUnknown;
  std::string variable;
  std::string model_value;
  std::vector<std::string> notes;
  std::size_t theory_rounds = 0;  ///< Boolean models handed to the T-solver.
  std::size_t lemmas_retained = 0;  ///< Remembered lemmas re-added this call.
  SolverStats sat_stats;
};

class DpllTSolver {
 public:
  struct Params {
    std::size_t max_rounds = 64;  ///< Boolean models to try before unknown.
  };

  /// `sampler` must outlive the solver.
  DpllTSolver(const anneal::Sampler& sampler,
              strqubo::BuildOptions options, Params params);
  explicit DpllTSolver(const anneal::Sampler& sampler)
      : DpllTSolver(sampler, strqubo::BuildOptions{}, Params{}) {}

  /// Decides the conjunction of `assertions` (each may use and/or/not over
  /// string atoms) for the string constants in `declared`.
  DpllTResult solve(const std::vector<smtlib::TermPtr>& assertions,
                    const std::map<std::string, smtlib::Sort>& declared) const;

  /// Incremental form. `assumptions` are installed as CDCL assumptions —
  /// forced first decisions, never clauses — so `unsat` means "unsat
  /// together with the assumptions" while learned clauses stay valid
  /// without them. When `context` is non-null, exact theory lemmas (ground
  /// conflicts) discovered this call are remembered in its ClauseMemory at
  /// the context's current depth, and previously remembered lemmas whose
  /// atoms all appear in this call's encoding are re-added up front
  /// (incremental.clauses.retained).
  DpllTResult solve(const std::vector<smtlib::TermPtr>& assertions,
                    const std::vector<smtlib::TermPtr>& assumptions,
                    const std::map<std::string, smtlib::Sort>& declared,
                    smtlib::SolveContext* context) const;

 private:
  const anneal::Sampler* sampler_;
  strqubo::BuildOptions options_;
  Params params_;
};

}  // namespace qsmt::sat

// Tseitin encoding of boolean structure over theory atoms.
//
// Turns an asserted term built from and/or/not over string-theory atoms
// into CNF over fresh SAT variables, registering each distinct atom (by
// printed form) exactly once. The DPLL(T) loop then case-splits on the
// atoms, exactly as the paper describes the classical architecture (§2.1).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sat/cdcl.hpp"
#include "smtlib/ast.hpp"

namespace qsmt::sat {

class TseitinEncoder {
 public:
  /// `solver` must outlive the encoder; clauses are added to it.
  explicit TseitinEncoder(CdclSolver& solver);

  /// Encodes `term` and returns the literal representing its truth. Adds
  /// the defining clauses for internal and/or/not nodes.
  Literal encode(const smtlib::TermPtr& term);

  /// Asserts `term` (encodes it and adds a unit clause).
  void assert_term(const smtlib::TermPtr& term);

  /// Distinct theory atoms in registration order.
  const std::vector<smtlib::TermPtr>& atoms() const noexcept { return atoms_; }

  /// SAT variable of atom `index`.
  std::int32_t atom_variable(std::size_t index) const {
    return atom_vars_.at(index);
  }

  /// SAT variable registered for the atom with printed form `printed`
  /// (smtlib::to_string), or 0 when no such atom was encoded. Lets callers
  /// re-target content-keyed clauses (retained theory lemmas) at a fresh
  /// encoding of the same assertions.
  std::int32_t find_atom_variable(const std::string& printed) const {
    const auto it = atom_cache_.find(printed);
    return it == atom_cache_.end() ? 0 : it->second;
  }

 private:
  Literal encode_atom(const smtlib::TermPtr& term);

  CdclSolver* solver_;
  std::map<std::string, Literal> atom_cache_;
  std::vector<smtlib::TermPtr> atoms_;
  std::vector<std::int32_t> atom_vars_;
};

}  // namespace qsmt::sat

// Miniature CDCL SAT solver.
//
// The boolean engine under the DPLL(T) loop (paper §2.1: "The SAT solver
// manages the boolean structure of the formula by performing case splits
// and propagating truth assignments"). Implements the classic feature set:
// two-watched-literal unit propagation, first-UIP conflict-clause learning,
// non-chronological backjumping, VSIDS-style activity decision heuristic
// with phase saving, and Luby restarts.
#pragma once

#include <cstdint>
#include <vector>

namespace qsmt::sat {

/// Literal encoding: +v means variable v true, -v false; v >= 1.
using Literal = std::int32_t;

enum class SolveStatus { kSat, kUnsat };

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
};

class CdclSolver {
 public:
  CdclSolver() = default;

  /// Allocates a fresh variable; returns its 1-based index.
  std::int32_t add_variable();

  std::size_t num_variables() const noexcept { return num_vars_; }

  /// Adds a clause (disjunction of literals). Tautologies are dropped and
  /// duplicate literals removed. An empty clause makes the instance
  /// trivially unsat. Literals must reference existing variables.
  void add_clause(std::vector<Literal> literals);

  /// Decides satisfiability of the clause set added so far. May be called
  /// repeatedly with clauses added in between (incremental use by the
  /// DPLL(T) loop's blocking clauses).
  SolveStatus solve();

  /// Decides satisfiability under `assumptions` (Minisat-style): each
  /// assumption literal is forced as a decision before the free search, so
  /// kUnsat means "unsatisfiable together with the assumptions" while every
  /// clause learned along the way is valid WITHOUT them — assumptions are
  /// decisions, never clauses — and is retained for later calls.
  SolveStatus solve(const std::vector<Literal>& assumptions);

  /// Value of variable v in the satisfying assignment (only after kSat).
  bool value(std::int32_t v) const;

  /// The full model as literals, one per variable (only after kSat).
  std::vector<Literal> model() const;

  const SolverStats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::int32_t kNoReason = -1;

  // Literal -> watch-list index: variable v's positive literal at 2v,
  // negative at 2v+1.
  static std::size_t watch_index(Literal lit) {
    const auto v = static_cast<std::size_t>(lit > 0 ? lit : -lit);
    return 2 * v + (lit < 0 ? 1 : 0);
  }

  enum : std::int8_t { kFalse = 0, kTrue = 1, kUnassigned = -1 };

  std::int8_t literal_value(Literal lit) const;
  void assign(Literal lit, std::int32_t reason_clause);
  std::int32_t propagate();  ///< Returns conflicting clause index or -1.
  void analyze(std::int32_t conflict, std::vector<Literal>& learned,
               std::size_t& backjump_level);
  void backtrack(std::size_t level);
  Literal pick_branch();
  void bump_variable(std::int32_t v);
  void decay_activities();
  void attach_clause(std::int32_t clause_index);

  std::size_t decision_level() const { return trail_limits_.size(); }

  std::size_t num_vars_ = 0;
  std::vector<std::vector<Literal>> clauses_;
  std::vector<std::vector<std::int32_t>> watches_;

  std::vector<std::int8_t> values_;       // Per variable.
  std::vector<std::int32_t> reasons_;     // Clause index or kNoReason.
  std::vector<std::size_t> levels_;       // Decision level of assignment.
  std::vector<double> activities_;
  std::vector<std::int8_t> saved_phase_;  // Phase saving.
  std::vector<Literal> trail_;
  std::vector<std::size_t> trail_limits_;
  std::size_t propagate_head_ = 0;

  double activity_increment_ = 1.0;
  bool trivially_unsat_ = false;
  SolverStats stats_;
};

}  // namespace qsmt::sat

#include "anneal/reverse.hpp"

#include <omp.h>

#include <algorithm>

#include "anneal/context.hpp"
#include "anneal/greedy.hpp"
#include "anneal/simulated_annealer.hpp"
#include "qubo/adjacency.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {

std::vector<double> make_reverse_schedule(double beta_cold, double dip_beta,
                                          std::size_t num_sweeps) {
  require(beta_cold > 0.0 && dip_beta > 0.0 && dip_beta <= beta_cold,
          "make_reverse_schedule: need 0 < dip_beta <= beta_cold");
  require(num_sweeps >= 2, "make_reverse_schedule: need at least two sweeps");
  const std::size_t down = num_sweeps / 2;
  const std::size_t up = num_sweeps - down;
  std::vector<double> schedule =
      make_schedule(beta_cold, dip_beta, down, Interpolation::kGeometric);
  const std::vector<double> back =
      make_schedule(dip_beta, beta_cold, up, Interpolation::kGeometric);
  schedule.insert(schedule.end(), back.begin(), back.end());
  return schedule;
}

ReverseAnnealer::ReverseAnnealer(std::vector<std::uint8_t> initial_state,
                                 ReverseAnnealerParams params)
    : initial_state_(std::move(initial_state)), params_(params) {
  require(params_.num_reads >= 1, "ReverseAnnealer: num_reads >= 1");
  require(params_.num_sweeps >= 2, "ReverseAnnealer: num_sweeps >= 2");
  require(params_.reheat_fraction > 0.0 && params_.reheat_fraction <= 1.0,
          "ReverseAnnealer: reheat_fraction must be in (0, 1]");
}

SampleSet ReverseAnnealer::sample(const qubo::QuboModel& model) const {
  return sample(qubo::QuboAdjacency(model));
}

SampleSet ReverseAnnealer::sample(const qubo::QuboAdjacency& adjacency) const {
  const std::size_t n = adjacency.num_variables();
  require(initial_state_.size() == n,
          "ReverseAnnealer: initial state size does not match model");

  const BetaRange range = default_beta_range(adjacency);
  const std::vector<double> betas = make_reverse_schedule(
      range.cold, range.cold * params_.reheat_fraction, params_.num_sweeps);

  const std::size_t reads = params_.num_reads;
  std::vector<Sample> results(reads);

#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(reads); ++r) {
    Xoshiro256 rng(params_.seed ^ 0x5e7e15edULL,
                   static_cast<std::uint64_t>(r));
    AnnealContext& ctx = thread_local_context();
    ctx.prepare(n);
    std::copy(initial_state_.begin(), initial_state_.end(), ctx.bits.begin());
    // The kernel arms its zero-flip exit only on the schedule's
    // non-decreasing suffix, so the cold opening sweeps of this reverse
    // schedule cannot abort the read before the reheat dip executes — a
    // polished initial state always gets its escape attempt.
    detail::anneal_read(adjacency, betas, rng, ctx);
    if (params_.polish_with_greedy)
      detail::greedy_descend(adjacency, ctx.bits, ctx.field);
    auto& out = results[static_cast<std::size_t>(r)];
    out.energy = adjacency.energy(ctx.bits);
    out.bits.assign(ctx.bits.begin(), ctx.bits.end());
  }

  SampleSet set;
  for (auto& s : results) set.add(std::move(s));
  set.aggregate();
  return set;
}

}  // namespace qsmt::anneal

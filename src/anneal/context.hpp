// Reusable per-thread annealing workspace.
//
// Every annealing read needs three scratch buffers: the working bit
// assignment, the incrementally-maintained local fields, and (for the
// exp-free kernel) the per-sweep bulk uniform draws the Metropolis
// acceptance test consumes.
// Allocating them per read dominated sample() at small model sizes, so the
// hot paths borrow a thread-local AnnealContext instead: buffers grow to the
// largest model a thread has annealed and are reused verbatim afterwards.
//
// Reuse contract (see docs/hotpath.md):
//  - prepare(n) must be called before a read; it resizes the buffers but
//    deliberately does NOT clear them — kernels overwrite every entry they
//    read (bits are re-initialised by the caller, fields by anneal_read).
//  - A context may only be used by one read at a time. The thread_local
//    accessor guarantees this within OpenMP worker threads as long as
//    kernels do not recursively sample on the same thread (none do).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace qsmt::anneal {

struct AnnealContext {
  std::vector<std::uint8_t> bits;   ///< Working assignment, one byte per var.
  std::vector<double> field;        ///< Local fields q_ii + Σ q_ij x_j.
  std::vector<double> uniforms;     ///< Per-sweep bulk U[0,1) draws.

  // Slice-major PIMC workspace (see docs/hotpath.md, "The quantum path").
  // spins[k*n + i] is spin i of Trotter slice k; slice_field mirrors it with
  // the incrementally-maintained classical local fields h_i + Σ_j J_ij s_j^k,
  // and slice_energy[k] tracks each slice's classical Ising energy so the
  // best-slice scan is O(P) instead of O(P·(n+E)) per Γ step.
  std::vector<std::int8_t> spins;
  std::vector<double> slice_field;
  std::vector<double> slice_energy;

  // Replica-major batched-kernel workspace (docs/hotpath.md, "The batched
  // substrate"): one bit-packed spin word per variable plus lane-strided
  // field/uniform rows, sized for one block of the BatchedSweepKernel. The
  // block loop borrows these through the thread-local context, so fused
  // service invocations reuse the same buffers sweep after sweep.
  struct BatchedScratch {
    std::vector<std::uint64_t> spins;     ///< [n] spin words, bit l = lane l.
    std::vector<double> field;            ///< [n * lanes] lane-strided.
    std::vector<double> uniforms;         ///< [n * lanes] lane-strided.
    std::vector<Xoshiro256> rngs;         ///< One per lane.
    std::vector<std::uint64_t> lane_flips;
  };
  BatchedScratch batched;

  /// Sizes all buffers for an n-variable model (contents unspecified).
  void prepare(std::size_t n) {
    bits.resize(n);
    field.resize(n);
    uniforms.resize(n);
  }

  /// Additionally sizes the slice-major PIMC buffers for `slices` Trotter
  /// replicas (contents unspecified, like prepare()).
  void prepare_pimc(std::size_t n, std::size_t slices) {
    prepare(n);
    spins.resize(n * slices);
    slice_field.resize(n * slices);
    slice_energy.resize(slices);
  }

  /// Sizes the batched-kernel workspace for one `lanes`-wide block over an
  /// n-variable model (contents unspecified, like prepare()).
  void prepare_batched(std::size_t n, std::size_t lanes) {
    batched.spins.resize(n);
    batched.field.resize(n * lanes);
    batched.uniforms.resize(n * lanes);
    batched.rngs.resize(lanes, Xoshiro256(0));
    batched.lane_flips.resize(lanes);
  }
};

/// The calling thread's reusable workspace. Buffers persist across reads and
/// across sample() calls, so steady-state sampling performs no allocation.
AnnealContext& thread_local_context();

/// Per-read introspection snapshot shared by every sampler kernel: one call
/// at the end of each read (never per sweep) feeds the anneal.read.* metrics
/// documented in docs/telemetry.md. With telemetry off this is a single
/// branch, which is what keeps the read loop's overhead unmeasurable.
struct ReadStats {
  std::size_t num_variables = 0;
  std::size_t flips = 0;             ///< Accepted moves over the whole read.
  std::size_t sweeps_executed = 0;   ///< Sweeps actually run.
  std::size_t sweeps_scheduled = 0;  ///< Sweeps the schedule asked for.
  bool early_exit = false;           ///< Zero-flip exit fired.
};
void record_read_stats(const ReadStats& stats);

}  // namespace qsmt::anneal

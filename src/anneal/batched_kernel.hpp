// Batched multi-replica annealing substrate.
//
// The serving workload is floods of *small* string QUBOs: one replica
// (annealing read) touches so little state that the scalar per-read loop in
// SimulatedAnnealer::sample spends its time on bookkeeping, branches, and
// per-read RNG rather than arithmetic. This kernel packs R replicas of the
// SAME adjacency into replica-major (structure-of-arrays) state so one pass
// over the shared CSR updates every replica at once:
//
//   spins[i]                    one std::uint64_t per variable; bit l is
//                               lane l's current value of x_i
//   field[i * kStride + l]      lane l's local field q_ii + sum q_ij x_j,
//                               maintained incrementally like the scalar
//                               kernel's ctx.field
//   uniforms[i * kStride + l]   lane l's bulk U[0,1) draw for variable i,
//                               regenerated once per sweep per active lane
//
// Lanes are grouped into blocks of kBatchedLanesPerBlock; blocks are
// independent (their lane state never interacts), so OpenMP distributes
// blocks across threads without affecting results. Within a block the sweep
// is vectorized with AVX2 when the CPU supports it (runtime dispatch; set
// QSMT_NO_AVX2=1 to force the portable scalar fallback). Both paths produce
// bit-identical results to the retained scalar kernel (detail::anneal_read):
// every lane consumes the same counter-seeded RNG stream in the same order,
// the screened Metropolis test is evaluated with the exact operation
// sequence of metropolis.hpp (explicit mul/add — never FMA, which would
// change rounding), and branch-free lane updates only ever add coef * 0.0
// to non-flipped lanes, which can at most flip the sign of a zero field —
// invisible to every later comparison and to the energies recomputed from
// bits. docs/hotpath.md ("The batched substrate") has the layout diagram
// and the measured speedups; bench/batch_bench.cpp tracks them.
//
// Lanes belong to *groups*: a group is one logical sample() call (its own
// seed, replica count, and cancel token). SimulatedAnnealer::sample runs a
// single group; the service's cross-job fusion (service::BatchAggregator)
// packs many jobs' groups into one kernel invocation. Each group's cancel
// token is polled ONCE per batched sweep — not per replica — and a
// cancelled group's lanes drop out of the active mask at the next sweep
// boundary while other groups keep annealing. Per-lane zero-flip early
// exits use the same active mask, so a settled replica stops costing
// anything while its siblings continue.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "anneal/context.hpp"
#include "qubo/adjacency.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {

/// One logical sample() call inside a batched kernel invocation: a block of
/// `num_replicas` contiguous lanes seeded as Xoshiro256(seed, replica) —
/// exactly the streams the scalar path would use — sharing one cancel token.
struct BatchedGroup {
  std::uint64_t seed = 0;
  std::size_t num_replicas = 0;
  CancelToken cancel;
};

/// Post-run per-group aggregates (fed by the per-lane counters).
struct BatchedGroupStats {
  std::size_t replicas = 0;
  std::size_t sweeps_executed = 0;  ///< Max executed sweeps over the lanes.
  std::size_t total_flips = 0;
  std::size_t replicas_early_exited = 0;
  /// The group's token reported cancellation during the run; its lanes were
  /// removed from the active mask at the following sweep boundary.
  bool cancelled = false;
};

namespace detail {

/// Lanes per independent block; also the lane stride of the field/uniform
/// rows (kept equal and a multiple of 4 so AVX2 quads never straddle rows).
inline constexpr std::size_t kBatchedLanes = 16;

/// Borrowed per-block working-state view handed to the sweep/uniform
/// routines (the buffers live in the thread-local AnnealContext, the
/// adjacency rows in the shared CSR).
struct BatchedBlockView {
  std::size_t num_variables = 0;
  std::uint64_t active = 0;       ///< Bit l: lane l still annealing.
  std::uint64_t* spins = nullptr;     ///< [num_variables]
  double* field = nullptr;            ///< [num_variables * kBatchedLanes]
  double* uniforms = nullptr;         ///< [num_variables * kBatchedLanes]
  const qubo::QuboAdjacency* adjacency = nullptr;
};

/// Fills this sweep's uniforms for every active lane (scalar) or every quad
/// containing an active lane (AVX2), advancing the per-lane generators.
/// Each active lane receives exactly the draws the scalar kernel would
/// consume; AVX2 additionally advances inactive lanes sharing a quad, which
/// is unobservable (nothing reads a retired lane's generator again).
void fill_uniforms_scalar(const BatchedBlockView& view, Xoshiro256* rngs);
void fill_uniforms_avx2(const BatchedBlockView& view, Xoshiro256* rngs);

/// One batched Metropolis sweep at inverse temperature `beta` over every
/// active lane. Returns the mask of lanes that accepted at least one flip
/// and bumps lane_flips[l] per accepted move.
std::uint64_t sweep_scalar(const BatchedBlockView& view, double beta,
                           std::uint64_t* lane_flips);
std::uint64_t sweep_avx2(const BatchedBlockView& view, double beta,
                         std::uint64_t* lane_flips);

/// True when this binary carries the AVX2 translation unit (compiled with
/// -mavx2); false on toolchains/targets without it, where the scalar
/// fallback is the only path.
bool batched_avx2_compiled() noexcept;

}  // namespace detail

/// Runtime dispatch verdict: AVX2 code compiled in, supported by this CPU,
/// and not disabled via the QSMT_NO_AVX2 environment variable.
bool batched_avx2_enabled();

/// The batched multi-replica sweep kernel. Construction captures the lane
/// layout (groups get contiguous lane ranges in order); run() anneals every
/// lane through a β schedule; afterwards the per-lane final bits and local
/// fields are available for polish/energy, bit-identical to what the scalar
/// kernel leaves in its AnnealContext.
class BatchedSweepKernel {
 public:
  /// `adjacency` must outlive the kernel. Every group needs >= 1 replica.
  BatchedSweepKernel(const qubo::QuboAdjacency& adjacency,
                     std::vector<BatchedGroup> groups);

  std::size_t num_lanes() const noexcept { return lane_group_.size(); }
  std::size_t num_groups() const noexcept { return groups_.size(); }

  /// Anneals every lane through `betas` (initial bits drawn from the lane's
  /// own stream, exactly like the scalar path). `allow_early_exit` arms the
  /// per-lane zero-flip exit within the schedule's longest non-decreasing
  /// suffix. `force_scalar` pins the portable sweep path regardless of the
  /// runtime dispatch — the in-process AVX2-vs-scalar identity tests use it.
  /// May be called once per kernel.
  void run(std::span<const double> betas, bool allow_early_exit = true,
           bool force_scalar = false);

  /// Final per-lane state after run(): one 0/1 byte per variable, and the
  /// incrementally-maintained local fields (current, so a greedy polish can
  /// skip its own rebuild).
  std::span<const std::uint8_t> lane_bits(std::size_t lane) const;
  std::span<const double> lane_field(std::size_t lane) const;

  /// Per-lane read statistics in the scalar kernel's ReadStats shape.
  ReadStats lane_stats(std::size_t lane) const;
  /// False when the lane's group was already cancelled before its first
  /// sweep — the scalar path records no ReadStats for such reads.
  bool lane_annealed(std::size_t lane) const;

  std::size_t lane_group(std::size_t lane) const { return lane_group_[lane]; }
  /// First lane of `group`; its replicas occupy lanes [first, first + R).
  std::size_t group_first_lane(std::size_t group) const {
    return group_first_lane_[group];
  }
  BatchedGroupStats group_stats(std::size_t group) const;

  /// True when the last run() took the AVX2 sweep path.
  bool used_avx2() const noexcept { return used_avx2_; }

 private:
  void run_block(std::size_t block, std::span<const double> betas,
                 std::size_t monotone_from, bool allow_early_exit,
                 bool use_avx2);

  const qubo::QuboAdjacency* adjacency_;
  std::vector<BatchedGroup> groups_;
  std::vector<std::uint32_t> lane_group_;
  std::vector<std::size_t> group_first_lane_;

  // Per-lane outputs (blocks write disjoint lane ranges, so the parallel
  // block loop needs no synchronisation here).
  std::vector<std::uint8_t> final_bits_;   // [lanes * n]
  std::vector<double> final_field_;        // [lanes * n]
  std::vector<std::uint64_t> lane_flips_;
  std::vector<std::size_t> lane_sweeps_;
  std::vector<std::uint8_t> lane_early_exit_;
  std::vector<std::uint8_t> lane_annealed_;
  // Written concurrently by every block holding lanes of the group (always
  // with the same value), hence the single-word relaxed atomics.
  std::unique_ptr<std::atomic<std::uint8_t>[]> group_cancelled_;

  std::size_t scheduled_sweeps_ = 0;
  bool used_avx2_ = false;
};

}  // namespace qsmt::anneal

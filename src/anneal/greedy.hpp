// Steepest-descent polishing and a standalone greedy sampler.
//
// Equivalent to dwave-greedy's SteepestDescentSampler: repeatedly flips the
// variable with the most negative energy delta until no flip improves. Used
// both as a post-processing step after annealing (quenching residual
// thermal noise) and as a cheap baseline sampler from random starts.
#pragma once

#include <cstdint>
#include <vector>

#include "anneal/sampler.hpp"
#include "qubo/adjacency.hpp"

namespace qsmt::anneal {

namespace detail {
/// Runs steepest descent in place; returns the number of flips performed.
std::size_t greedy_descend(const qubo::QuboAdjacency& adjacency,
                           std::vector<std::uint8_t>& bits);

/// Same, but reuses `field` as the local-field buffer. On entry `field`
/// must hold the current local fields of `bits` (as maintained by
/// anneal_read); it is kept consistent, so annealer → polish chains skip
/// the O(n + m) field rebuild and allocate nothing.
std::size_t greedy_descend(const qubo::QuboAdjacency& adjacency,
                           std::vector<std::uint8_t>& bits,
                           std::vector<double>& field);
}  // namespace detail

struct GreedyDescentParams {
  std::size_t num_reads = 64;  ///< Independent random restarts.
  std::uint64_t seed = 0;
};

class GreedyDescent final : public Sampler {
 public:
  explicit GreedyDescent(GreedyDescentParams params = {});

  SampleSet sample(const qubo::QuboModel& model) const override;
  SampleSet sample(const qubo::QuboAdjacency& adjacency) const override;
  std::string name() const override { return "greedy-descent"; }
  bool supports_adjacency_sampling() const noexcept override { return true; }

 private:
  GreedyDescentParams params_;
};

}  // namespace qsmt::anneal

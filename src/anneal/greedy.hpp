// Steepest-descent polishing and a standalone greedy sampler.
//
// Equivalent to dwave-greedy's SteepestDescentSampler: repeatedly flips the
// variable with the most negative energy delta until no flip improves. Used
// both as a post-processing step after annealing (quenching residual
// thermal noise) and as a cheap baseline sampler from random starts.
#pragma once

#include <cstdint>
#include <vector>

#include "anneal/sampler.hpp"
#include "qubo/adjacency.hpp"

namespace qsmt::anneal {

namespace detail {
/// Runs steepest descent in place; returns the number of flips performed.
std::size_t greedy_descend(const qubo::QuboAdjacency& adjacency,
                           std::vector<std::uint8_t>& bits);
}  // namespace detail

struct GreedyDescentParams {
  std::size_t num_reads = 64;  ///< Independent random restarts.
  std::uint64_t seed = 0;
};

class GreedyDescent final : public Sampler {
 public:
  explicit GreedyDescent(GreedyDescentParams params = {});

  SampleSet sample(const qubo::QuboModel& model) const override;
  std::string name() const override { return "greedy-descent"; }

 private:
  GreedyDescentParams params_;
};

}  // namespace qsmt::anneal

#include "anneal/schedule.hpp"

#include <cmath>

#include "util/require.hpp"

namespace qsmt::anneal {

std::vector<double> make_schedule(double first, double last,
                                  std::size_t num_points,
                                  Interpolation interpolation) {
  require(num_points >= 1, "make_schedule: need at least one point");
  std::vector<double> points(num_points);
  if (num_points == 1) {
    points[0] = first;
    return points;
  }
  const double steps = static_cast<double>(num_points - 1);
  if (interpolation == Interpolation::kLinear) {
    for (std::size_t k = 0; k < num_points; ++k) {
      const double t = static_cast<double>(k) / steps;
      points[k] = first + (last - first) * t;
    }
  } else {
    require(first > 0.0 && last > 0.0,
            "make_schedule: geometric interpolation needs positive endpoints");
    const double ratio = std::pow(last / first, 1.0 / steps);
    double v = first;
    for (std::size_t k = 0; k < num_points; ++k) {
      points[k] = v;
      v *= ratio;
    }
    points[num_points - 1] = last;  // Avoid accumulation drift.
  }
  return points;
}

std::vector<double> make_quench_schedule(double hot, double cold,
                                         std::size_t num_points,
                                         Interpolation interpolation,
                                         double tail_mult, double split) {
  require(num_points >= 1, "make_quench_schedule: need at least one point");
  const auto head = static_cast<std::size_t>(
      split * static_cast<double>(num_points));
  if (head < 1 || head >= num_points) {
    return make_schedule(hot, cold, num_points, interpolation);
  }
  std::vector<double> points =
      make_schedule(hot, cold, head, interpolation);
  const std::vector<double> tail = make_schedule(
      cold, cold * tail_mult, num_points - head, interpolation);
  points.insert(points.end(), tail.begin(), tail.end());
  return points;
}

BetaRange default_beta_range(const qubo::QuboModel& model) {
  // Largest plausible single-flip energy change: bound per variable by
  // |q_ii| + Σ_j |q_ij|.
  std::vector<double> barrier(model.num_variables(), 0.0);
  for (std::size_t i = 0; i < model.num_variables(); ++i)
    barrier[i] = std::abs(model.linear_terms()[i]);
  for (const auto& [key, value] : model.quadratic_terms()) {
    barrier[key >> 32] += std::abs(value);
    barrier[key & 0xffffffffULL] += std::abs(value);
  }
  double max_barrier = 0.0;
  for (double b : barrier) max_barrier = std::max(max_barrier, b);

  double min_barrier = model.min_abs_nonzero_coefficient();
  if (max_barrier <= 0.0) max_barrier = 1.0;  // Flat model: any β works.
  if (min_barrier <= 0.0) min_barrier = max_barrier;

  return BetaRange{std::log(2.0) / max_barrier, std::log(100.0) / min_barrier};
}

BetaRange default_beta_range(const qubo::QuboAdjacency& adjacency) {
  // barrier[i] = |q_ii| + Σ_j |q_ij|; the CSR rows already list each
  // quadratic term under both endpoints, so one pass over the rows matches
  // the model overload's double-counting loop exactly.
  double max_barrier = 0.0;
  for (std::size_t i = 0; i < adjacency.num_variables(); ++i) {
    double barrier = std::abs(adjacency.linear(i));
    for (const auto& nb : adjacency.neighbors(i))
      barrier += std::abs(nb.coefficient);
    max_barrier = std::max(max_barrier, barrier);
  }

  double min_barrier = adjacency.min_abs_nonzero_coefficient();
  if (max_barrier <= 0.0) max_barrier = 1.0;  // Flat model: any β works.
  if (min_barrier <= 0.0) min_barrier = max_barrier;

  return BetaRange{std::log(2.0) / max_barrier, std::log(100.0) / min_barrier};
}

}  // namespace qsmt::anneal

#include "anneal/simulated_annealer.hpp"

#include <omp.h>

#include <cmath>
#include <vector>

#include "anneal/greedy.hpp"
#include "anneal/metropolis.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace qsmt::anneal {

SimulatedAnnealer::SimulatedAnnealer(SimulatedAnnealerParams params)
    : params_(params) {
  require(params_.num_reads >= 1, "SimulatedAnnealer: num_reads must be >= 1");
  require(params_.num_sweeps >= 1,
          "SimulatedAnnealer: num_sweeps must be >= 1");
}

namespace detail {

std::size_t anneal_read(const qubo::QuboAdjacency& adjacency,
                        std::span<const double> betas, Xoshiro256& rng,
                        AnnealContext& ctx, bool allow_early_exit,
                        const CancelToken* cancel) {
  const std::size_t n = adjacency.num_variables();
  auto& bits = ctx.bits;
  auto& field = ctx.field;
  auto& uniforms = ctx.uniforms;
  // Incrementally maintained local fields: field[i] = q_ii + Σ_j q_ij x_j.
  for (std::size_t i = 0; i < n; ++i) field[i] = adjacency.local_field(bits, i);

  // The zero-flip early exit is sound only while every remaining sweep is at
  // least as cold as the current one. Reverse-annealing schedules start cold,
  // dip hot, and come back, so restrict the exit to the longest
  // non-decreasing suffix of the schedule: before `monotone_from` (i.e.
  // before the dip) a zero-flip sweep says nothing about the sweeps ahead.
  std::size_t monotone_from = 0;
  if (allow_early_exit && !betas.empty()) {
    monotone_from = betas.size() - 1;
    while (monotone_from > 0 && betas[monotone_from - 1] <= betas[monotone_from])
      --monotone_from;
  }

  std::size_t total_flips = 0;
  std::size_t executed = 0;
  bool exited_early = false;
  for (std::size_t s = 0; s < betas.size(); ++s) {
    // Cooperative cancellation rides the same per-sweep plumbing as the
    // zero-flip exit: between sweeps the state is consistent, so a
    // cancelled read simply returns what it has annealed so far.
    if (cancel && cancel->cancelled()) break;
    ++executed;
    const double beta = betas[s];
    // Bulk uniforms up front (the generation loop is branch-free and
    // independent of the sweep state); the acceptance test itself is the
    // screened exact-Metropolis compare from metropolis.hpp, which touches
    // std::exp only inside its narrow ambiguity band.
    for (std::size_t i = 0; i < n; ++i) {
      uniforms[i] = rng.uniform();
    }
    std::size_t flips = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = bits[i] ? -field[i] : field[i];
      if (metropolis_accept(beta * delta, uniforms[i])) {
        const double step = bits[i] ? -1.0 : 1.0;
        bits[i] ^= 1u;
        ++flips;
        for (const auto& nb : adjacency.neighbors(i)) {
          field[nb.index] += nb.coefficient * step;
        }
      }
    }
    total_flips += flips;
    // A zero-flip sweep means the state is a local minimum AND every uphill
    // proposal was rejected; once inside the non-decreasing suffix the
    // remaining (colder) sweeps accept uphill moves with no greater
    // probability, and the greedy polish mops up any strictly-downhill
    // chain, so the read is done.
    if (flips == 0 && allow_early_exit && s >= monotone_from) {
      exited_early = s + 1 < betas.size();
      break;
    }
  }
  record_read_stats(ReadStats{n, total_flips, executed, betas.size(),
                              exited_early});
  return total_flips;
}

void anneal_read(const qubo::QuboAdjacency& adjacency,
                 std::span<const double> betas, Xoshiro256& rng,
                 std::vector<std::uint8_t>& bits, bool allow_early_exit) {
  AnnealContext& ctx = thread_local_context();
  ctx.prepare(bits.size());
  ctx.bits.swap(bits);
  anneal_read(adjacency, betas, rng, ctx, allow_early_exit);
  ctx.bits.swap(bits);
}

void anneal_read_reference(const qubo::QuboAdjacency& adjacency,
                           std::span<const double> betas, Xoshiro256& rng,
                           std::vector<std::uint8_t>& bits) {
  const std::size_t n = adjacency.num_variables();
  std::vector<double> field(n);
  for (std::size_t i = 0; i < n; ++i) field[i] = adjacency.local_field(bits, i);

  for (double beta : betas) {
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = bits[i] ? -field[i] : field[i];
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta * beta)) {
        const double step = bits[i] ? -1.0 : 1.0;
        bits[i] ^= 1u;
        for (const auto& nb : adjacency.neighbors(i)) {
          field[nb.index] += nb.coefficient * step;
        }
      }
    }
  }
}

}  // namespace detail

namespace {

/// The β schedule sample() runs, shared by the scalar and batched paths.
/// With a fully defaulted β range, use the anneal-then-quench schedule: the
/// quench tail freezes each read so the kernel's zero-flip early exit fires
/// well before the nominal sweep count, which is where most of the measured
/// sweep-throughput win comes from (see docs/hotpath.md). Explicitly set
/// endpoints keep the plain interpolated schedule — the caller asked for
/// exactly that β range, and tests rely on it being honoured.
std::vector<double> sample_schedule(const qubo::QuboAdjacency& adjacency,
                                    const SimulatedAnnealerParams& params) {
  const BetaRange range = default_beta_range(adjacency);
  const bool defaulted = !params.beta_hot && !params.beta_cold;
  const double hot = params.beta_hot.value_or(range.hot);
  const double cold = params.beta_cold.value_or(range.cold);
  return defaulted ? make_quench_schedule(hot, cold, params.num_sweeps,
                                          params.beta_interpolation)
                   : make_schedule(hot, cold, params.num_sweeps,
                                   params.beta_interpolation);
}

}  // namespace

std::vector<SampleSet> sample_batched(const qubo::QuboAdjacency& adjacency,
                                      const SimulatedAnnealerParams& params,
                                      std::span<const BatchedGroup> groups) {
  require(!groups.empty(), "sample_batched: need at least one group");
  require(params.num_sweeps >= 1, "sample_batched: num_sweeps must be >= 1");
  for (const BatchedGroup& group : groups) {
    require(group.num_replicas >= 1,
            "sample_batched: every group needs >= 1 replica");
  }
  const std::size_t n = adjacency.num_variables();
  const std::vector<double> betas = sample_schedule(adjacency, params);

  BatchedSweepKernel kernel(adjacency,
                            std::vector<BatchedGroup>(groups.begin(),
                                                      groups.end()));
  const std::size_t lanes = kernel.num_lanes();

  telemetry::Span span("anneal.sample");
  span.arg("num_variables", static_cast<double>(n));
  span.arg("num_reads", static_cast<double>(lanes));
  span.arg("num_sweeps", static_cast<double>(params.num_sweeps));
  const bool telemetry_on = telemetry::enabled();
  telemetry::Histogram read_energy;
  if (telemetry_on) {
    static const auto beta_hot_gauge = telemetry::gauge("anneal.beta.hot");
    static const auto beta_cold_gauge = telemetry::gauge("anneal.beta.cold");
    if (!betas.empty()) {
      beta_hot_gauge.set(betas.front());
      beta_cold_gauge.set(betas.back());
    }
    read_energy = telemetry::histogram("anneal.read.energy");
  }

  kernel.run(betas, params.early_exit);

  if (telemetry_on) {
    static const auto invocations =
        telemetry::counter("anneal.batch.invocations");
    static const auto replicas = telemetry::counter("anneal.batch.replicas");
    invocations.add();
    replicas.add(static_cast<std::uint64_t>(lanes));
    if (kernel.used_avx2()) {
      // Interned lazily so scalar-fallback hosts never surface the name.
      static const auto avx2_runs = telemetry::counter("anneal.batch.avx2");
      avx2_runs.add();
    }
  }

  // Per-lane greedy polish + energy off the kernel's final bits/fields —
  // identical to the scalar path's per-read tail, and embarrassingly
  // parallel for the same reason.
  std::vector<Sample> results(lanes);
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t lane = 0; lane < static_cast<std::ptrdiff_t>(lanes);
       ++lane) {
    const std::size_t l = static_cast<std::size_t>(lane);
    AnnealContext& ctx = thread_local_context();
    ctx.prepare(n);
    const auto bits = kernel.lane_bits(l);
    const auto field = kernel.lane_field(l);
    ctx.bits.assign(bits.begin(), bits.end());
    ctx.field.assign(field.begin(), field.end());
    const BatchedGroup& group = groups[kernel.lane_group(l)];
    const bool cancelled =
        group.cancel.cancellable() && group.cancel.cancelled();
    if (kernel.lane_annealed(l)) record_read_stats(kernel.lane_stats(l));
    if (params.polish_with_greedy && !cancelled) {
      detail::greedy_descend(adjacency, ctx.bits, ctx.field);
    }
    auto& out = results[l];
    out.energy = adjacency.energy(ctx.bits);
    out.bits.assign(ctx.bits.begin(), ctx.bits.end());
    out.num_occurrences = 1;
    if (telemetry_on) read_energy.record(out.energy);
  }

  std::vector<SampleSet> sets;
  sets.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    SampleSet set;
    const std::size_t first = kernel.group_first_lane(g);
    for (std::size_t r = 0; r < groups[g].num_replicas; ++r) {
      set.add(std::move(results[first + r]));
    }
    set.aggregate();
    sets.push_back(std::move(set));
  }
  return sets;
}

SampleSet SimulatedAnnealer::sample(const qubo::QuboModel& model) const {
  return sample(qubo::QuboAdjacency(model));
}

SampleSet SimulatedAnnealer::sample(
    const qubo::QuboAdjacency& adjacency) const {
  const std::size_t n = adjacency.num_variables();

  // Route multi-read runs through the batched substrate (bit-identical to
  // the scalar loop below, see batched_kernel.hpp). Trace-mode telemetry
  // stays on the scalar path for its per-read trace events; SweepMode
  // overrides pick a substrate explicitly.
  const bool batched =
      params_.sweep_mode == SweepMode::kBatched ||
      (params_.sweep_mode == SweepMode::kAuto && params_.num_reads >= 2 &&
       !telemetry::trace_enabled());
  if (batched) {
    BatchedGroup group;
    group.seed = params_.seed;
    group.num_replicas = params_.num_reads;
    group.cancel = params_.cancel;
    std::vector<SampleSet> sets =
        sample_batched(adjacency, params_, std::span(&group, 1));
    return std::move(sets.front());
  }

  const std::vector<double> betas = sample_schedule(adjacency, params_);
  const double hot = betas.empty() ? 0.0 : betas.front();
  const double cold = betas.empty() ? 0.0 : betas.back();

  telemetry::Span span("anneal.sample");
  span.arg("num_variables", static_cast<double>(n));
  span.arg("num_reads", static_cast<double>(params_.num_reads));
  span.arg("num_sweeps", static_cast<double>(params_.num_sweeps));
  span.arg("beta_hot", betas.empty() ? hot : betas.front());
  span.arg("beta_cold", betas.empty() ? cold : betas.back());
  const bool telemetry_on = telemetry::enabled();
  const bool trace_on = telemetry::trace_enabled();
  telemetry::Histogram read_energy;
  if (telemetry_on) {
    static const auto beta_hot_gauge = telemetry::gauge("anneal.beta.hot");
    static const auto beta_cold_gauge = telemetry::gauge("anneal.beta.cold");
    beta_hot_gauge.set(betas.empty() ? hot : betas.front());
    beta_cold_gauge.set(betas.empty() ? cold : betas.back());
    read_energy = telemetry::histogram("anneal.read.energy");
  }

  const std::size_t reads = params_.num_reads;
  std::vector<Sample> results(reads);
  const CancelToken* cancel =
      params_.cancel.cancellable() ? &params_.cancel : nullptr;

#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(reads); ++r) {
    const double read_start_us = trace_on ? telemetry::trace_now_us() : 0.0;
    AnnealContext& ctx = thread_local_context();
    ctx.prepare(n);
    Xoshiro256 rng(params_.seed, static_cast<std::uint64_t>(r));
    for (auto& b : ctx.bits) b = rng.coin() ? 1 : 0;

    // A cancelled run still fills every slot (SampleSet must stay
    // well-formed), but pending reads return their random initial state and
    // skip the polish — the caller asked us to stop spending cycles.
    const bool cancelled_before_read = cancel && cancel->cancelled();
    if (!cancelled_before_read) {
      detail::anneal_read(adjacency, betas, rng, ctx, params_.early_exit,
                          cancel);
    }
    if (params_.polish_with_greedy && !(cancel && cancel->cancelled())) {
      // ctx.field is current after the anneal, so the polish pass skips its
      // own field rebuild.
      detail::greedy_descend(adjacency, ctx.bits, ctx.field);
    }

    auto& out = results[static_cast<std::size_t>(r)];
    out.energy = adjacency.energy(ctx.bits);
    out.bits.assign(ctx.bits.begin(), ctx.bits.end());
    out.num_occurrences = 1;
    if (telemetry_on) read_energy.record(out.energy);
    if (trace_on) {
      // Per-read trajectory: one trace slice per read with its final
      // energy, so chrome://tracing shows how reads spread over threads
      // and where the best energies landed.
      telemetry::TraceEvent event;
      event.name = "anneal.read";
      event.tid = telemetry::current_thread_id();
      event.ts_us = read_start_us;
      event.dur_us = telemetry::trace_now_us() - read_start_us;
      event.args = {{"read", static_cast<double>(r)},
                    {"energy", out.energy}};
      telemetry::add_trace_event(std::move(event));
    }
  }

  SampleSet set;
  for (auto& s : results) set.add(std::move(s));
  set.aggregate();
  return set;
}

}  // namespace qsmt::anneal

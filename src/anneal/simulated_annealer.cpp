#include "anneal/simulated_annealer.hpp"

#include <omp.h>

#include <cmath>
#include <vector>

#include "anneal/greedy.hpp"
#include "util/require.hpp"

namespace qsmt::anneal {

SimulatedAnnealer::SimulatedAnnealer(SimulatedAnnealerParams params)
    : params_(params) {
  require(params_.num_reads >= 1, "SimulatedAnnealer: num_reads must be >= 1");
  require(params_.num_sweeps >= 1,
          "SimulatedAnnealer: num_sweeps must be >= 1");
}

namespace detail {

void anneal_read(const qubo::QuboAdjacency& adjacency,
                 std::span<const double> betas, Xoshiro256& rng,
                 std::vector<std::uint8_t>& bits) {
  const std::size_t n = adjacency.num_variables();
  // Incrementally maintained local fields: field[i] = q_ii + Σ_j q_ij x_j.
  std::vector<double> field(n);
  for (std::size_t i = 0; i < n; ++i) field[i] = adjacency.local_field(bits, i);

  for (double beta : betas) {
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = bits[i] ? -field[i] : field[i];
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta * beta)) {
        const double step = bits[i] ? -1.0 : 1.0;
        bits[i] ^= 1u;
        for (const auto& nb : adjacency.neighbors(i)) {
          field[nb.index] += nb.coefficient * step;
        }
      }
    }
  }
}

}  // namespace detail

SampleSet SimulatedAnnealer::sample(const qubo::QuboModel& model) const {
  const qubo::QuboAdjacency adjacency(model);
  const std::size_t n = adjacency.num_variables();

  const BetaRange range = default_beta_range(model);
  const double hot = params_.beta_hot.value_or(range.hot);
  const double cold = params_.beta_cold.value_or(range.cold);
  const std::vector<double> betas =
      make_schedule(hot, cold, params_.num_sweeps, params_.beta_interpolation);

  const std::size_t reads = params_.num_reads;
  std::vector<Sample> results(reads);

#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(reads); ++r) {
    Xoshiro256 rng(params_.seed, static_cast<std::uint64_t>(r));
    std::vector<std::uint8_t> bits(n);
    for (auto& b : bits) b = rng.coin() ? 1 : 0;

    detail::anneal_read(adjacency, betas, rng, bits);
    if (params_.polish_with_greedy) detail::greedy_descend(adjacency, bits);

    auto& out = results[static_cast<std::size_t>(r)];
    out.energy = adjacency.energy(bits);
    out.bits = std::move(bits);
    out.num_occurrences = 1;
  }

  SampleSet set;
  for (auto& s : results) set.add(std::move(s));
  set.aggregate();
  return set;
}

}  // namespace qsmt::anneal

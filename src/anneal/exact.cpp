#include "anneal/exact.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "qubo/adjacency.hpp"
#include "util/require.hpp"

namespace qsmt::anneal {

ExactSolver::ExactSolver(ExactSolverParams params) : params_(params) {
  require(params_.max_samples >= 1, "ExactSolver: max_samples must be >= 1");
}

namespace {

// Index of the bit that changes between Gray codes of k and k+1.
std::size_t gray_flip_index(std::uint64_t k) noexcept {
  return static_cast<std::size_t>(__builtin_ctzll(k + 1));
}

template <typename Visit>
void enumerate(const qubo::QuboAdjacency& adjacency, Visit&& visit) {
  const std::size_t n = adjacency.num_variables();
  std::vector<std::uint8_t> bits(n, 0);
  std::vector<double> field(n);
  for (std::size_t i = 0; i < n; ++i) field[i] = adjacency.linear(i);

  double energy = adjacency.offset();
  visit(bits, energy);
  const std::uint64_t total = 1ULL << n;
  for (std::uint64_t k = 0; k + 1 < total; ++k) {
    const std::size_t i = gray_flip_index(k);
    energy += bits[i] ? -field[i] : field[i];
    const double step = bits[i] ? -1.0 : 1.0;
    bits[i] ^= 1u;
    for (const auto& nb : adjacency.neighbors(i)) {
      field[nb.index] += nb.coefficient * step;
    }
    visit(bits, energy);
  }
}

}  // namespace

SampleSet ExactSolver::sample(const qubo::QuboModel& model) const {
  require(model.num_variables() <= params_.max_variables,
          "ExactSolver: model exceeds max_variables");
  const qubo::QuboAdjacency adjacency(model);

  // Keep the best max_samples assignments seen so far. The candidate pool is
  // kept at twice the budget and compacted when full, so the enumeration
  // stays O(2^n log k) without a per-step sort.
  struct Candidate {
    std::vector<std::uint8_t> bits;
    double energy;
  };
  std::vector<Candidate> pool;
  pool.reserve(params_.max_samples * 2 + 1);
  double worst_kept = std::numeric_limits<double>::infinity();

  auto compact = [&] {
    std::sort(pool.begin(), pool.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.energy < b.energy;
              });
    if (pool.size() > params_.max_samples) pool.resize(params_.max_samples);
    worst_kept = pool.size() == params_.max_samples
                     ? pool.back().energy
                     : std::numeric_limits<double>::infinity();
  };

  enumerate(adjacency, [&](const std::vector<std::uint8_t>& bits,
                           double energy) {
    if (energy >= worst_kept) return;
    pool.push_back(Candidate{bits, energy});
    if (pool.size() >= params_.max_samples * 2) compact();
  });
  compact();

  SampleSet set;
  for (auto& c : pool) set.add(std::move(c.bits), c.energy);
  set.sort_by_energy();
  return set;
}

double ExactSolver::ground_energy(const qubo::QuboModel& model) const {
  require(model.num_variables() <= params_.max_variables,
          "ExactSolver: model exceeds max_variables");
  const qubo::QuboAdjacency adjacency(model);
  double best = std::numeric_limits<double>::infinity();
  enumerate(adjacency, [&](const std::vector<std::uint8_t>&, double energy) {
    best = std::min(best, energy);
  });
  return best;
}

}  // namespace qsmt::anneal

// Exhaustive QUBO solver for small models.
//
// Enumerates all 2^n assignments in Gray-code order so each step is a
// single-bit flip evaluated in O(degree) — the ground truth oracle used by
// the test suite and by the success-probability benches. Hard-capped at
// 30 variables; larger requests throw rather than silently running for
// hours (Core Guidelines I.6: prefer Expects() over surprising behaviour).
#pragma once

#include <cstdint>

#include "anneal/sampler.hpp"

namespace qsmt::anneal {

struct ExactSolverParams {
  /// Keep at most this many lowest-energy samples in the result.
  std::size_t max_samples = 64;
  /// Refuse models with more variables than this (safety valve).
  std::size_t max_variables = 30;
};

class ExactSolver final : public Sampler {
 public:
  explicit ExactSolver(ExactSolverParams params = {});

  /// Throws std::invalid_argument when the model exceeds max_variables.
  SampleSet sample(const qubo::QuboModel& model) const override;
  std::string name() const override { return "exact"; }

  /// Ground-state energy only (same enumeration, no sample bookkeeping).
  double ground_energy(const qubo::QuboModel& model) const;

 private:
  ExactSolverParams params_;
};

}  // namespace qsmt::anneal

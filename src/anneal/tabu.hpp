// Tabu search over QUBO models.
//
// A single-flip tabu heuristic in the style of dwave-tabu: each restart
// walks greedily to the best admissible neighbour (even uphill), recently
// flipped variables are tabu for `tenure` iterations unless the move beats
// the best energy seen (aspiration), and the walk stops after
// `max_stale_iterations` without improvement.
#pragma once

#include <cstdint>
#include <optional>

#include "anneal/sampler.hpp"

namespace qsmt::anneal {

struct TabuParams {
  std::size_t num_restarts = 16;
  /// Tabu tenure; when unset, defaults to min(20, n/4 + 1) per restart.
  std::optional<std::size_t> tenure;
  std::size_t max_stale_iterations = 200;
  std::uint64_t seed = 0;
};

class TabuSampler final : public Sampler {
 public:
  explicit TabuSampler(TabuParams params = {});

  SampleSet sample(const qubo::QuboModel& model) const override;
  std::string name() const override { return "tabu"; }

 private:
  TabuParams params_;
};

}  // namespace qsmt::anneal

// Uniform random sampler — the null baseline for the sampler benches.
#pragma once

#include <cstdint>

#include "anneal/sampler.hpp"

namespace qsmt::anneal {

struct RandomSamplerParams {
  std::size_t num_reads = 64;
  std::uint64_t seed = 0;
};

class RandomSampler final : public Sampler {
 public:
  explicit RandomSampler(RandomSamplerParams params = {});

  SampleSet sample(const qubo::QuboModel& model) const override;
  std::string name() const override { return "random"; }

 private:
  RandomSamplerParams params_;
};

}  // namespace qsmt::anneal

// Reverse annealing: iterative refinement from a known starting state.
//
// D-Wave hardware supports "reverse anneal": start from a classical state,
// partially re-heat (lower β / raise the transverse field), then re-cool.
// The classical analogue implemented here seeds every read with a given
// initial assignment, runs a β schedule that dips from cold down to
// β_cold * reheat_fraction and back (a V-shaped schedule), and returns the
// refined samples. Used for local refinement around a good-but-imperfect
// solution — e.g. polishing the output of a previous solver stage.
#pragma once

#include <cstdint>
#include <vector>

#include "anneal/sampler.hpp"
#include "anneal/schedule.hpp"

namespace qsmt::anneal {

struct ReverseAnnealerParams {
  std::size_t num_reads = 32;
  std::size_t num_sweeps = 256;  ///< Total sweeps across the V schedule.
  /// How far to re-heat: β dips to reheat_fraction * β_cold (0 = full
  /// re-randomisation, 1 = no reheat). Typical: 0.1–0.5.
  double reheat_fraction = 0.25;
  std::uint64_t seed = 0;
  bool polish_with_greedy = true;
};

class ReverseAnnealer final : public Sampler {
 public:
  /// `initial_state` seeds every read; its size must match the sampled
  /// model's variable count.
  ReverseAnnealer(std::vector<std::uint8_t> initial_state,
                  ReverseAnnealerParams params);

  SampleSet sample(const qubo::QuboModel& model) const override;
  SampleSet sample(const qubo::QuboAdjacency& adjacency) const override;
  std::string name() const override { return "reverse-annealing"; }
  bool supports_adjacency_sampling() const noexcept override { return true; }

 private:
  std::vector<std::uint8_t> initial_state_;
  ReverseAnnealerParams params_;
};

/// The V-shaped β schedule reverse annealing uses: cold → dip → cold,
/// geometric in both legs. Exposed for tests.
std::vector<double> make_reverse_schedule(double beta_cold, double dip_beta,
                                          std::size_t num_sweeps);

}  // namespace qsmt::anneal

// Annealing schedules.
//
// Simulated annealing sweeps an inverse temperature β from hot to cold;
// the quantum (path-integral) annealer sweeps a transverse field Γ from
// strong to weak. Both are represented as precomputed per-sweep values so
// the inner loops stay branch-free.
#pragma once

#include <cstddef>
#include <vector>

#include "qubo/adjacency.hpp"
#include "qubo/qubo_model.hpp"

namespace qsmt::anneal {

enum class Interpolation {
  kLinear,
  kGeometric,
};

/// `num_points` values from `first` to `last` inclusive (num_points >= 1;
/// with one point the value is `first`). Geometric interpolation requires
/// both endpoints positive.
std::vector<double> make_schedule(double first, double last,
                                  std::size_t num_points,
                                  Interpolation interpolation);

/// Anneal-then-quench schedule: interpolates `hot` → `cold` over the first
/// `split` fraction of the points, then keeps cooling `cold` →
/// `cold * tail_mult` over the rest. The tail freezes the state quickly so
/// a sweep kernel with a zero-flip early exit stops touching memory once
/// the read has settled, instead of burning the back half of the schedule
/// on all-reject sweeps; the preceding hot→cold segment is unchanged, so
/// exploration quality matches the plain schedule (see docs/hotpath.md for
/// measurements). Degenerates to make_schedule() when the tail is empty.
std::vector<double> make_quench_schedule(double hot, double cold,
                                         std::size_t num_points,
                                         Interpolation interpolation,
                                         double tail_mult = 32.0,
                                         double split = 0.4);

/// Derives a (β_hot, β_cold) range from the model's coefficients the same
/// way dwave-neal does: hot enough that the largest single-flip barrier is
/// accepted with probability ~1/2, cold enough that the smallest nonzero
/// barrier is accepted with probability ~1/100.
struct BetaRange {
  double hot;
  double cold;
};
BetaRange default_beta_range(const qubo::QuboModel& model);

/// Same derivation from a prebuilt adjacency — yields the same range as the
/// model overload (zero-valued quadratic entries influence neither), so
/// samplers can run entirely off the CSR view.
BetaRange default_beta_range(const qubo::QuboAdjacency& adjacency);

}  // namespace qsmt::anneal

// Annealing schedules.
//
// Simulated annealing sweeps an inverse temperature β from hot to cold;
// the quantum (path-integral) annealer sweeps a transverse field Γ from
// strong to weak. Both are represented as precomputed per-sweep values so
// the inner loops stay branch-free.
#pragma once

#include <cstddef>
#include <vector>

#include "qubo/qubo_model.hpp"

namespace qsmt::anneal {

enum class Interpolation {
  kLinear,
  kGeometric,
};

/// `num_points` values from `first` to `last` inclusive (num_points >= 1;
/// with one point the value is `first`). Geometric interpolation requires
/// both endpoints positive.
std::vector<double> make_schedule(double first, double last,
                                  std::size_t num_points,
                                  Interpolation interpolation);

/// Derives a (β_hot, β_cold) range from the model's coefficients the same
/// way dwave-neal does: hot enough that the largest single-flip barrier is
/// accepted with probability ~1/2, cold enough that the smallest nonzero
/// barrier is accepted with probability ~1/100.
struct BetaRange {
  double hot;
  double cold;
};
BetaRange default_beta_range(const qubo::QuboModel& model);

}  // namespace qsmt::anneal

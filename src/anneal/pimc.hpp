// Path-integral Monte Carlo simulation of transverse-field quantum
// annealing (PIQA).
//
// The paper's future work is running its QUBOs on a real quantum annealer;
// we substitute the standard classical simulation of that device
// (Martoňák, Santoro & Tosatti, PRB 66, 094203 (2002)): the quantum Ising
// Hamiltonian
//   H(t) = Σ h_i σ^z_i + Σ J_ij σ^z_i σ^z_j - Γ(t) Σ σ^x_i
// is Suzuki-Trotter mapped onto P coupled classical replicas ("slices"),
//   H_eff = Σ_k [ H_problem(s^k) / P ] - J⊥(Γ) Σ_{k,i} s^k_i s^{k+1}_i ,
//   J⊥(Γ) = -(T/2) ln tanh(Γ / (P T)) > 0, periodic in k,
// and sampled with Metropolis moves (single spin flips plus whole-column
// "global" flips) while Γ decays from gamma_hot to gamma_cold. The output
// sample of a read is the best slice encountered, scored by the true
// problem Hamiltonian.
//
// The inner loop runs the same hot-path treatment as the classical SA
// kernel (docs/hotpath.md, "The quantum path"): per-slice classical local
// fields are maintained incrementally in slice-major AnnealContext buffers,
// so a proposal is O(1) and an accepted flip O(degree); acceptance is the
// screened exp-free Metropolis compare with bulk-generated uniforms.
//
// Reads are OpenMP-parallel with counter-seeded RNG streams like the
// classical annealer, and bit-for-bit deterministic across thread counts.
#pragma once

#include <cstdint>

#include "anneal/sampler.hpp"
#include "util/cancel.hpp"

namespace qsmt::anneal {

struct PathIntegralParams {
  std::size_t num_reads = 32;
  std::size_t num_sweeps = 256;   ///< Γ-schedule steps; one full pass each.
  std::size_t num_slices = 16;    ///< Trotter replicas P.
  double temperature = 0.05;      ///< Simulation temperature T (in energy units).
  double gamma_hot = 3.0;         ///< Initial transverse field.
  double gamma_cold = 1e-3;       ///< Final transverse field.
  std::uint64_t seed = 0;
  bool polish_with_greedy = true; ///< Quench the winning slice classically.
  /// Cooperative cancellation, polled once per slice sweep (the same
  /// granularity as the classical SA/PT kernels, so service deadlines cut
  /// large models short within one sweep). See
  /// SimulatedAnnealerParams::cancel for the contract.
  CancelToken cancel;
};

class PathIntegralAnnealer final : public Sampler {
 public:
  explicit PathIntegralAnnealer(PathIntegralParams params = {});

  SampleSet sample(const qubo::QuboModel& model) const override;
  std::string name() const override { return "path-integral-quantum"; }

  const PathIntegralParams& params() const noexcept { return params_; }

 private:
  PathIntegralParams params_;
};

/// Trotter inter-slice ferromagnetic coupling strength J⊥ for transverse
/// field `gamma`, `num_slices` replicas at `temperature`. Exposed for tests:
/// J⊥ → ∞ as gamma → 0 (slices lock) and → 0 as gamma grows (slices free).
double trotter_coupling(double gamma, std::size_t num_slices,
                        double temperature);

namespace detail {

/// The pre-overhaul PIMC kernel: per-proposal adjacency walks, lazy uniform
/// draws, textbook `exp` acceptance, per-Γ-step slice rescoring. Kept
/// verbatim as the bench baseline (BENCH_quantum.json) and for the
/// conformance suite's ground-state parity checks.
SampleSet pimc_sample_reference(const qubo::QuboModel& model,
                                const PathIntegralParams& params);

/// Field-cache audit oracle: runs the incremental-field kernel and, after
/// every Γ step, recomputes each cached slice field and each slice energy
/// directly from the adjacency. Returns the maximum absolute deviation
/// observed across all reads/steps — the kernel-equivalence bound asserted
/// by tests/quantum_hotpath_test.cpp.
double pimc_field_drift(const qubo::QuboModel& model,
                        const PathIntegralParams& params);

}  // namespace detail

}  // namespace qsmt::anneal

// Annealing-effort auto-tuning.
//
// Production annealing workflows size num_sweeps empirically: too few and
// the success probability collapses, too many and every solve overpays.
// tune_sweeps runs a doubling search — starting from a floor, double the
// sweep budget until the measured success rate over a pilot batch reaches
// the target (or the ceiling is hit) — and reports the chosen budget with
// its measured rate. Success is defined by a caller-supplied predicate on
// the decoded sample (e.g. "classically verifies"), not by energy alone,
// so it composes with every formulation in the suite.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "qubo/qubo_model.hpp"

namespace qsmt::anneal {

struct TuneParams {
  std::size_t initial_sweeps = 8;
  std::size_t max_sweeps = 4096;
  std::size_t pilot_reads = 32;   ///< Reads per probe batch.
  double target_success = 0.9;    ///< Fraction of reads that must succeed.
  std::uint64_t seed = 0;
};

struct TuneResult {
  std::size_t sweeps = 0;         ///< Chosen budget.
  double success = 0.0;           ///< Measured success at that budget.
  bool target_met = false;        ///< False when max_sweeps was exhausted.
  std::size_t probes = 0;         ///< Doubling steps performed.
};

/// Predicate deciding whether one sample's bit assignment counts as a
/// success (e.g. decodes to a verified string).
using SampleJudge = std::function<bool(std::span<const std::uint8_t>)>;

/// Doubling search over num_sweeps for the built-in simulated annealer.
TuneResult tune_sweeps(const qubo::QuboModel& model, const SampleJudge& judge,
                       const TuneParams& params = {});

}  // namespace qsmt::anneal

// Population annealing over QUBO models.
//
// A sequential Monte Carlo cousin of simulated annealing (Hukushima & Iba
// 2003; Machta 2010): a population of replicas is cooled along a β
// schedule, and at every temperature step each replica is resampled with
// multiplicity proportional to exp(-Δβ · E) before a round of Metropolis
// sweeps re-equilibrates it. The resampling concentrates the population in
// low-energy basins faster than independent restarts, making this the
// strongest "many walkers" classical comparator in the suite.
//
// One read = one full population run (OpenMP-parallel across reads, same
// counter-seeded determinism as the other samplers); the returned sample of
// a read is its best replica, polished greedily if configured.
#pragma once

#include <cstdint>
#include <optional>

#include "anneal/sampler.hpp"
#include "anneal/schedule.hpp"

namespace qsmt::anneal {

struct PopulationAnnealingParams {
  std::size_t num_reads = 8;          ///< Independent population runs.
  std::size_t population_size = 64;   ///< Replicas per run.
  std::size_t num_temperatures = 32;  ///< β ladder steps.
  std::size_t sweeps_per_step = 4;    ///< Metropolis sweeps per β step.
  std::uint64_t seed = 0;
  /// β endpoints. When unset, derived per-model via default_beta_range().
  std::optional<double> beta_hot;
  std::optional<double> beta_cold;
  bool polish_with_greedy = true;
};

class PopulationAnnealing final : public Sampler {
 public:
  explicit PopulationAnnealing(PopulationAnnealingParams params = {});

  SampleSet sample(const qubo::QuboModel& model) const override;
  SampleSet sample(const qubo::QuboAdjacency& adjacency) const override;
  std::string name() const override { return "population-annealing"; }
  bool supports_adjacency_sampling() const noexcept override { return true; }

  const PopulationAnnealingParams& params() const noexcept { return params_; }

 private:
  PopulationAnnealingParams params_;
};

}  // namespace qsmt::anneal

#include "anneal/sampler.hpp"

namespace qsmt::anneal {

SampleSet Sampler::sample(const qubo::QuboAdjacency& adjacency) const {
  // Generic fallback for samplers without a native CSR path: reconstruct an
  // equivalent model. Costs about one adjacency build; overriding samplers
  // avoid it entirely.
  return sample(adjacency.to_model());
}

}  // namespace qsmt::anneal

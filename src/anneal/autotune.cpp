#include "anneal/autotune.hpp"

#include "anneal/simulated_annealer.hpp"

#include "qubo/adjacency.hpp"
#include "util/rng.hpp"
#include "util/require.hpp"

namespace qsmt::anneal {

TuneResult tune_sweeps(const qubo::QuboModel& model, const SampleJudge& judge,
                       const TuneParams& params) {
  require(static_cast<bool>(judge), "tune_sweeps: judge must be callable");
  require(params.initial_sweeps >= 1 &&
              params.initial_sweeps <= params.max_sweeps,
          "tune_sweeps: need 1 <= initial_sweeps <= max_sweeps");
  require(params.pilot_reads >= 1, "tune_sweeps: pilot_reads must be >= 1");
  require(params.target_success > 0.0 && params.target_success <= 1.0,
          "tune_sweeps: target_success must be in (0, 1]");

  // Probes re-sample the same model at doubling budgets; build the CSR
  // adjacency once and reuse it across every probe.
  const qubo::QuboAdjacency adjacency(model);

  TuneResult result;
  std::size_t sweeps = params.initial_sweeps;
  while (true) {
    ++result.probes;
    SimulatedAnnealerParams sa;
    sa.num_reads = params.pilot_reads;
    sa.num_sweeps = sweeps;
    // A fresh stream per probe so probes are independent but reproducible.
    sa.seed = mix_seed(params.seed, result.probes);
    const SampleSet samples = SimulatedAnnealer(sa).sample(adjacency);

    std::size_t good = 0;
    std::size_t total = 0;
    for (const Sample& s : samples) {
      total += s.num_occurrences;
      if (judge(s.bits)) good += s.num_occurrences;
    }
    result.sweeps = sweeps;
    result.success =
        total == 0 ? 0.0 : static_cast<double>(good) / static_cast<double>(total);
    if (result.success >= params.target_success) {
      result.target_met = true;
      return result;
    }
    if (sweeps >= params.max_sweeps) return result;
    sweeps = std::min(sweeps * 2, params.max_sweeps);
  }
}

}  // namespace qsmt::anneal

// AVX2 lane-parallel paths of the batched sweep kernel. This translation
// unit is the only one compiled with -mavx2 (see src/anneal/CMakeLists.txt);
// everything else in the library stays at the baseline ISA and the choice
// between these routines and the scalar ones is made at runtime
// (batched_avx2_enabled).
//
// Bit-identity contract: every lane must produce exactly the doubles the
// scalar kernel produces. Three things guarantee it here:
//  * the screened Metropolis bounds are evaluated with explicit
//    _mm256_mul_pd/_mm256_add_pd in the same operation order as
//    metropolis.hpp — no FMA (this file must not be compiled with -mfma;
//    fused rounding would diverge from the baseline mul+add code), and the
//    source-level COMPILE_OPTIONS pin -ffp-contract=off as insurance;
//  * xoshiro256** advances four interleaved lane states with 64-bit integer
//    ops (the *5/*9 multiplies become shift+add, exactly the same modular
//    arithmetic), and the u64→[0,1) conversion is the exact two-part
//    integer-to-double trick, matching static_cast<double>(v >> 11) bit for
//    bit;
//  * neighbor updates add coefficient * step with step ∈ {-1.0, 0.0, +1.0};
//    non-flipped lanes add coefficient * 0.0, which can only flip the sign
//    of a zero field — IEEE comparisons treat ±0.0 identically and energies
//    are recomputed from bits, so no later decision can diverge.
#include "anneal/batched_kernel.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>
#include <cmath>

namespace qsmt::anneal::detail {

namespace {

/// kLaneMask[m] is a 4-lane all-ones/all-zeros mask with lane j set when
/// bit j of m is set; indexed by a 4-bit nibble of a spin/flip word.
alignas(32) constexpr std::uint64_t kLaneMask[16][4] = {
    {0, 0, 0, 0},   {~0ULL, 0, 0, 0},
    {0, ~0ULL, 0, 0},   {~0ULL, ~0ULL, 0, 0},
    {0, 0, ~0ULL, 0},   {~0ULL, 0, ~0ULL, 0},
    {0, ~0ULL, ~0ULL, 0},   {~0ULL, ~0ULL, ~0ULL, 0},
    {0, 0, 0, ~0ULL},   {~0ULL, 0, 0, ~0ULL},
    {0, ~0ULL, 0, ~0ULL},   {~0ULL, ~0ULL, 0, ~0ULL},
    {0, 0, ~0ULL, ~0ULL},   {~0ULL, 0, ~0ULL, ~0ULL},
    {0, ~0ULL, ~0ULL, ~0ULL},   {~0ULL, ~0ULL, ~0ULL, ~0ULL},
};

inline __m256i nibble_mask(std::uint64_t word, unsigned quad) {
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(
      kLaneMask[(word >> (4 * quad)) & 0xF]));
}

/// Exact u64 >> 11 → double conversion for all 53-bit inputs: split into a
/// 52-bit low part (magic-number trick) plus the top bit scaled by 2^52;
/// both parts and their sum are exact, so the result equals
/// static_cast<double>(v >> 11) on every lane.
inline __m256d uniform_from_bits(__m256i v) {
  const __m256i mant = _mm256_srli_epi64(v, 11);
  const __m256i lo =
      _mm256_and_si256(mant, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL));
  const __m256i hi = _mm256_srli_epi64(mant, 52);
  const __m256d lo_d = _mm256_sub_pd(
      _mm256_castsi256_pd(
          _mm256_or_si256(lo, _mm256_set1_epi64x(0x4330000000000000LL))),
      _mm256_set1_pd(0x1.0p52));
  const __m256d hi_mask = _mm256_castsi256_pd(
      _mm256_cmpeq_epi64(hi, _mm256_set1_epi64x(1)));
  const __m256d hi_d = _mm256_and_pd(hi_mask, _mm256_set1_pd(0x1.0p52));
  return _mm256_mul_pd(_mm256_add_pd(lo_d, hi_d), _mm256_set1_pd(0x1.0p-53));
}

inline __m256i rotl_epi64(__m256i x, int k) {
  return _mm256_or_si256(_mm256_slli_epi64(x, k),
                         _mm256_srli_epi64(x, 64 - k));
}

}  // namespace

bool batched_avx2_compiled() noexcept { return true; }

void fill_uniforms_avx2(const BatchedBlockView& view, Xoshiro256* rngs) {
  const std::size_t n = view.num_variables;
  for (unsigned q = 0; q < kBatchedLanes / 4; ++q) {
    if (((view.active >> (4 * q)) & 0xF) == 0) continue;
    // Load the quad's four xoshiro256** states into word-major registers.
    // This loop is call-free, so the states stay resident in ymm registers
    // for the whole pass — fusing generation into the sweep (which calls
    // std::exp on its tail path) would force them through the stack every
    // iteration and measures slower.
    std::array<std::uint64_t, 4> st[4];
    for (unsigned j = 0; j < 4; ++j) st[j] = rngs[4 * q + j].state();
    __m256i s0 = _mm256_setr_epi64x(
        static_cast<long long>(st[0][0]), static_cast<long long>(st[1][0]),
        static_cast<long long>(st[2][0]), static_cast<long long>(st[3][0]));
    __m256i s1 = _mm256_setr_epi64x(
        static_cast<long long>(st[0][1]), static_cast<long long>(st[1][1]),
        static_cast<long long>(st[2][1]), static_cast<long long>(st[3][1]));
    __m256i s2 = _mm256_setr_epi64x(
        static_cast<long long>(st[0][2]), static_cast<long long>(st[1][2]),
        static_cast<long long>(st[2][2]), static_cast<long long>(st[3][2]));
    __m256i s3 = _mm256_setr_epi64x(
        static_cast<long long>(st[0][3]), static_cast<long long>(st[1][3]),
        static_cast<long long>(st[2][3]), static_cast<long long>(st[3][3]));

    double* out = view.uniforms + 4 * q;
    for (std::size_t i = 0; i < n; ++i) {
      // xoshiro256**: result = rotl(s1 * 5, 7) * 9, with the constant
      // multiplies as shift+add (identical modular arithmetic).
      const __m256i x5 = _mm256_add_epi64(s1, _mm256_slli_epi64(s1, 2));
      const __m256i r7 = rotl_epi64(x5, 7);
      const __m256i result = _mm256_add_epi64(r7, _mm256_slli_epi64(r7, 3));
      const __m256i t = _mm256_slli_epi64(s1, 17);
      s2 = _mm256_xor_si256(s2, s0);
      s3 = _mm256_xor_si256(s3, s1);
      s1 = _mm256_xor_si256(s1, s2);
      s0 = _mm256_xor_si256(s0, s3);
      s2 = _mm256_xor_si256(s2, t);
      s3 = rotl_epi64(s3, 45);
      _mm256_storeu_pd(out + i * kBatchedLanes, uniform_from_bits(result));
    }

    alignas(32) std::uint64_t back[4][4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(back[0]), s0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(back[1]), s1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(back[2]), s2);
    _mm256_store_si256(reinterpret_cast<__m256i*>(back[3]), s3);
    for (unsigned j = 0; j < 4; ++j) {
      rngs[4 * q + j].set_state(
          {back[0][j], back[1][j], back[2][j], back[3][j]});
    }
  }
}

std::uint64_t sweep_avx2(const BatchedBlockView& view, double beta,
                         std::uint64_t* lane_flips) {
  const std::size_t n = view.num_variables;
  const qubo::QuboAdjacency& adjacency = *view.adjacency;
  const std::uint64_t active = view.active;
  // Quads that contain at least one active lane; trailing empty quads cost
  // nothing (small replica counts live in quad 0 only).
  const unsigned quads =
      (static_cast<unsigned>(std::bit_width(active)) + 3) / 4;

  const __m256d beta_v = _mm256_set1_pd(beta);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d sixth = _mm256_set1_pd(1.0 / 6.0);
  const __m256d neg_zero = _mm256_set1_pd(-0.0);
  const __m256d minus_one = _mm256_set1_pd(-1.0);

  // Per-lane flip tallies live in vector accumulators for the whole sweep;
  // a flipped word bumps them with a masked subtract of -1 per quad instead
  // of a data-dependent iterate-the-set-bits loop (those mispredict every
  // exit in the mixed-acceptance midschedule).
  __m256i flip_tally[kBatchedLanes / 4];
  for (unsigned q = 0; q < kBatchedLanes / 4; ++q) {
    flip_tally[q] = _mm256_setzero_si256();
  }

  std::uint64_t flipped_lanes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t word = view.spins[i];
    double* field_i = view.field + i * kBatchedLanes;
    const double* u_i = view.uniforms + i * kBatchedLanes;

    std::uint64_t flips = 0;
    unsigned var_undecided = 0;
    alignas(32) double xs[kBatchedLanes];
    for (unsigned q = 0; q < quads; ++q) {
      const unsigned qactive =
          static_cast<unsigned>((active >> (4 * q)) & 0xF);
      if (qactive == 0) continue;
      const __m256d f = _mm256_loadu_pd(field_i + 4 * q);
      // delta = spin ? -field : field, as a sign-bit flip.
      const __m256d sign =
          _mm256_and_pd(_mm256_castsi256_pd(nibble_mask(word, q)), neg_zero);
      const __m256d delta = _mm256_xor_pd(f, sign);
      const __m256d x = _mm256_mul_pd(beta_v, delta);
      _mm256_store_pd(xs + 4 * q, x);

      // The screened exact-Metropolis compare of metropolis.hpp, evaluated
      // branch-free with the identical operation sequence per bound — the
      // acceptance masks are pure dataflow, so the midschedule's mixed
      // accept/reject pattern costs no branch mispredicts. (Quad-level
      // early-out branches were tried and measure slower for exactly that
      // reason.)
      const __m256d acc_flat = _mm256_cmp_pd(x, zero, _CMP_LE_OQ);
      const __m256d u = _mm256_loadu_pd(u_i + 4 * q);
      const __m256d rej_inv = _mm256_cmp_pd(
          _mm256_mul_pd(u, _mm256_add_pd(one, x)), one, _CMP_GE_OQ);
      const __m256d upper = _mm256_add_pd(
          _mm256_sub_pd(one, x),
          _mm256_mul_pd(_mm256_mul_pd(half, x), x));
      const __m256d rej_upper = _mm256_cmp_pd(u, upper, _CMP_GE_OQ);
      const __m256d lower = _mm256_sub_pd(
          upper,
          _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(x, x), x), sixth));
      const __m256d acc_lower = _mm256_cmp_pd(u, lower, _CMP_LT_OQ);

      // Tail-thinning screen, exclusive to the vector path: reject when
      // u * (1 + x + x²/2 + x³/6) >= 1. The cubic sum underestimates e^x
      // by at least x⁴/24, so in exact arithmetic the screen only fires
      // when u >= e^-x — the same verdict the exp tail would reach. The
      // x >= 1/64 guard keeps that margin (>= 2^-24/24 relative) ten
      // orders of magnitude above the few-ulp rounding noise of this
      // evaluation and of std::exp itself, so no decision can differ from
      // the scalar kernel's. For moderately uphill moves (x in [1, 4]) it
      // shrinks the exp band from ~1/(1+x) of lanes to ~e^-x of lanes.
      const __m256d s3 = _mm256_add_pd(
          _mm256_add_pd(one, x),
          _mm256_add_pd(
              _mm256_mul_pd(_mm256_mul_pd(half, x), x),
              _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(x, x), x), sixth)));
      const __m256d rej_tail = _mm256_and_pd(
          _mm256_cmp_pd(x, _mm256_set1_pd(0.015625), _CMP_GE_OQ),
          _mm256_cmp_pd(_mm256_mul_pd(u, s3), one, _CMP_GE_OQ));

      // Accept-side counterpart: e^x <= S4 / (1 - x⁵/120) for x⁵ < 120
      // (Lagrange remainder), so u * S4 < 1 - x⁵/120 implies u < e^-x.
      // Guarded to x in [1/16, 2.5], where the bound's slack (~x⁶/720,
      // >= 6e-11) again dwarfs rounding noise; below 1/16 the quartic
      // `lower` screen already leaves a vanishing band, above 2.5 the
      // threshold goes negative and the screen can never fire.
      const __m256d x4 = _mm256_mul_pd(_mm256_mul_pd(x, x),
                                       _mm256_mul_pd(x, x));
      const __m256d s4 = _mm256_add_pd(
          s3, _mm256_mul_pd(x4, _mm256_set1_pd(1.0 / 24.0)));
      const __m256d acc_thresh = _mm256_sub_pd(
          one, _mm256_mul_pd(_mm256_mul_pd(x4, x),
                             _mm256_set1_pd(1.0 / 120.0)));
      const __m256d acc_tail = _mm256_and_pd(
          _mm256_and_pd(
              _mm256_cmp_pd(x, _mm256_set1_pd(0.0625), _CMP_GE_OQ),
              _mm256_cmp_pd(x, _mm256_set1_pd(2.5), _CMP_LE_OQ)),
          _mm256_cmp_pd(_mm256_mul_pd(u, s4), acc_thresh, _CMP_LT_OQ));

      const __m256d rejected = _mm256_andnot_pd(
          acc_flat,
          _mm256_or_pd(_mm256_or_pd(rej_inv, rej_upper), rej_tail));
      const __m256d accepted = _mm256_or_pd(
          acc_flat,
          _mm256_andnot_pd(rejected, _mm256_or_pd(acc_lower, acc_tail)));
      const unsigned accept_mask =
          static_cast<unsigned>(_mm256_movemask_pd(accepted)) & qactive;
      const unsigned undecided_mask =
          qactive & ~accept_mask &
          ~static_cast<unsigned>(_mm256_movemask_pd(rejected));
      var_undecided |= undecided_mask << (4 * q);
      flips |= static_cast<std::uint64_t>(accept_mask) << (4 * q);
    }
    if (var_undecided != 0) [[unlikely]] {
      // The narrow ambiguity band left by the screens pays the real exp,
      // one lane at a time — same compare as the scalar kernel's tail
      // case. Kept out of the quad loop so the only call in this function
      // sits on a once-per-variable cold path.
      for (unsigned m = var_undecided; m != 0; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        if (u_i[l] < std::exp(-xs[l])) flips |= 1ULL << l;
      }
    }

    if (flips == 0) continue;
    view.spins[i] = word ^ flips;
    flipped_lanes |= flips;
    for (unsigned q = 0; q < quads; ++q) {
      flip_tally[q] =
          _mm256_sub_epi64(flip_tally[q], nibble_mask(flips, q));
    }

    const auto row = adjacency.neighbors(i);
    if (std::popcount(flips) < 3) {
      // Sparse flips (cold sweeps): per-lane scalar updates beat paying
      // four vector lanes per quad for one flipped lane. Same mul+add per
      // flipped lane as the vector path, so still bit-identical.
      for (std::uint64_t m = flips; m != 0; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        const double step = ((word >> l) & 1u) ? -1.0 : 1.0;
        for (const auto& nb : row) {
          view.field[nb.index * kBatchedLanes + l] += nb.coefficient * step;
        }
      }
    } else {
      // Dense flips (hot sweeps): one fused row update per neighbor.
      // step = flips ? (spin ? -1 : +1) : 0 per lane. Only quads that
      // actually contain a flip enter the update loop — an all-zero step
      // quad would just add coefficient * 0.0 to every lane, so skipping
      // it drops work without touching any field bit that matters.
      alignas(32) double step[kBatchedLanes];
      unsigned upd_quads[kBatchedLanes / 4];
      unsigned num_upd = 0;
      for (unsigned q = 0; q < quads; ++q) {
        if (((flips >> (4 * q)) & 0xF) == 0) continue;
        const __m256d fm = _mm256_castsi256_pd(nibble_mask(flips, q));
        const __m256d wm = _mm256_castsi256_pd(nibble_mask(word, q));
        const __m256d pm1 = _mm256_or_pd(_mm256_and_pd(wm, minus_one),
                                         _mm256_andnot_pd(wm, one));
        _mm256_store_pd(step + 4 * q, _mm256_and_pd(fm, pm1));
        upd_quads[num_upd++] = q;
      }
      for (const auto& nb : row) {
        double* fnb = view.field + nb.index * kBatchedLanes;
        const __m256d c = _mm256_set1_pd(nb.coefficient);
        for (unsigned k = 0; k < num_upd; ++k) {
          const unsigned q = upd_quads[k];
          const __m256d upd =
              _mm256_mul_pd(c, _mm256_load_pd(step + 4 * q));
          _mm256_storeu_pd(fnb + 4 * q,
                           _mm256_add_pd(_mm256_loadu_pd(fnb + 4 * q), upd));
        }
      }
    }
  }

  for (unsigned q = 0; q < quads; ++q) {
    alignas(32) std::uint64_t tally[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tally), flip_tally[q]);
    for (unsigned j = 0; j < 4; ++j) lane_flips[4 * q + j] += tally[j];
  }
  return flipped_lanes;
}

}  // namespace qsmt::anneal::detail

#else  // !defined(__AVX2__)

namespace qsmt::anneal::detail {

bool batched_avx2_compiled() noexcept { return false; }

// Never reached: batched_avx2_enabled() is false when the AVX2 TU is not
// compiled in, so the dispatcher always takes the scalar routines.
void fill_uniforms_avx2(const BatchedBlockView& view, Xoshiro256* rngs) {
  fill_uniforms_scalar(view, rngs);
}

std::uint64_t sweep_avx2(const BatchedBlockView& view, double beta,
                         std::uint64_t* lane_flips) {
  return sweep_scalar(view, beta, lane_flips);
}

}  // namespace qsmt::anneal::detail

#endif

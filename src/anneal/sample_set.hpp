// SampleSet: the result container returned by every sampler.
//
// Mirrors dimod.SampleSet from the D-Wave stack the paper used: a list of
// (assignment, energy, occurrence count) records, ordered best-first.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace qsmt::anneal {

struct Sample {
  std::vector<std::uint8_t> bits;  ///< Assignment, one 0/1 byte per variable.
  double energy = 0.0;             ///< QUBO energy of the assignment.
  std::size_t num_occurrences = 1; ///< How many reads produced it.
};

class SampleSet {
 public:
  SampleSet() = default;

  /// Appends a sample (does not maintain order; call sort_by_energy()).
  void add(Sample sample);

  /// Appends a sample built from its parts.
  void add(std::vector<std::uint8_t> bits, double energy,
           std::size_t num_occurrences = 1);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  const Sample& operator[](std::size_t i) const { return samples_[i]; }

  /// Best (lowest-energy) sample. Throws std::out_of_range when empty.
  const Sample& best() const;

  /// Lowest energy in the set. Throws std::out_of_range when empty.
  double lowest_energy() const;

  /// Sorts samples ascending by energy (stable, so equal-energy samples
  /// keep insertion order — first read wins ties).
  void sort_by_energy();

  /// Merges samples with identical assignments, summing occurrence counts,
  /// then sorts by energy.
  void aggregate();

  /// Drops all but the first `k` samples (call after sort_by_energy()).
  void truncate(std::size_t k);

  /// Fraction of reads whose energy is within `tol` of `target` — the
  /// success-probability metric used by the benches.
  double success_fraction(double target, double tol = 1e-9) const;

  /// Total number of reads represented (sum of occurrence counts).
  std::size_t total_reads() const noexcept;

  auto begin() const noexcept { return samples_.begin(); }
  auto end() const noexcept { return samples_.end(); }

 private:
  std::vector<Sample> samples_;
};

}  // namespace qsmt::anneal

#include "anneal/sample_set.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

namespace qsmt::anneal {

void SampleSet::add(Sample sample) { samples_.push_back(std::move(sample)); }

void SampleSet::add(std::vector<std::uint8_t> bits, double energy,
                    std::size_t num_occurrences) {
  samples_.push_back(Sample{std::move(bits), energy, num_occurrences});
}

const Sample& SampleSet::best() const {
  if (samples_.empty())
    throw std::out_of_range("SampleSet::best: empty sample set");
  const Sample* best = &samples_.front();
  for (const Sample& s : samples_) {
    if (s.energy < best->energy) best = &s;
  }
  return *best;
}

double SampleSet::lowest_energy() const { return best().energy; }

void SampleSet::sort_by_energy() {
  std::stable_sort(samples_.begin(), samples_.end(),
                   [](const Sample& a, const Sample& b) {
                     return a.energy < b.energy;
                   });
}

namespace {

// FNV-1a over the bit vector: O(n) per sample versus the O(n log k)
// lexicographic comparisons a std::map key pays on every insert.
std::uint64_t hash_bits(const std::vector<std::uint8_t>& bits) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const std::uint8_t b : bits) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

void SampleSet::aggregate() {
  // Buckets of merged-vector indices keyed by the bit-vector hash; bits are
  // compared only within a bucket, so collisions stay correct. Merge order
  // (first occurrence wins) and the final stable energy sort are unchanged.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index;
  index.reserve(samples_.size());
  std::vector<Sample> merged;
  merged.reserve(samples_.size());
  for (Sample& s : samples_) {
    std::vector<std::size_t>& bucket = index[hash_bits(s.bits)];
    bool found = false;
    for (const std::size_t slot : bucket) {
      if (merged[slot].bits == s.bits) {
        merged[slot].num_occurrences += s.num_occurrences;
        found = true;
        break;
      }
    }
    if (!found) {
      bucket.push_back(merged.size());
      merged.push_back(std::move(s));
    }
  }
  samples_ = std::move(merged);
  sort_by_energy();
}

void SampleSet::truncate(std::size_t k) {
  if (samples_.size() > k) samples_.resize(k);
}

double SampleSet::success_fraction(double target, double tol) const {
  std::size_t hits = 0;
  std::size_t total = 0;
  for (const Sample& s : samples_) {
    total += s.num_occurrences;
    if (s.energy <= target + tol) hits += s.num_occurrences;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

std::size_t SampleSet::total_reads() const noexcept {
  std::size_t total = 0;
  for (const Sample& s : samples_) total += s.num_occurrences;
  return total;
}

}  // namespace qsmt::anneal

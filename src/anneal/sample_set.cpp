#include "anneal/sample_set.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace qsmt::anneal {

void SampleSet::add(Sample sample) { samples_.push_back(std::move(sample)); }

void SampleSet::add(std::vector<std::uint8_t> bits, double energy,
                    std::size_t num_occurrences) {
  samples_.push_back(Sample{std::move(bits), energy, num_occurrences});
}

const Sample& SampleSet::best() const {
  if (samples_.empty())
    throw std::out_of_range("SampleSet::best: empty sample set");
  const Sample* best = &samples_.front();
  for (const Sample& s : samples_) {
    if (s.energy < best->energy) best = &s;
  }
  return *best;
}

double SampleSet::lowest_energy() const { return best().energy; }

void SampleSet::sort_by_energy() {
  std::stable_sort(samples_.begin(), samples_.end(),
                   [](const Sample& a, const Sample& b) {
                     return a.energy < b.energy;
                   });
}

void SampleSet::aggregate() {
  std::map<std::vector<std::uint8_t>, std::size_t> index;
  std::vector<Sample> merged;
  merged.reserve(samples_.size());
  for (Sample& s : samples_) {
    auto [it, inserted] = index.emplace(s.bits, merged.size());
    if (inserted) {
      merged.push_back(std::move(s));
    } else {
      merged[it->second].num_occurrences += s.num_occurrences;
    }
  }
  samples_ = std::move(merged);
  sort_by_energy();
}

void SampleSet::truncate(std::size_t k) {
  if (samples_.size() > k) samples_.resize(k);
}

double SampleSet::success_fraction(double target, double tol) const {
  std::size_t hits = 0;
  std::size_t total = 0;
  for (const Sample& s : samples_) {
    total += s.num_occurrences;
    if (s.energy <= target + tol) hits += s.num_occurrences;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

std::size_t SampleSet::total_reads() const noexcept {
  std::size_t total = 0;
  for (const Sample& s : samples_) total += s.num_occurrences;
  return total;
}

}  // namespace qsmt::anneal

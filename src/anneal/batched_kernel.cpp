#include "anneal/batched_kernel.hpp"

#include <omp.h>

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "anneal/metropolis.hpp"
#include "util/require.hpp"

namespace qsmt::anneal {

namespace detail {

void fill_uniforms_scalar(const BatchedBlockView& view, Xoshiro256* rngs) {
  const std::size_t n = view.num_variables;
  for (std::uint64_t m = view.active; m != 0; m &= m - 1) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(m));
    Xoshiro256& rng = rngs[l];
    double* u = view.uniforms + l;
    for (std::size_t i = 0; i < n; ++i) {
      u[i * kBatchedLanes] = rng.uniform();
    }
  }
}

std::uint64_t sweep_scalar(const BatchedBlockView& view, double beta,
                           std::uint64_t* lane_flips) {
  const std::size_t n = view.num_variables;
  const qubo::QuboAdjacency& adjacency = *view.adjacency;
  std::uint64_t flipped_lanes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t word = view.spins[i];
    double* field_i = view.field + i * kBatchedLanes;
    const double* u_i = view.uniforms + i * kBatchedLanes;
    std::uint64_t flips = 0;
    for (std::uint64_t m = view.active; m != 0; m &= m - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(m));
      const double delta = ((word >> l) & 1u) ? -field_i[l] : field_i[l];
      if (metropolis_accept(beta * delta, u_i[l])) flips |= 1ULL << l;
    }
    if (flips == 0) continue;
    view.spins[i] = word ^ flips;
    flipped_lanes |= flips;
    const auto row = adjacency.neighbors(i);
    for (std::uint64_t m = flips; m != 0; m &= m - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(m));
      const double step = ((word >> l) & 1u) ? -1.0 : 1.0;
      ++lane_flips[l];
      for (const auto& nb : row) {
        view.field[nb.index * kBatchedLanes + l] += nb.coefficient * step;
      }
    }
  }
  return flipped_lanes;
}

}  // namespace detail

bool batched_avx2_enabled() {
  static const bool enabled = [] {
    if (const char* env = std::getenv("QSMT_NO_AVX2");
        env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0')) {
      return false;
    }
    if (!detail::batched_avx2_compiled()) return false;
#if defined(__x86_64__) || defined(__i386__)
    return static_cast<bool>(__builtin_cpu_supports("avx2"));
#else
    return false;
#endif
  }();
  return enabled;
}

BatchedSweepKernel::BatchedSweepKernel(const qubo::QuboAdjacency& adjacency,
                                       std::vector<BatchedGroup> groups)
    : adjacency_(&adjacency), groups_(std::move(groups)) {
  require(!groups_.empty(), "BatchedSweepKernel: need at least one group");
  std::size_t lanes = 0;
  group_first_lane_.reserve(groups_.size());
  for (const BatchedGroup& group : groups_) {
    require(group.num_replicas >= 1,
            "BatchedSweepKernel: every group needs >= 1 replica");
    group_first_lane_.push_back(lanes);
    lanes += group.num_replicas;
  }
  lane_group_.resize(lanes);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const std::size_t first = group_first_lane_[g];
    for (std::size_t r = 0; r < groups_[g].num_replicas; ++r) {
      lane_group_[first + r] = static_cast<std::uint32_t>(g);
    }
  }
  const std::size_t n = adjacency_->num_variables();
  final_bits_.resize(lanes * n);
  final_field_.resize(lanes * n);
  lane_flips_.assign(lanes, 0);
  lane_sweeps_.assign(lanes, 0);
  lane_early_exit_.assign(lanes, 0);
  lane_annealed_.assign(lanes, 0);
  group_cancelled_ =
      std::make_unique<std::atomic<std::uint8_t>[]>(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) group_cancelled_[g] = 0;
}

void BatchedSweepKernel::run(std::span<const double> betas,
                             bool allow_early_exit, bool force_scalar) {
  scheduled_sweeps_ = betas.size();
  const bool use_avx2 = !force_scalar && batched_avx2_enabled();
  used_avx2_ = use_avx2;

  // Same arming rule as the scalar kernel: the zero-flip exit is sound only
  // within the schedule's longest non-decreasing suffix.
  std::size_t monotone_from = 0;
  if (allow_early_exit && !betas.empty()) {
    monotone_from = betas.size() - 1;
    while (monotone_from > 0 &&
           betas[monotone_from - 1] <= betas[monotone_from]) {
      --monotone_from;
    }
  }

  const std::size_t blocks =
      (num_lanes() + detail::kBatchedLanes - 1) / detail::kBatchedLanes;
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(blocks); ++b) {
    run_block(static_cast<std::size_t>(b), betas, monotone_from,
              allow_early_exit, use_avx2);
  }
}

void BatchedSweepKernel::run_block(std::size_t block,
                                   std::span<const double> betas,
                                   std::size_t monotone_from,
                                   bool allow_early_exit, bool use_avx2) {
  const std::size_t n = adjacency_->num_variables();
  const std::size_t first = block * detail::kBatchedLanes;
  const std::size_t lanes =
      std::min(detail::kBatchedLanes, num_lanes() - first);

  AnnealContext& ctx = thread_local_context();
  ctx.prepare_batched(n, detail::kBatchedLanes);
  auto& scratch = ctx.batched;

  detail::BatchedBlockView view;
  view.num_variables = n;
  view.spins = scratch.spins.data();
  view.field = scratch.field.data();
  view.uniforms = scratch.uniforms.data();
  view.adjacency = adjacency_;

  // The distinct groups present in this block, with their local lane masks
  // (groups are contiguous lane ranges, so each appears once).
  struct GroupLanes {
    std::size_t group;
    std::uint64_t mask;
  };
  std::vector<GroupLanes> block_groups;

  // Lane setup: counter-seeded stream and random initial bits, exactly the
  // scalar path's Xoshiro256(seed, read) followed by n coin() draws.
  std::fill_n(view.spins, n, 0);
  std::uint64_t active = 0;
  for (std::size_t l = 0; l < lanes; ++l) {
    const std::size_t lane = first + l;
    const std::size_t g = lane_group_[lane];
    const std::uint64_t replica = lane - group_first_lane_[g];
    scratch.rngs[l] = Xoshiro256(groups_[g].seed, replica);
    Xoshiro256& rng = scratch.rngs[l];
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.coin()) view.spins[i] |= 1ULL << l;
    }
    active |= 1ULL << l;
    if (block_groups.empty() || block_groups.back().group != g) {
      block_groups.push_back(GroupLanes{g, 0});
    }
    block_groups.back().mask |= 1ULL << l;
  }

  // A group cancelled before its first sweep matches the scalar path's
  // "cancelled before read": the lanes keep their random initial bits and
  // record no read stats.
  std::uint64_t annealed = active;
  for (const GroupLanes& gl : block_groups) {
    const CancelToken& token = groups_[gl.group].cancel;
    if (token.cancellable() && token.cancelled()) {
      group_cancelled_[gl.group].store(1, std::memory_order_relaxed);
      annealed &= ~gl.mask;
      active &= ~gl.mask;
    }
  }
  for (std::size_t l = 0; l < lanes; ++l) {
    lane_annealed_[first + l] = (annealed >> l) & 1u;
  }

  // Replica-major field init off the shared CSR (bit-identical per lane to
  // local_field on the unpacked assignment).
  adjacency_->bulk_local_fields(std::span(view.spins, n), lanes,
                                detail::kBatchedLanes,
                                std::span(view.field, n * detail::kBatchedLanes));

  std::uint64_t* lane_flips = scratch.lane_flips.data();
  std::fill_n(lane_flips, detail::kBatchedLanes, 0);
  std::size_t lane_sweeps[detail::kBatchedLanes] = {};
  std::uint64_t early_exited = 0;

  for (std::size_t s = 0; s < betas.size(); ++s) {
    // One cancel poll per group per batched sweep — never per replica. A
    // cancelled group's lanes stop at this sweep boundary with consistent
    // state (bits/fields), like the scalar kernel's per-sweep poll.
    for (const GroupLanes& gl : block_groups) {
      if ((active & gl.mask) == 0) continue;
      const CancelToken& token = groups_[gl.group].cancel;
      if (token.cancellable() && token.cancelled()) {
        group_cancelled_[gl.group].store(1, std::memory_order_relaxed);
        for (std::uint64_t m = active & gl.mask; m != 0; m &= m - 1) {
          lane_sweeps[std::countr_zero(m)] = s;
        }
        active &= ~gl.mask;
      }
    }
    if (active == 0) break;
    view.active = active;

    const double beta = betas[s];
    if (use_avx2) {
      detail::fill_uniforms_avx2(view, scratch.rngs.data());
    } else {
      detail::fill_uniforms_scalar(view, scratch.rngs.data());
    }
    const std::uint64_t flipped =
        use_avx2 ? detail::sweep_avx2(view, beta, lane_flips)
                 : detail::sweep_scalar(view, beta, lane_flips);

    if (allow_early_exit && s >= monotone_from) {
      const std::uint64_t settled = active & ~flipped;
      if (settled != 0) {
        for (std::uint64_t m = settled; m != 0; m &= m - 1) {
          lane_sweeps[std::countr_zero(m)] = s + 1;
        }
        if (s + 1 < betas.size()) early_exited |= settled;
        active &= ~settled;
        if (active == 0) break;
      }
    }
  }
  for (std::uint64_t m = active; m != 0; m &= m - 1) {
    lane_sweeps[std::countr_zero(m)] = betas.size();
  }

  // Unpack the block's final state into the per-lane output rows.
  for (std::size_t l = 0; l < lanes; ++l) {
    const std::size_t lane = first + l;
    std::uint8_t* bits = final_bits_.data() + lane * n;
    double* field = final_field_.data() + lane * n;
    for (std::size_t i = 0; i < n; ++i) {
      bits[i] = static_cast<std::uint8_t>((view.spins[i] >> l) & 1u);
      field[i] = view.field[i * detail::kBatchedLanes + l];
    }
    lane_flips_[lane] = lane_flips[l];
    lane_sweeps_[lane] = lane_sweeps[l];
    lane_early_exit_[lane] = (early_exited >> l) & 1u;
  }
}

std::span<const std::uint8_t> BatchedSweepKernel::lane_bits(
    std::size_t lane) const {
  const std::size_t n = adjacency_->num_variables();
  return {final_bits_.data() + lane * n, n};
}

std::span<const double> BatchedSweepKernel::lane_field(std::size_t lane) const {
  const std::size_t n = adjacency_->num_variables();
  return {final_field_.data() + lane * n, n};
}

ReadStats BatchedSweepKernel::lane_stats(std::size_t lane) const {
  ReadStats stats;
  stats.num_variables = adjacency_->num_variables();
  stats.flips = lane_flips_[lane];
  stats.sweeps_executed = lane_sweeps_[lane];
  stats.sweeps_scheduled = scheduled_sweeps_;
  stats.early_exit = lane_early_exit_[lane] != 0;
  return stats;
}

bool BatchedSweepKernel::lane_annealed(std::size_t lane) const {
  return lane_annealed_[lane] != 0;
}

BatchedGroupStats BatchedSweepKernel::group_stats(std::size_t group) const {
  BatchedGroupStats stats;
  stats.replicas = groups_[group].num_replicas;
  stats.cancelled = group_cancelled_[group].load(std::memory_order_relaxed) != 0;
  const std::size_t first = group_first_lane_[group];
  for (std::size_t r = 0; r < stats.replicas; ++r) {
    stats.sweeps_executed =
        std::max(stats.sweeps_executed, lane_sweeps_[first + r]);
    stats.total_flips += lane_flips_[first + r];
    stats.replicas_early_exited += lane_early_exit_[first + r];
  }
  return stats;
}

}  // namespace qsmt::anneal

// Metropolis single-spin-flip simulated annealing over QUBO models.
//
// This is the same algorithm as D-Wave's SimulatedAnnealingSampler
// (dwave-neal), which the paper used for all its experiments: each read
// starts from a uniformly random assignment and performs `sweeps` full
// passes over the variables under a geometric β (inverse temperature)
// schedule, accepting a flip with probability min(1, exp(-β Δ)).
//
// The sweep kernel is exp-free on the hot path: each sweep bulk-generates
// n uniforms u_i up front and decides u_i < exp(-β Δ_i) through the
// screened compare in metropolis.hpp — elementary bounds on exp(-x) settle
// almost every move with a couple of multiplies, and std::exp runs only
// inside the narrow O(x³) ambiguity band. Downhill and flat moves
// (Δ <= 0) are accepted unconditionally. A read terminates early the first
// time a sweep accepts zero flips — the state is a local minimum with every
// uphill move rejected, later (colder) sweeps would almost surely be
// no-ops, and the closing greedy polish covers any residual descent. That
// argument needs every remaining sweep to be at least as cold, so the exit
// is armed only within the longest non-decreasing suffix of the β schedule
// (a reverse-anneal schedule that dips hot cannot abort before its reheat),
// and it can be disabled outright via SimulatedAnnealerParams::early_exit
// for callers that sample distributions rather than optimize. When the β
// range is defaulted the schedule is anneal-then-quench
// (make_quench_schedule) so that freeze point arrives well before the
// nominal sweep count. See docs/hotpath.md for the derivation and
// measurements.
//
// Reads are independent, so they are distributed across OpenMP threads;
// every read owns a counter-seeded RNG stream (see util/rng.hpp), making
// the output deterministic for a fixed seed regardless of thread count.
// Scratch buffers come from the thread-local AnnealContext, so steady-state
// sampling allocates only the returned samples.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "anneal/batched_kernel.hpp"
#include "anneal/context.hpp"
#include "anneal/sampler.hpp"
#include "anneal/schedule.hpp"
#include "qubo/adjacency.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {

/// Which sweep substrate sample() runs on (docs/hotpath.md, "The batched
/// substrate"). The batched kernel is bit-identical to the scalar one for
/// the same seed, so this is purely a performance/diagnostics knob.
enum class SweepMode {
  /// Batched multi-replica kernel for multi-read runs; the scalar per-read
  /// loop for single reads and under trace-mode telemetry (which wants its
  /// per-read trace events).
  kAuto,
  /// Force the batched kernel regardless of read count.
  kBatched,
  /// Force the per-read scalar kernel — the bit-equivalence oracle the
  /// batched paths are tested and benched against.
  kScalar,
};

struct SimulatedAnnealerParams {
  std::size_t num_reads = 64;    ///< Independent annealing runs.
  std::size_t num_sweeps = 256;  ///< Full variable passes per read.
  std::uint64_t seed = 0;        ///< Master seed for all RNG streams.
  /// β endpoints. When unset, derived per-model via default_beta_range().
  std::optional<double> beta_hot;
  std::optional<double> beta_cold;
  Interpolation beta_interpolation = Interpolation::kGeometric;
  /// Run a steepest-descent pass on each read's final state, the way
  /// dwave-greedy is commonly chained after neal.
  bool polish_with_greedy = true;
  /// Stop a read at the first zero-flip sweep once the schedule's remaining
  /// sweeps are all at least as cold (see the header comment). Exact for
  /// optimization with greedy polish; turn off to keep full-length reads
  /// when sampling the Boltzmann distribution with an explicit β range.
  bool early_exit = true;
  /// Cooperative cancellation: polled once per sweep (the same plumbing the
  /// zero-flip early exit uses) and before each read starts. On
  /// cancellation, in-flight reads stop after the current sweep and pending
  /// reads return their initial states unannealed; sample() still returns a
  /// well-formed (but low-quality) SampleSet, which callers like
  /// qsmt::service discard. A default token never cancels.
  CancelToken cancel;
  /// Sweep substrate selection; see SweepMode. Outputs are bit-identical
  /// across modes, so only throughput (and per-read trace fidelity) differ.
  SweepMode sweep_mode = SweepMode::kAuto;
};

class SimulatedAnnealer final : public Sampler {
 public:
  explicit SimulatedAnnealer(SimulatedAnnealerParams params = {});

  SampleSet sample(const qubo::QuboModel& model) const override;
  /// Hot path: anneals a prebuilt adjacency (no per-call CSR rebuild).
  SampleSet sample(const qubo::QuboAdjacency& adjacency) const override;
  std::string name() const override { return "simulated-annealing"; }
  bool supports_adjacency_sampling() const noexcept override { return true; }

  const SimulatedAnnealerParams& params() const noexcept { return params_; }

 private:
  SimulatedAnnealerParams params_;
};

/// Batched multi-group sampling: anneals every group's replicas through ONE
/// BatchedSweepKernel invocation over the shared `adjacency`, polishes each
/// replica, and returns one aggregated SampleSet per group (in group
/// order). Each group's output is bit-identical to a solo
/// SimulatedAnnealer::sample run whose params are `params` with seed and
/// cancel replaced by the group's — this is how the service fuses many
/// independent jobs into one kernel pass and de-multiplexes the results.
/// `params.seed` and `params.cancel` are ignored; schedule, polish, and
/// early-exit fields are honoured. Emits the anneal.batch.* counters
/// (docs/telemetry.md).
std::vector<SampleSet> sample_batched(const qubo::QuboAdjacency& adjacency,
                                      const SimulatedAnnealerParams& params,
                                      std::span<const BatchedGroup> groups);

namespace detail {

/// One annealing read over a prebuilt adjacency using the exp-free threshold
/// kernel: anneals `ctx.bits` in place following `betas`, maintaining
/// `ctx.field` incrementally (both sized by the caller via ctx.prepare();
/// bits initialised by the caller, fields by this function). Consumes
/// exactly one uniform per variable per executed sweep. `allow_early_exit`
/// arms the zero-flip exit, which fires only within the schedule's longest
/// non-decreasing suffix (so non-monotone reverse schedules run their
/// reheat regardless). A non-null `cancel` token is polled once per sweep;
/// when it reports cancellation the read stops after the sweep in progress
/// (bits/fields stay consistent). Returns the number of accepted flips.
/// Exposed for the embedded (hardware-simulation) sampler, the benches, and
/// unit tests.
std::size_t anneal_read(const qubo::QuboAdjacency& adjacency,
                        std::span<const double> betas, Xoshiro256& rng,
                        AnnealContext& ctx, bool allow_early_exit = true,
                        const CancelToken* cancel = nullptr);

/// Compatibility wrapper around the context kernel for callers that hold a
/// bare bit vector; borrows the thread-local context's scratch buffers.
void anneal_read(const qubo::QuboAdjacency& adjacency,
                 std::span<const double> betas, Xoshiro256& rng,
                 std::vector<std::uint8_t>& bits,
                 bool allow_early_exit = true);

/// The pre-overhaul kernel (per-flip std::exp, uniform drawn only on uphill
/// candidates, no early exit). Kept as the baseline the hot-path bench and
/// the kernel-equivalence tests compare against.
void anneal_read_reference(const qubo::QuboAdjacency& adjacency,
                           std::span<const double> betas, Xoshiro256& rng,
                           std::vector<std::uint8_t>& bits);

}  // namespace detail

}  // namespace qsmt::anneal

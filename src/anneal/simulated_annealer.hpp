// Metropolis single-spin-flip simulated annealing over QUBO models.
//
// This is the same algorithm as D-Wave's SimulatedAnnealingSampler
// (dwave-neal), which the paper used for all its experiments: each read
// starts from a uniformly random assignment and performs `sweeps` full
// passes over the variables under a geometric β (inverse temperature)
// schedule, accepting a flip with probability min(1, exp(-β Δ)).
//
// Reads are independent, so they are distributed across OpenMP threads;
// every read owns a counter-seeded RNG stream (see util/rng.hpp), making
// the output deterministic for a fixed seed regardless of thread count.
#pragma once

#include <cstdint>
#include <optional>

#include "anneal/sampler.hpp"
#include "anneal/schedule.hpp"
#include "qubo/adjacency.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {

struct SimulatedAnnealerParams {
  std::size_t num_reads = 64;    ///< Independent annealing runs.
  std::size_t num_sweeps = 256;  ///< Full variable passes per read.
  std::uint64_t seed = 0;        ///< Master seed for all RNG streams.
  /// β endpoints. When unset, derived per-model via default_beta_range().
  std::optional<double> beta_hot;
  std::optional<double> beta_cold;
  Interpolation beta_interpolation = Interpolation::kGeometric;
  /// Run a steepest-descent pass on each read's final state, the way
  /// dwave-greedy is commonly chained after neal.
  bool polish_with_greedy = true;
};

class SimulatedAnnealer final : public Sampler {
 public:
  explicit SimulatedAnnealer(SimulatedAnnealerParams params = {});

  SampleSet sample(const qubo::QuboModel& model) const override;
  std::string name() const override { return "simulated-annealing"; }

  const SimulatedAnnealerParams& params() const noexcept { return params_; }

 private:
  SimulatedAnnealerParams params_;
};

namespace detail {
/// One annealing read over a prebuilt adjacency: anneals `bits` in place
/// following `betas`, maintaining local fields incrementally. Exposed for
/// reuse by the embedded (hardware-simulation) sampler and for unit tests.
void anneal_read(const qubo::QuboAdjacency& adjacency,
                 std::span<const double> betas, Xoshiro256& rng,
                 std::vector<std::uint8_t>& bits);
}  // namespace detail

}  // namespace qsmt::anneal

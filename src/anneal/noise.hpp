// Hardware coefficient-noise model.
//
// Real quantum annealers do not implement the programmed Hamiltonian
// exactly: analog control errors perturb every h_i and J_ij (D-Wave calls
// this "ICE", integrated control errors, with σ on the order of a few
// percent of the coupler range). The sampler then optimises the *wrong*
// model, so formulations whose ground state is separated by a thin margin
// (e.g. the ±0.1A soft biases of indexOf) lose their answers first.
//
// NoisySampler wraps any sampler: each sample() call draws one noise
// realisation (deterministic in the seed), runs the inner sampler on the
// perturbed model, and re-scores the returned samples against the TRUE
// model — exactly what happens when hardware results are read back.
#pragma once

#include <cstdint>

#include "anneal/sampler.hpp"

namespace qsmt::anneal {

/// Returns `model` with every nonzero linear and quadratic coefficient
/// perturbed by independent Gaussian noise of standard deviation
/// `sigma * model.max_abs_coefficient()`. Deterministic in `seed`.
qubo::QuboModel perturb_coefficients(const qubo::QuboModel& model,
                                     double sigma, std::uint64_t seed);

struct NoisySamplerParams {
  /// Noise standard deviation, relative to the largest |coefficient|.
  double sigma = 0.03;
  std::uint64_t seed = 0;
};

class NoisySampler final : public Sampler {
 public:
  /// `inner` must outlive the wrapper.
  NoisySampler(const Sampler& inner, NoisySamplerParams params);

  /// Samples the perturbed model, re-scoring energies against `model`.
  SampleSet sample(const qubo::QuboModel& model) const override;
  std::string name() const override { return "noisy+" + inner_->name(); }

 private:
  const Sampler* inner_;
  NoisySamplerParams params_;
};

}  // namespace qsmt::anneal

// Parallel tempering (replica-exchange Monte Carlo) over QUBO models.
//
// K replicas run Metropolis sweeps at a geometric ladder of inverse
// temperatures; after each sweep, adjacent replicas propose to swap
// configurations with the standard replica-exchange acceptance
//   min(1, exp((β_a - β_b) (E_a - E_b))).
// Hot replicas roam the landscape, cold replicas refine — a stronger
// heuristic than independent-restart SA on rugged instances, included here
// as the strongest classical comparator for the sampler benches (E2).
//
// Reads (independent tempering runs) are OpenMP-parallel with the same
// counter-seeded determinism guarantees as the other samplers.
#pragma once

#include <cstdint>
#include <optional>

#include "anneal/sampler.hpp"
#include "anneal/schedule.hpp"
#include "util/cancel.hpp"

namespace qsmt::anneal {

struct ParallelTemperingParams {
  std::size_t num_reads = 16;     ///< Independent tempering runs.
  std::size_t num_sweeps = 256;   ///< Sweeps (with one exchange round each).
  std::size_t num_replicas = 8;   ///< Temperature-ladder rungs.
  std::uint64_t seed = 0;
  /// β ladder endpoints. When unset, derived from default_beta_range().
  std::optional<double> beta_hot;
  std::optional<double> beta_cold;
  bool polish_with_greedy = true;
  /// Cooperative cancellation, polled once per exchange round (i.e. per
  /// ladder sweep) and before each read. See SimulatedAnnealerParams::cancel
  /// for the contract.
  CancelToken cancel;
};

class ParallelTempering final : public Sampler {
 public:
  explicit ParallelTempering(ParallelTemperingParams params = {});

  SampleSet sample(const qubo::QuboModel& model) const override;
  SampleSet sample(const qubo::QuboAdjacency& adjacency) const override;
  std::string name() const override { return "parallel-tempering"; }
  bool supports_adjacency_sampling() const noexcept override { return true; }

  const ParallelTemperingParams& params() const noexcept { return params_; }

 private:
  ParallelTemperingParams params_;
};

}  // namespace qsmt::anneal

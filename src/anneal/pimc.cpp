#include "anneal/pimc.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "anneal/context.hpp"
#include "anneal/greedy.hpp"
#include "anneal/metropolis.hpp"
#include "anneal/schedule.hpp"
#include "qubo/adjacency.hpp"
#include "qubo/ising.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {

double trotter_coupling(double gamma, std::size_t num_slices,
                        double temperature) {
  require(gamma > 0.0, "trotter_coupling: gamma must be positive");
  require(num_slices >= 2, "trotter_coupling: need at least two slices");
  require(temperature > 0.0, "trotter_coupling: temperature must be positive");
  const double pt = static_cast<double>(num_slices) * temperature;
  // -(T/2) ln tanh(Γ/(PT));  tanh < 1 so the log is negative and J⊥ > 0.
  return -(temperature / 2.0) * std::log(std::tanh(gamma / pt));
}

PathIntegralAnnealer::PathIntegralAnnealer(PathIntegralParams params)
    : params_(params) {
  require(params_.num_reads >= 1, "PathIntegralAnnealer: num_reads >= 1");
  require(params_.num_sweeps >= 1, "PathIntegralAnnealer: num_sweeps >= 1");
  require(params_.num_slices >= 2, "PathIntegralAnnealer: num_slices >= 2");
  require(params_.temperature > 0.0,
          "PathIntegralAnnealer: temperature must be positive");
  require(params_.gamma_hot > params_.gamma_cold && params_.gamma_cold > 0.0,
          "PathIntegralAnnealer: need gamma_hot > gamma_cold > 0");
}

namespace {

// Ising adjacency in flat arrays for the inner loop. `scale` multiplies
// every coefficient: the incremental kernel builds its view pre-scaled by
// beta/P so cached fields live directly in Metropolis-exponent units — the
// accept argument needs no beta or 1/P multiply per proposal (the reference
// kernel builds an unscaled view).
struct IsingView {
  std::vector<double> h;
  std::vector<std::size_t> row_start;
  struct Edge {
    std::uint32_t index;
    double weight;
  };
  std::vector<Edge> edges;

  explicit IsingView(const qubo::IsingModel& ising, double scale = 1.0)
      : h(ising.h) {
    const std::size_t n = h.size();
    for (auto& value : h) value *= scale;
    std::vector<std::size_t> degree(n, 0);
    for (const auto& [key, value] : ising.coupling) {
      if (value == 0.0) continue;
      ++degree[key >> 32];
      ++degree[key & 0xffffffffULL];
    }
    row_start.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) row_start[i + 1] = row_start[i] + degree[i];
    edges.resize(row_start[n]);
    std::vector<std::size_t> cursor(row_start.begin(), row_start.end() - 1);
    for (const auto& [key, value] : ising.coupling) {
      if (value == 0.0) continue;
      const auto i = static_cast<std::uint32_t>(key >> 32);
      const auto j = static_cast<std::uint32_t>(key & 0xffffffffULL);
      edges[cursor[i]++] = Edge{j, value * scale};
      edges[cursor[j]++] = Edge{i, value * scale};
    }
  }

  std::size_t num_variables() const noexcept { return h.size(); }

  // Local field of spin i in slice configuration `spins`:
  // h_i + Σ_j J_ij s_j (classical part only).
  double local_field(const std::int8_t* spins, std::size_t i) const {
    double f = h[i];
    for (std::size_t e = row_start[i]; e < row_start[i + 1]; ++e)
      f += edges[e].weight * spins[edges[e].index];
    return f;
  }
};

struct ReadOutcome {
  std::size_t sweeps_executed = 0;  ///< Slice sweeps actually run.
  std::size_t slice_flips = 0;
  std::size_t global_flips = 0;
};

// One PIMC read over the incremental-field kernel. `view` must be built
// with scale = beta/P, so the slice-major buffers in `ctx` (spins,
// slice_field, slice_energy — see prepare_pimc) obey, across every accepted
// move:
//
//   slice_field[k*n + i] == (beta/P) (h_i + Σ_j J_ij s^k_j)
//   slice_energy[k]      == H_problem(s^k)       (true classical energy)
//
// Fields are cached directly in Metropolis-exponent units: the local accept
// argument is -2 s (field - beta J⊥ (prev+next)) with no beta or 1/P
// multiply per proposal, and a true-units energy delta costs one multiply
// by PT = (beta/P)^-1 on accepted flips only. A local proposal is O(1)
// (field read + the two neighbouring-slice spins), an accepted flip
// O(degree) (push the step into the neighbours' fields), and a whole-column
// global proposal O(P) (one cached field per slice). Best-slice tracking
// compares the cached energies — O(P) per Γ step instead of re-walking the
// coupling map.
//
// The RNG consumption rate is fixed — n bulk uniforms per slice sweep and
// n per global pass, independent of acceptance — which is what keeps reads
// bit-for-bit deterministic across OpenMP thread counts and lets a drift
// audit replay the identical stream.
//
// `audit_drift`, when non-null, accumulates the maximum absolute deviation
// between every cached field/energy and a direct recompute after each
// Γ step (test oracle; never used on the hot path).
ReadOutcome pimc_read(const IsingView& view, const qubo::IsingModel& ising,
                      const PathIntegralParams& params,
                      std::span<const double> gammas, Xoshiro256& rng,
                      AnnealContext& ctx, const CancelToken* cancel,
                      std::vector<std::int8_t>& best_spins,
                      double& best_energy, double* audit_drift) {
  const std::size_t n = view.num_variables();
  const std::size_t slices = params.num_slices;
  const double beta = 1.0 / params.temperature;
  // Cached fields are scaled by beta/P (see the view); one multiply by the
  // inverse recovers true-units energy deltas on accepted flips.
  const double inv_scale =
      static_cast<double>(slices) * params.temperature;
  std::int8_t* spins = ctx.spins.data();
  double* field = ctx.slice_field.data();
  double* energy = ctx.slice_energy.data();
  double* uniforms = ctx.uniforms.data();

  for (std::size_t s = 0; s < slices * n; ++s) {
    spins[s] = rng.coin() ? std::int8_t{1} : std::int8_t{-1};
  }
  for (std::size_t k = 0; k < slices; ++k) {
    const std::int8_t* slice = spins + k * n;
    for (std::size_t i = 0; i < n; ++i) {
      field[k * n + i] = view.local_field(slice, i);
    }
    energy[k] = ising.energy(std::span<const std::int8_t>(slice, n));
  }

  best_energy = std::numeric_limits<double>::infinity();
  auto score_slice = [&](std::size_t k) {
    if (energy[k] < best_energy) {
      best_energy = energy[k];
      std::copy(spins + k * n, spins + (k + 1) * n, best_spins.begin());
    }
  };
  // Score the initial slices so a read cancelled before its first sweep
  // still returns a well-defined state.
  for (std::size_t k = 0; k < slices; ++k) score_slice(k);

  ReadOutcome out;
  for (double gamma : gammas) {
    const double beta_j_perp =
        beta * trotter_coupling(gamma, slices, params.temperature);
    // Local single-spin moves across all slices. Cancellation is polled per
    // slice sweep — the same granularity as the SA/PT kernels — so service
    // deadlines interrupt large models within one sweep, and the cached
    // fields/energies stay consistent at every poll point.
    bool cancelled = false;
    for (std::size_t k = 0; k < slices; ++k) {
      if (cancel && cancel->cancelled()) {
        cancelled = true;
        break;
      }
      std::int8_t* slice = spins + k * n;
      double* f = field + k * n;
      const std::int8_t* prev = spins + ((k + slices - 1) % slices) * n;
      const std::int8_t* next = spins + ((k + 1) % slices) * n;
      for (std::size_t i = 0; i < n; ++i) uniforms[i] = rng.uniform();
      double e = energy[k];
      for (std::size_t i = 0; i < n; ++i) {
        const double s = slice[i];
        // beta ΔE of flipping s -> -s: the cached field already carries
        // beta/P, the inter-slice term gets beta via beta_j_perp.
        const double x =
            -2.0 * s * (f[i] - beta_j_perp * (prev[i] + next[i]));
        if (detail::metropolis_accept(x, uniforms[i])) {
          slice[i] = static_cast<std::int8_t>(-slice[i]);
          e += -2.0 * s * f[i] * inv_scale;
          const double step = 2.0 * static_cast<double>(slice[i]);
          for (std::size_t a = view.row_start[i]; a < view.row_start[i + 1];
               ++a) {
            f[view.edges[a].index] += view.edges[a].weight * step;
          }
          ++out.slice_flips;
        }
      }
      energy[k] = e;
      ++out.sweeps_executed;
    }
    if (cancelled || (cancel && cancel->cancelled())) break;

    // Global moves: flip one variable across every slice (the inter-slice
    // coupling cancels, so only the classical part matters). The cached
    // fields make the proposal O(P) instead of O(P·degree).
    for (std::size_t i = 0; i < n; ++i) uniforms[i] = rng.uniform();
    for (std::size_t i = 0; i < n; ++i) {
      // beta ΔE of the column flip: the inter-slice coupling cancels, and
      // summing the beta/P-scaled cached fields IS beta times the classical
      // delta — no per-slice adjacency walk and no trailing multiply.
      double x = 0.0;
      for (std::size_t k = 0; k < slices; ++k) {
        x += static_cast<double>(spins[k * n + i]) * field[k * n + i];
      }
      x *= -2.0;
      if (detail::metropolis_accept(x, uniforms[i])) {
        ++out.global_flips;
        for (std::size_t k = 0; k < slices; ++k) {
          std::int8_t* slice = spins + k * n;
          const double s = slice[i];
          energy[k] += -2.0 * s * field[k * n + i] * inv_scale;
          slice[i] = static_cast<std::int8_t>(-slice[i]);
          const double step = 2.0 * static_cast<double>(slice[i]);
          for (std::size_t a = view.row_start[i]; a < view.row_start[i + 1];
               ++a) {
            field[k * n + view.edges[a].index] += view.edges[a].weight * step;
          }
        }
      }
    }
    for (std::size_t k = 0; k < slices; ++k) score_slice(k);

    if (audit_drift != nullptr) {
      double drift = *audit_drift;
      for (std::size_t k = 0; k < slices; ++k) {
        const std::int8_t* slice = spins + k * n;
        for (std::size_t i = 0; i < n; ++i) {
          drift = std::max(
              drift, std::abs(field[k * n + i] - view.local_field(slice, i)));
        }
        drift = std::max(
            drift,
            std::abs(energy[k] -
                     ising.energy(std::span<const std::int8_t>(slice, n))));
      }
      *audit_drift = drift;
    }
  }
  return out;
}

void record_pimc_read(const ReadOutcome& outcome) {
  if (!telemetry::enabled()) return;
  static const auto reads = telemetry::counter("anneal.pimc.reads");
  static const auto sweeps =
      telemetry::histogram("anneal.pimc.sweeps", telemetry::Unit::kCount);
  static const auto slice_flips =
      telemetry::histogram("anneal.pimc.slice_flips", telemetry::Unit::kCount);
  static const auto global_flips =
      telemetry::histogram("anneal.pimc.global_flips", telemetry::Unit::kCount);
  reads.add();
  sweeps.record(static_cast<double>(outcome.sweeps_executed));
  slice_flips.record(static_cast<double>(outcome.slice_flips));
  global_flips.record(static_cast<double>(outcome.global_flips));
}

}  // namespace

SampleSet PathIntegralAnnealer::sample(const qubo::QuboModel& model) const {
  telemetry::Span span("anneal.pimc.sample");
  span.arg("num_variables", static_cast<double>(model.num_variables()));
  span.arg("num_reads", static_cast<double>(params_.num_reads));
  span.arg("num_slices", static_cast<double>(params_.num_slices));
  const qubo::IsingModel ising = qubo::qubo_to_ising(model);
  // View pre-scaled by beta/P: cached fields live in accept-exponent units.
  const IsingView view(
      ising, 1.0 / (params_.temperature *
                    static_cast<double>(params_.num_slices)));
  const qubo::QuboAdjacency qubo_adjacency(model);
  const std::size_t n = view.num_variables();

  const std::vector<double> gammas =
      make_schedule(params_.gamma_hot, params_.gamma_cold, params_.num_sweeps,
                    Interpolation::kGeometric);

  const std::size_t reads = params_.num_reads;
  std::vector<Sample> results(reads);
  const CancelToken* cancel =
      params_.cancel.cancellable() ? &params_.cancel : nullptr;

#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(reads); ++r) {
    Xoshiro256 rng(params_.seed ^ 0x51a5e13bULL,
                   static_cast<std::uint64_t>(r));
    AnnealContext& ctx = thread_local_context();
    ctx.prepare_pimc(n, params_.num_slices);

    std::vector<std::int8_t> best_spins(n);
    double best_energy = 0.0;
    const ReadOutcome outcome =
        pimc_read(view, ising, params_, gammas, rng, ctx, cancel, best_spins,
                  best_energy, nullptr);
    record_pimc_read(outcome);

    std::vector<std::uint8_t> bits = qubo::spins_to_bits(best_spins);
    if (params_.polish_with_greedy && !(cancel && cancel->cancelled())) {
      detail::greedy_descend(qubo_adjacency, bits);
    }
    auto& out = results[static_cast<std::size_t>(r)];
    out.energy = qubo_adjacency.energy(bits);
    out.bits = std::move(bits);
  }

  SampleSet set;
  for (auto& s : results) set.add(std::move(s));
  set.aggregate();
  return set;
}

namespace detail {

double pimc_field_drift(const qubo::QuboModel& model,
                        const PathIntegralParams& params) {
  const qubo::IsingModel ising = qubo::qubo_to_ising(model);
  const IsingView view(
      ising, 1.0 / (params.temperature *
                    static_cast<double>(params.num_slices)));
  const std::size_t n = view.num_variables();
  const std::vector<double> gammas =
      make_schedule(params.gamma_hot, params.gamma_cold, params.num_sweeps,
                    Interpolation::kGeometric);
  const CancelToken* cancel =
      params.cancel.cancellable() ? &params.cancel : nullptr;

  double drift = 0.0;
  for (std::size_t r = 0; r < params.num_reads; ++r) {
    Xoshiro256 rng(params.seed ^ 0x51a5e13bULL, r);
    AnnealContext ctx;
    ctx.prepare_pimc(n, params.num_slices);
    std::vector<std::int8_t> best_spins(n);
    double best_energy = 0.0;
    pimc_read(view, ising, params, gammas, rng, ctx, cancel, best_spins,
              best_energy, &drift);
  }
  return drift;
}

SampleSet pimc_sample_reference(const qubo::QuboModel& model,
                                const PathIntegralParams& params) {
  const qubo::IsingModel ising = qubo::qubo_to_ising(model);
  const IsingView view(ising);
  const qubo::QuboAdjacency qubo_adjacency(model);
  const std::size_t n = view.num_variables();
  const std::size_t slices = params.num_slices;
  const double inv_p = 1.0 / static_cast<double>(slices);
  const double beta = 1.0 / params.temperature;

  const std::vector<double> gammas =
      make_schedule(params.gamma_hot, params.gamma_cold, params.num_sweeps,
                    Interpolation::kGeometric);

  const std::size_t reads = params.num_reads;
  std::vector<Sample> results(reads);
  const CancelToken* cancel =
      params.cancel.cancellable() ? &params.cancel : nullptr;

#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(reads); ++r) {
    Xoshiro256 rng(params.seed ^ 0x51a5e13bULL,
                   static_cast<std::uint64_t>(r));
    // spins[k * n + i]: spin i in slice k.
    std::vector<std::int8_t> spins(slices * n);
    for (auto& s : spins) s = rng.coin() ? std::int8_t{1} : std::int8_t{-1};

    std::vector<std::int8_t> best_bits_spins(n);
    double best_energy = std::numeric_limits<double>::infinity();

    auto score_slice = [&](std::size_t k) {
      std::span<const std::int8_t> slice(spins.data() + k * n, n);
      const double e = ising.energy(slice);
      if (e < best_energy) {
        best_energy = e;
        std::copy(slice.begin(), slice.end(), best_bits_spins.begin());
      }
    };

    for (double gamma : gammas) {
      if (cancel && cancel->cancelled()) break;
      const double j_perp = trotter_coupling(gamma, slices, params.temperature);
      // Local single-spin moves across all slices, re-walking the adjacency
      // for every proposal.
      for (std::size_t k = 0; k < slices; ++k) {
        std::int8_t* slice = spins.data() + k * n;
        const std::int8_t* prev = spins.data() + ((k + slices - 1) % slices) * n;
        const std::int8_t* next = spins.data() + ((k + 1) % slices) * n;
        for (std::size_t i = 0; i < n; ++i) {
          const double classical = view.local_field(slice, i) * inv_p;
          const double quantum = -j_perp * (prev[i] + next[i]);
          const double delta = -2.0 * slice[i] * (classical + quantum);
          if (delta <= 0.0 || rng.uniform() < std::exp(-delta * beta)) {
            slice[i] = static_cast<std::int8_t>(-slice[i]);
          }
        }
      }
      // Global moves with a full field recompute per (variable, slice).
      for (std::size_t i = 0; i < n; ++i) {
        double delta = 0.0;
        for (std::size_t k = 0; k < slices; ++k) {
          const std::int8_t* slice = spins.data() + k * n;
          delta += -2.0 * slice[i] * view.local_field(slice, i) * inv_p;
        }
        if (delta <= 0.0 || rng.uniform() < std::exp(-delta * beta)) {
          for (std::size_t k = 0; k < slices; ++k) {
            spins[k * n + i] = static_cast<std::int8_t>(-spins[k * n + i]);
          }
        }
      }
      for (std::size_t k = 0; k < slices; ++k) score_slice(k);
    }

    std::vector<std::uint8_t> bits = qubo::spins_to_bits(best_bits_spins);
    if (params.polish_with_greedy && !(cancel && cancel->cancelled())) {
      detail::greedy_descend(qubo_adjacency, bits);
    }
    auto& out = results[static_cast<std::size_t>(r)];
    out.energy = qubo_adjacency.energy(bits);
    out.bits = std::move(bits);
  }

  SampleSet set;
  for (auto& s : results) set.add(std::move(s));
  set.aggregate();
  return set;
}

}  // namespace detail

}  // namespace qsmt::anneal

#include "anneal/pimc.hpp"

#include <omp.h>

#include <cmath>
#include <vector>

#include "anneal/greedy.hpp"
#include "anneal/schedule.hpp"
#include "qubo/adjacency.hpp"
#include "qubo/ising.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {

double trotter_coupling(double gamma, std::size_t num_slices,
                        double temperature) {
  require(gamma > 0.0, "trotter_coupling: gamma must be positive");
  require(num_slices >= 2, "trotter_coupling: need at least two slices");
  require(temperature > 0.0, "trotter_coupling: temperature must be positive");
  const double pt = static_cast<double>(num_slices) * temperature;
  // -(T/2) ln tanh(Γ/(PT));  tanh < 1 so the log is negative and J⊥ > 0.
  return -(temperature / 2.0) * std::log(std::tanh(gamma / pt));
}

PathIntegralAnnealer::PathIntegralAnnealer(PathIntegralParams params)
    : params_(params) {
  require(params_.num_reads >= 1, "PathIntegralAnnealer: num_reads >= 1");
  require(params_.num_sweeps >= 1, "PathIntegralAnnealer: num_sweeps >= 1");
  require(params_.num_slices >= 2, "PathIntegralAnnealer: num_slices >= 2");
  require(params_.temperature > 0.0,
          "PathIntegralAnnealer: temperature must be positive");
  require(params_.gamma_hot > params_.gamma_cold && params_.gamma_cold > 0.0,
          "PathIntegralAnnealer: need gamma_hot > gamma_cold > 0");
}

namespace {

// Ising adjacency in flat arrays for the inner loop.
struct IsingView {
  std::vector<double> h;
  std::vector<std::size_t> row_start;
  struct Edge {
    std::uint32_t index;
    double weight;
  };
  std::vector<Edge> edges;

  explicit IsingView(const qubo::IsingModel& ising) : h(ising.h) {
    const std::size_t n = h.size();
    std::vector<std::size_t> degree(n, 0);
    for (const auto& [key, value] : ising.coupling) {
      if (value == 0.0) continue;
      ++degree[key >> 32];
      ++degree[key & 0xffffffffULL];
    }
    row_start.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) row_start[i + 1] = row_start[i] + degree[i];
    edges.resize(row_start[n]);
    std::vector<std::size_t> cursor(row_start.begin(), row_start.end() - 1);
    for (const auto& [key, value] : ising.coupling) {
      if (value == 0.0) continue;
      const auto i = static_cast<std::uint32_t>(key >> 32);
      const auto j = static_cast<std::uint32_t>(key & 0xffffffffULL);
      edges[cursor[i]++] = Edge{j, value};
      edges[cursor[j]++] = Edge{i, value};
    }
  }

  std::size_t num_variables() const noexcept { return h.size(); }

  // Local field of spin i in slice configuration `spins`:
  // h_i + Σ_j J_ij s_j (classical part only).
  double local_field(const std::int8_t* spins, std::size_t i) const {
    double f = h[i];
    for (std::size_t e = row_start[i]; e < row_start[i + 1]; ++e)
      f += edges[e].weight * spins[edges[e].index];
    return f;
  }
};

}  // namespace

SampleSet PathIntegralAnnealer::sample(const qubo::QuboModel& model) const {
  const qubo::IsingModel ising = qubo::qubo_to_ising(model);
  const IsingView view(ising);
  const qubo::QuboAdjacency qubo_adjacency(model);
  const std::size_t n = view.num_variables();
  const std::size_t slices = params_.num_slices;
  const double inv_p = 1.0 / static_cast<double>(slices);
  const double beta = 1.0 / params_.temperature;

  const std::vector<double> gammas =
      make_schedule(params_.gamma_hot, params_.gamma_cold, params_.num_sweeps,
                    Interpolation::kGeometric);

  const std::size_t reads = params_.num_reads;
  std::vector<Sample> results(reads);
  const CancelToken* cancel =
      params_.cancel.cancellable() ? &params_.cancel : nullptr;

#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(reads); ++r) {
    Xoshiro256 rng(params_.seed ^ 0x51a5e13bULL,
                   static_cast<std::uint64_t>(r));
    // spins[k * n + i]: spin i in slice k.
    std::vector<std::int8_t> spins(slices * n);
    for (auto& s : spins) s = rng.coin() ? std::int8_t{1} : std::int8_t{-1};

    std::vector<std::int8_t> best_bits_spins(n);
    double best_energy = std::numeric_limits<double>::infinity();

    auto score_slice = [&](std::size_t k) {
      std::span<const std::int8_t> slice(spins.data() + k * n, n);
      const double e = ising.energy(slice);
      if (e < best_energy) {
        best_energy = e;
        std::copy(slice.begin(), slice.end(), best_bits_spins.begin());
      }
    };

    for (double gamma : gammas) {
      // Polled once per Γ step; the Trotter slices are consistent between
      // steps and `best_bits_spins` holds the best slice seen so far.
      if (cancel && cancel->cancelled()) break;
      const double j_perp = trotter_coupling(gamma, slices, params_.temperature);
      // Local single-spin moves across all slices.
      for (std::size_t k = 0; k < slices; ++k) {
        std::int8_t* slice = spins.data() + k * n;
        const std::int8_t* prev = spins.data() + ((k + slices - 1) % slices) * n;
        const std::int8_t* next = spins.data() + ((k + 1) % slices) * n;
        for (std::size_t i = 0; i < n; ++i) {
          const double classical = view.local_field(slice, i) * inv_p;
          const double quantum = -j_perp * (prev[i] + next[i]);
          // ΔE of flipping s -> -s is -2 s (classical + quantum field).
          const double delta = -2.0 * slice[i] * (classical + quantum);
          if (delta <= 0.0 || rng.uniform() < std::exp(-delta * beta)) {
            slice[i] = static_cast<std::int8_t>(-slice[i]);
          }
        }
      }
      // Global moves: flip one variable across every slice (the inter-slice
      // coupling cancels, so only the classical part matters).
      for (std::size_t i = 0; i < n; ++i) {
        double delta = 0.0;
        for (std::size_t k = 0; k < slices; ++k) {
          const std::int8_t* slice = spins.data() + k * n;
          delta += -2.0 * slice[i] * view.local_field(slice, i) * inv_p;
        }
        if (delta <= 0.0 || rng.uniform() < std::exp(-delta * beta)) {
          for (std::size_t k = 0; k < slices; ++k) {
            spins[k * n + i] = static_cast<std::int8_t>(-spins[k * n + i]);
          }
        }
      }
      for (std::size_t k = 0; k < slices; ++k) score_slice(k);
    }

    std::vector<std::uint8_t> bits = qubo::spins_to_bits(best_bits_spins);
    if (params_.polish_with_greedy && !(cancel && cancel->cancelled())) {
      detail::greedy_descend(qubo_adjacency, bits);
    }
    auto& out = results[static_cast<std::size_t>(r)];
    out.energy = qubo_adjacency.energy(bits);
    out.bits = std::move(bits);
  }

  SampleSet set;
  for (auto& s : results) set.add(std::move(s));
  set.aggregate();
  return set;
}

}  // namespace qsmt::anneal

#include "anneal/population.hpp"

#include <omp.h>

#include <cmath>
#include <vector>

#include "anneal/context.hpp"
#include "anneal/greedy.hpp"
#include "anneal/metropolis.hpp"
#include "anneal/simulated_annealer.hpp"
#include "qubo/adjacency.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {

PopulationAnnealing::PopulationAnnealing(PopulationAnnealingParams params)
    : params_(params) {
  require(params_.num_reads >= 1, "PopulationAnnealing: num_reads >= 1");
  require(params_.population_size >= 2,
          "PopulationAnnealing: population_size >= 2");
  require(params_.num_temperatures >= 2,
          "PopulationAnnealing: num_temperatures >= 2");
  require(params_.sweeps_per_step >= 1,
          "PopulationAnnealing: sweeps_per_step >= 1");
}

namespace {

struct Walker {
  std::vector<std::uint8_t> bits;
  double energy = 0.0;
};

// Exp-free Metropolis sweeps (screened accept, see simulated_annealer.hpp).
// `ctx` supplies the field and uniform scratch buffers; walkers keep only
// their bits and energy, so resampling copies stay cheap.
// Returns the number of accepted flips (telemetry).
std::size_t metropolis_sweeps(const qubo::QuboAdjacency& adjacency,
                              Walker& walker, double beta, std::size_t sweeps,
                              Xoshiro256& rng, AnnealContext& ctx) {
  const std::size_t n = adjacency.num_variables();
  std::size_t flips = 0;
  auto& field = ctx.field;
  auto& uniforms = ctx.uniforms;
  // One O(n·deg) field build per (walker, beta) call, then incremental
  // updates for all `sweeps` sweeps. The rebuild cannot be hoisted across
  // calls: resampling duplicates and kills walkers between beta steps, and
  // Walker deliberately carries no field array (copies during resampling
  // would then cost O(n) doubles each) — so the shared ctx.field must be
  // refreshed for whichever bits this walker now holds.
  for (std::size_t i = 0; i < n; ++i) {
    field[i] = adjacency.local_field(walker.bits, i);
  }
  for (std::size_t s = 0; s < sweeps; ++s) {
    for (std::size_t i = 0; i < n; ++i) uniforms[i] = rng.uniform();
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = walker.bits[i] ? -field[i] : field[i];
      if (detail::metropolis_accept(beta * delta, uniforms[i])) {
        const double step = walker.bits[i] ? -1.0 : 1.0;
        walker.bits[i] ^= 1u;
        ++flips;
        walker.energy += delta;
        for (const auto& nb : adjacency.neighbors(i)) {
          field[nb.index] += nb.coefficient * step;
        }
      }
    }
  }
  return flips;
}

}  // namespace

SampleSet PopulationAnnealing::sample(const qubo::QuboModel& model) const {
  return sample(qubo::QuboAdjacency(model));
}

SampleSet PopulationAnnealing::sample(
    const qubo::QuboAdjacency& adjacency) const {
  const std::size_t n = adjacency.num_variables();

  const BetaRange range = default_beta_range(adjacency);
  const std::vector<double> betas = make_schedule(
      params_.beta_hot.value_or(range.hot),
      params_.beta_cold.value_or(range.cold), params_.num_temperatures,
      Interpolation::kGeometric);

  const std::size_t reads = params_.num_reads;
  std::vector<Sample> results(reads);

#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(reads); ++r) {
    Xoshiro256 rng(params_.seed ^ 0x9090aaULL, static_cast<std::uint64_t>(r));

    AnnealContext& ctx = thread_local_context();
    ctx.prepare(n);
    std::vector<Walker> population(params_.population_size);
    for (Walker& walker : population) {
      walker.bits.resize(n);
      for (auto& b : walker.bits) b = rng.coin() ? 1 : 0;
      walker.energy = adjacency.energy(walker.bits);
    }

    std::vector<std::uint8_t> best_bits = population.front().bits;
    double best_energy = population.front().energy;
    auto consider = [&](const Walker& walker) {
      if (walker.energy < best_energy) {
        best_energy = walker.energy;
        best_bits = walker.bits;
      }
    };
    for (const Walker& walker : population) consider(walker);

    std::size_t read_flips = 0;
    std::size_t read_sweeps = 0;
    double previous_beta = betas.front();
    for (double beta : betas) {
      const double delta_beta = beta - previous_beta;
      previous_beta = beta;

      if (delta_beta > 0.0) {
        // Resampling: weight w_i = exp(-Δβ (E_i - E_min)); each walker
        // spawns floor(W) copies plus one more with probability frac(W),
        // where W = w_i * (target / Σw). Keeps the expected population size.
        double min_energy = population.front().energy;
        for (const Walker& w : population) {
          min_energy = std::min(min_energy, w.energy);
        }
        double total_weight = 0.0;
        std::vector<double> weights(population.size());
        for (std::size_t i = 0; i < population.size(); ++i) {
          weights[i] = std::exp(-delta_beta *
                                (population[i].energy - min_energy));
          total_weight += weights[i];
        }
        std::vector<Walker> next;
        next.reserve(params_.population_size + 8);
        const double scale =
            static_cast<double>(params_.population_size) / total_weight;
        for (std::size_t i = 0; i < population.size(); ++i) {
          const double expected = weights[i] * scale;
          auto copies = static_cast<std::size_t>(expected);
          if (rng.uniform() < expected - static_cast<double>(copies)) {
            ++copies;
          }
          for (std::size_t c = 0; c < copies; ++c) {
            next.push_back(population[i]);
          }
        }
        // Guard against extinction (possible at tiny populations).
        if (next.empty()) {
          next.push_back(population[rng.below(population.size())]);
        }
        population = std::move(next);
      }

      for (Walker& walker : population) {
        read_flips += metropolis_sweeps(adjacency, walker, beta,
                                        params_.sweeps_per_step, rng, ctx);
        read_sweeps += params_.sweeps_per_step;
        consider(walker);
      }
    }
    record_read_stats(ReadStats{n, read_flips, read_sweeps, read_sweeps,
                                false});

    if (params_.polish_with_greedy) {
      detail::greedy_descend(adjacency, best_bits);
      best_energy = adjacency.energy(best_bits);
    }
    auto& out = results[static_cast<std::size_t>(r)];
    out.energy = best_energy;
    out.bits = std::move(best_bits);
  }

  SampleSet set;
  for (auto& s : results) set.add(std::move(s));
  set.aggregate();
  return set;
}

}  // namespace qsmt::anneal

// Exact Metropolis acceptance, transcendental-free outside a narrow band.
//
// The acceptance test u < exp(-x), x = β Δ, is sandwiched by elementary
// bounds valid for every x >= 0:
//
//     1 - x + x²/2 - x³/6  <=  exp(-x)  <=  min(1/(1+x), 1 - x + x²/2)
//
// (both sides are the alternating Taylor envelopes; 1/(1+x) follows from
// e^x >= 1+x). A draw that lands outside the sandwich is decided with a
// couple of multiplies; only draws inside the O(x³) gap pay the real exp.
// Cold sweeps — where β Δ is large and nearly every uphill move is
// rejected — are decided almost entirely by the 1/(1+x) bound, which is
// what makes the sweep kernel exp-free in the hot path.
#pragma once

#include <cmath>

namespace qsmt::anneal::detail {

/// Returns the exact Metropolis decision u < exp(-x) for x = β Δ.
/// Downhill and flat moves (x <= 0) are always accepted, matching
/// min(1, exp(-x)). `u` must lie in [0, 1).
inline bool metropolis_accept(double x, double u) noexcept {
  if (x <= 0.0) return true;
  if (u * (1.0 + x) >= 1.0) return false;  // exp(-x) <= 1/(1+x)
  const double upper = 1.0 - x + 0.5 * x * x;
  if (u >= upper) return false;                        // exp(-x) <= upper
  if (u < upper - x * x * x * (1.0 / 6.0)) return true;  // lower <= exp(-x)
  return u < std::exp(-x);
}

}  // namespace qsmt::anneal::detail

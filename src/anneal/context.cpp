#include "anneal/context.hpp"

namespace qsmt::anneal {

AnnealContext& thread_local_context() {
  thread_local AnnealContext context;
  return context;
}

}  // namespace qsmt::anneal

#include "anneal/context.hpp"

#include "telemetry/telemetry.hpp"

namespace qsmt::anneal {

AnnealContext& thread_local_context() {
  thread_local AnnealContext context;
  return context;
}

void record_read_stats(const ReadStats& stats) {
  if (!telemetry::enabled()) return;
  // Interned once; the handles record into the calling thread's shard, so
  // OpenMP read workers never contend here.
  static const auto reads = telemetry::counter("anneal.reads");
  static const auto early_exits = telemetry::counter("anneal.read.early_exits");
  static const auto flips =
      telemetry::histogram("anneal.read.flips", telemetry::Unit::kCount);
  static const auto sweeps =
      telemetry::histogram("anneal.read.sweeps", telemetry::Unit::kCount);
  static const auto acceptance =
      telemetry::histogram("anneal.read.acceptance", telemetry::Unit::kRatio);
  reads.add();
  if (stats.early_exit) early_exits.add();
  flips.record(static_cast<double>(stats.flips));
  sweeps.record(static_cast<double>(stats.sweeps_executed));
  const double attempts = static_cast<double>(stats.sweeps_executed) *
                          static_cast<double>(stats.num_variables);
  if (attempts > 0.0) {
    acceptance.record(static_cast<double>(stats.flips) / attempts);
  }
}

}  // namespace qsmt::anneal

#include "anneal/random_sampler.hpp"

#include "qubo/adjacency.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {

RandomSampler::RandomSampler(RandomSamplerParams params) : params_(params) {
  require(params_.num_reads >= 1, "RandomSampler: num_reads must be >= 1");
}

SampleSet RandomSampler::sample(const qubo::QuboModel& model) const {
  const qubo::QuboAdjacency adjacency(model);
  const std::size_t n = adjacency.num_variables();
  SampleSet set;
  for (std::size_t r = 0; r < params_.num_reads; ++r) {
    Xoshiro256 rng(params_.seed, r);
    std::vector<std::uint8_t> bits(n);
    for (auto& b : bits) b = rng.coin() ? 1 : 0;
    const double energy = adjacency.energy(bits);
    set.add(std::move(bits), energy);
  }
  set.aggregate();
  return set;
}

}  // namespace qsmt::anneal

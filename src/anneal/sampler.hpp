// Abstract sampler interface shared by every QUBO solver in the suite.
//
// Samplers are configured at construction (each has its own Params struct)
// and are stateless across sample() calls apart from that configuration, so
// one instance may be reused across models and threads.
#pragma once

#include <string>

#include "anneal/sample_set.hpp"
#include "qubo/qubo_model.hpp"

namespace qsmt::anneal {

class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Draws samples from (approximate) low-energy states of `model`.
  /// The returned set is aggregated and sorted best-first.
  virtual SampleSet sample(const qubo::QuboModel& model) const = 0;

  /// Human-readable sampler name for bench/report output.
  virtual std::string name() const = 0;
};

}  // namespace qsmt::anneal

// Abstract sampler interface shared by every QUBO solver in the suite.
//
// Samplers are configured at construction (each has its own Params struct)
// and are stateless across sample() calls apart from that configuration, so
// one instance may be reused across models and threads.
//
// Two entry points:
//  - sample(QuboModel): the convenience path; builds whatever internal view
//    the sampler needs.
//  - sample(QuboAdjacency): the hot path. Re-samplers (retry loops, sweep
//    autotuning, escalation pipelines) build the CSR adjacency once and
//    re-sample it at different budgets without paying the O(n + m) adjacency
//    build per call. The annealing family overrides this natively; the base
//    implementation round-trips through an equivalent QuboModel so every
//    sampler accepts both inputs.
#pragma once

#include <string>

#include "anneal/sample_set.hpp"
#include "qubo/adjacency.hpp"
#include "qubo/qubo_model.hpp"

namespace qsmt::anneal {

class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Draws samples from (approximate) low-energy states of `model`.
  /// The returned set is aggregated and sorted best-first.
  virtual SampleSet sample(const qubo::QuboModel& model) const = 0;

  /// Same, from a prebuilt adjacency. Samplers with a native CSR path
  /// override this to skip the per-call adjacency rebuild.
  virtual SampleSet sample(const qubo::QuboAdjacency& adjacency) const;

  /// True when sample(QuboAdjacency) is native (no model round-trip).
  /// Callers holding both representations use this to pick the cheaper
  /// input; callers holding only an adjacency can always pass it.
  virtual bool supports_adjacency_sampling() const noexcept { return false; }

  /// Human-readable sampler name for bench/report output.
  virtual std::string name() const = 0;
};

}  // namespace qsmt::anneal

#include "anneal/tempering.hpp"

#include <omp.h>

#include <cmath>
#include <vector>

#include "anneal/context.hpp"
#include "anneal/greedy.hpp"
#include "anneal/metropolis.hpp"
#include "qubo/adjacency.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {

ParallelTempering::ParallelTempering(ParallelTemperingParams params)
    : params_(params) {
  require(params_.num_reads >= 1, "ParallelTempering: num_reads >= 1");
  require(params_.num_sweeps >= 1, "ParallelTempering: num_sweeps >= 1");
  require(params_.num_replicas >= 2, "ParallelTempering: num_replicas >= 2");
}

namespace {

struct Replica {
  std::vector<std::uint8_t> bits;
  std::vector<double> field;
  double energy = 0.0;
};

// Exp-free Metropolis sweep (same screened-accept kernel as the SA sweep,
// see simulated_annealer.hpp): uniforms are bulk-generated into `scratch`.
// Returns the number of accepted flips (telemetry).
std::size_t sweep(const qubo::QuboAdjacency& adjacency, Replica& replica,
                  double beta, Xoshiro256& rng,
                  std::vector<double>& scratch) {
  const std::size_t n = adjacency.num_variables();
  std::size_t flips = 0;
  for (std::size_t i = 0; i < n; ++i) scratch[i] = rng.uniform();
  for (std::size_t i = 0; i < n; ++i) {
    const double delta =
        replica.bits[i] ? -replica.field[i] : replica.field[i];
    if (detail::metropolis_accept(beta * delta, scratch[i])) {
      const double step = replica.bits[i] ? -1.0 : 1.0;
      replica.bits[i] ^= 1u;
      ++flips;
      replica.energy += delta;
      for (const auto& nb : adjacency.neighbors(i)) {
        replica.field[nb.index] += nb.coefficient * step;
      }
    }
  }
  return flips;
}

}  // namespace

SampleSet ParallelTempering::sample(const qubo::QuboModel& model) const {
  return sample(qubo::QuboAdjacency(model));
}

SampleSet ParallelTempering::sample(
    const qubo::QuboAdjacency& adjacency) const {
  const std::size_t n = adjacency.num_variables();

  const BetaRange range = default_beta_range(adjacency);
  const std::vector<double> betas = make_schedule(
      params_.beta_hot.value_or(range.hot),
      params_.beta_cold.value_or(range.cold), params_.num_replicas,
      Interpolation::kGeometric);

  const std::size_t reads = params_.num_reads;
  std::vector<Sample> results(reads);
  const CancelToken* cancel =
      params_.cancel.cancellable() ? &params_.cancel : nullptr;

#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(reads); ++r) {
    Xoshiro256 rng(params_.seed ^ 0x7e57ab1eULL,
                   static_cast<std::uint64_t>(r));

    AnnealContext& ctx = thread_local_context();
    ctx.prepare(n);
    // The O(n·deg) field build runs exactly once per replica, here. It never
    // needs repeating: sweep() maintains fields incrementally, and exchange
    // moves below swap whole Replica structs, so each field array travels
    // with the bits it describes.
    std::vector<Replica> ladder(params_.num_replicas);
    for (Replica& replica : ladder) {
      replica.bits.resize(n);
      for (auto& b : replica.bits) b = rng.coin() ? 1 : 0;
      replica.field.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        replica.field[i] = adjacency.local_field(replica.bits, i);
      }
      replica.energy = adjacency.energy(replica.bits);
    }

    std::vector<std::uint8_t> best_bits = ladder.back().bits;
    double best_energy = ladder.back().energy;
    auto consider = [&](const Replica& replica) {
      if (replica.energy < best_energy) {
        best_energy = replica.energy;
        best_bits = replica.bits;
      }
    };
    for (const Replica& replica : ladder) consider(replica);

    std::size_t read_flips = 0;
    for (std::size_t s = 0; s < params_.num_sweeps; ++s) {
      // Cancellation is polled once per exchange round: the ladder is
      // consistent between rounds, and `best_bits` already holds the best
      // state seen, so a cancelled read returns it immediately.
      if (cancel && cancel->cancelled()) break;
      for (std::size_t k = 0; k < ladder.size(); ++k) {
        read_flips += sweep(adjacency, ladder[k], betas[k], rng, ctx.uniforms);
        consider(ladder[k]);
      }
      // Exchange round: alternate even/odd pairings so information can
      // percolate across the whole ladder.
      for (std::size_t k = s % 2; k + 1 < ladder.size(); k += 2) {
        const double exponent = (betas[k] - betas[k + 1]) *
                                (ladder[k].energy - ladder[k + 1].energy);
        if (exponent >= 0.0 || rng.uniform() < std::exp(exponent)) {
          // Swapping the full structs (bits + field + energy, all vector
          // moves) keeps the cached fields attached to their configuration —
          // an exchange only re-labels which temperature a state sweeps at,
          // so no field rebuild is needed afterwards.
          std::swap(ladder[k], ladder[k + 1]);
        }
      }
    }

    if (params_.polish_with_greedy && !(cancel && cancel->cancelled())) {
      detail::greedy_descend(adjacency, best_bits);
      best_energy = adjacency.energy(best_bits);
    }
    const std::size_t ladder_sweeps = params_.num_sweeps * ladder.size();
    record_read_stats(ReadStats{n, read_flips, ladder_sweeps, ladder_sweeps,
                                false});
    auto& out = results[static_cast<std::size_t>(r)];
    out.energy = best_energy;
    out.bits = std::move(best_bits);
  }

  SampleSet set;
  for (auto& s : results) set.add(std::move(s));
  set.aggregate();
  return set;
}

}  // namespace qsmt::anneal

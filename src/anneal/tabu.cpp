#include "anneal/tabu.hpp"

#include <omp.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "qubo/adjacency.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {

TabuSampler::TabuSampler(TabuParams params) : params_(params) {
  require(params_.num_restarts >= 1, "TabuSampler: num_restarts must be >= 1");
  require(params_.max_stale_iterations >= 1,
          "TabuSampler: max_stale_iterations must be >= 1");
}

namespace {

Sample tabu_walk(const qubo::QuboAdjacency& adjacency, std::size_t tenure,
                 std::size_t max_stale, Xoshiro256& rng) {
  const std::size_t n = adjacency.num_variables();
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.coin() ? 1 : 0;

  std::vector<double> field(n);
  for (std::size_t i = 0; i < n; ++i) field[i] = adjacency.local_field(bits, i);
  double energy = adjacency.energy(bits);

  std::vector<std::size_t> tabu_until(n, 0);
  std::vector<std::uint8_t> best_bits = bits;
  double best_energy = energy;

  std::size_t iteration = 0;
  std::size_t stale = 0;
  while (stale < max_stale) {
    ++iteration;
    double best_delta = std::numeric_limits<double>::infinity();
    std::size_t best_var = n;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = bits[i] ? -field[i] : field[i];
      const bool is_tabu = tabu_until[i] > iteration;
      // Aspiration: a tabu move is admissible when it beats the global best.
      if (is_tabu && energy + delta >= best_energy) continue;
      if (delta < best_delta) {
        best_delta = delta;
        best_var = i;
      }
    }
    if (best_var == n) {
      // Everything tabu and nothing aspires: release by jumping randomly.
      best_var = static_cast<std::size_t>(rng.below(n));
      best_delta = bits[best_var] ? -field[best_var] : field[best_var];
    }

    const double step = bits[best_var] ? -1.0 : 1.0;
    bits[best_var] ^= 1u;
    energy += best_delta;
    for (const auto& nb : adjacency.neighbors(best_var)) {
      field[nb.index] += nb.coefficient * step;
    }
    tabu_until[best_var] = iteration + tenure;

    if (energy < best_energy - 1e-12) {
      best_energy = energy;
      best_bits = bits;
      stale = 0;
    } else {
      ++stale;
    }
  }
  return Sample{std::move(best_bits), best_energy, 1};
}

}  // namespace

SampleSet TabuSampler::sample(const qubo::QuboModel& model) const {
  const qubo::QuboAdjacency adjacency(model);
  const std::size_t n = adjacency.num_variables();
  const std::size_t tenure =
      params_.tenure.value_or(std::min<std::size_t>(20, n / 4 + 1));
  const std::size_t restarts = params_.num_restarts;
  std::vector<Sample> results(restarts);

#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(restarts); ++r) {
    Xoshiro256 rng(params_.seed, static_cast<std::uint64_t>(r));
    results[static_cast<std::size_t>(r)] =
        tabu_walk(adjacency, tenure, params_.max_stale_iterations, rng);
  }

  SampleSet set;
  for (auto& s : results) set.add(std::move(s));
  set.aggregate();
  return set;
}

}  // namespace qsmt::anneal

#include "anneal/greedy.hpp"

#include <omp.h>

#include "anneal/context.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {

namespace detail {

std::size_t greedy_descend(const qubo::QuboAdjacency& adjacency,
                           std::vector<std::uint8_t>& bits,
                           std::vector<double>& field) {
  const std::size_t n = adjacency.num_variables();
  std::size_t flips = 0;
  bool improved = true;
  while (improved) {
    improved = false;
    // Steepest: pick the single best flip each round.
    double best_delta = 0.0;
    std::size_t best_var = n;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = bits[i] ? -field[i] : field[i];
      if (delta < best_delta) {
        best_delta = delta;
        best_var = i;
      }
    }
    if (best_var != n) {
      const double step = bits[best_var] ? -1.0 : 1.0;
      bits[best_var] ^= 1u;
      for (const auto& nb : adjacency.neighbors(best_var)) {
        field[nb.index] += nb.coefficient * step;
      }
      ++flips;
      improved = true;
    }
  }
  return flips;
}

std::size_t greedy_descend(const qubo::QuboAdjacency& adjacency,
                           std::vector<std::uint8_t>& bits) {
  const std::size_t n = adjacency.num_variables();
  std::vector<double> field(n);
  for (std::size_t i = 0; i < n; ++i) field[i] = adjacency.local_field(bits, i);
  return greedy_descend(adjacency, bits, field);
}

}  // namespace detail

GreedyDescent::GreedyDescent(GreedyDescentParams params) : params_(params) {
  require(params_.num_reads >= 1, "GreedyDescent: num_reads must be >= 1");
}

SampleSet GreedyDescent::sample(const qubo::QuboModel& model) const {
  return sample(qubo::QuboAdjacency(model));
}

SampleSet GreedyDescent::sample(const qubo::QuboAdjacency& adjacency) const {
  const std::size_t n = adjacency.num_variables();
  const std::size_t reads = params_.num_reads;
  std::vector<Sample> results(reads);

#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(reads); ++r) {
    AnnealContext& ctx = thread_local_context();
    ctx.prepare(n);
    Xoshiro256 rng(params_.seed, static_cast<std::uint64_t>(r));
    for (auto& b : ctx.bits) b = rng.coin() ? 1 : 0;
    for (std::size_t i = 0; i < n; ++i)
      ctx.field[i] = adjacency.local_field(ctx.bits, i);
    detail::greedy_descend(adjacency, ctx.bits, ctx.field);
    auto& out = results[static_cast<std::size_t>(r)];
    out.energy = adjacency.energy(ctx.bits);
    out.bits.assign(ctx.bits.begin(), ctx.bits.end());
  }

  SampleSet set;
  for (auto& s : results) set.add(std::move(s));
  set.aggregate();
  return set;
}

}  // namespace qsmt::anneal

#include "anneal/noise.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {

namespace {

/// Standard normal via Box-Muller (fine for noise injection).
double gaussian(Xoshiro256& rng) {
  // Avoid log(0): uniform() is in [0, 1), so flip to (0, 1].
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

qubo::QuboModel perturb_coefficients(const qubo::QuboModel& model,
                                     double sigma, std::uint64_t seed) {
  require(sigma >= 0.0, "perturb_coefficients: sigma must be non-negative");
  const double scale = sigma * model.max_abs_coefficient();
  qubo::QuboModel noisy(model.num_variables());
  noisy.set_offset(model.offset());
  if (scale == 0.0) {
    noisy = model;
    return noisy;
  }
  Xoshiro256 rng(seed, 0x401feULL);
  for (std::size_t i = 0; i < model.num_variables(); ++i) {
    const double v = model.linear_terms()[i];
    if (v != 0.0) noisy.set_linear(i, v + scale * gaussian(rng));
  }
  // Iterate quadratic terms in sorted order so the noise realisation is
  // deterministic regardless of hash-map layout.
  std::vector<std::uint64_t> keys;
  keys.reserve(model.quadratic_terms().size());
  for (const auto& [key, value] : model.quadratic_terms()) {
    if (value != 0.0) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t key : keys) {
    noisy.set_quadratic(key >> 32, key & 0xffffffffULL,
                        model.quadratic_terms().at(key) +
                            scale * gaussian(rng));
  }
  return noisy;
}

NoisySampler::NoisySampler(const Sampler& inner, NoisySamplerParams params)
    : inner_(&inner), params_(params) {
  require(params_.sigma >= 0.0, "NoisySampler: sigma must be non-negative");
}

SampleSet NoisySampler::sample(const qubo::QuboModel& model) const {
  const qubo::QuboModel noisy =
      perturb_coefficients(model, params_.sigma, params_.seed);
  const SampleSet raw = inner_->sample(noisy);
  // Re-score against the true model (readout happens in problem units).
  SampleSet rescored;
  for (const Sample& s : raw) {
    rescored.add(s.bits, model.energy(s.bits), s.num_occurrences);
  }
  rescored.aggregate();
  return rescored;
}

}  // namespace qsmt::anneal

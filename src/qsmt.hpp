// Umbrella header: the whole public API in one include.
//
//   #include "qsmt.hpp"
//
// Fine for applications and experiments; library code should keep including
// the specific module headers it uses.
#pragma once

// Utilities.
#include "util/require.hpp"   // IWYU pragma: export
#include "util/rng.hpp"       // IWYU pragma: export
#include "util/stopwatch.hpp" // IWYU pragma: export

// QUBO core.
#include "qubo/adjacency.hpp"       // IWYU pragma: export
#include "qubo/ising.hpp"           // IWYU pragma: export
#include "qubo/penalties.hpp"       // IWYU pragma: export
#include "qubo/quadratization.hpp"  // IWYU pragma: export
#include "qubo/qubo_model.hpp"      // IWYU pragma: export
#include "qubo/serialize.hpp"       // IWYU pragma: export

// Samplers.
#include "anneal/autotune.hpp"           // IWYU pragma: export
#include "anneal/exact.hpp"              // IWYU pragma: export
#include "anneal/greedy.hpp"             // IWYU pragma: export
#include "anneal/noise.hpp"              // IWYU pragma: export
#include "anneal/pimc.hpp"               // IWYU pragma: export
#include "anneal/population.hpp"         // IWYU pragma: export
#include "anneal/random_sampler.hpp"     // IWYU pragma: export
#include "anneal/reverse.hpp"            // IWYU pragma: export
#include "anneal/sample_set.hpp"         // IWYU pragma: export
#include "anneal/sampler.hpp"            // IWYU pragma: export
#include "anneal/schedule.hpp"           // IWYU pragma: export
#include "anneal/simulated_annealer.hpp" // IWYU pragma: export
#include "anneal/tabu.hpp"               // IWYU pragma: export
#include "anneal/tempering.hpp"          // IWYU pragma: export

// Hardware simulation.
#include "graph/chimera.hpp"          // IWYU pragma: export
#include "graph/embedded_sampler.hpp" // IWYU pragma: export
#include "graph/embedding.hpp"        // IWYU pragma: export
#include "graph/graph.hpp"            // IWYU pragma: export
#include "graph/topologies.hpp"       // IWYU pragma: export

// String encoding + regex.
#include "regex/nfa.hpp"      // IWYU pragma: export
#include "regex/pattern.hpp"  // IWYU pragma: export
#include "strenc/ascii7.hpp"  // IWYU pragma: export

// The string-constraint solver (the paper's contribution).
#include "strqubo/builders.hpp"   // IWYU pragma: export
#include "strqubo/constraint.hpp" // IWYU pragma: export
#include "strqubo/pipeline.hpp"   // IWYU pragma: export
#include "strqubo/solver.hpp"     // IWYU pragma: export
#include "strqubo/verify.hpp"     // IWYU pragma: export

// SMT front end, SAT substrate, engines, baselines, workloads.
#include "baseline/classical.hpp"   // IWYU pragma: export
#include "engine/engine.hpp"        // IWYU pragma: export
#include "sat/cdcl.hpp"             // IWYU pragma: export
#include "sat/dimacs.hpp"           // IWYU pragma: export
#include "sat/dpllt.hpp"            // IWYU pragma: export
#include "sat/tseitin.hpp"          // IWYU pragma: export
#include "smtlib/ast.hpp"           // IWYU pragma: export
#include "smtlib/compiler.hpp"      // IWYU pragma: export
#include "smtlib/driver.hpp"        // IWYU pragma: export
#include "smtlib/parser.hpp"        // IWYU pragma: export
#include "smtlib/sexpr.hpp"         // IWYU pragma: export
#include "workload/generator.hpp"   // IWYU pragma: export
#include "workload/smt2_render.hpp" // IWYU pragma: export

// qsmt::service — the serving layer: concurrent batch solving with
// portfolio racing, cancellation, and deadlines.
//
// SolveService owns a fixed-size worker pool. Every submitted job (an
// SMT-LIB script or a strqubo::Constraint) is raced by a configurable
// portfolio of samplers — simulated annealing, parallel tempering,
// path-integral quantum simulation, minor-embedded annealing, or any
// custom anneal::Sampler — with first-verified-SAT-wins semantics:
//
//  * the first portfolio member whose decoded model passes classical
//    verification (or, for scripts, whose engine verdict is decisively
//    sat/unsat) fulfils the job's future and cancels the job's
//    CancelSource;
//  * losing members observe the shared CancelToken inside their sweep
//    loops (the same per-sweep plumbing as the annealer's zero-flip early
//    exit) and stop within one sweep, returning their cycles to the pool;
//  * per-job deadlines ride the same token: an expired deadline cancels
//    in-flight members and the job resolves to a graceful kUnknown with
//    timed_out set — deadlines never throw and never lose other jobs;
//  * a member whose decoded model fails verification retries with a
//    reseeded sampler up to ServiceOptions::max_verify_retries times
//    (annealing is stochastic; a fresh RNG stream is often all it takes).
//
// Constraint jobs run the prebuilt-adjacency hot path: the QUBO model and
// its CSR adjacency are built once per distinct constraint (keyed cache,
// shared across jobs and portfolio members) and re-sampled at every
// attempt — see strqubo::PreparedConstraint.
//
// The unit of queued work is one (job, member) pair, so workers never
// block waiting on other tasks and the pool cannot deadlock regardless of
// worker count. Emitted telemetry (docs/telemetry.md): queue depth gauge,
// job latency histograms, portfolio-winner/timeout/cancellation counters.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "anneal/exact.hpp"
#include "anneal/pimc.hpp"
#include "canon/answer_cache.hpp"
#include "anneal/sampler.hpp"
#include "anneal/simulated_annealer.hpp"
#include "anneal/tempering.hpp"
#include "graph/embedded_sampler.hpp"
#include "route/router.hpp"
#include "smtlib/driver.hpp"
#include "strqubo/builders.hpp"
#include "strqubo/constraint.hpp"
#include "util/cancel.hpp"

namespace qsmt::service {

/// One lane of the portfolio race: a display name plus a thread-safe
/// factory producing the sampler for a given (seed, cancel token) pair.
/// Factories are invoked per (job, member, attempt), so retry-with-reseed
/// gets genuinely independent RNG streams.
struct PortfolioMember {
  std::string name;
  std::function<std::unique_ptr<anneal::Sampler>(std::uint64_t seed,
                                                 CancelToken cancel)>
      make;
  /// When set, the worker pool may fuse many queued constraint jobs that
  /// share a structure key into ONE batched kernel invocation for this
  /// member (anneal::sample_batched; see docs/ARCHITECTURE.md, "Cross-job
  /// batching"). The params' seed/cancel fields are ignored — every fused
  /// job keeps its own counter-seeded stream and its own cancel token, so
  /// fused results are bit-identical to solo runs. simulated_annealing_member
  /// fills this automatically; leave empty to opt a custom member out.
  std::optional<anneal::SimulatedAnnealerParams> batched;
};

/// Simulated-annealing lane. `base.seed` and `base.cancel` are overwritten
/// per attempt; every other field is honoured.
PortfolioMember simulated_annealing_member(
    std::string name, anneal::SimulatedAnnealerParams base = {});

/// Parallel-tempering (replica exchange) lane.
PortfolioMember parallel_tempering_member(
    std::string name, anneal::ParallelTemperingParams base = {});

/// Path-integral (simulated quantum annealing) lane.
PortfolioMember path_integral_member(std::string name,
                                     anneal::PathIntegralParams base = {});

/// Minor-embedded hardware-simulation lane. `target` must outlive the
/// service; the cancel token threads through the inner annealer.
PortfolioMember embedded_member(std::string name, const graph::Graph& target,
                                graph::EmbeddedSamplerParams base = {});

/// Exhaustive-enumeration lane (anneal::ExactSolver, <= 30 QUBO variables —
/// larger models throw and the member drops out of its race). Deterministic
/// verdicts for corpus-sized jobs: the server's tests and `qsmt-server
/// --exact` run a single-member exact portfolio so replies are pinnable.
PortfolioMember exact_member(std::string name,
                             anneal::ExactSolverParams base = {});

/// The default race: a fast low-budget annealer (wins easy jobs in
/// milliseconds) against a deep high-budget one (catches what the fast
/// lane misses). Bian et al.'s portfolio observation for annealing-based
/// SAT: heterogeneous effort levels beat any single configuration.
std::vector<PortfolioMember> default_portfolio();

/// A quantum-inclusive race: sa-fast plus a light path-integral lane and a
/// minor-embedded lane onto `target` (which must outlive the service). The
/// embedded lane shares one structure-keyed embedding cache across all of
/// its attempts, so batches of same-shaped string QUBOs embed once and then
/// race warm — the workload Abel et al. describe for annealer model building.
std::vector<PortfolioMember> quantum_portfolio(const graph::Graph& target);

struct ServiceOptions {
  /// Worker threads. 0 = hardware concurrency (at least 1).
  std::size_t num_workers = 0;
  /// QUBO build options shared by every job.
  strqubo::BuildOptions build;
  /// The race lanes. Empty = default_portfolio().
  std::vector<PortfolioMember> portfolio;
  /// Extra reseeded attempts per member after a failed verification.
  std::size_t max_verify_retries = 2;
  /// Deadline applied to jobs that do not set their own (0 = none).
  std::chrono::nanoseconds default_deadline{0};
  /// Upper bound on distinct prepared constraints kept in the model cache
  /// (an unbounded cache would grow with the stream of distinct jobs).
  std::size_t model_cache_capacity = 256;
  /// Upper bound on queued jobs fused into one batched kernel invocation
  /// when a batchable member finds structure-sharing siblings in the queue
  /// (see PortfolioMember::batched). 1 (or 0) disables cross-job fusion.
  std::size_t max_fused_jobs = 16;
  /// Adaptive portfolio router (docs/routing.md). When set, constraint jobs
  /// consult it before enqueueing: a confident decision dispatches ONLY the
  /// historically-best member (seeds preserved, so the routed run is
  /// bit-identical to that member's leg of the full race); low-confidence
  /// and periodic-explore decisions race the whole portfolio and train the
  /// table. A routed member that fails to decide falls back to racing the
  /// remaining members. Ignored when the router's member list does not
  /// match this portfolio's size, when the portfolio has fewer than two
  /// members, and for script jobs (no structural features). Shared: one
  /// router may serve many services, or many tenants may each pass their
  /// own per-job via JobOptions::router.
  std::shared_ptr<route::Router> router;
  /// Canonical answer cache (docs/caching.md). When set, every job is
  /// looked up at submission — ahead of the router — under its
  /// alpha-equivalence canonical key (src/canon): a hit whose remapped
  /// witness passes one classical verification resolves the future
  /// immediately with a byte-identical verdict (winner "answer-cache",
  /// zero sampling attempts); a hit that fails verification falls through
  /// to the normal cold solve (Stats::answer_fallbacks), whose fresh
  /// verdict then replaces the entry. Verified completions are inserted
  /// exactly once. Shared by design: one cache may serve many services,
  /// server sessions, and tenants (qsmt-server wires one across every
  /// session) — entries are keyed by canonical structure alone, so a
  /// witness can only be observed by holders of a structurally identical
  /// query. Null disables answer memoization entirely.
  std::shared_ptr<canon::AnswerCache> answer_cache;
};

struct JobOptions {
  /// Per-job deadline from submission (0 = service default; negative =
  /// already expired, resolves kUnknown/timed_out without sampling).
  std::chrono::nanoseconds deadline{0};
  /// Master seed for this job's sampler streams.
  std::uint64_t seed = 0;
  /// Opaque caller id echoed into JobResult (batch bookkeeping, tests).
  std::uint64_t tag = 0;
  /// External cancellation handle the job adopts when set: cancelling the
  /// source cancels the job's whole portfolio race (the server session uses
  /// this to abort in-flight work when a client disconnects mid-check-sat).
  /// The job's deadline, when any, is armed on this same source.
  std::optional<CancelSource> cancel;
  /// Warm-start seed for constraint jobs: a previously verified witness
  /// from the same logical session (the server's incremental sessions pass
  /// their last sat model). The first member to pick the job up runs one
  /// cheap reverse-anneal refinement from this string before its cold
  /// attempt; if the refined sample verifies, the job is decided without a
  /// full-budget solve. A witness whose length no longer matches the job's
  /// constraint is ignored (cold start). Script jobs ignore this field.
  std::optional<std::string> warm_start;
  /// Per-job router override (the server passes each tenant's own learned
  /// table here). Takes precedence over ServiceOptions::router; the same
  /// member-count and constraint-job-only gating applies.
  std::shared_ptr<route::Router> router;
};

struct JobResult {
  smtlib::CheckSatStatus status = smtlib::CheckSatStatus::kUnknown;
  /// Constraint jobs: decoded string (string-producing ops).
  std::optional<std::string> text;
  /// Constraint jobs: decoded first-occurrence position (Includes).
  std::optional<std::size_t> position;
  /// Script jobs: model variable and value when status == kSat.
  std::string variable;
  std::string model_value;
  /// Portfolio member that produced the decisive verdict (empty when none).
  std::string winner;
  /// Router disposition for this job: "" when no router was consulted,
  /// "routed" (single-member dispatch held), "routed+fallback" (routed
  /// member failed to decide; the rest of the portfolio raced),
  /// "race:low_confidence" or "race:explore" (router chose a full race).
  std::string route;
  std::vector<std::string> notes;
  /// True when the job's deadline actually cut work short (a member was
  /// cancelled while queued, between attempts, or mid-solve) before any
  /// member won. A job whose members exhausted every attempt unverified
  /// while the deadline expired concurrently is kUnknown, not a timeout.
  bool timed_out = false;
  /// True when the verdict was served from the canonical answer cache
  /// (ServiceOptions::answer_cache): no portfolio member ran, winner is
  /// "answer-cache", and the witness was confirmed by one classical
  /// verification against this job's own payload.
  bool answer_cache_hit = false;
  /// Sampling attempts across all members at the time the verdict landed.
  std::size_t attempts = 0;
  /// Losing members that had observed their cancel token by verdict time.
  std::size_t members_cancelled = 0;
  std::uint64_t tag = 0;
  /// Seconds from submission to first member pickup / to the verdict
  /// (steady clock).
  double queue_seconds = 0.0;
  double solve_seconds = 0.0;
};

/// Solution-chained multi-constraint pipeline (the paper's §5 sequential
/// workload as a first-class scheduling object): stage N+1 is submitted when
/// stage N completes, warm-started (reverse-annealed, PR 8 plumbing) from
/// stage N's verified witness instead of starting cold. Stages that fail to
/// produce a witness chain nothing — the next stage runs cold — and the
/// pipeline always runs every stage. `options` applies to every stage;
/// stage i's seed is mix_seed(options.seed, i), so a pipeline's stages stay
/// independent streams. An explicit per-stage warm_start in `options`
/// applies to stage 0 only.
struct PipelineJob {
  std::vector<strqubo::Constraint> stages;
  JobOptions options;
};

struct PipelineResult {
  /// One JobResult per stage, pipeline order.
  std::vector<JobResult> stages;
  /// Every stage decided kSat.
  bool all_sat = false;
  /// Stages whose submission carried the previous stage's witness as a
  /// warm start (route.chain.warm_starts counts the same events).
  std::size_t chained_warm_starts = 0;
};

class SolveService {
 public:
  explicit SolveService(ServiceOptions options = {});
  /// Joins the pool. Jobs still queued resolve kUnknown with a
  /// "service stopped" note; nothing hangs and no future is broken.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Enqueues one constraint job; the future resolves when the portfolio
  /// race decides (or the deadline expires).
  std::future<JobResult> submit(strqubo::Constraint constraint,
                                JobOptions options = {});

  /// Enqueues one SMT-LIB script job (parse errors resolve the future with
  /// kUnknown and an explanatory note — they never throw across the pool).
  std::future<JobResult> submit_script(std::string script,
                                       JobOptions options = {});

  /// Batch conveniences: submit everything, then wait; results are in
  /// input order. `options` applies to every job; seeds are offset by the
  /// job index so jobs stay independent.
  std::vector<JobResult> solve_constraints(
      const std::vector<strqubo::Constraint>& constraints,
      JobOptions options = {});
  std::vector<JobResult> solve_scripts(const std::vector<std::string>& scripts,
                                       JobOptions options = {});

  /// Enqueues a solution-chained pipeline: stage N+1 is submitted from
  /// stage N's completion, warm-started from its witness when one exists.
  /// The future resolves when the last stage does. An empty pipeline
  /// resolves immediately (all_sat vacuously true).
  std::future<PipelineResult> submit_pipeline(PipelineJob pipeline);

  std::size_t num_workers() const noexcept;
  std::size_t portfolio_size() const noexcept;
  /// Member names in portfolio-index order — the list a route::Router for
  /// this service must be constructed over.
  std::vector<std::string> portfolio_names() const;

  /// Monotonic whole-service counters (tests, monitoring).
  struct Stats {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_timed_out = 0;
    /// Losing members that observed their token and aborted.
    std::uint64_t members_cancelled = 0;
    /// Members whose sampler threw (e.g. embedding failure); the member
    /// drops out of its race, the job and the service keep running.
    std::uint64_t member_errors = 0;
    /// Reseeded re-attempts after failed verification.
    std::uint64_t verify_retries = 0;
    std::uint64_t model_cache_hits = 0;
    std::uint64_t model_cache_misses = 0;
    /// Batched kernel invocations that fused >= 2 jobs.
    std::uint64_t batch_invocations = 0;
    /// Jobs that entered a fused invocation (counted at dispatch, so jobs
    /// whose build or sampler then failed are still included; each is
    /// completed exactly once through the normal race bookkeeping).
    std::uint64_t jobs_fused = 0;
    /// Warm-start refinements attempted (JobOptions::warm_start present and
    /// the witness type-checked against the prepared model) / refinements
    /// whose verified sample decided the job.
    std::uint64_t warm_starts = 0;
    std::uint64_t warm_hits = 0;
    /// Jobs dispatched to a single routed member (router said kRoute).
    std::uint64_t jobs_routed = 0;
    /// Routed jobs whose member failed to decide and fell back to racing
    /// the remaining portfolio.
    std::uint64_t route_fallbacks = 0;
    /// Pipelines submitted via submit_pipeline.
    std::uint64_t pipelines = 0;
    /// Pipeline stages submitted with the previous stage's witness chained
    /// in as a warm start (one per hop whose upstream produced a witness).
    std::uint64_t chain_warm_starts = 0;
    /// Answer-cache dispositions (ServiceOptions::answer_cache), counted
    /// exactly once per job: jobs served straight from a verified cache
    /// hit / jobs whose canonical key missed / hits whose witness failed
    /// its confirmation and fell through to a cold solve. The cache's own
    /// lookup counters relate as answer_cache.hits == answer_hits +
    /// answer_fallbacks (every lookup hit either serves or falls back).
    std::uint64_t answer_hits = 0;
    std::uint64_t answer_misses = 0;
    std::uint64_t answer_fallbacks = 0;
    /// Prepared-model LRU occupancy (mirrors the
    /// service.model_cache.{entries,bytes} gauges).
    std::uint64_t model_cache_entries = 0;
    std::uint64_t model_cache_bytes = 0;
  };
  Stats stats() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qsmt::service

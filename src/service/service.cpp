#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <list>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <variant>

#include "anneal/reverse.hpp"
#include "canon/canon.hpp"
#include "engine/engine.hpp"
#include "route/features.hpp"
#include "smtlib/compiler.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/solver.hpp"
#include "strqubo/verify.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace qsmt::service {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Exact structural key for the prepared-model cache (now the shared
// strqubo::structure_key, which the incremental fragment cache keys by
// too, so both layers agree on what "structurally identical" means).
std::string cache_key(const strqubo::Constraint& constraint) {
  return strqubo::structure_key(constraint);
}

// Retained-footprint estimate of one prepared-model cache entry (key +
// QUBO linear/quadratic terms, doubled for the CSR adjacency mirror) —
// feeds the service.model_cache.bytes gauge.
std::size_t prepared_bytes(const std::string& key,
                           const strqubo::PreparedConstraint& prepared) {
  return key.size() + prepared.model.num_variables() * sizeof(double) +
         prepared.model.num_interactions() *
             (sizeof(std::uint64_t) + sizeof(double)) * 2 +
         64;
}

// Round-trips a script-unsat verdict's notes through one CachedAnswer
// field: joined on store, split back on serve, so a warmed unsat reply
// carries the cold path's explanation verbatim.
std::string join_notes(const std::vector<std::string>& notes) {
  std::string joined;
  for (const std::string& note : notes) {
    if (!joined.empty()) joined += '\n';
    joined += note;
  }
  return joined;
}

void split_notes(const std::string& joined, std::vector<std::string>& out) {
  std::size_t begin = 0;
  while (begin <= joined.size() && !joined.empty()) {
    const std::size_t end = joined.find('\n', begin);
    if (end == std::string::npos) {
      out.push_back(joined.substr(begin));
      break;
    }
    out.push_back(joined.substr(begin, end - begin));
    begin = end + 1;
  }
}

}  // namespace

/// Cross-job fusion scan (docs/ARCHITECTURE.md, "Cross-job batching"): after
/// a worker pops a task whose portfolio member is batchable, the aggregator
/// walks the rest of the queue and pulls out up to `max_fused - 1` sibling
/// tasks the caller's predicate accepts (same member, same structure key,
/// different job). Runs under the queue lock; the scan is O(queue) with no
/// allocation beyond the returned vector, and queue order is preserved for
/// everything it leaves behind.
class BatchAggregator {
 public:
  explicit BatchAggregator(std::size_t max_fused) : max_fused_(max_fused) {}

  template <typename Task, typename Joinable>
  std::vector<Task> collect(std::deque<Task>& queue,
                            const Joinable& joinable) const {
    std::vector<Task> fused;
    if (max_fused_ < 2) return fused;
    for (auto it = queue.begin();
         it != queue.end() && fused.size() + 1 < max_fused_;) {
      if (joinable(*it)) {
        fused.push_back(std::move(*it));
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
    return fused;
  }

 private:
  std::size_t max_fused_;
};

PortfolioMember simulated_annealing_member(
    std::string name, anneal::SimulatedAnnealerParams base) {
  PortfolioMember member;
  member.name = std::move(name);
  member.make = [base](std::uint64_t seed,
                       CancelToken cancel) -> std::unique_ptr<anneal::Sampler> {
    anneal::SimulatedAnnealerParams params = base;
    params.seed = seed;
    params.cancel = std::move(cancel);
    return std::make_unique<anneal::SimulatedAnnealer>(params);
  };
  // Simulated annealing is the one lane whose kernel can fuse jobs: expose
  // the params so the pool can route structure-sharing siblings through
  // anneal::sample_batched with per-job seeds and tokens.
  member.batched = base;
  return member;
}

PortfolioMember parallel_tempering_member(std::string name,
                                          anneal::ParallelTemperingParams base) {
  PortfolioMember member;
  member.name = std::move(name);
  member.make = [base](std::uint64_t seed,
                       CancelToken cancel) -> std::unique_ptr<anneal::Sampler> {
    anneal::ParallelTemperingParams params = base;
    params.seed = seed;
    params.cancel = std::move(cancel);
    return std::make_unique<anneal::ParallelTempering>(params);
  };
  return member;
}

PortfolioMember path_integral_member(std::string name,
                                     anneal::PathIntegralParams base) {
  PortfolioMember member;
  member.name = std::move(name);
  member.make = [base](std::uint64_t seed,
                       CancelToken cancel) -> std::unique_ptr<anneal::Sampler> {
    anneal::PathIntegralParams params = base;
    params.seed = seed;
    params.cancel = std::move(cancel);
    return std::make_unique<anneal::PathIntegralAnnealer>(params);
  };
  return member;
}

PortfolioMember embedded_member(std::string name, const graph::Graph& target,
                                graph::EmbeddedSamplerParams base) {
  // One embedding cache for every sampler this lane ever constructs:
  // attempts get fresh samplers (independent RNG streams), but the first
  // solve of each graph shape pays for the embedding search exactly once —
  // warm solves of structurally-identical QUBOs skip find_embedding.
  if (!base.embedding_cache) {
    base.embedding_cache = std::make_shared<graph::EmbeddingCache>();
  }
  PortfolioMember member;
  member.name = std::move(name);
  member.make = [base, &target](
                    std::uint64_t seed,
                    CancelToken cancel) -> std::unique_ptr<anneal::Sampler> {
    graph::EmbeddedSamplerParams params = base;
    params.anneal.seed = seed;
    params.anneal.cancel = std::move(cancel);
    return std::make_unique<graph::EmbeddedSampler>(target, params);
  };
  return member;
}

PortfolioMember exact_member(std::string name,
                             anneal::ExactSolverParams base) {
  PortfolioMember member;
  member.name = std::move(name);
  // Enumeration is deterministic and fast at corpus scale, so the seed is
  // irrelevant and cancellation lands between jobs, not mid-enumeration.
  member.make = [base](std::uint64_t /*seed*/, CancelToken /*cancel*/)
      -> std::unique_ptr<anneal::Sampler> {
    return std::make_unique<anneal::ExactSolver>(base);
  };
  return member;
}

std::vector<PortfolioMember> default_portfolio() {
  anneal::SimulatedAnnealerParams fast;
  fast.num_reads = 16;
  fast.num_sweeps = 64;
  anneal::SimulatedAnnealerParams deep;
  deep.num_reads = 64;
  deep.num_sweeps = 512;
  std::vector<PortfolioMember> portfolio;
  portfolio.push_back(simulated_annealing_member("sa-fast", fast));
  portfolio.push_back(simulated_annealing_member("sa-deep", deep));
  return portfolio;
}

std::vector<PortfolioMember> quantum_portfolio(const graph::Graph& target) {
  anneal::SimulatedAnnealerParams fast;
  fast.num_reads = 16;
  fast.num_sweeps = 64;
  // Light PIMC lane: with the incremental-field kernel a low-budget
  // transverse-field schedule is competitive with sa-fast on quantum-friendly
  // (frustrated / degenerate) workloads instead of losing every race.
  anneal::PathIntegralParams pimc;
  pimc.num_reads = 4;
  pimc.num_sweeps = 48;
  pimc.num_slices = 8;
  // Embedded lane: the shared embedding cache inside embedded_member means
  // only the first job of each graph shape pays the minor-embedding search.
  graph::EmbeddedSamplerParams embedded;
  embedded.anneal.num_reads = 16;
  embedded.anneal.num_sweeps = 96;
  std::vector<PortfolioMember> portfolio;
  portfolio.push_back(simulated_annealing_member("sa-fast", fast));
  portfolio.push_back(path_integral_member("pimc-light", pimc));
  portfolio.push_back(embedded_member("embedded", target, embedded));
  return portfolio;
}

struct SolveService::Impl {
  // Sentinel for "no member won" in Job::winner_member (build failures,
  // parse errors, exhausted races, shutdown resolutions).
  static constexpr std::size_t kNoWinner = static_cast<std::size_t>(-1);

  struct Job : std::enable_shared_from_this<Job> {
    std::variant<strqubo::Constraint, std::string> payload;
    /// cache_key() of a constraint payload, computed once at submission
    /// (empty for script jobs). Doubles as the model-cache key and as the
    /// fusion key: tasks whose jobs share it build the same QUBO, so a
    /// batchable member can anneal them in one kernel invocation.
    std::string structure_key;
    /// Canonical answer-cache key (empty = not cacheable or no cache
    /// configured) and, for script jobs, the canonical form whose renaming
    /// remaps cached witness variables and whose original assertions the
    /// hit confirmation compiles. Both fixed at submission.
    std::string answer_key;
    std::shared_ptr<const canon::CanonicalScript> canonical;
    /// Served from the answer cache: complete() must not re-insert.
    bool answer_cache_hit = false;
    JobOptions options;
    SteadyClock::time_point enqueued;
    bool has_deadline = false;
    CancelSource cancel;
    std::promise<JobResult> promise;
    /// Owner election: the member (or shutdown path) that flips this from
    /// false fills the result and fulfils the promise — nobody else touches
    /// either afterwards.
    std::atomic<bool> decided{false};
    /// First member to pick the job up records the queue latency. Atomic:
    /// a sibling that wins fast reads it in complete() concurrently.
    std::atomic<bool> started{false};
    std::atomic<double> queue_seconds{0.0};
    /// Countdown to the last loser, which must emit the kUnknown verdict.
    std::atomic<std::size_t> members_left{0};
    std::atomic<std::size_t> attempts{0};
    std::atomic<std::size_t> cancelled_members{0};
    /// Set when a member's work was actually interrupted by the deadline
    /// (cancelled while queued, between attempts, or mid-solve) — as
    /// opposed to every member exhausting its attempts unverified while
    /// the deadline happened to expire concurrently. Only the former is a
    /// timeout.
    std::atomic<bool> deadline_cut_short{false};
    /// Diagnostics from members whose sampler/solve threw (e.g. an
    /// embedding failure); attached to the verdict when no member wins.
    std::mutex error_notes_mutex;
    std::vector<std::string> error_notes;
    /// The warm-start refinement (JobOptions::warm_start) runs at most once
    /// per job, from whichever member reaches the prepared model first.
    std::atomic<bool> warm_tried{false};
    /// Built once per job (all members share it) under build_once; on
    /// failure build_error carries the message instead.
    std::once_flag build_once;
    std::shared_ptr<const strqubo::PreparedConstraint> prepared;
    std::string build_error;
    /// Adaptive routing (docs/routing.md). `router` is the resolved table
    /// this job consults and trains (JobOptions::router, else
    /// ServiceOptions::router; null when gating rejected it or the decision
    /// raced); bucket/disposition are fixed at submission.
    std::shared_ptr<route::Router> router;
    std::string route_bucket;
    /// "" | "routed" | "routed+fallback" | "race:low_confidence" |
    /// "race:explore" — mirrored into JobResult::route.
    const char* route_disposition = "";
    /// True when the router dispatched a single member for this job.
    bool routed = false;
    std::size_t routed_member = 0;
    /// Set by the one finisher that converts a failed routed dispatch into
    /// a fallback race (guards against double re-enqueue).
    std::atomic<bool> fell_back{false};
    /// Member index that claimed the verdict (kNoWinner otherwise); feeds
    /// the router's win/loss ledger in complete().
    std::atomic<std::size_t> winner_member{kNoWinner};
    /// The verdict came from the warm-start refinement, which is
    /// member-independent — complete() must not credit the claiming member
    /// with a routing win for it.
    std::atomic<bool> warm_won{false};
    /// Every raced member genuinely ran out of attempts undecided (the
    /// finish_if_last kUnknown, not a build failure or shutdown) — the one
    /// no-winner outcome that legitimately debits the whole portfolio in
    /// the router's ledger.
    std::atomic<bool> exhausted{false};
    /// Caller adopted an external CancelSource (claim_and_finish must
    /// always cancel so the caller's other handles observe the verdict).
    bool external_cancel = false;
    /// Invoked (worker thread) in complete() after the result is filled,
    /// just before the promise resolves — the pipeline-chaining hook.
    std::function<void(const JobResult&)> on_complete;
  };

  struct Task {
    std::shared_ptr<Job> job;
    std::size_t member = 0;
  };

  explicit Impl(ServiceOptions opts) : options(std::move(opts)) {
    if (options.portfolio.empty()) options.portfolio = default_portfolio();
    for (const PortfolioMember& member : options.portfolio) {
      if (!member.make) {
        throw std::invalid_argument(
            "SolveService: portfolio member '" + member.name +
            "' has no sampler factory");
      }
    }
    if (options.num_workers == 0) {
      options.num_workers =
          std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    if (options.model_cache_capacity == 0) options.model_cache_capacity = 1;
    if (options.max_fused_jobs == 0) options.max_fused_jobs = 1;
    workers.reserve(options.num_workers);
    for (std::size_t i = 0; i < options.num_workers; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      stopping = true;
    }
    queue_cv.notify_all();
    for (std::thread& worker : workers) worker.join();
    // Whatever is still queued can no longer run; resolve every pending
    // promise exactly once so no caller blocks on a dead service.
    for (Task& task : queue) {
      resolve_unrun(*task.job, "service stopped before solve");
    }
    queue.clear();
  }

  /// Routing gate + decision for one job at submission. Fills the job's
  /// router fields and returns how many member tasks to enqueue (the
  /// routed member alone, or the whole portfolio).
  void decide_route(Job& job) {
    const auto* constraint = std::get_if<strqubo::Constraint>(&job.payload);
    if (constraint == nullptr) return;  // Scripts have no features.
    std::shared_ptr<route::Router> router =
        job.options.router ? job.options.router : options.router;
    // A router learned over a different portfolio (or a portfolio with no
    // race to prune) is ignored rather than mis-applied.
    if (!router || router->num_members() != options.portfolio.size() ||
        options.portfolio.size() < 2) {
      return;
    }
    const route::RouteDecision decision =
        router->decide(route::extract_features(*constraint));
    job.router = std::move(router);
    job.route_bucket = decision.bucket;
    if (decision.action == route::RouteAction::kRoute) {
      job.routed = true;
      job.routed_member = decision.member;
      job.route_disposition = "routed";
      stats_routed.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        telemetry::counter("service.jobs.routed").add();
      }
    } else {
      job.route_disposition =
          decision.reason == route::RaceReason::kExplore
              ? "race:explore"
              : "race:low_confidence";
    }
  }

  std::future<JobResult> enqueue(
      std::variant<strqubo::Constraint, std::string> payload,
      JobOptions job_options,
      std::function<void(const JobResult&)> on_complete = {}) {
    auto job = std::make_shared<Job>();
    job->on_complete = std::move(on_complete);
    job->payload = std::move(payload);
    if (const auto* constraint =
            std::get_if<strqubo::Constraint>(&job->payload)) {
      job->structure_key = cache_key(*constraint);
    }
    job->options = std::move(job_options);
    job->enqueued = SteadyClock::now();
    std::future<JobResult> future = job->promise.get_future();

    // Canonical answer cache: look the job up ahead of the router. A
    // verified hit resolves the future right here — no member task is ever
    // queued — and a failed confirmation falls through to the cold path
    // below. Jobs whose deadline is already expired (negative) or whose
    // external cancel already fired skip the lookup so their cold
    // timeout/cancellation semantics are untouched.
    if (options.answer_cache) {
      if (const auto* constraint =
              std::get_if<strqubo::Constraint>(&job->payload)) {
        job->answer_key =
            canon::constraint_answer_key(*constraint, options.build);
      } else {
        auto canonical = std::make_shared<const canon::CanonicalScript>(
            canon::canonicalize_script(std::get<std::string>(job->payload)));
        if (canonical->cacheable) {
          job->answer_key = canon::script_answer_key(*canonical, options.build);
          job->canonical = std::move(canonical);
        }
      }
      std::chrono::nanoseconds effective = job->options.deadline;
      if (effective.count() == 0) effective = options.default_deadline;
      const bool already_cancelled =
          job->options.cancel && job->options.cancel->token().cancelled();
      if (!job->answer_key.empty() && effective.count() >= 0 &&
          !already_cancelled) {
        if (std::optional<canon::CachedAnswer> cached =
                options.answer_cache->lookup(job->answer_key)) {
          if (serve_cached(*job, *cached)) return future;
          stats_answer_fallbacks.fetch_add(1, std::memory_order_relaxed);
          if (telemetry::enabled()) {
            telemetry::counter("service.answer.fallbacks").add();
          }
        } else {
          stats_answer_misses.fetch_add(1, std::memory_order_relaxed);
          if (telemetry::enabled()) {
            telemetry::counter("service.answer.misses").add();
          }
        }
      }
    }

    decide_route(*job);
    job->members_left.store(job->routed ? 1 : options.portfolio.size(),
                            std::memory_order_relaxed);
    // Adopt an external cancellation handle before arming the deadline so
    // both signals share one state: the caller's cancel() and the deadline
    // race to the same token every member polls.
    if (job->options.cancel) {
      job->cancel = *job->options.cancel;
      job->external_cancel = true;
    }
    std::chrono::nanoseconds deadline = job->options.deadline;
    if (deadline.count() == 0) deadline = options.default_deadline;
    if (deadline.count() != 0) {
      job->has_deadline = true;
      job->cancel.set_deadline_after(deadline);
    }
    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      if (stopping) {
        rejected = true;
      } else if (job->routed) {
        // Routed dispatch: one member task, everyone else stays home. The
        // seed stream is the same mix the race would hand this member, so
        // the routed run is bit-identical to its race leg.
        queue.push_back(Task{job, job->routed_member});
      } else {
        // All member tasks adjacent: the portfolio race for one job starts
        // as soon as workers free up, instead of interleaving with later
        // jobs' members.
        for (std::size_t m = 0; m < options.portfolio.size(); ++m) {
          queue.push_back(Task{job, m});
        }
      }
      if (!rejected) publish_queue_depth_locked();
    }
    if (rejected) {
      // Outside the queue lock: resolving runs the job's on_complete hook,
      // and a pipeline's hook re-enters enqueue() for the next stage.
      resolve_unrun(*job, "service stopped before solve");
      return future;
    }
    queue_cv.notify_all();
    stats_submitted.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::counter("service.jobs.submitted").add();
    }
    return future;
  }

  /// In-flight state of one solution-chained pipeline. Stages run strictly
  /// sequentially (stage N+1 is submitted from stage N's on_complete hook),
  /// so the mutable fields are touched by one thread at a time with
  /// happens-before through the queue mutex.
  struct PipelineState {
    std::vector<strqubo::Constraint> stages;
    JobOptions base;
    std::promise<PipelineResult> promise;
    PipelineResult result;
  };

  std::future<PipelineResult> submit_pipeline(PipelineJob pipeline) {
    auto state = std::make_shared<PipelineState>();
    state->stages = std::move(pipeline.stages);
    state->base = std::move(pipeline.options);
    state->result.stages.reserve(state->stages.size());
    std::future<PipelineResult> future = state->promise.get_future();
    stats_pipelines.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::counter("route.chain.pipelines").add();
    }
    if (state->stages.empty()) {
      state->result.all_sat = true;
      state->promise.set_value(std::move(state->result));
      return future;
    }
    submit_stage(state, 0, state->base.warm_start);
    return future;
  }

  /// Submits pipeline stage `index`. `warm` is the previous stage's
  /// verified witness (or the caller's own warm_start for stage 0); it
  /// rides the ordinary JobOptions::warm_start reverse-anneal plumbing, so
  /// chaining changes where a stage starts, never what it can answer.
  void submit_stage(const std::shared_ptr<PipelineState>& state,
                    std::size_t index, std::optional<std::string> warm) {
    JobOptions stage_options = state->base;
    stage_options.seed = mix_seed(state->base.seed, index);
    stage_options.warm_start = std::move(warm);
    if (index > 0 && stage_options.warm_start.has_value()) {
      // Exactly one bump per chained hop — tests pin this against the
      // stage count (tests/router_test.cpp).
      ++state->result.chained_warm_starts;
      stats_chain_warm_starts.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        telemetry::counter("route.chain.warm_starts").add();
      }
    }
    if (telemetry::enabled()) {
      telemetry::counter("route.chain.stages").add();
    }
    // The stage's own future is intentionally dropped: its result arrives
    // through the on_complete hook below (exactly once, even when the
    // service is stopping — enqueue resolves rejected jobs inline).
    enqueue(state->stages[index], std::move(stage_options),
            [this, state, index](const JobResult& result) {
              state->result.stages.push_back(result);
              const std::size_t next = index + 1;
              if (next < state->stages.size()) {
                std::optional<std::string> chained;
                if (result.status == smtlib::CheckSatStatus::kSat &&
                    result.text.has_value()) {
                  chained = result.text;
                }
                submit_stage(state, next, std::move(chained));
                return;
              }
              bool all_sat = true;
              for (const JobResult& stage : state->result.stages) {
                all_sat &= stage.status == smtlib::CheckSatStatus::kSat;
              }
              state->result.all_sat = all_sat;
              state->promise.set_value(std::move(state->result));
            });
  }

  void worker_loop() {
    for (;;) {
      Task task;
      std::vector<Task> siblings;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [this] { return stopping || !queue.empty(); });
        if (stopping) return;
        task = std::move(queue.front());
        queue.pop_front();
        // A batchable member leading a constraint job scans the queue for
        // structure-sharing siblings and takes them along: one kernel
        // invocation anneals every fused job's replicas in one pass.
        if (options.portfolio[task.member].batched &&
            !task.job->structure_key.empty()) {
          const BatchAggregator aggregator(options.max_fused_jobs);
          siblings = aggregator.collect(queue, [&](const Task& other) {
            return other.member == task.member && other.job != task.job &&
                   other.job->structure_key == task.job->structure_key;
          });
        }
        publish_queue_depth_locked();
      }
      if (siblings.empty()) {
        run_member(*task.job, task.member);
      } else {
        const std::size_t member_index = task.member;
        siblings.insert(siblings.begin(), std::move(task));
        run_fused(std::move(siblings), member_index);
      }
    }
  }

  /// Records queue latency the first time any member picks the job up.
  void mark_started(Job& job) {
    if (!job.started.exchange(true, std::memory_order_acq_rel)) {
      const double waited =
          std::chrono::duration<double>(SteadyClock::now() - job.enqueued)
              .count();
      job.queue_seconds.store(waited, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        telemetry::histogram("service.job.wait_seconds",
                             telemetry::Unit::kSeconds)
            .record(waited);
      }
    }
  }

  /// A member whose token was already cancelled before it ran a single
  /// sweep: either a sibling won (count the cancellation) or the deadline
  /// expired while queued (this member may be the one that must emit the
  /// timeout).
  void finish_precancelled(Job& job) {
    if (job.decided.load(std::memory_order_acquire)) {
      record_member_cancelled(job);
      release_member(job);
    } else {
      // The deadline fired before this member could run at all: the job
      // was genuinely cut short, not merely exhausted.
      job.deadline_cut_short.store(true, std::memory_order_relaxed);
      finish_if_last(job);
    }
  }

  /// Loser epilogue shared by the solo and fused paths: this member lost
  /// because a sibling decided, the deadline expired mid-solve, or every
  /// reseeded attempt came back unverified.
  void finish_as_loser(Job& job, const CancelToken& token) {
    if (token.cancelled() && job.decided.load(std::memory_order_acquire)) {
      record_member_cancelled(job);
    }
    finish_if_last(job);
  }

  void run_member(Job& job, std::size_t member_index) {
    const CancelToken token = job.cancel.token();
    mark_started(job);
    if (token.cancelled()) {
      finish_precancelled(job);
      return;
    }
    run_member_attempts(job, member_index, token, 0);
  }

  /// One cheap reverse-anneal refinement seeded from the caller's previous
  /// witness (JobOptions::warm_start), run at most once per job by
  /// whichever member reaches the prepared model first. A refined sample
  /// that passes classical verification decides the job before anyone pays
  /// a full-budget solve; any miss (witness no longer type-checks against
  /// the model, refinement unverified, refiner threw) silently falls back
  /// to the cold path. Returns true when this call claimed the verdict
  /// (member bookkeeping fully settled via claim_and_finish).
  bool try_warm_start(Job& job, const PortfolioMember& member,
                      const strqubo::PreparedConstraint& prepared) {
    if (!job.options.warm_start.has_value()) return false;
    if (job.warm_tried.exchange(true, std::memory_order_acq_rel)) {
      return false;
    }
    const std::string& witness = *job.options.warm_start;
    if (!strenc::is_ascii7(witness)) return false;
    std::vector<std::uint8_t> initial = strenc::encode_string(witness);
    if (initial.size() > prepared.model.num_variables()) return false;
    initial.resize(prepared.model.num_variables(), 0);

    stats_warm_starts.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::counter("incremental.warm.starts").add();
    }
    try {
      anneal::ReverseAnnealerParams params;
      params.num_reads = 8;
      params.num_sweeps = 64;
      params.reheat_fraction = 0.35;
      params.seed = mix_seed(job.options.seed, 0x77a7);
      const anneal::ReverseAnnealer refiner(std::move(initial), params);
      const anneal::SampleSet samples = refiner.sample(prepared.adjacency);
      const strqubo::SolveResult solved = strqubo::decode_and_verify(
          std::get<strqubo::Constraint>(job.payload), samples);
      if (!solved.satisfied) return false;
      if (claim_and_finish(job, kNoWinner, [&](JobResult& result) {
            result.status = smtlib::CheckSatStatus::kSat;
            result.text = solved.text;
            result.position = solved.position;
            result.winner = member.name;
            result.notes.push_back("warm start");
            // The refinement is member-independent: whoever reached the
            // prepared model first ran it. Routing must not credit the
            // member, or warm sessions would train the table on luck.
            job.warm_won.store(true, std::memory_order_relaxed);
            record_winner(member.name);
            // Inside the claim so the increment is sequenced before the
            // promise resolves (a caller snapshotting stats right after
            // .get() must see this hit).
            stats_warm_hits.fetch_add(1, std::memory_order_relaxed);
            if (telemetry::enabled()) {
              telemetry::counter("incremental.warm.hits").add();
            }
          })) {
        return true;
      }
    } catch (const std::exception&) {
      // The refinement is opportunistic; the cold attempt still runs.
    }
    return false;
  }

  /// The attempt loop of one (job, member) race lane, starting at
  /// `first_attempt` (0 for a solo run; 1 when a fused kernel invocation
  /// already consumed attempt 0 and the decoded model failed verification).
  /// Always settles this member's race bookkeeping before returning.
  void run_member_attempts(Job& job, std::size_t member_index,
                           const CancelToken& token,
                           std::size_t first_attempt) {
    const PortfolioMember& member = options.portfolio[member_index];

    // True when this member must stop racing. A cancelled token on an
    // undecided job can only mean the deadline (a winner flips `decided`
    // before cancelling), so observing it here — between attempts or right
    // after a sweep loop aborted — marks the job as cut short by its
    // deadline rather than exhausted.
    const auto aborted = [&]() -> bool {
      if (job.decided.load(std::memory_order_acquire)) return true;
      if (token.cancelled()) {
        job.deadline_cut_short.store(true, std::memory_order_relaxed);
        return true;
      }
      return false;
    };

    for (std::size_t attempt = first_attempt;
         attempt <= options.max_verify_retries; ++attempt) {
      if (aborted()) break;
      if (attempt > 0) {
        stats_retries.fetch_add(1, std::memory_order_relaxed);
        if (telemetry::enabled()) {
          telemetry::counter("service.retry.attempts").add();
        }
      }
      job.attempts.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t seed = mix_seed(
          mix_seed(job.options.seed, member_index + 1), attempt + 1);
      std::unique_ptr<anneal::Sampler> sampler;
      try {
        sampler = member.make(seed, token);
      } catch (const std::exception& error) {
        fail_member(job, member, error.what());
        return;
      }

      if (std::holds_alternative<strqubo::Constraint>(job.payload)) {
        const strqubo::PreparedConstraint* prepared = prepare_job(job);
        if (prepared == nullptr) {
          // Build failed; the error is deterministic, so retrying or
          // letting other members run the same build would only repeat it.
          if (!claim_and_finish(job, kNoWinner, [&](JobResult& result) {
                result.notes.push_back("model build failed: " +
                                       job.build_error);
              })) {
            release_member(job);
          }
          return;
        }
        if (try_warm_start(job, member, *prepared)) return;
        if (aborted()) break;  // A sibling's warm start may have claimed.
        strqubo::SolveResult solved;
        try {
          const strqubo::StringConstraintSolver solver(*sampler,
                                                       options.build);
          solved = solver.solve(*prepared);
        } catch (const std::exception& error) {
          // E.g. EmbeddedSampler failing to embed the model. Worker threads
          // must never let an exception escape (std::terminate); the member
          // drops out of the race and its siblings keep going.
          fail_member(job, member, error.what());
          return;
        }
        if (solved.satisfied) {
          if (claim_and_finish(job, member_index, [&](JobResult& result) {
                result.status = smtlib::CheckSatStatus::kSat;
                result.text = solved.text;
                result.position = solved.position;
                result.winner = member.name;
                // Inside the claim so the increment is sequenced before the
                // promise resolves — a caller snapshotting telemetry right
                // after .get() must see this job's winner.
                record_winner(member.name);
              })) {
            return;
          }
          break;  // Sibling won between our solve and the claim.
        }
        // Decoded model failed verification: loop for a reseeded attempt
        // (noting first whether the deadline aborted this solve mid-sweep —
        // the top-of-loop check never runs after the last attempt).
        if (aborted()) break;
      } else {
        const std::string& script = std::get<std::string>(job.payload);
        engine::ScriptResult solved;
        try {
          solved = engine::solve_script(script, *sampler, options.build);
        } catch (const std::invalid_argument& error) {
          // Parse errors are deterministic for the whole job: no sibling
          // can do better, so claim the verdict instead of dropping out.
          if (!claim_and_finish(job, kNoWinner,
                                [&, message = std::string(error.what())](
                                    JobResult& result) {
                result.notes.push_back("parse error: " + message);
              })) {
            release_member(job);
          }
          return;
        } catch (const std::exception& error) {
          fail_member(job, member, error.what());
          return;
        }
        if (solved.status != smtlib::CheckSatStatus::kUnknown) {
          if (claim_and_finish(job, member_index, [&](JobResult& result) {
                result.status = solved.status;
                result.variable = solved.variable;
                result.model_value = solved.model_value;
                result.notes = solved.notes;
                result.winner = member.name;
                record_winner(member.name);
              })) {
            return;
          }
          break;
        }
        // kUnknown from a complete run: loop for a reseeded attempt.
        if (aborted()) break;
      }
    }

    finish_as_loser(job, token);
  }

  /// Runs one fused batch: `tasks` all share the same batchable portfolio
  /// member and structure key. Every job keeps its own counter-seeded RNG
  /// stream and its own cancel token inside the shared kernel invocation, so
  /// each result is bit-identical to the solo run — fusion only changes how
  /// many jobs one pass over the CSR serves. Jobs whose decoded model fails
  /// verification fall back to the ordinary reseeded attempt loop; every
  /// task's race bookkeeping is settled exactly once no matter which path
  /// (pre-cancelled, build failure, kernel throw, win, loss) it takes.
  void run_fused(std::vector<Task> tasks, std::size_t member_index) {
    const PortfolioMember& member = options.portfolio[member_index];
    stats_batch_invocations.fetch_add(1, std::memory_order_relaxed);
    stats_jobs_fused.fetch_add(tasks.size(), std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::counter("service.batch.invocations").add();
      telemetry::counter("service.batch.fused_jobs").add(tasks.size());
    }

    // Per-job admission: the same bookkeeping a solo member does before its
    // first attempt. Jobs that drop out here (already cancelled, build
    // failed) are settled immediately and leave the batch.
    struct FusedJob {
      std::shared_ptr<Job> job;
      CancelToken token;
      const strqubo::PreparedConstraint* prepared = nullptr;
    };
    std::vector<FusedJob> runnable;
    runnable.reserve(tasks.size());
    for (Task& task : tasks) {
      Job& job = *task.job;
      CancelToken token = job.cancel.token();
      mark_started(job);
      if (token.cancelled()) {
        finish_precancelled(job);
        continue;
      }
      job.attempts.fetch_add(1, std::memory_order_relaxed);
      const strqubo::PreparedConstraint* prepared = prepare_job(job);
      if (prepared == nullptr) {
        if (!claim_and_finish(job, kNoWinner, [&](JobResult& result) {
              result.notes.push_back("model build failed: " +
                                     job.build_error);
            })) {
          release_member(job);
        }
        continue;
      }
      if (try_warm_start(job, member, *prepared)) continue;
      if (job.decided.load(std::memory_order_acquire)) {
        finish_as_loser(job, token);
        continue;
      }
      runnable.push_back(FusedJob{task.job, std::move(token), prepared});
    }
    if (runnable.empty()) return;

    // One kernel invocation over the shared adjacency. All runnable jobs
    // share a structure key, so every prepared model is structurally
    // identical; the first one's CSR stands in for all (each job pins its
    // own shared_ptr, so lifetime is safe either way). Seeds replicate the
    // solo path's attempt-0 stream exactly.
    anneal::SimulatedAnnealerParams params = *member.batched;
    std::vector<anneal::BatchedGroup> groups;
    groups.reserve(runnable.size());
    for (const FusedJob& fused : runnable) {
      anneal::BatchedGroup group;
      group.seed = mix_seed(
          mix_seed(fused.job->options.seed, member_index + 1), 1);
      group.num_replicas = params.num_reads;
      group.cancel = fused.token;
      groups.push_back(std::move(group));
    }
    std::vector<anneal::SampleSet> sets;
    try {
      sets = anneal::sample_batched(runnable.front().prepared->adjacency,
                                    params, groups);
    } catch (const std::exception& error) {
      // The kernel serves every fused job, so its failure is every fused
      // job's member failure — same drop-out path as a solo sampler throw.
      for (const FusedJob& fused : runnable) {
        fail_member(*fused.job, member, error.what());
      }
      return;
    }

    // De-multiplex: each job's group decodes and verifies independently,
    // exactly as the solo path would after sampler->sample().
    for (std::size_t g = 0; g < runnable.size(); ++g) {
      Job& job = *runnable[g].job;
      const CancelToken& token = runnable[g].token;
      if (job.decided.load(std::memory_order_acquire)) {
        finish_as_loser(job, token);
        continue;
      }
      strqubo::SolveResult solved;
      try {
        solved = strqubo::decode_and_verify(
            std::get<strqubo::Constraint>(job.payload), sets[g]);
      } catch (const std::exception& error) {
        fail_member(job, member, error.what());
        continue;
      }
      if (solved.satisfied) {
        if (!claim_and_finish(job, member_index, [&](JobResult& result) {
              result.status = smtlib::CheckSatStatus::kSat;
              result.text = solved.text;
              result.position = solved.position;
              result.winner = member.name;
              record_winner(member.name);
            })) {
          finish_as_loser(job, token);
        }
        continue;
      }
      // Unverified with the token cancelled: the deadline interrupted the
      // kernel mid-solve, exactly the solo path's aborted()-after-solve
      // case. Must be marked here — with max_verify_retries == 0 the
      // fallback loop below would never poll.
      if (token.cancelled()) {
        job.deadline_cut_short.store(true, std::memory_order_relaxed);
        finish_as_loser(job, token);
        continue;
      }
      // Unverified: fall back to the reseeded solo loop from attempt 1.
      run_member_attempts(job, member_index, token, 1);
    }
  }

  /// A member's sampler threw (e.g. no embedding onto the target topology):
  /// record the diagnostic and drop the member out of the race. Siblings
  /// keep racing; if none wins, the error notes ride the kUnknown verdict.
  /// Nothing may propagate out of a worker thread — an escaped exception
  /// would std::terminate the whole service.
  void fail_member(Job& job, const PortfolioMember& member,
                   const std::string& message) {
    {
      std::lock_guard<std::mutex> lock(job.error_notes_mutex);
      job.error_notes.push_back("portfolio member '" + member.name +
                                "' failed: " + message);
    }
    stats_member_errors.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::counter("service.member.errors").add();
    }
    finish_if_last(job);
  }

  /// Builds (or fetches from the cache) the job's PreparedConstraint.
  /// Returns nullptr when the build threw; job.build_error has the message.
  const strqubo::PreparedConstraint* prepare_job(Job& job) {
    std::call_once(job.build_once, [&] {
      const auto& constraint = std::get<strqubo::Constraint>(job.payload);
      const std::string& key = job.structure_key;
      {
        std::lock_guard<std::mutex> lock(cache_mutex);
        auto it = cache.find(key);
        if (it != cache.end()) {
          job.prepared = it->second->prepared;
          cache_lru.splice(cache_lru.begin(), cache_lru, it->second);
          stats_cache_hits.fetch_add(1, std::memory_order_relaxed);
          if (telemetry::enabled()) {
            telemetry::counter("service.model_cache.hits").add();
          }
          return;
        }
      }
      stats_cache_misses.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        telemetry::counter("service.model_cache.misses").add();
      }
      try {
        // Build outside the cache lock: builds dominate and would serialise
        // every worker otherwise. Two threads may race the same key; the
        // loser's insert is a no-op and its build is wasted once.
        auto prepared = std::make_shared<const strqubo::PreparedConstraint>(
            strqubo::prepare(constraint, options.build));
        std::lock_guard<std::mutex> lock(cache_mutex);
        auto it = cache.find(key);
        if (it == cache.end()) {
          const std::size_t entry_bytes = prepared_bytes(key, *prepared);
          cache_bytes += entry_bytes;
          cache_lru.push_front(CacheEntry{key, prepared, entry_bytes});
          cache.emplace(key, cache_lru.begin());
          while (cache.size() > options.model_cache_capacity) {
            cache_bytes -= cache_lru.back().bytes;
            cache.erase(cache_lru.back().key);
            cache_lru.pop_back();
          }
          if (telemetry::enabled()) {
            telemetry::gauge("service.model_cache.entries")
                .set(static_cast<double>(cache_lru.size()));
            telemetry::gauge("service.model_cache.bytes",
                             telemetry::Unit::kBytes)
                .set(static_cast<double>(cache_bytes));
          }
        }
        job.prepared = std::move(prepared);
      } catch (const std::exception& error) {
        job.build_error = error.what();
      }
    });
    return job.prepared.get();
  }

  /// Atomically claims the verdict for the calling member. On success runs
  /// `fill` on a fresh JobResult, cancels the siblings, fulfils the promise
  /// and records completion telemetry. `winner_member` is the portfolio
  /// index whose solve produced the verdict (kNoWinner for member-neutral
  /// claims: build failures, parse errors, warm starts) — it feeds the
  /// router's ledger in complete(). Returns false when a sibling already
  /// claimed (the caller simply finishes as a loser).
  template <typename Fill>
  bool claim_and_finish(Job& job, std::size_t winner_member, Fill&& fill) {
    bool expected = false;
    if (!job.decided.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      return false;
    }
    job.winner_member.store(winner_member, std::memory_order_relaxed);
    // Single-member portfolios with nothing armed on the token have nobody
    // to signal: skip the cancel write so the no-race configuration pays no
    // race scaffolding (bench/service_bench.cpp measures this path).
    if (options.portfolio.size() > 1 || job.has_deadline ||
        job.external_cancel) {
      job.cancel.cancel();
    }
    JobResult result;
    fill(result);
    complete(job, std::move(result));
    release_member(job);
    return true;
  }

  /// Resolves a job whose member tasks will never run (shutdown races).
  /// Idempotent across members: only the first call claims the verdict.
  void resolve_unrun(Job& job, const std::string& note) {
    bool expected = false;
    if (!job.decided.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      return;
    }
    JobResult result;
    result.notes.push_back(note);
    complete(job, std::move(result));
  }

  /// A routed dispatch that failed to decide (member lost every attempt,
  /// threw, or was pre-empted by shutdown of its lane) gets one fallback:
  /// the remaining portfolio races exactly as it would have without the
  /// router — same per-(member, attempt) seeds — so routing can delay but
  /// never change a verdict. Returns true when the fallback race was
  /// enqueued (the job stays live); false hands the verdict back to the
  /// normal last-loser path. Only the finisher that observed the countdown
  /// hit zero calls this, so the exchange is uncontended in practice.
  bool maybe_fallback(Job& job) {
    if (!job.routed) return false;
    if (job.decided.load(std::memory_order_acquire)) return false;
    // Deadline or external cancellation: no point starting new members.
    if (job.cancel.token().cancelled()) return false;
    if (options.portfolio.size() < 2) return false;
    if (job.fell_back.exchange(true, std::memory_order_acq_rel)) return false;

    // Ledger first (fallback = the routed member failed this bucket), and
    // the disposition before the tasks so a fast fallback winner's
    // complete() observes it (ordered by the queue mutex).
    job.route_disposition = "routed+fallback";
    if (job.router) {
      job.router->record_fallback(job.route_bucket, job.routed_member);
    }
    stats_route_fallbacks.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::counter("service.route.fallbacks").add();
    }

    std::shared_ptr<Job> self = job.shared_from_this();
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      if (stopping) return false;  // Shutdown: emit the kUnknown verdict.
      job.members_left.store(options.portfolio.size() - 1,
                             std::memory_order_relaxed);
      for (std::size_t m = 0; m < options.portfolio.size(); ++m) {
        if (m == job.routed_member) continue;
        queue.push_back(Task{self, m});
      }
      publish_queue_depth_locked();
    }
    queue_cv.notify_all();
    return true;
  }

  /// Loser bookkeeping: the last member to finish an undecided job owns the
  /// kUnknown (or timeout) verdict.
  void finish_if_last(Job& job) {
    if (job.members_left.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      return;
    }
    if (maybe_fallback(job)) return;
    bool expected = false;
    if (!job.decided.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      return;
    }
    JobResult result;
    // timed_out only when the deadline actually interrupted work — not when
    // every member ran its full attempt budget unverified and the deadline
    // merely expired concurrently with the bookkeeping.
    result.timed_out =
        job.has_deadline &&
        job.deadline_cut_short.load(std::memory_order_relaxed);
    if (result.timed_out) {
      result.notes.push_back("deadline expired");
      stats_timeouts.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        telemetry::counter("service.job.timeouts").add();
      }
    } else {
      result.notes.push_back("no portfolio member produced a verified model");
      job.exhausted.store(true, std::memory_order_relaxed);
    }
    {
      // The countdown hitting zero means every member finished, so all
      // appends happened-before this read; the lock keeps ASan/TSan happy
      // about a racing append from a member that failed after the claim.
      std::lock_guard<std::mutex> lock(job.error_notes_mutex);
      for (std::string& note : job.error_notes) {
        result.notes.push_back(std::move(note));
      }
    }
    complete(job, std::move(result));
  }

  /// Feeds this job's outcome back into its router ledger. Only genuine
  /// member-quality signals train the table: warm-start verdicts are
  /// member-independent, timeouts and cancellations say nothing about who
  /// would have won, and build/parse failures are deterministic for every
  /// member. A failed routed dispatch recorded its own fallback loss in
  /// maybe_fallback, so the no-winner branch here only debits full races.
  void record_route_outcome(Job& job) {
    if (!job.router) return;
    if (job.warm_won.load(std::memory_order_relaxed)) return;
    if (job.deadline_cut_short.load(std::memory_order_relaxed)) return;
    const std::size_t winner = job.winner_member.load(std::memory_order_relaxed);
    if (winner != kNoWinner) {
      // Full races debit every beaten sibling; routed hits and fallback
      // winners ran alone (or after the fallback loss already landed).
      job.router->record_win(job.route_bucket, winner,
                             /*was_race=*/!job.routed);
    } else if (!job.routed && job.exhausted.load(std::memory_order_relaxed)) {
      for (std::size_t m = 0; m < options.portfolio.size(); ++m) {
        job.router->record_loss(job.route_bucket, m);
      }
    }
  }

  /// Confirms one answer-cache hit against this job's own payload and, on
  /// success, resolves the job on the submitting thread: no member task is
  /// queued, winner is "answer-cache", attempts stay zero, and the
  /// pipeline/on_complete plumbing fires through the ordinary complete()
  /// path. Exactly ONE classical verification guards every served witness:
  /// verify_string / verify_position for constraint jobs, a compile of the
  /// job's ORIGINAL assertions plus per-constraint verify_string for
  /// script-sat hits. Script-unsat hits are served on key identity alone —
  /// the full-string canonical key proves the hit is an alpha-variant of
  /// the formula whose cold unsat was exact/certified. Returns false (job
  /// untouched, cold solve proceeds) on any mismatch, so a stale or
  /// poisoned entry costs one cheap check, never a wrong verdict.
  bool serve_cached(Job& job, const canon::CachedAnswer& answer) {
    JobResult result;
    if (const auto* constraint =
            std::get_if<strqubo::Constraint>(&job.payload)) {
      // Constraint jobs only ever resolve kSat on the cold path.
      if (answer.status != smtlib::CheckSatStatus::kSat) return false;
      if (const auto* includes = std::get_if<strqubo::Includes>(constraint)) {
        if (!strqubo::verify_position(*includes, answer.position)) {
          return false;
        }
        result.position = answer.position;
      } else {
        if (!answer.text.has_value() ||
            !strqubo::verify_string(*constraint, *answer.text)) {
          return false;
        }
        result.text = answer.text;
      }
      result.status = smtlib::CheckSatStatus::kSat;
    } else {
      if (!job.canonical) return false;
      if (answer.status == smtlib::CheckSatStatus::kUnsat) {
        result.status = smtlib::CheckSatStatus::kUnsat;
        split_notes(answer.note, result.notes);
      } else {
        // Script sat: compile the hit job's original assertions and check
        // the remapped witness against every compiled constraint. Scripts
        // the conjunctive compiler cannot express (boolean structure,
        // position-producing atoms) fall through to a cold solve.
        const smtlib::CompiledQuery compiled = smtlib::compile_assertions(
            job.canonical->assertions, job.canonical->declared);
        if (!compiled.unsupported.empty() ||
            !compiled.falsified_ground.empty()) {
          return false;
        }
        const std::string variable =
            answer.variable.empty()
                ? std::string()
                : canon::original_name(*job.canonical, answer.variable);
        if (variable != compiled.variable) return false;
        const std::string witness = answer.text.value_or(std::string());
        for (const strqubo::Constraint& constraint : compiled.constraints) {
          if (!strqubo::verify_string(constraint, witness)) return false;
        }
        result.status = smtlib::CheckSatStatus::kSat;
        result.variable = variable;
        result.model_value = witness;
      }
    }
    result.winner = "answer-cache";
    result.notes.insert(result.notes.begin(), "answer cache hit");
    result.answer_cache_hit = true;
    job.answer_cache_hit = true;
    job.decided.store(true, std::memory_order_release);
    // An adopted external CancelSource must still observe the verdict, as
    // claim_and_finish guarantees on the cold path.
    if (job.options.cancel) {
      job.cancel = *job.options.cancel;
      job.external_cancel = true;
      job.cancel.cancel();
    }
    stats_submitted.fetch_add(1, std::memory_order_relaxed);
    stats_answer_hits.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::counter("service.jobs.submitted").add();
      telemetry::counter("service.answer.hits").add();
    }
    complete(job, std::move(result));
    return true;
  }

  /// Checks one verified cold completion into the answer cache, exactly
  /// once per job: hits never re-insert, timeouts and kUnknown never
  /// qualify, and a script-sat witness is re-confirmed against the job's
  /// original assertions before it may enter the shared cache (so a tenant
  /// can never publish an unverified string). Script entries store the
  /// CANONICAL variable name; the hit side remaps it back through its own
  /// script's renaming.
  void maybe_insert_answer(Job& job, const JobResult& result) {
    if (!options.answer_cache || job.answer_key.empty()) return;
    if (job.answer_cache_hit || result.timed_out) return;
    if (result.status == smtlib::CheckSatStatus::kUnknown) return;
    canon::CachedAnswer answer;
    answer.status = result.status;
    if (std::holds_alternative<strqubo::Constraint>(job.payload)) {
      // Already classically verified by the winning member (first-
      // verified-SAT-wins); constraint jobs never resolve kUnsat.
      answer.text = result.text;
      answer.position = result.position;
    } else if (result.status == smtlib::CheckSatStatus::kSat) {
      if (!job.canonical) return;
      const smtlib::CompiledQuery compiled = smtlib::compile_assertions(
          job.canonical->assertions, job.canonical->declared);
      if (!compiled.unsupported.empty() || !compiled.falsified_ground.empty() ||
          compiled.variable != result.variable) {
        return;
      }
      for (const strqubo::Constraint& constraint : compiled.constraints) {
        if (!strqubo::verify_string(constraint, result.model_value)) return;
      }
      answer.text = result.model_value;
      if (!result.variable.empty()) {
        answer.variable = canon::canonical_name(*job.canonical,
                                                result.variable);
        if (answer.variable.empty()) return;
      }
    } else {
      // Script unsat: exact/certified on the cold path (both engines);
      // the notes carry the explanation a warmed reply reproduces.
      answer.note = join_notes(result.notes);
    }
    options.answer_cache->insert(job.answer_key, std::move(answer));
  }

  void complete(Job& job, JobResult result) {
    result.tag = job.options.tag;
    result.route = job.route_disposition;
    result.attempts = job.attempts.load(std::memory_order_relaxed);
    result.members_cancelled =
        job.cancelled_members.load(std::memory_order_relaxed);
    result.queue_seconds = job.queue_seconds.load(std::memory_order_relaxed);
    result.solve_seconds =
        std::chrono::duration<double>(SteadyClock::now() - job.enqueued)
            .count();
    record_route_outcome(job);
    // Check the verdict into the answer cache before the promise resolves:
    // a caller that resubmits an alpha-variant right after .get() must hit.
    maybe_insert_answer(job, result);
    stats_completed.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::counter("service.jobs.completed").add();
      telemetry::histogram("service.job.seconds", telemetry::Unit::kSeconds)
          .record(result.solve_seconds);
    }
    // The pipeline-chaining hook: runs on the completing worker with the
    // final result, before the promise resolves, so a chained next stage
    // is already enqueued by the time any waiter wakes.
    if (job.on_complete) job.on_complete(result);
    job.promise.set_value(std::move(result));
  }

  void release_member(Job& job) {
    job.members_left.fetch_sub(1, std::memory_order_acq_rel);
  }

  void record_member_cancelled(Job& job) {
    job.cancelled_members.fetch_add(1, std::memory_order_relaxed);
    stats_cancelled.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::counter("service.member.cancelled").add();
    }
  }

  void record_winner(const std::string& name) {
    if (telemetry::enabled()) {
      telemetry::counter("service.winner." + name).add();
    }
  }

  void publish_queue_depth_locked() {
    if (telemetry::enabled()) {
      telemetry::gauge("service.queue.depth")
          .set(static_cast<double>(queue.size()));
    }
  }

  ServiceOptions options;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<Task> queue;
  bool stopping = false;
  std::vector<std::thread> workers;

  struct CacheEntry {
    std::string key;
    std::shared_ptr<const strqubo::PreparedConstraint> prepared;
    std::size_t bytes = 0;
  };
  std::mutex cache_mutex;
  std::list<CacheEntry> cache_lru;  // Front = most recently used.
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache;
  std::size_t cache_bytes = 0;  // Guarded by cache_mutex.

  std::atomic<std::uint64_t> stats_submitted{0};
  std::atomic<std::uint64_t> stats_completed{0};
  std::atomic<std::uint64_t> stats_timeouts{0};
  std::atomic<std::uint64_t> stats_cancelled{0};
  std::atomic<std::uint64_t> stats_member_errors{0};
  std::atomic<std::uint64_t> stats_retries{0};
  std::atomic<std::uint64_t> stats_cache_hits{0};
  std::atomic<std::uint64_t> stats_cache_misses{0};
  std::atomic<std::uint64_t> stats_batch_invocations{0};
  std::atomic<std::uint64_t> stats_jobs_fused{0};
  std::atomic<std::uint64_t> stats_warm_starts{0};
  std::atomic<std::uint64_t> stats_warm_hits{0};
  std::atomic<std::uint64_t> stats_routed{0};
  std::atomic<std::uint64_t> stats_route_fallbacks{0};
  std::atomic<std::uint64_t> stats_pipelines{0};
  std::atomic<std::uint64_t> stats_chain_warm_starts{0};
  std::atomic<std::uint64_t> stats_answer_hits{0};
  std::atomic<std::uint64_t> stats_answer_misses{0};
  std::atomic<std::uint64_t> stats_answer_fallbacks{0};
};

SolveService::SolveService(ServiceOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SolveService::~SolveService() = default;

std::future<JobResult> SolveService::submit(strqubo::Constraint constraint,
                                            JobOptions options) {
  return impl_->enqueue(std::move(constraint), options);
}

std::future<JobResult> SolveService::submit_script(std::string script,
                                                   JobOptions options) {
  return impl_->enqueue(std::move(script), options);
}

std::vector<JobResult> SolveService::solve_constraints(
    const std::vector<strqubo::Constraint>& constraints, JobOptions options) {
  std::vector<std::future<JobResult>> futures;
  futures.reserve(constraints.size());
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    JobOptions job = options;
    job.seed = mix_seed(options.seed, i);
    if (job.tag == 0) job.tag = i;
    futures.push_back(submit(constraints[i], job));
  }
  std::vector<JobResult> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

std::vector<JobResult> SolveService::solve_scripts(
    const std::vector<std::string>& scripts, JobOptions options) {
  std::vector<std::future<JobResult>> futures;
  futures.reserve(scripts.size());
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    JobOptions job = options;
    job.seed = mix_seed(options.seed, i);
    if (job.tag == 0) job.tag = i;
    futures.push_back(submit_script(scripts[i], job));
  }
  std::vector<JobResult> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

std::future<PipelineResult> SolveService::submit_pipeline(
    PipelineJob pipeline) {
  return impl_->submit_pipeline(std::move(pipeline));
}

std::size_t SolveService::num_workers() const noexcept {
  return impl_->workers.size();
}

std::size_t SolveService::portfolio_size() const noexcept {
  return impl_->options.portfolio.size();
}

std::vector<std::string> SolveService::portfolio_names() const {
  std::vector<std::string> names;
  names.reserve(impl_->options.portfolio.size());
  for (const PortfolioMember& member : impl_->options.portfolio) {
    names.push_back(member.name);
  }
  return names;
}

SolveService::Stats SolveService::stats() const noexcept {
  Stats stats;
  stats.jobs_submitted = impl_->stats_submitted.load(std::memory_order_relaxed);
  stats.jobs_completed = impl_->stats_completed.load(std::memory_order_relaxed);
  stats.jobs_timed_out = impl_->stats_timeouts.load(std::memory_order_relaxed);
  stats.members_cancelled =
      impl_->stats_cancelled.load(std::memory_order_relaxed);
  stats.member_errors =
      impl_->stats_member_errors.load(std::memory_order_relaxed);
  stats.verify_retries = impl_->stats_retries.load(std::memory_order_relaxed);
  stats.model_cache_hits =
      impl_->stats_cache_hits.load(std::memory_order_relaxed);
  stats.model_cache_misses =
      impl_->stats_cache_misses.load(std::memory_order_relaxed);
  stats.batch_invocations =
      impl_->stats_batch_invocations.load(std::memory_order_relaxed);
  stats.jobs_fused = impl_->stats_jobs_fused.load(std::memory_order_relaxed);
  stats.warm_starts = impl_->stats_warm_starts.load(std::memory_order_relaxed);
  stats.warm_hits = impl_->stats_warm_hits.load(std::memory_order_relaxed);
  stats.jobs_routed = impl_->stats_routed.load(std::memory_order_relaxed);
  stats.route_fallbacks =
      impl_->stats_route_fallbacks.load(std::memory_order_relaxed);
  stats.pipelines = impl_->stats_pipelines.load(std::memory_order_relaxed);
  stats.chain_warm_starts =
      impl_->stats_chain_warm_starts.load(std::memory_order_relaxed);
  stats.answer_hits = impl_->stats_answer_hits.load(std::memory_order_relaxed);
  stats.answer_misses =
      impl_->stats_answer_misses.load(std::memory_order_relaxed);
  stats.answer_fallbacks =
      impl_->stats_answer_fallbacks.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->cache_mutex);
    stats.model_cache_entries = impl_->cache_lru.size();
    stats.model_cache_bytes = impl_->cache_bytes;
  }
  return stats;
}

}  // namespace qsmt::service

#include "telemetry/telemetry.hpp"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string_view>

#include "telemetry/sink.hpp"

namespace qsmt::telemetry {

namespace {

std::atomic<int> g_mode{-1};  // -1 = not yet initialised from the env.

void report_at_exit() {
  const auto m = static_cast<Mode>(g_mode.load(std::memory_order_acquire));
  if (m == Mode::kOff) return;
  if (m == Mode::kTrace) {
    const char* path = std::getenv("QSMT_TRACE_FILE");
    write_trace_file(path != nullptr && *path != '\0' ? path
                                                      : "qsmt_trace.json");
  }
  const Snapshot snapshot = registry().snapshot();
  if (snapshot.empty()) return;
  std::cerr << "=== qsmt telemetry (" << mode_name(m) << ") ===\n";
  TableSink(std::cerr).write(snapshot);
}

Mode parse_mode_env() {
  const char* env = std::getenv("QSMT_TELEMETRY");
  if (env == nullptr) return Mode::kOff;
  const std::string_view value(env);
  if (value.empty() || value == "off" || value == "0") return Mode::kOff;
  if (value == "summary") return Mode::kSummary;
  if (value == "trace") return Mode::kTrace;
  std::cerr << "qsmt: unknown QSMT_TELEMETRY value '" << value
            << "' (want off|summary|trace); telemetry stays off\n";
  return Mode::kOff;
}

void init_mode_once() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    const Mode m = parse_mode_env();
    g_mode.store(static_cast<int>(m), std::memory_order_release);
    registry().set_enabled(m != Mode::kOff);
    if (m != Mode::kOff) std::atexit(report_at_exit);
  });
}

}  // namespace

const char* mode_name(Mode mode) noexcept {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kSummary:
      return "summary";
    case Mode::kTrace:
      return "trace";
  }
  return "off";
}

Mode mode() noexcept {
  const int m = g_mode.load(std::memory_order_acquire);
  if (m >= 0) return static_cast<Mode>(m);
  init_mode_once();
  return static_cast<Mode>(g_mode.load(std::memory_order_acquire));
}

void set_mode(Mode m) noexcept {
  init_mode_once();
  g_mode.store(static_cast<int>(m), std::memory_order_release);
  registry().set_enabled(m != Mode::kOff);
}

Registry& registry() {
  // Leaked on purpose: instrumentation may fire from worker threads and
  // atexit handlers after static destructors would have run. Starts
  // disabled; the mode initialisation (or set_mode) opens the gate, so a
  // record racing ahead of the first mode() read is dropped, never leaked.
  static auto* instance = [] {
    auto* r = new Registry();
    r->set_enabled(false);
    return r;
  }();
  return *instance;
}

Counter counter(std::string_view name, Unit unit) {
  mode();  // Ensure the enable gate reflects QSMT_TELEMETRY.
  return registry().counter(name, unit);
}

Gauge gauge(std::string_view name, Unit unit) {
  mode();
  return registry().gauge(name, unit);
}

Histogram histogram(std::string_view name, Unit unit) {
  mode();
  return registry().histogram(name, unit);
}

void report(std::ostream& out) { TableSink(out).write(registry().snapshot()); }

bool write_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "qsmt: cannot write trace file '" << path << "'\n";
    return false;
  }
  write_chrome_trace(out, trace_events());
  std::cerr << "qsmt: wrote Chrome trace to " << path
            << " (load in chrome://tracing or ui.perfetto.dev)\n";
  return true;
}

void reset() {
  registry().reset();
  clear_trace_events();
}

}  // namespace qsmt::telemetry

// Telemetry exporters: the TelemetrySink interface, a JSON-lines sink for
// machine consumption, a human-readable table sink for terminals, and the
// Chrome trace_event writer for span buffers.
#pragma once

#include <iosfwd>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

namespace qsmt::telemetry {

/// Consumes a metrics snapshot. Implementations decide formatting and
/// destination; all shipped sinks skip metrics that never recorded data,
/// so a fully idle registry emits nothing.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void write(const Snapshot& snapshot) = 0;
};

/// One JSON object per metric per line, e.g.
///   {"kind":"counter","name":"engine.verdict.sat","value":3}
///   {"kind":"histogram","name":"anneal.read.flips","count":64,...}
class JsonLinesSink final : public TelemetrySink {
 public:
  /// `out` must outlive the sink.
  explicit JsonLinesSink(std::ostream& out) : out_(&out) {}
  void write(const Snapshot& snapshot) override;

 private:
  std::ostream* out_;
};

/// Aligned, unit-annotated table grouped by metric kind — what
/// QSMT_TELEMETRY=summary prints on process exit.
class TableSink final : public TelemetrySink {
 public:
  /// `out` must outlive the sink.
  explicit TableSink(std::ostream& out) : out_(&out) {}
  void write(const Snapshot& snapshot) override;

 private:
  std::ostream* out_;
};

/// Writes a Chrome trace_event JSON document ({"traceEvents": [...]}) that
/// chrome://tracing and Perfetto load directly.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events);

}  // namespace qsmt::telemetry

// Metrics registry: counters, gauges, and histograms over lock-free
// per-thread shards.
//
// The solve path records metrics from OpenMP worker threads at per-read /
// per-build frequency, so the write path must not contend: every thread
// gets its own shard (a flat slot array per metric kind) and writes it with
// relaxed atomics — single writer per shard, so stores never need CAS.
// snapshot() merges all shards under the registry mutex: counters and
// histogram cells sum, gauges resolve by a global set-sequence
// (last-write-wins across threads).
//
// Recording is gated on enabled(): one relaxed atomic load and a branch
// when the registry is disabled, which is what keeps the instrumented hot
// paths within noise of uninstrumented builds (docs/telemetry.md has the
// measured number). The process-global registry (telemetry.hpp) follows
// QSMT_TELEMETRY; benches create their own always-on instances to use the
// same aggregation machinery for measurement bookkeeping.
//
// Capacity is fixed per kind (kMaxCounters/kMaxGauges/kMaxHistograms).
// Registering past capacity returns an inert handle that drops writes —
// telemetry must never take the process down.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qsmt::telemetry {

/// Display unit of a metric (purely informational; sinks print it).
enum class Unit { kNone, kCount, kSeconds, kBytes, kRatio };

const char* unit_name(Unit unit) noexcept;

inline constexpr std::size_t kMaxCounters = 256;
inline constexpr std::size_t kMaxGauges = 128;
inline constexpr std::size_t kMaxHistograms = 128;
/// Power-of-two buckets: bucket 0 holds v <= 0, bucket b >= 1 holds
/// v in [2^(b-33), 2^(b-32)) — covering ~2.3e-10 .. 2^31 with the ends
/// clamped. Wide enough for seconds, counts, and energies alike.
inline constexpr std::size_t kHistogramBuckets = 64;
inline constexpr std::uint32_t kInvalidMetric = 0xffffffffu;

/// Bucket index for `v` (see kHistogramBuckets). NaN and v <= 0 map to 0.
std::size_t histogram_bucket(double v) noexcept;
/// Inclusive lower edge of a bucket (0 for bucket 0).
double histogram_bucket_lower(std::size_t bucket) noexcept;

struct CounterStat {
  std::string name;
  Unit unit = Unit::kCount;
  std::uint64_t value = 0;
};

struct GaugeStat {
  std::string name;
  Unit unit = Unit::kNone;
  double value = 0.0;
  bool set = false;  ///< False when no thread ever wrote the gauge.
};

struct HistogramStat {
  std::string name;
  Unit unit = Unit::kNone;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Meaningful only when count > 0.
  double max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const noexcept;
  /// Bucket-estimated quantile (q in [0, 1]); exact min/max at the ends,
  /// geometric bucket midpoints in between, clamped to [min, max].
  double quantile(double q) const noexcept;
};

/// Point-in-time merged view of a registry. Metrics appear in registration
/// order, including ones that never recorded a value.
struct Snapshot {
  std::vector<CounterStat> counters;
  std::vector<GaugeStat> gauges;
  std::vector<HistogramStat> histograms;

  const CounterStat* counter(std::string_view name) const noexcept;
  const GaugeStat* gauge(std::string_view name) const noexcept;
  const HistogramStat* histogram(std::string_view name) const noexcept;
  /// True when no metric holds any recorded data (all counters zero, no
  /// gauge set, all histograms empty).
  bool empty() const noexcept;
};

class Registry;

/// Monotonic event counter. Copyable value handle; add() is thread-safe.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta = 1) const noexcept;
  bool valid() const noexcept { return registry_ != nullptr; }

 private:
  friend class Registry;
  Counter(Registry* registry, std::uint32_t index) noexcept
      : registry_(registry), index_(index) {}
  Registry* registry_ = nullptr;
  std::uint32_t index_ = kInvalidMetric;
};

/// Last-write-wins scalar (across all threads, by global set order).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept;
  bool valid() const noexcept { return registry_ != nullptr; }

 private:
  friend class Registry;
  Gauge(Registry* registry, std::uint32_t index) noexcept
      : registry_(registry), index_(index) {}
  Registry* registry_ = nullptr;
  std::uint32_t index_ = kInvalidMetric;
};

/// Distribution: count/sum/min/max plus power-of-two buckets.
class Histogram {
 public:
  Histogram() = default;
  void record(double value) const noexcept;
  bool valid() const noexcept { return registry_ != nullptr; }

 private:
  friend class Registry;
  Histogram(Registry* registry, std::uint32_t index) noexcept
      : registry_(registry), index_(index) {}
  Registry* registry_ = nullptr;
  std::uint32_t index_ = kInvalidMetric;
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Interns `name` (idempotent; the unit of the first registration wins)
  /// and returns a recording handle. Over-capacity registrations return an
  /// inert handle whose writes are dropped.
  Counter counter(std::string_view name, Unit unit = Unit::kCount);
  Gauge gauge(std::string_view name, Unit unit = Unit::kNone);
  Histogram histogram(std::string_view name, Unit unit = Unit::kNone);

  /// Merged view across every shard. Concurrent writers are not stopped;
  /// the result is a consistent-enough snapshot (each cell individually
  /// up-to-date at its read point).
  Snapshot snapshot() const;

  /// Zeroes every recorded value. Registered names survive.
  void reset();

  /// Recording gate: when false, every handle write is a single relaxed
  /// load + branch. Registration and snapshot work regardless.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Name + unit of a registered metric (public so the implementation's
  /// interning helper can build the tables).
  struct Info {
    std::string name;
    Unit unit;
  };

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard;

  /// The calling thread's shard of this registry, created on first use
  /// (per-thread pointer cache on the fast path, registry mutex on miss).
  Shard& local_shard();

  const std::uint64_t id_;  ///< Process-unique, keys the thread-local cache.
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> gauge_sequence_{0};

  mutable std::mutex mutex_;  ///< Guards the tables and the shard list.
  std::vector<Info> counter_info_;
  std::vector<Info> gauge_info_;
  std::vector<Info> histogram_info_;
  std::map<std::string, std::uint32_t, std::less<>> counter_ids_;
  std::map<std::string, std::uint32_t, std::less<>> gauge_ids_;
  std::map<std::string, std::uint32_t, std::less<>> histogram_ids_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qsmt::telemetry

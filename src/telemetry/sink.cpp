#include "telemetry/sink.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>

namespace qsmt::telemetry {

namespace {

// Metric names are dotted identifiers we mint ourselves, but escape anyway
// so a hostile name cannot break the JSON framing.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// JSON has no Infinity/NaN literals; clamp them to null.
void write_number(std::ostream& out, double v) {
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << "null";
  }
}

std::string format_value(double v, Unit unit) {
  std::ostringstream out;
  if (unit == Unit::kSeconds) {
    if (v < 1e-3) {
      out << std::fixed << std::setprecision(1) << v * 1e6 << " us";
    } else if (v < 1.0) {
      out << std::fixed << std::setprecision(2) << v * 1e3 << " ms";
    } else {
      out << std::fixed << std::setprecision(3) << v << " s";
    }
  } else {
    out << std::setprecision(6) << v;
  }
  return out.str();
}

}  // namespace

void JsonLinesSink::write(const Snapshot& snapshot) {
  std::ostream& out = *out_;
  out << std::setprecision(17);
  for (const auto& c : snapshot.counters) {
    if (c.value == 0) continue;
    out << "{\"kind\":\"counter\",\"name\":\"" << json_escape(c.name)
        << "\",\"unit\":\"" << unit_name(c.unit) << "\",\"value\":" << c.value
        << "}\n";
  }
  for (const auto& g : snapshot.gauges) {
    if (!g.set) continue;
    out << "{\"kind\":\"gauge\",\"name\":\"" << json_escape(g.name)
        << "\",\"unit\":\"" << unit_name(g.unit) << "\",\"value\":";
    write_number(out, g.value);
    out << "}\n";
  }
  for (const auto& h : snapshot.histograms) {
    if (h.count == 0) continue;
    out << "{\"kind\":\"histogram\",\"name\":\"" << json_escape(h.name)
        << "\",\"unit\":\"" << unit_name(h.unit)
        << "\",\"count\":" << h.count << ",\"sum\":";
    write_number(out, h.sum);
    out << ",\"min\":";
    write_number(out, h.min);
    out << ",\"max\":";
    write_number(out, h.max);
    out << ",\"mean\":";
    write_number(out, h.mean());
    out << ",\"p50\":";
    write_number(out, h.quantile(0.5));
    out << ",\"p99\":";
    write_number(out, h.quantile(0.99));
    out << "}\n";
  }
}

void TableSink::write(const Snapshot& snapshot) {
  std::ostream& out = *out_;

  std::size_t width = 0;
  for (const auto& c : snapshot.counters) {
    if (c.value != 0) width = std::max(width, c.name.size());
  }
  for (const auto& g : snapshot.gauges) {
    if (g.set) width = std::max(width, g.name.size());
  }
  for (const auto& h : snapshot.histograms) {
    if (h.count != 0) width = std::max(width, h.name.size());
  }
  if (width == 0) return;  // Nothing recorded: emit nothing.

  bool header = false;
  for (const auto& c : snapshot.counters) {
    if (c.value == 0) continue;
    if (!header) {
      out << "counters:\n";
      header = true;
    }
    out << "  " << std::left << std::setw(static_cast<int>(width)) << c.name
        << "  " << c.value << '\n';
  }
  header = false;
  for (const auto& g : snapshot.gauges) {
    if (!g.set) continue;
    if (!header) {
      out << "gauges:\n";
      header = true;
    }
    out << "  " << std::left << std::setw(static_cast<int>(width)) << g.name
        << "  " << format_value(g.value, g.unit) << '\n';
  }
  header = false;
  for (const auto& h : snapshot.histograms) {
    if (h.count == 0) continue;
    if (!header) {
      out << "histograms:\n";
      out << "  " << std::left << std::setw(static_cast<int>(width)) << ""
          << "  " << std::right << std::setw(9) << "count" << "  "
          << std::setw(10) << "mean" << "  " << std::setw(10) << "min"
          << "  " << std::setw(10) << "p50" << "  " << std::setw(10) << "max"
          << '\n';
      header = true;
    }
    out << "  " << std::left << std::setw(static_cast<int>(width)) << h.name
        << "  " << std::right << std::setw(9) << h.count << "  "
        << std::setw(10) << format_value(h.mean(), h.unit) << "  "
        << std::setw(10) << format_value(h.min, h.unit) << "  "
        << std::setw(10) << format_value(h.quantile(0.5), h.unit) << "  "
        << std::setw(10) << format_value(h.max, h.unit) << '\n';
  }
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events) {
  out << std::setprecision(17);
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out << ',';
    out << "\n{\"name\":\"" << json_escape(e.name)
        << "\",\"cat\":\"qsmt\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
        << ",\"ts\":";
    write_number(out, e.ts_us);
    out << ",\"dur\":";
    write_number(out, e.dur_us);
    if (!e.args.empty()) {
      out << ",\"args\":{";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) out << ',';
        out << '"' << json_escape(e.args[a].first) << "\":";
        write_number(out, e.args[a].second);
      }
      out << '}';
    }
    out << '}';
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace qsmt::telemetry

#include "telemetry/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qsmt::telemetry {

namespace {

// Thread-local cache of (registry id -> shard) resolutions. Registry ids
// are process-unique and never reused, so a stale entry for a destroyed
// registry can never match again (the dangling pointer is never followed).
struct ShardRef {
  std::uint64_t registry_id;
  void* shard;
};
thread_local std::vector<ShardRef> t_shard_cache;

std::atomic<std::uint64_t> g_next_registry_id{1};

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

const char* unit_name(Unit unit) noexcept {
  switch (unit) {
    case Unit::kNone:
      return "";
    case Unit::kCount:
      return "count";
    case Unit::kSeconds:
      return "s";
    case Unit::kBytes:
      return "B";
    case Unit::kRatio:
      return "ratio";
  }
  return "";
}

std::size_t histogram_bucket(double v) noexcept {
  if (!(v > 0.0)) return 0;  // Also catches NaN.
  const int exponent = std::ilogb(v);  // floor(log2 v) for finite v > 0.
  const long bucket = static_cast<long>(exponent) + 33;
  return static_cast<std::size_t>(
      std::clamp(bucket, 1L, static_cast<long>(kHistogramBuckets) - 1));
}

double histogram_bucket_lower(std::size_t bucket) noexcept {
  if (bucket == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(bucket) - 33);
}

double HistogramStat::mean() const noexcept {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double HistogramStat::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= rank) {
      // Geometric midpoint of the bucket, clamped to the observed range.
      const double lower = histogram_bucket_lower(b);
      const double upper = b + 1 < kHistogramBuckets
                               ? histogram_bucket_lower(b + 1)
                               : max;
      const double mid = lower > 0.0 && upper > 0.0
                             ? std::sqrt(lower * upper)
                             : upper * 0.5;
      return std::clamp(mid, min, max);
    }
  }
  return max;
}

namespace {

template <typename Stats>
const typename Stats::value_type* find_stat(const Stats& stats,
                                            std::string_view name) noexcept {
  for (const auto& stat : stats) {
    if (stat.name == name) return &stat;
  }
  return nullptr;
}

}  // namespace

const CounterStat* Snapshot::counter(std::string_view name) const noexcept {
  return find_stat(counters, name);
}

const GaugeStat* Snapshot::gauge(std::string_view name) const noexcept {
  return find_stat(gauges, name);
}

const HistogramStat* Snapshot::histogram(std::string_view name) const noexcept {
  return find_stat(histograms, name);
}

bool Snapshot::empty() const noexcept {
  for (const auto& c : counters) {
    if (c.value != 0) return false;
  }
  for (const auto& g : gauges) {
    if (g.set) return false;
  }
  for (const auto& h : histograms) {
    if (h.count != 0) return false;
  }
  return true;
}

// One thread's slice of every metric. Single writer (the owning thread);
// snapshot() reads concurrently, so cells are relaxed atomics — the writer
// uses load+store rather than RMW, which is safe precisely because no other
// thread ever writes the cell.
struct Registry::Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};

  struct GaugeCell {
    std::atomic<std::uint64_t> sequence{0};  ///< 0 = never set.
    std::atomic<double> value{0.0};
  };
  std::array<GaugeCell, kMaxGauges> gauges{};

  struct HistCell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{kInf};
    std::atomic<double> max{-kInf};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<HistCell, kMaxHistograms> histograms{};

  void reset() {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : gauges) {
      g.sequence.store(0, std::memory_order_relaxed);
      g.value.store(0.0, std::memory_order_relaxed);
    }
    for (auto& h : histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(kInf, std::memory_order_relaxed);
      h.max.store(-kInf, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
};

Registry::Registry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry::Shard& Registry::local_shard() {
  for (const ShardRef& ref : t_shard_cache) {
    if (ref.registry_id == id_) return *static_cast<Shard*>(ref.shard);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  // Bound the cache; evicting an entry only means that thread would open a
  // second shard in that registry later, which merges identically.
  if (t_shard_cache.size() >= 64) t_shard_cache.erase(t_shard_cache.begin());
  t_shard_cache.push_back(ShardRef{id_, shard});
  return *shard;
}

namespace {

std::uint32_t intern(std::vector<Registry::Info>& info,
                     std::map<std::string, std::uint32_t, std::less<>>& ids,
                     std::string_view name, Unit unit, std::size_t capacity) {
  if (const auto it = ids.find(name); it != ids.end()) return it->second;
  if (info.size() >= capacity) return kInvalidMetric;
  const auto index = static_cast<std::uint32_t>(info.size());
  info.push_back(Registry::Info{std::string(name), unit});
  ids.emplace(std::string(name), index);
  return index;
}

}  // namespace

Counter Registry::counter(std::string_view name, Unit unit) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t index =
      intern(counter_info_, counter_ids_, name, unit, kMaxCounters);
  return index == kInvalidMetric ? Counter() : Counter(this, index);
}

Gauge Registry::gauge(std::string_view name, Unit unit) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t index =
      intern(gauge_info_, gauge_ids_, name, unit, kMaxGauges);
  return index == kInvalidMetric ? Gauge() : Gauge(this, index);
}

Histogram Registry::histogram(std::string_view name, Unit unit) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t index =
      intern(histogram_info_, histogram_ids_, name, unit, kMaxHistograms);
  return index == kInvalidMetric ? Histogram() : Histogram(this, index);
}

void Counter::add(std::uint64_t delta) const noexcept {
  if (registry_ == nullptr || !registry_->enabled()) return;
  auto& cell = registry_->local_shard().counters[index_];
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void Gauge::set(double value) const noexcept {
  if (registry_ == nullptr || !registry_->enabled()) return;
  auto& cell = registry_->local_shard().gauges[index_];
  const std::uint64_t seq =
      1 + registry_->gauge_sequence_.fetch_add(1, std::memory_order_relaxed);
  cell.value.store(value, std::memory_order_relaxed);
  cell.sequence.store(seq, std::memory_order_release);
}

void Histogram::record(double value) const noexcept {
  if (registry_ == nullptr || !registry_->enabled()) return;
  auto& cell = registry_->local_shard().histograms[index_];
  cell.count.store(cell.count.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  cell.sum.store(cell.sum.load(std::memory_order_relaxed) + value,
                 std::memory_order_relaxed);
  if (value < cell.min.load(std::memory_order_relaxed)) {
    cell.min.store(value, std::memory_order_relaxed);
  }
  if (value > cell.max.load(std::memory_order_relaxed)) {
    cell.max.store(value, std::memory_order_relaxed);
  }
  auto& bucket = cell.buckets[histogram_bucket(value)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;

  snap.counters.reserve(counter_info_.size());
  for (std::size_t i = 0; i < counter_info_.size(); ++i) {
    CounterStat stat;
    stat.name = counter_info_[i].name;
    stat.unit = counter_info_[i].unit;
    for (const auto& shard : shards_) {
      stat.value += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.push_back(std::move(stat));
  }

  snap.gauges.reserve(gauge_info_.size());
  for (std::size_t i = 0; i < gauge_info_.size(); ++i) {
    GaugeStat stat;
    stat.name = gauge_info_[i].name;
    stat.unit = gauge_info_[i].unit;
    std::uint64_t best_seq = 0;
    for (const auto& shard : shards_) {
      const auto& cell = shard->gauges[i];
      const std::uint64_t seq = cell.sequence.load(std::memory_order_acquire);
      if (seq > best_seq) {
        best_seq = seq;
        stat.value = cell.value.load(std::memory_order_relaxed);
        stat.set = true;
      }
    }
    snap.gauges.push_back(std::move(stat));
  }

  snap.histograms.reserve(histogram_info_.size());
  for (std::size_t i = 0; i < histogram_info_.size(); ++i) {
    HistogramStat stat;
    stat.name = histogram_info_[i].name;
    stat.unit = histogram_info_[i].unit;
    double merged_min = kInf;
    double merged_max = -kInf;
    for (const auto& shard : shards_) {
      const auto& cell = shard->histograms[i];
      stat.count += cell.count.load(std::memory_order_relaxed);
      stat.sum += cell.sum.load(std::memory_order_relaxed);
      merged_min = std::min(merged_min, cell.min.load(std::memory_order_relaxed));
      merged_max = std::max(merged_max, cell.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        stat.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
      }
    }
    if (stat.count > 0) {
      stat.min = merged_min;
      stat.max = merged_max;
    }
    snap.histograms.push_back(std::move(stat));
  }
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) shard->reset();
}

}  // namespace qsmt::telemetry

// RAII trace spans and the global trace-event buffer.
//
// A Span marks one stage of the solve path (parse, compile, QUBO merge,
// sample, verify, ...). Construction checks the global telemetry mode once:
//
//  - off:     the span is inert (one relaxed load + branch, no clock read).
//  - summary: the span's duration feeds the histogram "<name>.seconds" in
//             the global registry, so per-stage timing shows up in the
//             summary table.
//  - trace:   additionally, a Chrome trace_event "complete" event (ph "X")
//             is appended to the process trace buffer, with any arg()s
//             attached. Load the exported file in chrome://tracing or
//             https://ui.perfetto.dev (docs/telemetry.md walks through it).
//
// Events are appended at span end under a global mutex — span frequency is
// per-stage, not per-sweep, so contention is irrelevant; the metrics hot
// path stays on the lock-free registry shards.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qsmt::telemetry {

/// One completed Chrome trace_event (ph "X") in microseconds since the
/// process trace epoch (first telemetry use).
struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;  ///< Small per-thread sequence id, not the OS tid.
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::vector<std::pair<std::string, double>> args;
};

/// Small stable id for the calling thread (0, 1, 2, ... in first-use order).
std::uint32_t current_thread_id();

/// Microseconds since the process trace epoch.
double trace_now_us();

/// Appends an event to the process trace buffer (thread-safe). Used by Span
/// and by instrumentation that synthesises events without RAII timing (the
/// annealer's per-read trajectory).
void add_trace_event(TraceEvent event);

/// Copies the buffered events (in completion order).
std::vector<TraceEvent> trace_events();

/// Discards all buffered events.
void clear_trace_events();

class Span {
 public:
  /// `name` should be a stable dotted identifier ("smtlib.compile"); it is
  /// copied only when telemetry is on.
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric argument to the trace event (kept only in trace
  /// mode; ignored otherwise).
  void arg(std::string_view key, double value);

  /// Ends the span now (idempotent; the destructor becomes a no-op).
  void close();

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> args_;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
  bool trace_ = false;
};

}  // namespace qsmt::telemetry

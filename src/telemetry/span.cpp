#include "telemetry/span.hpp"

#include <atomic>
#include <mutex>

#include "telemetry/telemetry.hpp"

namespace qsmt::telemetry {

namespace {

std::mutex g_trace_mutex;
std::vector<TraceEvent>& trace_buffer() {
  static auto* buffer = new std::vector<TraceEvent>();
  return *buffer;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::atomic<std::uint32_t> g_next_thread_id{0};

}  // namespace

std::uint32_t current_thread_id() {
  thread_local const std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

void add_trace_event(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(g_trace_mutex);
  trace_buffer().push_back(std::move(event));
}

std::vector<TraceEvent> trace_events() {
  const std::lock_guard<std::mutex> lock(g_trace_mutex);
  return trace_buffer();
}

void clear_trace_events() {
  const std::lock_guard<std::mutex> lock(g_trace_mutex);
  trace_buffer().clear();
}

Span::Span(std::string_view name) {
  const Mode m = mode();
  if (m == Mode::kOff) return;
  active_ = true;
  trace_ = m == Mode::kTrace;
  name_.assign(name);
  start_ = std::chrono::steady_clock::now();
}

void Span::arg(std::string_view key, double value) {
  if (!trace_) return;
  args_.emplace_back(std::string(key), value);
}

void Span::close() {
  if (!active_) return;
  active_ = false;
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(end - start_).count();
  registry().histogram(name_ + ".seconds", Unit::kSeconds).record(seconds);
  if (trace_) {
    TraceEvent event;
    event.name = std::move(name_);
    event.tid = current_thread_id();
    event.dur_us = seconds * 1e6;
    event.ts_us = std::chrono::duration<double, std::micro>(start_ -
                                                            trace_epoch())
                      .count();
    event.args = std::move(args_);
    add_trace_event(std::move(event));
  }
}

Span::~Span() { close(); }

}  // namespace qsmt::telemetry

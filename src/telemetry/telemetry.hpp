// qsmt::telemetry — solver-wide metrics and tracing.
//
// One subsystem, three switch positions, set by the QSMT_TELEMETRY
// environment variable (read once, cached):
//
//   QSMT_TELEMETRY=off      (default) everything disabled; instrumentation
//                           sites cost one relaxed atomic load + branch.
//   QSMT_TELEMETRY=summary  metrics record; on process exit a human-
//                           readable table of per-stage timings, anneal
//                           statistics, and solve verdicts goes to stderr.
//   QSMT_TELEMETRY=trace    summary, plus Span scopes append Chrome
//                           trace_event records; on exit the trace is
//                           written to $QSMT_TRACE_FILE (default
//                           qsmt_trace.json in the CWD).
//
// The catalog of every metric and span the solver emits lives in
// docs/telemetry.md; tests assert the documented names stay emitted.
//
// Instrumentation pattern (handles are cheap value types; interning is a
// mutex hit, so hoist it out of loops with a static or a local):
//
//   static const auto verdicts = telemetry::counter("engine.verdict.sat");
//   verdicts.add();
//
//   telemetry::Span span("smtlib.compile");   // RAII stage timing
//   span.arg("constraints", n);               // kept in trace mode
//
// Benches that want the aggregation machinery without the global switch
// construct their own telemetry::Registry (always enabled) — see
// bench/hotpath_bench.cpp.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

namespace qsmt::telemetry {

enum class Mode { kOff, kSummary, kTrace };

const char* mode_name(Mode mode) noexcept;

/// The process telemetry mode. First call parses QSMT_TELEMETRY (unknown
/// values warn once on stderr and fall back to off) and, when the mode is
/// not off, registers the exit report.
Mode mode() noexcept;

/// Overrides the mode at runtime (tests, CLIs). Does not register the exit
/// report — only the environment opt-in does that.
void set_mode(Mode mode) noexcept;

inline bool enabled() noexcept { return mode() != Mode::kOff; }
inline bool trace_enabled() noexcept { return mode() == Mode::kTrace; }

/// The process-global registry every instrumentation site records into.
/// Its enabled() gate tracks mode(). Never destroyed (safe from atexit and
/// from worker threads outliving main).
Registry& registry();

/// Convenience: intern a metric on the global registry.
Counter counter(std::string_view name, Unit unit = Unit::kCount);
Gauge gauge(std::string_view name, Unit unit = Unit::kNone);
Histogram histogram(std::string_view name, Unit unit = Unit::kNone);

/// Writes the global registry's summary table to `out` (nothing when no
/// metric has data).
void report(std::ostream& out);

/// Writes the buffered trace to `path` as Chrome trace JSON. Returns false
/// (and reports on stderr) when the file cannot be written.
bool write_trace_file(const std::string& path);

/// Clears global metrics and the trace buffer (tests).
void reset();

}  // namespace qsmt::telemetry

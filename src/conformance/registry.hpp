// The conformance case registry: one (or more) exhaustively-checkable
// instances per §4.1-§4.12 string-operation builder.
//
// Coverage is enforced two ways by tests/conformance_test.cpp:
//  * every alternative of the strqubo::Constraint variant must be the `op`
//    of at least one case (iterated at compile time, so extending the IR
//    without a spec fails the suite);
//  * every public `build_*` function declared in src/strqubo/builders.hpp
//    must appear in some case's `builders` list (the header is parsed at
//    test runtime, so a new builder without a spec fails the suite).
//
// Instances are sized for the full-spectrum sweep (<= 24 object bits,
// <= 26 total variables): lengths 1-3, small alphabets, every structural
// regime of each op (match present/absent, overlapping matches, odd/even
// palindromes, class vs literal regex tokens, ...).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "conformance/conformance.hpp"

namespace qsmt::conformance {

/// Decodes the 7L-bit object prefix into a string (bit i of the object is
/// QUBO variable i; strenc layout, MSB-first per character).
std::string decode_object_string(std::uint64_t object, std::size_t length);

/// Human-readable string rendering with non-printables escaped as \xNN.
std::string printable(const std::string& s);

/// All registered conformance cases, registry order.
std::vector<ConformanceCase> all_cases();

/// Distinct `op` keys (strqubo::constraint_name vocabulary, plus
/// "length-printable" for the builder-only extension).
std::set<std::string> covered_ops();

/// Distinct builder function names covered by some case.
std::set<std::string> covered_builders();

}  // namespace qsmt::conformance

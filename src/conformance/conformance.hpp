// Encoding conformance kit: machine-checks that a §4 QUBO formulation's
// energy landscape matches the operation's classical SMT semantics.
//
// Each ConformanceCase binds one built model to a classical classifier over
// decoded objects and three properties:
//
//  * soundness     — every object in the ground band (minimum energy, up to
//                    kEnergyTolerance) classically satisfies the operation;
//  * completeness  — every object of the spec's documented ground domain
//                    achieves the ground energy (for exact formulations the
//                    domain is the full satisfying set; biased formulations
//                    like §4.5 indexOf document the letter-band restriction
//                    their soft terms impose);
//  * gap safety    — the best classically-violating object sits at least
//                    `gap_floor` above the ground energy, so penalty-weight
//                    mistunes cannot silently shrink the margin annealing
//                    success depends on (Bian et al.).
//
// Negative controls (expect_sound = false) pin documented paper artifacts —
// e.g. the §4.11 averaged class encoding admitting out-of-class characters —
// and double as a self-test that the checker actually detects violations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "qubo/qubo_model.hpp"

namespace qsmt::conformance {

/// Energies within this tolerance of the minimum count as the ground band
/// (coefficients like the 0.1A letter bias make energies non-integral).
inline constexpr double kEnergyTolerance = 1e-6;

/// Classical classification of one decoded object.
struct Classified {
  /// The operation's SMT semantics hold for this object.
  bool satisfies = false;
  /// The object belongs to the spec's documented ground domain (must imply
  /// `satisfies`; equal to it for exact formulations).
  bool in_ground_domain = false;
};

struct ConformanceCase {
  /// Unique id, "op/instance" style ("index_of/len3_b_at_1").
  std::string name;
  /// Operation key as reported by strqubo::constraint_name ("index_of").
  std::string op;
  /// Public builder functions this case exercises ("build_index_of").
  std::vector<std::string> builders;
  /// The formulation under test.
  qubo::QuboModel model;
  /// Width of the decoded-object prefix (7L string bits; position count for
  /// includes). Variables past it are auxiliaries minimised per object.
  std::size_t object_bits = 0;
  /// Classical oracle over object indices (bit i of the index is QUBO
  /// variable i, so strings decode MSB-first per character via strenc).
  std::function<Classified(std::uint64_t)> classify;
  /// Human-readable rendering of an object for failure messages.
  std::function<std::string(std::uint64_t)> describe;
  /// Required minimum energy of the best violating object above ground.
  double gap_floor = 0.0;
  /// Negative controls document known-by-design violations; the kit then
  /// asserts the defect IS detected (a self-test of the checker's teeth).
  bool expect_sound = true;
  bool expect_complete = true;
  /// One-line rationale shown in reports (gap-floor provenance, artifacts).
  std::string notes;
};

struct ConformanceReport {
  std::string name;
  std::string op;
  std::size_t num_variables = 0;
  std::size_t object_bits = 0;
  std::uint64_t num_states = 0;
  std::uint64_t num_objects = 0;
  std::uint64_t num_satisfying = 0;      ///< Objects satisfying classically.
  std::uint64_t num_ground_domain = 0;   ///< Objects the spec puts at ground.
  std::uint64_t num_violating = 0;
  std::uint64_t ground_band_size = 0;    ///< Objects in the ground band.
  double ground_energy = 0.0;
  /// Max over satisfying objects of their best energy (how far the worst
  /// satisfying object sits above ground; bias spread for soft encodings).
  double satisfying_band_max = 0.0;
  /// Min over violating objects of their best energy; +inf when every
  /// object satisfies (e.g. palindrome of length 1).
  double violating_min = 0.0;
  /// violating_min - ground_energy (+inf when nothing violates).
  double min_gap = 0.0;
  double gap_floor = 0.0;
  bool sound = false;
  bool complete = false;
  bool gap_safe = false;
  /// True when measured properties match the case's expectations (negative
  /// controls pass by *failing* soundness/completeness as documented).
  bool as_expected = false;
  /// Up to kMaxReportedFailures decoded counterexamples per property.
  std::vector<std::string> failures;
};

inline constexpr std::size_t kMaxReportedFailures = 4;

/// Sweeps the case's full spectrum and evaluates all three properties.
/// Throws std::invalid_argument when the model exceeds the spectrum caps.
ConformanceReport check_case(const ConformanceCase& c);

/// Renders a report as a JSON object (one line, stable key order) for the
/// tracked BENCH_conformance.json artifact.
std::string report_json(const ConformanceReport& report);

}  // namespace qsmt::conformance

// Exhaustive spectrum oracle: the ground truth behind the encoding
// conformance kit.
//
// A QUBO formulation is judged at the level of *decoded objects* (strings,
// includes-position selections), not raw bit assignments: auxiliary
// variables (one-hot selectors, quadratization ancillas) mean one object can
// be realised by many assignments, and only the best realisation matters.
// sweep_spectrum() enumerates all 2^n assignments of a model in Gray-code
// order (each step a single-bit flip evaluated in O(degree), the same trick
// as anneal::ExactSolver) and folds them into a per-object minimum-energy
// table over the first `object_bits` variables — every builder in
// src/strqubo lays the decoded payload out as a prefix, with auxiliaries
// appended after it.
//
// The table is everything the conformance checks need:
//   * soundness      — objects achieving the global minimum all satisfy;
//   * completeness   — the documented ground domain all achieves it;
//   * gap safety     — the best classically-violating object sits at least
//                      a per-op floor above the ground energy.
#pragma once

#include <cstdint>
#include <vector>

#include "qubo/qubo_model.hpp"

namespace qsmt::conformance {

/// Hard cap on total model variables (2^26 states ~ a second at -O2).
inline constexpr std::size_t kMaxSpectrumVariables = 26;
/// Hard cap on object-prefix width (the min-energy table is dense).
inline constexpr std::size_t kMaxObjectBits = 24;

struct Spectrum {
  std::size_t num_variables = 0;
  std::size_t object_bits = 0;
  std::uint64_t num_states = 0;   ///< 2^num_variables assignments swept.
  double ground_energy = 0.0;     ///< Global minimum over all states.
  /// Minimum energy over all assignments extending object index k (the
  /// object's bits are variables [0, object_bits), LSB = variable 0).
  /// Size 2^object_bits; every entry is reachable, so none stays +inf.
  std::vector<double> object_min_energy;
};

/// Enumerates the full 2^n spectrum of `model`. Throws std::invalid_argument
/// when the model exceeds kMaxSpectrumVariables or `object_bits` exceeds
/// the model size / kMaxObjectBits.
Spectrum sweep_spectrum(const qubo::QuboModel& model, std::size_t object_bits);

}  // namespace qsmt::conformance

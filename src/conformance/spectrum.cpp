#include "conformance/spectrum.hpp"

#include <limits>

#include "qubo/adjacency.hpp"
#include "util/require.hpp"

namespace qsmt::conformance {

namespace {

// Index of the bit that changes between Gray codes of k and k+1.
inline std::size_t gray_flip_index(std::uint64_t k) noexcept {
  return static_cast<std::size_t>(__builtin_ctzll(k + 1));
}

}  // namespace

Spectrum sweep_spectrum(const qubo::QuboModel& model, std::size_t object_bits) {
  const std::size_t n = model.num_variables();
  require(n <= kMaxSpectrumVariables,
          "sweep_spectrum: model exceeds kMaxSpectrumVariables");
  require(object_bits <= n,
          "sweep_spectrum: object_bits exceeds the model's variable count");
  require(object_bits <= kMaxObjectBits,
          "sweep_spectrum: object_bits exceeds kMaxObjectBits");

  Spectrum spectrum;
  spectrum.num_variables = n;
  spectrum.object_bits = object_bits;
  spectrum.num_states = 1ULL << n;
  spectrum.object_min_energy.assign(
      1ULL << object_bits, std::numeric_limits<double>::infinity());

  const qubo::QuboAdjacency adjacency(model);
  const std::uint64_t object_mask = (1ULL << object_bits) - 1ULL;

  // Gray-code sweep: `field[i]` is the energy delta of flipping variable i
  // to 1 given the other bits (linear term plus active couplings); each
  // visited state updates its object's running minimum.
  std::vector<std::uint8_t> bits(n, 0);
  std::vector<double> field(n);
  for (std::size_t i = 0; i < n; ++i) field[i] = adjacency.linear(i);

  std::uint64_t mask = 0;
  double energy = adjacency.offset();
  double ground = energy;
  spectrum.object_min_energy[0] = energy;

  for (std::uint64_t k = 0; k + 1 < spectrum.num_states; ++k) {
    const std::size_t i = gray_flip_index(k);
    energy += bits[i] ? -field[i] : field[i];
    const double step = bits[i] ? -1.0 : 1.0;
    bits[i] ^= 1u;
    mask ^= 1ULL << i;
    for (const auto& nb : adjacency.neighbors(i)) {
      field[nb.index] += nb.coefficient * step;
    }
    double& slot = spectrum.object_min_energy[mask & object_mask];
    if (energy < slot) slot = energy;
    if (energy < ground) ground = energy;
  }

  spectrum.ground_energy = ground;
  return spectrum;
}

}  // namespace qsmt::conformance

#include "conformance/registry.hpp"

#include <bit>
#include <cstdio>
#include <optional>
#include <utility>

#include "strqubo/builders.hpp"
#include "strqubo/constraint.hpp"
#include "strqubo/verify.hpp"
#include "util/require.hpp"

// Case specs use designated initializers and deliberately omit fields that
// keep their defaults (domain, options, expectations).
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"

namespace qsmt::conformance {

namespace {

using strqubo::BuildOptions;
using strqubo::Constraint;

/// Letter band of the 7-bit alphabet: both soft-bias bits (0 and 1, the two
/// most significant) set, i.e. ASCII 96-127. The indexOf/charAt soft terms
/// and the bounded-length content couplings all pull free positions here.
bool letter_band(char c) {
  const auto u = static_cast<unsigned char>(c);
  return u >= 96 && u <= 127;
}

bool all_letter_band(const std::string& s) {
  for (char c : s) {
    if (!letter_band(c)) return false;
  }
  return true;
}

/// Letter-band content followed by NUL padding (bounded-length ground shape).
bool letters_then_padding(const std::string& s) {
  for (char c : s) {
    if (c == '\0') break;
    if (!letter_band(c)) return false;
  }
  return true;
}

struct StringSpec {
  std::string name;
  Constraint constraint;
  std::size_t length;  ///< Characters in the decoded object prefix.
  double gap_floor;
  std::vector<std::string> builders;
  std::string notes;
  /// Restriction of the satisfying set that the encoding prices at ground;
  /// empty means the formulation is exact (domain == full satisfying set).
  std::function<bool(const std::string&)> domain;
  BuildOptions options{};
  bool expect_sound = true;
  bool expect_complete = true;
};

ConformanceCase make_string_case(StringSpec spec) {
  ConformanceCase c;
  c.name = std::move(spec.name);
  c.op = strqubo::constraint_name(spec.constraint);
  c.builders = std::move(spec.builders);
  c.model = strqubo::build(spec.constraint, spec.options);
  c.object_bits = 7 * spec.length;
  c.classify = [constraint = spec.constraint, domain = std::move(spec.domain),
                length = spec.length](std::uint64_t object) {
    const std::string s = decode_object_string(object, length);
    Classified v;
    v.satisfies = strqubo::verify_string(constraint, s);
    v.in_ground_domain = v.satisfies && (!domain || domain(s));
    return v;
  };
  c.describe = [length = spec.length](std::uint64_t object) {
    return printable(decode_object_string(object, length));
  };
  c.gap_floor = spec.gap_floor;
  c.expect_sound = spec.expect_sound;
  c.expect_complete = spec.expect_complete;
  c.notes = std::move(spec.notes);
  return c;
}

/// Includes (§4.4) decodes a set of selected start positions, not a string:
/// the object is the raw selection mask over the n-m+1 position variables.
ConformanceCase make_includes_case(std::string name, strqubo::Includes op,
                                   double gap_floor, std::string notes) {
  const std::size_t positions = op.text.size() - op.substring.size() + 1;
  ConformanceCase c;
  c.name = std::move(name);
  c.op = strqubo::constraint_name(Constraint{op});
  c.builders = {"build_includes"};
  c.model = strqubo::build_includes(op.text, op.substring);
  c.object_bits = positions;
  c.classify = [op](std::uint64_t mask) {
    Classified v;
    if (std::popcount(mask) > 1) return v;  // Multi-select never satisfies.
    std::optional<std::size_t> position;
    if (mask != 0) position = static_cast<std::size_t>(std::countr_zero(mask));
    v.satisfies = strqubo::verify_position(op, position);
    v.in_ground_domain = v.satisfies;  // Exact: the answer is unique.
    return v;
  };
  c.describe = [positions](std::uint64_t mask) {
    std::string out = "positions{";
    bool first = true;
    for (std::size_t p = 0; p < positions; ++p) {
      if (!(mask >> p & 1ULL)) continue;
      if (!first) out += ',';
      out += std::to_string(p);
      first = false;
    }
    out += '}';
    return out;
  };
  c.gap_floor = gap_floor;
  c.notes = std::move(notes);
  return c;
}

/// build_length_printable has no Constraint alternative (it is a composition
/// aid, see DESIGN.md), so it gets an explicit case under its own op key.
ConformanceCase make_length_printable_case() {
  ConformanceCase c;
  c.name = "length_printable/cap2_len1";
  c.op = "length-printable";
  c.builders = {"build_length_printable"};
  c.model = strqubo::build_length_printable(2, 1);
  c.object_bits = 14;
  c.classify = [](std::uint64_t object) {
    const std::string s = decode_object_string(object, 2);
    Classified v;
    v.satisfies = s[0] != '\0' && s[1] == '\0';
    v.in_ground_domain = v.satisfies && letter_band(s[0]);
    return v;
  };
  c.describe = [](std::uint64_t object) {
    return printable(decode_object_string(object, 2));
  };
  // The thinnest margin in the catalog: the all-NUL buffer escapes only the
  // letter bias, 2 x soft_weight = 0.2 (FORMULATIONS.md).
  c.gap_floor = 0.2;
  c.notes = "all-NUL sits at exactly 2*soft_weight above ground";
  return c;
}

}  // namespace

std::string decode_object_string(std::uint64_t object, std::size_t length) {
  require(length * 7 <= 64, "decode_object_string: length exceeds 64 bits");
  std::string s(length, '\0');
  for (std::size_t pos = 0; pos < length; ++pos) {
    unsigned value = 0;
    for (std::size_t bit = 0; bit < 7; ++bit) {  // bit 0 is the MSB (strenc).
      value = (value << 1) | static_cast<unsigned>(object >> (pos * 7 + bit) & 1ULL);
    }
    s[pos] = static_cast<char>(value);
  }
  return s;
}

std::string printable(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (u >= 0x20 && u < 0x7f) {
      out += c;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x", u);
      out += buf;
    }
  }
  out += '"';
  return out;
}

std::vector<ConformanceCase> all_cases() {
  std::vector<ConformanceCase> cases;

  // §4.1 equality — diagonal-only, unique ground state, gap A per wrong bit.
  cases.push_back(make_string_case(
      {.name = "equality/a",
       .constraint = strqubo::Equality{"a"},
       .length = 1,
       .gap_floor = 1.0,
       .builders = {"build_equality"},
       .notes = "one wrong bit costs A"}));
  cases.push_back(make_string_case(
      {.name = "equality/abc",
       .constraint = strqubo::Equality{"abc"},
       .length = 3,
       .gap_floor = 1.0,
       .builders = {"build_equality"},
       .notes = "gap independent of length"}));

  // §4.2 concat — equality against lhs + rhs.
  cases.push_back(make_string_case(
      {.name = "concat/a_b",
       .constraint = strqubo::Concat{"a", "b"},
       .length = 2,
       .gap_floor = 1.0,
       .builders = {"build_concat"},
       .notes = "inherits the equality gap"}));

  // §4.3 substring-match — substring stamped at every start, later starts
  // overwrite earlier; the documented ground is that overwrite witness.
  cases.push_back(make_string_case(
      {.name = "substring_match/len2_a",
       .constraint = strqubo::SubstringMatch{2, "a"},
       .length = 2,
       .gap_floor = 2.0,
       .builders = {"build_substring_match"},
       .notes = "every position stamped 'a'; a violator must miss at both",
       .domain = [](const std::string& s) { return s == "aa"; }}));
  cases.push_back(make_string_case(
      {.name = "substring_match/len3_ab",
       .constraint = strqubo::SubstringMatch{3, "ab"},
       .length = 3,
       .gap_floor = 1.0,
       .builders = {"build_substring_match"},
       .notes = "overwrite witness: start 1 wins the middle position",
       .domain = [](const std::string& s) { return s == "aab"; }}));

  // §4.4 includes — position selection; theta = A(m - 1/2) makes the ground
  // exactly "first full match, or nothing" (DESIGN.md).
  cases.push_back(make_includes_case(
      "includes/first_of_two", strqubo::Includes{"abab", "ab"}, 0.5,
      "second full match pays the first-match increment C"));
  cases.push_back(make_includes_case(
      "includes/single_interior", strqubo::Includes{"abcab", "ca"}, 0.5,
      "empty selection sits at m*A - theta = A/2"));
  cases.push_back(make_includes_case(
      "includes/absent", strqubo::Includes{"aaa", "b"}, 0.5,
      "no occurrence: ground is the empty selection"));

  // §4.5 indexOf — strong window (2A per wrong bit), soft letter bias on
  // free positions; the documented ground restricts free chars to 96-127.
  cases.push_back(make_string_case(
      {.name = "index_of/len2_a_at_0",
       .constraint = strqubo::IndexOf{2, "a", 0},
       .length = 2,
       .gap_floor = 2.0,
       .builders = {"build_index_of"},
       .notes = "window violation costs strong_multiplier*A per bit",
       .domain = [](const std::string& s) { return letter_band(s[1]); }}));
  cases.push_back(make_string_case(
      {.name = "index_of/len3_b_at_1",
       .constraint = strqubo::IndexOf{3, "b", 1},
       .length = 3,
       .gap_floor = 2.0,
       .builders = {"build_index_of"},
       .notes = "interior window, two biased free positions",
       .domain =
           [](const std::string& s) {
             return letter_band(s[0]) && letter_band(s[2]);
           }}));

  // §4.6 length — paper-faithful bit-prefix form (DEL-prefix ground).
  cases.push_back(make_string_case(
      {.name = "length/len2_one",
       .constraint = strqubo::Length{2, 1},
       .length = 2,
       .gap_floor = 1.0,
       .builders = {"build_length"},
       .notes = "unique ground \\x7f\\x00 per the paper's bit-prefix reading"}));
  cases.push_back(make_string_case(
      {.name = "length/len2_zero",
       .constraint = strqubo::Length{2, 0},
       .length = 2,
       .gap_floor = 1.0,
       .builders = {"build_length"},
       .notes = "degenerate desired length 0: all-NUL ground"}));

  // Extension: length over printable strings (composable form).
  cases.push_back(make_length_printable_case());

  // §4.7 / §4.8 replace-all and replace — equality against the classically
  // transformed string; covers both the rewrite and from-char-absent regimes.
  cases.push_back(make_string_case(
      {.name = "replace_all/aba_a_to_b",
       .constraint = strqubo::ReplaceAll{"aba", 'a', 'b'},
       .length = 3,
       .gap_floor = 1.0,
       .builders = {"build_replace_all"},
       .notes = "every occurrence rewritten: ground bbb"}));
  cases.push_back(make_string_case(
      {.name = "replace_all/absent_from",
       .constraint = strqubo::ReplaceAll{"ab", 'c', 'a'},
       .length = 2,
       .gap_floor = 1.0,
       .builders = {"build_replace_all"},
       .notes = "from-char absent: identity rewrite"}));
  cases.push_back(make_string_case(
      {.name = "replace/aba_first_only",
       .constraint = strqubo::Replace{"aba", 'a', 'c'},
       .length = 3,
       .gap_floor = 1.0,
       .builders = {"build_replace"},
       .notes = "only the first occurrence rewritten: ground cba"}));
  cases.push_back(make_string_case(
      {.name = "replace/absent_from",
       .constraint = strqubo::Replace{"ab", 'c', 'a'},
       .length = 2,
       .gap_floor = 1.0,
       .builders = {"build_replace"},
       .notes = "from-char absent: identity rewrite"}));

  // §4.9 reverse.
  cases.push_back(make_string_case(
      {.name = "reverse/abc",
       .constraint = strqubo::Reverse{"abc"},
       .length = 3,
       .gap_floor = 1.0,
       .builders = {"build_reverse"},
       .notes = "equality against the reversal"}));

  // §4.10 palindrome — mirrored-bit XNOR gadgets; exact over all strings.
  cases.push_back(make_string_case(
      {.name = "palindrome/len1",
       .constraint = strqubo::Palindrome{1},
       .length = 1,
       .gap_floor = 0.0,
       .builders = {"build_palindrome"},
       .notes = "degenerate: every string satisfies, no violating band"}));
  cases.push_back(make_string_case(
      {.name = "palindrome/len2",
       .constraint = strqubo::Palindrome{2},
       .length = 2,
       .gap_floor = 1.0,
       .builders = {"build_palindrome"},
       .notes = "one disagreeing mirrored bit pair costs A"}));
  cases.push_back(make_string_case(
      {.name = "palindrome/len3",
       .constraint = strqubo::Palindrome{3},
       .length = 3,
       .gap_floor = 1.0,
       .builders = {"build_palindrome"},
       .notes = "odd length: the middle character stays free"}));
  {
    BuildOptions biased;
    biased.palindrome_printable_bias = 0.05;
    cases.push_back(make_string_case(
        {.name = "palindrome/len2_printable_bias",
         .constraint = strqubo::Palindrome{2},
         .length = 2,
         .gap_floor = 1.0,
         .builders = {"build_palindrome"},
         .notes = "bias shrinks the ground band to letter palindromes, "
                  "mirror gap unaffected",
         .domain = all_letter_band,
         .options = biased}));
  }

  // §4.11 regex — literal tokens are exact; class behaviour depends on the
  // encoding and on the Hamming spread of the class (FORMULATIONS.md E6).
  cases.push_back(make_string_case(
      {.name = "regex/literal_ab",
       .constraint = strqubo::RegexMatch{"ab", 2},
       .length = 2,
       .gap_floor = 1.0,
       .builders = {"build_regex"},
       .notes = "pure literals reduce to equality"}));
  cases.push_back(make_string_case(
      {.name = "regex/plus_literal",
       .constraint = strqubo::RegexMatch{"a+b", 3},
       .length = 3,
       .gap_floor = 1.0,
       .builders = {"build_regex"},
       .notes = "a+ expands to two literal positions at length 3"}));
  cases.push_back(make_string_case(
      {.name = "regex/plus_ambiguous",
       .constraint = strqubo::RegexMatch{"a+b+", 3},
       .length = 3,
       .gap_floor = 1.0,
       .builders = {"build_regex"},
       .notes = "expansion picks the leftmost split aab; the other match "
                "abb sits above ground but is still satisfying",
       .domain = [](const std::string& s) { return s == "aab"; }}));
  cases.push_back(make_string_case(
      {.name = "regex/class_hamming1",
       .constraint = strqubo::RegexMatch{"[ac]b", 2},
       .length = 2,
       .gap_floor = 1.0,
       .builders = {"build_regex"},
       .notes = "averaged class is exact when members differ in one bit: "
                "the single unbiased bit spans exactly {a,c}"}));
  cases.push_back(make_string_case(
      {.name = "regex/class_hamming2_artifact",
       .constraint = strqubo::RegexMatch{"[ab]c", 2},
       .length = 2,
       .gap_floor = 0.0,
       .builders = {"build_regex"},
       .notes = "negative control (paper artifact, FORMULATIONS.md E6): a,b "
                "differ in two bits, so the averaged class also grounds ` "
                "and c; the kit must detect the unsoundness",
       .expect_sound = false}));
  {
    BuildOptions one_hot;
    one_hot.regex_encoding = strqubo::RegexClassEncoding::kOneHotSelectors;
    cases.push_back(make_string_case(
        {.name = "regex/class_one_hot",
         .constraint = strqubo::RegexMatch{"[ab]c", 2},
         .length = 2,
         .gap_floor = 1.0,
         .builders = {"build_regex"},
         .notes = "one-hot selectors repair the hamming-2 class exactly",
         .options = one_hot}));
  }

  // Extension: charAt — a one-character strong window plus soft bias.
  cases.push_back(make_string_case(
      {.name = "char_at/len2_a_at_0",
       .constraint = strqubo::CharAt{2, 0, 'a'},
       .length = 2,
       .gap_floor = 2.0,
       .builders = {"build_char_at"},
       .notes = "pinned character at strong_multiplier*A per bit",
       .domain = [](const std::string& s) { return letter_band(s[1]); }}));
  cases.push_back(make_string_case(
      {.name = "char_at/len1_z",
       .constraint = strqubo::CharAt{1, 0, 'z'},
       .length = 1,
       .gap_floor = 2.0,
       .builders = {"build_char_at"},
       .notes = "no free positions: the whole string is the window"}));

  // Extension: not-contains — quadratized window indicators.
  cases.push_back(make_string_case(
      {.name = "not_contains/len1_b",
       .constraint = strqubo::NotContains{1, "b"},
       .length = 1,
       .gap_floor = 1.0,
       .builders = {"build_not_contains"},
       .notes = "the excluded string's cheapest escape is one ancilla lie "
                "in the Boros-Hammer gadget (cost A)",
       .domain =
           [](const std::string& s) {
             return all_letter_band(s) && s != "b";
           }}));

  // Extension: bounded-length — one-hot length selectors over a NUL-padded
  // buffer; the neutraliser holds every admissible length at ground 0.
  cases.push_back(make_string_case(
      {.name = "bounded_length/cap2_exact1",
       .constraint = strqubo::BoundedLength{2, 1, 1},
       .length = 2,
       .gap_floor = 0.2,
       .builders = {"build_bounded_length"},
       .notes = "empty buffer escapes only the content bias (2*soft_weight)",
       .domain = letters_then_padding}));
  cases.push_back(make_string_case(
      {.name = "bounded_length/cap2_range",
       .constraint = strqubo::BoundedLength{2, 0, 2},
       .length = 2,
       .gap_floor = 0.2,
       .builders = {"build_bounded_length"},
       .notes = "all lengths 0-2 admissible and level at ground 0; garbage "
                "after the first NUL must stay penalised",
       .domain = letters_then_padding}));
  cases.push_back(make_string_case(
      {.name = "bounded_length/cap3_range",
       .constraint = strqubo::BoundedLength{3, 1, 2},
       .length = 3,
       .gap_floor = 0.2,
       .builders = {"build_bounded_length"},
       .notes = "largest sweep in the kit (23 variables)",
       .domain = letters_then_padding}));

  return cases;
}

std::set<std::string> covered_ops() {
  std::set<std::string> ops;
  for (const auto& c : all_cases()) ops.insert(c.op);
  return ops;
}

std::set<std::string> covered_builders() {
  std::set<std::string> builders;
  for (const auto& c : all_cases()) {
    builders.insert(c.builders.begin(), c.builders.end());
  }
  return builders;
}

}  // namespace qsmt::conformance

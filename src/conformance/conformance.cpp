#include "conformance/conformance.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "conformance/spectrum.hpp"
#include "util/require.hpp"

namespace qsmt::conformance {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void record_failure(ConformanceReport& report, const ConformanceCase& c,
                    const std::string& what, std::uint64_t object,
                    double energy) {
  if (report.failures.size() >= kMaxReportedFailures) return;
  std::ostringstream out;
  out << what << ": object " << (c.describe ? c.describe(object)
                                            : std::to_string(object))
      << " at energy " << energy;
  report.failures.push_back(out.str());
}

}  // namespace

ConformanceReport check_case(const ConformanceCase& c) {
  require(static_cast<bool>(c.classify),
          "check_case: case '" + c.name + "' has no classifier");
  const Spectrum spectrum = sweep_spectrum(c.model, c.object_bits);

  ConformanceReport report;
  report.name = c.name;
  report.op = c.op;
  report.num_variables = spectrum.num_variables;
  report.object_bits = spectrum.object_bits;
  report.num_states = spectrum.num_states;
  report.num_objects = spectrum.object_min_energy.size();
  report.ground_energy = spectrum.ground_energy;
  report.gap_floor = c.gap_floor;
  report.satisfying_band_max = -kInf;
  report.violating_min = kInf;
  report.sound = true;
  report.complete = true;

  const double ground_ceiling = spectrum.ground_energy + kEnergyTolerance;
  for (std::uint64_t object = 0; object < report.num_objects; ++object) {
    const double energy = spectrum.object_min_energy[object];
    const Classified verdict = c.classify(object);
    const bool in_ground_band = energy <= ground_ceiling;
    if (in_ground_band) ++report.ground_band_size;

    if (verdict.satisfies) {
      ++report.num_satisfying;
      if (energy > report.satisfying_band_max) {
        report.satisfying_band_max = energy;
      }
    } else {
      ++report.num_violating;
      if (energy < report.violating_min) report.violating_min = energy;
      if (in_ground_band) {
        // A violating object in the ground band: the annealer's minimum is
        // not a solution — the formulation is unsound.
        if (report.sound) report.sound = false;
        record_failure(report, c, "unsound ground state", object, energy);
      }
    }

    if (verdict.in_ground_domain) {
      require(verdict.satisfies,
              "check_case: case '" + c.name +
                  "' classifies an object as ground-domain but unsatisfying");
      ++report.num_ground_domain;
      if (!in_ground_band) {
        // A documented-ground object the encoding prices above the minimum:
        // the annealer can never return it — the formulation is incomplete.
        if (report.complete) report.complete = false;
        record_failure(report, c, "missing from ground band", object, energy);
      }
    }
  }

  require(report.num_ground_domain > 0,
          "check_case: case '" + c.name + "' has an empty ground domain");
  report.min_gap = report.violating_min - report.ground_energy;
  report.gap_safe = report.min_gap >= c.gap_floor - kEnergyTolerance;
  if (!report.gap_safe) {
    std::ostringstream out;
    out << "gap " << report.min_gap << " below floor " << c.gap_floor;
    report.failures.push_back(out.str());
  }
  report.as_expected = report.sound == c.expect_sound &&
                       report.complete == c.expect_complete && report.gap_safe;
  return report;
}

std::string report_json(const ConformanceReport& report) {
  std::ostringstream out;
  out.precision(12);
  const auto finite = [](double v) {
    return std::isfinite(v) ? v : (v > 0 ? 1e300 : -1e300);
  };
  out << "{\"name\": \"" << report.name << "\", \"op\": \"" << report.op
      << "\", \"num_variables\": " << report.num_variables
      << ", \"object_bits\": " << report.object_bits
      << ", \"num_states\": " << report.num_states
      << ", \"num_objects\": " << report.num_objects
      << ", \"num_satisfying\": " << report.num_satisfying
      << ", \"num_ground_domain\": " << report.num_ground_domain
      << ", \"num_violating\": " << report.num_violating
      << ", \"ground_band_size\": " << report.ground_band_size
      << ", \"ground_energy\": " << report.ground_energy
      << ", \"satisfying_band_max\": " << finite(report.satisfying_band_max)
      << ", \"violating_min\": " << finite(report.violating_min)
      << ", \"min_gap\": " << finite(report.min_gap)
      << ", \"gap_floor\": " << report.gap_floor
      << ", \"sound\": " << (report.sound ? "true" : "false")
      << ", \"complete\": " << (report.complete ? "true" : "false")
      << ", \"gap_safe\": " << (report.gap_safe ? "true" : "false")
      << ", \"as_expected\": " << (report.as_expected ? "true" : "false")
      << "}";
  return out.str();
}

}  // namespace qsmt::conformance

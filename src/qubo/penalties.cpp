#include "qubo/penalties.hpp"

namespace qsmt::qubo {

void add_one_hot(QuboModel& model, std::span<const std::size_t> variables,
                 double strength) {
  // (Σ x - 1)^2 = Σ x^2 - 2 Σ x + 2 Σ_{i<j} x_i x_j + 1
  //             = -Σ x + 2 Σ_{i<j} x_i x_j + 1   (x^2 = x)
  for (std::size_t v : variables) model.add_linear(v, -strength);
  for (std::size_t a = 0; a < variables.size(); ++a) {
    for (std::size_t b = a + 1; b < variables.size(); ++b) {
      model.add_quadratic(variables[a], variables[b], 2.0 * strength);
    }
  }
  model.add_offset(strength);
}

void add_pairwise_exclusion(QuboModel& model,
                            std::span<const std::size_t> variables,
                            double strength) {
  for (std::size_t a = 0; a < variables.size(); ++a) {
    for (std::size_t b = a + 1; b < variables.size(); ++b) {
      model.add_quadratic(variables[a], variables[b], strength);
    }
  }
}

void add_equal_bits(QuboModel& model, std::size_t i, std::size_t j,
                    double strength) {
  model.add_linear(i, strength);
  model.add_linear(j, strength);
  model.add_quadratic(i, j, -2.0 * strength);
}

void add_differ_bits(QuboModel& model, std::size_t i, std::size_t j,
                     double strength) {
  model.add_offset(strength);
  model.add_linear(i, -strength);
  model.add_linear(j, -strength);
  model.add_quadratic(i, j, 2.0 * strength);
}

void add_exactly_k(QuboModel& model, std::span<const std::size_t> variables,
                   std::size_t k, double strength) {
  // (Σ x - k)^2 = Σ x (1 - 2k) + 2 Σ_{i<j} x_i x_j + k^2
  const double kd = static_cast<double>(k);
  for (std::size_t v : variables)
    model.add_linear(v, strength * (1.0 - 2.0 * kd));
  for (std::size_t a = 0; a < variables.size(); ++a) {
    for (std::size_t b = a + 1; b < variables.size(); ++b) {
      model.add_quadratic(variables[a], variables[b], 2.0 * strength);
    }
  }
  model.add_offset(strength * kd * kd);
}

void pin_bit(QuboModel& model, std::size_t i, bool bit, double strength) {
  model.add_linear(i, bit ? -strength : strength);
}

}  // namespace qsmt::qubo

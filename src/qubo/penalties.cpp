#include "qubo/penalties.hpp"

#include "qubo/builder.hpp"

namespace qsmt::qubo {

// The gadgets are header templates (they must work for both QuboModel and
// QuboBuilder); instantiate both here so each remains link-checked even when
// a client only uses one of the two.
template void add_one_hot<QuboModel>(QuboModel&, std::span<const std::size_t>,
                                     double);
template void add_one_hot<QuboBuilder>(QuboBuilder&,
                                       std::span<const std::size_t>, double);
template void add_pairwise_exclusion<QuboModel>(QuboModel&,
                                                std::span<const std::size_t>,
                                                double);
template void add_pairwise_exclusion<QuboBuilder>(QuboBuilder&,
                                                  std::span<const std::size_t>,
                                                  double);
template void add_equal_bits<QuboModel>(QuboModel&, std::size_t, std::size_t,
                                        double);
template void add_equal_bits<QuboBuilder>(QuboBuilder&, std::size_t,
                                          std::size_t, double);
template void add_differ_bits<QuboModel>(QuboModel&, std::size_t, std::size_t,
                                         double);
template void add_differ_bits<QuboBuilder>(QuboBuilder&, std::size_t,
                                           std::size_t, double);
template void add_exactly_k<QuboModel>(QuboModel&, std::span<const std::size_t>,
                                       std::size_t, double);
template void add_exactly_k<QuboBuilder>(QuboBuilder&,
                                         std::span<const std::size_t>,
                                         std::size_t, double);
template void pin_bit<QuboModel>(QuboModel&, std::size_t, bool, double);
template void pin_bit<QuboBuilder>(QuboBuilder&, std::size_t, bool, double);

}  // namespace qsmt::qubo

// Text serialization of QUBO models.
//
// Two formats:
//  * COO text ("qubo <n> <m> <offset>" header, then one "i j value" line per
//    nonzero; i == j rows are linear terms) — lossless round-trip, used for
//    persisting models and cross-checking against external tools.
//  * Dense pretty-printing with optional abbreviation, matching the style of
//    the paper's Table 1 matrix snippets.
#pragma once

#include <iosfwd>
#include <string>

#include "qubo/qubo_model.hpp"

namespace qsmt::qubo {

/// Writes the COO representation (deterministic order: linear terms by
/// index, then quadratic terms sorted by (i, j)).
void write_coo(std::ostream& out, const QuboModel& model);

/// Convenience wrapper returning the COO text.
std::string to_coo_string(const QuboModel& model);

/// Parses the COO representation. Throws std::invalid_argument on malformed
/// input (bad header, indices out of range, trailing junk).
QuboModel read_coo(std::istream& in);

/// Convenience wrapper parsing from a string.
QuboModel from_coo_string(const std::string& text);

/// Pretty-prints the dense upper-triangular matrix. When the model has more
/// than `max_dim` variables the output is abbreviated with ellipses, the way
/// the paper abbreviates Table 1 ("The matrices are abbreviated due to space
/// limitations").
std::string format_dense(const QuboModel& model, std::size_t max_dim = 10,
                         int precision = 2);

}  // namespace qsmt::qubo

// CSR-style adjacency view of a QuboModel for fast annealing sweeps.
//
// Samplers flip one bit at a time; the energy change of flipping x_i is
//   Δ_i = (1 - 2 x_i) * (q_ii + Σ_{j ~ i} q_ij x_j)
// which needs O(degree(i)) work given a neighbor list. Building the list is
// O(n + m) once per model and is shared read-only across all OpenMP worker
// threads (no mutation after construction).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qubo/qubo_model.hpp"

namespace qsmt::qubo {

class QuboAdjacency {
 public:
  /// Builds the adjacency for `model`. The adjacency snapshots the
  /// coefficients; later edits to `model` are not reflected.
  explicit QuboAdjacency(const QuboModel& model);

  std::size_t num_variables() const noexcept { return linear_.size(); }
  std::size_t num_interactions() const noexcept { return neighbors_.size() / 2; }
  double offset() const noexcept { return offset_; }

  double linear(std::size_t i) const noexcept { return linear_[i]; }

  /// Neighbors of variable i as (neighbor index, coefficient) pairs.
  struct Neighbor {
    std::uint32_t index;
    double coefficient;
  };
  std::span<const Neighbor> neighbors(std::size_t i) const noexcept {
    return {neighbors_.data() + row_start_[i],
            row_start_[i + 1] - row_start_[i]};
  }

  /// Total energy of a full assignment.
  double energy(std::span<const std::uint8_t> bits) const;

  /// Energy delta of flipping bit i within assignment `bits`.
  double flip_delta(std::span<const std::uint8_t> bits, std::size_t i) const;

  /// Local field q_ii + Σ_j q_ij x_j used by both flip_delta and samplers
  /// that maintain incremental fields themselves.
  double local_field(std::span<const std::uint8_t> bits, std::size_t i) const;

  /// Replica-major bulk local fields for the batched sweep kernel
  /// (docs/hotpath.md, "The batched substrate"). `replica_words[i]` packs
  /// one bit per replica lane of variable i (bit r = lane r's value);
  /// writes fields[i * stride + r] = q_ii + Σ_j q_ij x_j^(r) for every
  /// lane r < num_replicas, accumulating neighbors in CSR order so each
  /// lane's value is bit-identical to local_field() on that lane's
  /// unpacked assignment. Lanes in [num_replicas, stride) are untouched.
  void bulk_local_fields(std::span<const std::uint64_t> replica_words,
                         std::size_t num_replicas, std::size_t stride,
                         std::span<double> fields) const;

  /// Largest |coefficient| across linear and quadratic terms (0 for an empty
  /// adjacency). Matches QuboModel::max_abs_coefficient() for the source
  /// model modulo exactly-zero quadratic entries, which both ignore.
  double max_abs_coefficient() const noexcept;

  /// Smallest nonzero |coefficient| (0 for an all-zero adjacency).
  double min_abs_nonzero_coefficient() const noexcept;

  /// Reconstructs an equivalent QuboModel (used by Sampler's generic
  /// adjacency entry point for samplers without a native CSR path).
  QuboModel to_model() const;

 private:
  std::vector<double> linear_;
  std::vector<std::size_t> row_start_;
  std::vector<Neighbor> neighbors_;
  double offset_ = 0.0;
};

}  // namespace qsmt::qubo

// Reusable QUBO penalty gadgets.
//
// QUBO has no hard constraints; instead, constraint violations are priced
// into the objective ("penalty functions" in the paper's terminology,
// §2.3). Each helper below adds a standard gadget whose minimum-energy
// configurations are exactly the feasible assignments.
//
// The helpers are templates over the model representation so they work
// against both the incremental QuboModel and the flat-assembly QuboBuilder
// (qubo/builder.hpp); both expose the same add_linear / add_quadratic /
// add_offset mutation surface.
#pragma once

#include <span>

#include "qubo/qubo_model.hpp"

namespace qsmt::qubo {

/// Adds strength * (Σ x_v - 1)^2 over `variables`: minimised (adding
/// exactly 0 after the constant) when exactly one variable is 1. This is the
/// one-hot constraint used by the string-includes formulation (§4.4) and the
/// one-hot regex class encoding extension.
template <typename Model>
void add_one_hot(Model& model, std::span<const std::size_t> variables,
                 double strength) {
  // (Σ x - 1)^2 = Σ x^2 - 2 Σ x + 2 Σ_{i<j} x_i x_j + 1
  //             = -Σ x + 2 Σ_{i<j} x_i x_j + 1   (x^2 = x)
  for (std::size_t v : variables) model.add_linear(v, -strength);
  for (std::size_t a = 0; a < variables.size(); ++a) {
    for (std::size_t b = a + 1; b < variables.size(); ++b) {
      model.add_quadratic(variables[a], variables[b], 2.0 * strength);
    }
  }
  model.add_offset(strength);
}

/// Adds strength * x_i x_j for every pair: penalises any two variables being
/// 1 together but allows all-zero. The paper's §4.4 penalty
/// B Σ_{i<j} x_i x_j is exactly this gadget.
template <typename Model>
void add_pairwise_exclusion(Model& model,
                            std::span<const std::size_t> variables,
                            double strength) {
  for (std::size_t a = 0; a < variables.size(); ++a) {
    for (std::size_t b = a + 1; b < variables.size(); ++b) {
      model.add_quadratic(variables[a], variables[b], strength);
    }
  }
}

/// Adds strength * (x_i + x_j - 2 x_i x_j): zero when x_i == x_j, strength
/// otherwise (an XNOR/equality gadget). The palindrome formulation (§4.10)
/// applies this to mirrored bit positions.
template <typename Model>
void add_equal_bits(Model& model, std::size_t i, std::size_t j,
                    double strength) {
  model.add_linear(i, strength);
  model.add_linear(j, strength);
  model.add_quadratic(i, j, -2.0 * strength);
}

/// Adds strength * (1 - x_i - x_j + 2 x_i x_j) - strength*0: zero when
/// x_i != x_j, strength otherwise (an XOR/inequality gadget). Constant part
/// goes to the offset so feasible assignments sit at energy 0.
template <typename Model>
void add_differ_bits(Model& model, std::size_t i, std::size_t j,
                     double strength) {
  model.add_offset(strength);
  model.add_linear(i, -strength);
  model.add_linear(j, -strength);
  model.add_quadratic(i, j, 2.0 * strength);
}

/// Adds strength * (Σ x_v - k)^2: minimised when exactly k of the variables
/// are 1 (a cardinality constraint).
template <typename Model>
void add_exactly_k(Model& model, std::span<const std::size_t> variables,
                   std::size_t k, double strength) {
  // (Σ x - k)^2 = Σ x (1 - 2k) + 2 Σ_{i<j} x_i x_j + k^2
  const double kd = static_cast<double>(k);
  for (std::size_t v : variables)
    model.add_linear(v, strength * (1.0 - 2.0 * kd));
  for (std::size_t a = 0; a < variables.size(); ++a) {
    for (std::size_t b = a + 1; b < variables.size(); ++b) {
      model.add_quadratic(variables[a], variables[b], 2.0 * strength);
    }
  }
  model.add_offset(strength * kd * kd);
}

/// Pins variable i toward `bit`: adds -strength when the target bit is 1 and
/// +strength when 0, the paper's universal diagonal encoding (§4.1).
template <typename Model>
void pin_bit(Model& model, std::size_t i, bool bit, double strength) {
  model.add_linear(i, bit ? -strength : strength);
}

}  // namespace qsmt::qubo

// Reusable QUBO penalty gadgets.
//
// QUBO has no hard constraints; instead, constraint violations are priced
// into the objective ("penalty functions" in the paper's terminology,
// §2.3). Each helper below adds a standard gadget whose minimum-energy
// configurations are exactly the feasible assignments.
#pragma once

#include <span>

#include "qubo/qubo_model.hpp"

namespace qsmt::qubo {

/// Adds strength * (Σ x_v - 1)^2 over `variables`: minimised (adding
/// exactly 0 after the constant) when exactly one variable is 1. This is the
/// one-hot constraint used by the string-includes formulation (§4.4) and the
/// one-hot regex class encoding extension.
void add_one_hot(QuboModel& model, std::span<const std::size_t> variables,
                 double strength);

/// Adds strength * x_i x_j for every pair: penalises any two variables being
/// 1 together but allows all-zero. The paper's §4.4 penalty
/// B Σ_{i<j} x_i x_j is exactly this gadget.
void add_pairwise_exclusion(QuboModel& model,
                            std::span<const std::size_t> variables,
                            double strength);

/// Adds strength * (x_i + x_j - 2 x_i x_j): zero when x_i == x_j, strength
/// otherwise (an XNOR/equality gadget). The palindrome formulation (§4.10)
/// applies this to mirrored bit positions.
void add_equal_bits(QuboModel& model, std::size_t i, std::size_t j,
                    double strength);

/// Adds strength * (1 - x_i - x_j + 2 x_i x_j) - strength*0: zero when
/// x_i != x_j, strength otherwise (an XOR/inequality gadget). Constant part
/// goes to the offset so feasible assignments sit at energy 0.
void add_differ_bits(QuboModel& model, std::size_t i, std::size_t j,
                     double strength);

/// Adds strength * (Σ x_v - k)^2: minimised when exactly k of the variables
/// are 1 (a cardinality constraint).
void add_exactly_k(QuboModel& model, std::span<const std::size_t> variables,
                   std::size_t k, double strength);

/// Pins variable i toward `bit`: adds -strength when the target bit is 1 and
/// +strength when 0, the paper's universal diagonal encoding (§4.1).
void pin_bit(QuboModel& model, std::size_t i, bool bit, double strength);

}  // namespace qsmt::qubo

// Quadratization: reducing higher-order boolean penalty terms to QUBO.
//
// QUBO only has pairwise products, but several useful string constraints —
// "this window must NOT spell the forbidden substring" — are naturally
// k-ary conjunctions over bits. The standard fix is ancilla variables with
// an AND gadget whose ground states satisfy w = x ∧ y exactly and whose
// violations cost at least the gadget strength (Boros & Hammer 2002):
//
//   P_and(w; x, y) = penalty * (3w + xy - 2wx - 2wy)
//
// k-ary conjunctions chain the gadget left to right, spending k-1 ancillas.
// Negated literals are realised with a NOT ancilla (an XOR gadget against
// the source bit) first.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qubo/qubo_model.hpp"

namespace qsmt::qubo {

/// A possibly-negated reference to a QUBO variable.
struct BoolLiteral {
  std::size_t variable;
  bool positive = true;
};

/// Appends an ancilla variable w to `model` constrained (by penalty terms of
/// strength `penalty`) to equal x AND y, and returns w's index. Any
/// assignment with w != x*y costs at least `penalty` more than the repaired
/// assignment.
std::size_t add_and_ancilla(QuboModel& model, std::size_t x, std::size_t y,
                            double penalty);

/// Appends an ancilla n constrained to equal NOT x; returns n's index.
std::size_t add_not_ancilla(QuboModel& model, std::size_t x, double penalty);

/// Materialises the conjunction of `literals` into a single output variable
/// (returned index) using a left-to-right chain of AND ancillas; NOT
/// ancillas are inserted for negative literals. With one positive literal no
/// ancilla is spent and the literal's own variable index is returned.
/// Requires at least one literal.
std::size_t add_conjunction(QuboModel& model,
                            std::span<const BoolLiteral> literals,
                            double penalty);

/// Number of ancilla variables add_conjunction will append for `literals`
/// (NOT ancillas for the negative ones plus k-1 AND ancillas).
std::size_t conjunction_ancilla_count(std::span<const BoolLiteral> literals);

}  // namespace qsmt::qubo

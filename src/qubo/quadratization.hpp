// Quadratization: reducing higher-order boolean penalty terms to QUBO.
//
// QUBO only has pairwise products, but several useful string constraints —
// "this window must NOT spell the forbidden substring" — are naturally
// k-ary conjunctions over bits. The standard fix is ancilla variables with
// an AND gadget whose ground states satisfy w = x ∧ y exactly and whose
// violations cost at least the gadget strength (Boros & Hammer 2002):
//
//   P_and(w; x, y) = penalty * (3w + xy - 2wx - 2wy)
//
// k-ary conjunctions chain the gadget left to right, spending k-1 ancillas.
// Negated literals are realised with a NOT ancilla (an XOR gadget against
// the source bit) first.
//
// Like the penalty gadgets, these are templates over the model
// representation (QuboModel or QuboBuilder).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qubo/penalties.hpp"
#include "qubo/qubo_model.hpp"
#include "util/require.hpp"

namespace qsmt::qubo {

/// A possibly-negated reference to a QUBO variable.
struct BoolLiteral {
  std::size_t variable;
  bool positive = true;
};

/// Appends an ancilla variable w to `model` constrained (by penalty terms of
/// strength `penalty`) to equal x AND y, and returns w's index. Any
/// assignment with w != x*y costs at least `penalty` more than the repaired
/// assignment.
template <typename Model>
std::size_t add_and_ancilla(Model& model, std::size_t x, std::size_t y,
                            double penalty) {
  require(x != y, "add_and_ancilla: x and y must differ (w = x AND x is x)");
  const std::size_t w = model.num_variables();
  model.ensure_variables(w + 1);
  // penalty * (3w + xy - 2wx - 2wy): zero exactly when w == x*y, and every
  // violating assignment costs >= penalty.
  model.add_linear(w, 3.0 * penalty);
  model.add_quadratic(x, y, penalty);
  model.add_quadratic(w, x, -2.0 * penalty);
  model.add_quadratic(w, y, -2.0 * penalty);
  return w;
}

/// Appends an ancilla n constrained to equal NOT x; returns n's index.
template <typename Model>
std::size_t add_not_ancilla(Model& model, std::size_t x, double penalty) {
  const std::size_t n = model.num_variables();
  model.ensure_variables(n + 1);
  add_differ_bits(model, x, n, penalty);
  return n;
}

/// Materialises the conjunction of `literals` into a single output variable
/// (returned index) using a left-to-right chain of AND ancillas; NOT
/// ancillas are inserted for negative literals. With one positive literal no
/// ancilla is spent and the literal's own variable index is returned.
/// Requires at least one literal.
template <typename Model>
std::size_t add_conjunction(Model& model,
                            std::span<const BoolLiteral> literals,
                            double penalty) {
  require(!literals.empty(), "add_conjunction: need at least one literal");
  // Normalise to positive variable indices, spending NOT ancillas.
  std::vector<std::size_t> inputs;
  inputs.reserve(literals.size());
  for (const BoolLiteral& lit : literals) {
    inputs.push_back(lit.positive ? lit.variable
                                  : add_not_ancilla(model, lit.variable,
                                                    penalty));
  }
  std::size_t accumulator = inputs[0];
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    accumulator = add_and_ancilla(model, accumulator, inputs[i], penalty);
  }
  return accumulator;
}

/// Number of ancilla variables add_conjunction will append for `literals`
/// (NOT ancillas for the negative ones plus k-1 AND ancillas).
std::size_t conjunction_ancilla_count(std::span<const BoolLiteral> literals);

}  // namespace qsmt::qubo

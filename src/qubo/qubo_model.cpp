#include "qubo/qubo_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace qsmt::qubo {

QuboModel::QuboModel(std::size_t num_variables) : linear_(num_variables, 0.0) {}

void QuboModel::ensure_variables(std::size_t n) {
  if (n > linear_.size()) linear_.resize(n, 0.0);
}

void QuboModel::add_linear(std::size_t i, double value) {
  ensure_variables(i + 1);
  linear_[i] += value;
}

void QuboModel::set_linear(std::size_t i, double value) {
  ensure_variables(i + 1);
  linear_[i] = value;
}

double QuboModel::linear(std::size_t i) const {
  require_in_range(i < linear_.size(), "QuboModel::linear: index out of range");
  return linear_[i];
}

void QuboModel::add_quadratic(std::size_t i, std::size_t j, double value) {
  if (i == j) {
    // x_i * x_i == x_i for binary variables.
    add_linear(i, value);
    return;
  }
  if (i > j) std::swap(i, j);
  ensure_variables(j + 1);
  quadratic_[pack_pair(static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(j))] += value;
}

void QuboModel::set_quadratic(std::size_t i, std::size_t j, double value) {
  if (i == j) {
    set_linear(i, value);
    return;
  }
  if (i > j) std::swap(i, j);
  ensure_variables(j + 1);
  quadratic_[pack_pair(static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(j))] = value;
}

double QuboModel::quadratic(std::size_t i, std::size_t j) const {
  require_in_range(i < linear_.size() && j < linear_.size(),
                   "QuboModel::quadratic: index out of range");
  if (i == j) return 0.0;
  if (i > j) std::swap(i, j);
  auto it = quadratic_.find(pack_pair(static_cast<std::uint32_t>(i),
                                      static_cast<std::uint32_t>(j)));
  return it == quadratic_.end() ? 0.0 : it->second;
}

double QuboModel::energy(std::span<const std::uint8_t> bits) const {
  require(bits.size() == linear_.size(),
          "QuboModel::energy: bit vector size mismatch");
  double e = offset_;
  for (std::size_t i = 0; i < linear_.size(); ++i) {
    if (bits[i]) e += linear_[i];
  }
  for (const auto& [key, value] : quadratic_) {
    const auto i = static_cast<std::size_t>(key >> 32);
    const auto j = static_cast<std::size_t>(key & 0xffffffffULL);
    if (bits[i] && bits[j]) e += value;
  }
  return e;
}

void QuboModel::scale(double factor) {
  for (double& v : linear_) v *= factor;
  for (auto& [key, value] : quadratic_) value *= factor;
  offset_ *= factor;
}

void QuboModel::add_model(const QuboModel& other, std::size_t variable_offset) {
  ensure_variables(other.num_variables() + variable_offset);
  for (std::size_t i = 0; i < other.linear_.size(); ++i) {
    if (other.linear_[i] != 0.0) linear_[i + variable_offset] += other.linear_[i];
  }
  for (const auto& [key, value] : other.quadratic_) {
    const auto i = static_cast<std::size_t>(key >> 32) + variable_offset;
    const auto j = static_cast<std::size_t>(key & 0xffffffffULL) + variable_offset;
    add_quadratic(i, j, value);
  }
  offset_ += other.offset_;
}

double QuboModel::max_abs_coefficient() const noexcept {
  double best = 0.0;
  for (double v : linear_) best = std::max(best, std::abs(v));
  for (const auto& [key, value] : quadratic_)
    best = std::max(best, std::abs(value));
  return best;
}

double QuboModel::min_abs_nonzero_coefficient() const noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (double v : linear_)
    if (v != 0.0) best = std::min(best, std::abs(v));
  for (const auto& [key, value] : quadratic_)
    if (value != 0.0) best = std::min(best, std::abs(value));
  return std::isinf(best) ? 0.0 : best;
}

std::vector<double> QuboModel::to_dense() const {
  const std::size_t n = linear_.size();
  std::vector<double> dense(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) dense[i * n + i] = linear_[i];
  for (const auto& [key, value] : quadratic_) {
    const auto i = static_cast<std::size_t>(key >> 32);
    const auto j = static_cast<std::size_t>(key & 0xffffffffULL);
    dense[i * n + j] = value;
  }
  return dense;
}

void QuboModel::prune_zeros() {
  for (auto it = quadratic_.begin(); it != quadratic_.end();) {
    if (it->second == 0.0)
      it = quadratic_.erase(it);
    else
      ++it;
  }
}

bool QuboModel::operator==(const QuboModel& other) const {
  if (linear_ != other.linear_ || offset_ != other.offset_) return false;
  // Compare quadratic maps treating missing entries as zero.
  for (const auto& [key, value] : quadratic_) {
    auto it = other.quadratic_.find(key);
    const double rhs = it == other.quadratic_.end() ? 0.0 : it->second;
    if (value != rhs) return false;
  }
  for (const auto& [key, value] : other.quadratic_) {
    if (!quadratic_.contains(key) && value != 0.0) return false;
  }
  return true;
}

}  // namespace qsmt::qubo

#include "qubo/quadratization.hpp"

#include "qubo/penalties.hpp"
#include "util/require.hpp"

namespace qsmt::qubo {

std::size_t add_and_ancilla(QuboModel& model, std::size_t x, std::size_t y,
                            double penalty) {
  require(x != y, "add_and_ancilla: x and y must differ (w = x AND x is x)");
  const std::size_t w = model.num_variables();
  model.ensure_variables(w + 1);
  // penalty * (3w + xy - 2wx - 2wy): zero exactly when w == x*y, and every
  // violating assignment costs >= penalty.
  model.add_linear(w, 3.0 * penalty);
  model.add_quadratic(x, y, penalty);
  model.add_quadratic(w, x, -2.0 * penalty);
  model.add_quadratic(w, y, -2.0 * penalty);
  return w;
}

std::size_t add_not_ancilla(QuboModel& model, std::size_t x, double penalty) {
  const std::size_t n = model.num_variables();
  model.ensure_variables(n + 1);
  add_differ_bits(model, x, n, penalty);
  return n;
}

std::size_t conjunction_ancilla_count(std::span<const BoolLiteral> literals) {
  std::size_t negations = 0;
  for (const BoolLiteral& lit : literals) negations += lit.positive ? 0 : 1;
  const std::size_t k = literals.size();
  return negations + (k >= 2 ? k - 1 : 0);
}

std::size_t add_conjunction(QuboModel& model,
                            std::span<const BoolLiteral> literals,
                            double penalty) {
  require(!literals.empty(), "add_conjunction: need at least one literal");
  // Normalise to positive variable indices, spending NOT ancillas.
  std::vector<std::size_t> inputs;
  inputs.reserve(literals.size());
  for (const BoolLiteral& lit : literals) {
    inputs.push_back(lit.positive ? lit.variable
                                  : add_not_ancilla(model, lit.variable,
                                                    penalty));
  }
  std::size_t accumulator = inputs[0];
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    accumulator = add_and_ancilla(model, accumulator, inputs[i], penalty);
  }
  return accumulator;
}

}  // namespace qsmt::qubo

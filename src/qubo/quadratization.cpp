#include "qubo/quadratization.hpp"

#include "qubo/builder.hpp"

namespace qsmt::qubo {

std::size_t conjunction_ancilla_count(std::span<const BoolLiteral> literals) {
  std::size_t negations = 0;
  for (const BoolLiteral& lit : literals) negations += lit.positive ? 0 : 1;
  const std::size_t k = literals.size();
  return negations + (k >= 2 ? k - 1 : 0);
}

// Gadget templates instantiated for both model representations (see
// penalties.cpp for rationale).
template std::size_t add_and_ancilla<QuboModel>(QuboModel&, std::size_t,
                                                std::size_t, double);
template std::size_t add_and_ancilla<QuboBuilder>(QuboBuilder&, std::size_t,
                                                  std::size_t, double);
template std::size_t add_not_ancilla<QuboModel>(QuboModel&, std::size_t,
                                                double);
template std::size_t add_not_ancilla<QuboBuilder>(QuboBuilder&, std::size_t,
                                                  double);
template std::size_t add_conjunction<QuboModel>(QuboModel&,
                                                std::span<const BoolLiteral>,
                                                double);
template std::size_t add_conjunction<QuboBuilder>(QuboBuilder&,
                                                  std::span<const BoolLiteral>,
                                                  double);

}  // namespace qsmt::qubo

#include "qubo/serialize.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/require.hpp"

namespace qsmt::qubo {

void write_coo(std::ostream& out, const QuboModel& model) {
  std::vector<std::uint64_t> keys;
  keys.reserve(model.quadratic_terms().size());
  for (const auto& [key, value] : model.quadratic_terms()) {
    if (value != 0.0) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());

  std::size_t num_linear = 0;
  for (double v : model.linear_terms())
    if (v != 0.0) ++num_linear;

  out << "qubo " << model.num_variables() << ' ' << num_linear + keys.size()
      << ' ' << std::setprecision(17) << model.offset() << '\n';
  for (std::size_t i = 0; i < model.num_variables(); ++i) {
    const double v = model.linear_terms()[i];
    if (v != 0.0) out << i << ' ' << i << ' ' << v << '\n';
  }
  for (std::uint64_t key : keys) {
    out << (key >> 32) << ' ' << (key & 0xffffffffULL) << ' '
        << model.quadratic_terms().at(key) << '\n';
  }
}

std::string to_coo_string(const QuboModel& model) {
  std::ostringstream out;
  write_coo(out, model);
  return out.str();
}

QuboModel read_coo(std::istream& in) {
  std::string magic;
  std::size_t n = 0;
  std::size_t entries = 0;
  double offset = 0.0;
  in >> magic >> n >> entries >> offset;
  require(static_cast<bool>(in) && magic == "qubo",
          "read_coo: bad header, expected 'qubo <n> <entries> <offset>'");
  QuboModel model(n);
  model.set_offset(offset);
  for (std::size_t e = 0; e < entries; ++e) {
    std::size_t i = 0;
    std::size_t j = 0;
    double value = 0.0;
    in >> i >> j >> value;
    require(static_cast<bool>(in), "read_coo: truncated entry list");
    require(i < n && j < n, "read_coo: index out of range");
    if (i == j)
      model.add_linear(i, value);
    else
      model.add_quadratic(i, j, value);
  }
  return model;
}

QuboModel from_coo_string(const std::string& text) {
  std::istringstream in(text);
  return read_coo(in);
}

std::string format_dense(const QuboModel& model, std::size_t max_dim,
                         int precision) {
  const std::size_t n = model.num_variables();
  const bool abbreviated = n > max_dim;
  const std::size_t shown = abbreviated ? max_dim : n;
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision);
  for (std::size_t i = 0; i < shown; ++i) {
    for (std::size_t j = 0; j < shown; ++j) {
      double v = 0.0;
      if (i == j)
        v = model.linear_terms()[i];
      else if (i < j)
        v = model.quadratic(i, j);
      out << std::setw(precision + 5) << v;
      if (j + 1 < shown) out << ' ';
    }
    if (abbreviated) out << "  ...";
    out << '\n';
  }
  if (abbreviated) out << "  ... (" << n << " x " << n << " total)\n";
  return out.str();
}

}  // namespace qsmt::qubo

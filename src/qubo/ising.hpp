// Ising model and QUBO <-> Ising conversion.
//
// Quantum annealers natively minimise the Ising Hamiltonian
//   H(s) = offset + Σ_i h_i s_i + Σ_{i<j} J_ij s_i s_j,   s ∈ {-1,+1}^n.
// QUBO and Ising are affinely equivalent under x = (1+s)/2; the
// path-integral quantum annealer and the hardware-embedding layer both
// work in Ising space, so the conversion lives here.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "qubo/qubo_model.hpp"

namespace qsmt::qubo {

struct IsingModel {
  std::vector<double> h;                              ///< Local fields.
  std::unordered_map<std::uint64_t, double> coupling; ///< J_ij, key pack_pair(i<j).
  double offset = 0.0;

  std::size_t num_variables() const noexcept { return h.size(); }

  /// Adds `value` to J_ij (i != j required; symmetric in i/j).
  void add_coupling(std::size_t i, std::size_t j, double value);

  /// J_ij or 0 when absent.
  double coupling_at(std::size_t i, std::size_t j) const;

  /// H(s) for spins in {-1,+1}.
  double energy(std::span<const std::int8_t> spins) const;
};

/// Exact affine conversion: for all x, qubo.energy(x) == ising.energy(2x-1).
IsingModel qubo_to_ising(const QuboModel& qubo);

/// Inverse conversion; round-trips up to floating-point association error.
QuboModel ising_to_qubo(const IsingModel& ising);

/// Maps {0,1} bits to {-1,+1} spins.
std::vector<std::int8_t> bits_to_spins(std::span<const std::uint8_t> bits);

/// Maps {-1,+1} spins to {0,1} bits.
std::vector<std::uint8_t> spins_to_bits(std::span<const std::int8_t> spins);

}  // namespace qsmt::qubo

// Sparse QUBO (Quadratic Unconstrained Binary Optimization) model.
//
// A QUBO instance is  E(x) = offset + Σ_i q_ii x_i + Σ_{i<j} q_ij x_i x_j
// over binary variables x ∈ {0,1}^n. This is the exchange format between
// the string-constraint compilers (src/strqubo) and the annealing samplers
// (src/anneal), mirroring the role of dimod.BinaryQuadraticModel in the
// D-Wave stack the paper used.
//
// Storage is upper-triangular: quadratic(i,j) with i<j holds the full
// coefficient of the x_i x_j product (no symmetric halving).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace qsmt::qubo {

/// Packs an (i, j) index pair (i < j) into an unordered_map key.
constexpr std::uint64_t pack_pair(std::uint32_t i, std::uint32_t j) noexcept {
  return (static_cast<std::uint64_t>(i) << 32) | j;
}

class QuboModel {
 public:
  QuboModel() = default;

  /// Creates a model over `num_variables` binary variables, all zero
  /// coefficients.
  explicit QuboModel(std::size_t num_variables);

  std::size_t num_variables() const noexcept { return linear_.size(); }
  std::size_t num_interactions() const noexcept { return quadratic_.size(); }

  /// Grows the model to at least `n` variables (never shrinks).
  void ensure_variables(std::size_t n);

  /// Adds `value` to the linear coefficient q_ii. Grows the model if needed.
  void add_linear(std::size_t i, double value);

  /// Overwrites the linear coefficient q_ii. Grows the model if needed.
  void set_linear(std::size_t i, double value);

  /// Linear coefficient q_ii (0 when untouched). Throws std::out_of_range
  /// when i >= num_variables().
  double linear(std::size_t i) const;

  /// Adds `value` to the quadratic coefficient q_ij (order of i/j does not
  /// matter; i == j is routed to the linear term since x_i^2 = x_i).
  void add_quadratic(std::size_t i, std::size_t j, double value);

  /// Overwrites the quadratic coefficient q_ij.
  void set_quadratic(std::size_t i, std::size_t j, double value);

  /// Quadratic coefficient q_ij (0 when untouched). Throws when an index is
  /// out of range.
  double quadratic(std::size_t i, std::size_t j) const;

  double offset() const noexcept { return offset_; }
  void set_offset(double offset) noexcept { offset_ = offset; }
  void add_offset(double delta) noexcept { offset_ += delta; }

  /// Evaluates E(x). `bits.size()` must equal num_variables(); entries must
  /// be 0 or 1.
  double energy(std::span<const std::uint8_t> bits) const;

  /// Multiplies every coefficient (and the offset) by `factor`.
  void scale(double factor);

  /// Adds every term of `other` into this model. When `variable_offset` is
  /// nonzero, other's variable k maps onto this model's k + variable_offset.
  void add_model(const QuboModel& other, std::size_t variable_offset = 0);

  /// Largest |coefficient| across linear and quadratic terms (0 for an empty
  /// model). Used to auto-derive annealing temperature ranges.
  double max_abs_coefficient() const noexcept;

  /// Smallest nonzero |coefficient| (0 for an all-zero model).
  double min_abs_nonzero_coefficient() const noexcept;

  /// Dense row-major (n x n) upper-triangular matrix view; element [i*n+j]
  /// for i<=j. Intended for small models (tests, Table 1 printing).
  std::vector<double> to_dense() const;

  /// Access to the raw quadratic map for iteration (key = pack_pair(i, j)).
  const std::unordered_map<std::uint64_t, double>& quadratic_terms()
      const noexcept {
    return quadratic_;
  }

  /// Access to the raw linear coefficient array.
  const std::vector<double>& linear_terms() const noexcept { return linear_; }

  /// Removes stored quadratic entries that are exactly zero.
  void prune_zeros();

  /// Reserves hash capacity for `n` quadratic terms; bulk loaders (see
  /// QuboBuilder) call this once so a term stream inserts without rehashing.
  void reserve_interactions(std::size_t n) { quadratic_.reserve(n); }

  bool operator==(const QuboModel& other) const;

 private:
  std::vector<double> linear_;
  std::unordered_map<std::uint64_t, double> quadratic_;
  double offset_ = 0.0;
};

}  // namespace qsmt::qubo

#include "qubo/adjacency.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace qsmt::qubo {

QuboAdjacency::QuboAdjacency(const QuboModel& model)
    : linear_(model.linear_terms()), offset_(model.offset()) {
  const std::size_t n = linear_.size();
  std::vector<std::size_t> degree(n, 0);
  for (const auto& [key, value] : model.quadratic_terms()) {
    if (value == 0.0) continue;
    ++degree[key >> 32];
    ++degree[key & 0xffffffffULL];
  }
  row_start_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) row_start_[i + 1] = row_start_[i] + degree[i];
  neighbors_.resize(row_start_[n]);

  std::vector<std::size_t> cursor(row_start_.begin(), row_start_.end() - 1);
  for (const auto& [key, value] : model.quadratic_terms()) {
    if (value == 0.0) continue;
    const auto i = static_cast<std::uint32_t>(key >> 32);
    const auto j = static_cast<std::uint32_t>(key & 0xffffffffULL);
    neighbors_[cursor[i]++] = Neighbor{j, value};
    neighbors_[cursor[j]++] = Neighbor{i, value};
  }
  // Deterministic neighbor order independent of hash-map iteration.
  for (std::size_t i = 0; i < n; ++i) {
    std::sort(neighbors_.begin() + static_cast<std::ptrdiff_t>(row_start_[i]),
              neighbors_.begin() + static_cast<std::ptrdiff_t>(row_start_[i + 1]),
              [](const Neighbor& a, const Neighbor& b) { return a.index < b.index; });
  }
}

double QuboAdjacency::energy(std::span<const std::uint8_t> bits) const {
  require(bits.size() == linear_.size(),
          "QuboAdjacency::energy: bit vector size mismatch");
  double e = offset_;
  for (std::size_t i = 0; i < linear_.size(); ++i) {
    if (!bits[i]) continue;
    e += linear_[i];
    // Each quadratic term appears in both endpoint rows; count it once by
    // only accumulating neighbors with a larger index.
    for (const Neighbor& nb : neighbors(i)) {
      if (nb.index > i && bits[nb.index]) e += nb.coefficient;
    }
  }
  return e;
}

double QuboAdjacency::local_field(std::span<const std::uint8_t> bits,
                                  std::size_t i) const {
  double field = linear_[i];
  for (const Neighbor& nb : neighbors(i)) {
    if (bits[nb.index]) field += nb.coefficient;
  }
  return field;
}

void QuboAdjacency::bulk_local_fields(
    std::span<const std::uint64_t> replica_words, std::size_t num_replicas,
    std::size_t stride, std::span<double> fields) const {
  const std::size_t n = linear_.size();
  require(replica_words.size() == n,
          "QuboAdjacency::bulk_local_fields: replica word count mismatch");
  require(num_replicas >= 1 && num_replicas <= stride && num_replicas <= 64,
          "QuboAdjacency::bulk_local_fields: bad replica count");
  require(fields.size() >= n * stride,
          "QuboAdjacency::bulk_local_fields: field buffer too small");
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const Neighbor> row = neighbors(i);
    double* out = fields.data() + i * stride;
    for (std::size_t r = 0; r < num_replicas; ++r) {
      // Same conditional accumulation, in the same CSR order, as
      // local_field(): the batched kernel's starting fields must match the
      // scalar oracle's to the last bit.
      double field = linear_[i];
      for (const Neighbor& nb : row) {
        if ((replica_words[nb.index] >> r) & 1u) field += nb.coefficient;
      }
      out[r] = field;
    }
  }
}

double QuboAdjacency::flip_delta(std::span<const std::uint8_t> bits,
                                 std::size_t i) const {
  const double sign = bits[i] ? -1.0 : 1.0;
  return sign * local_field(bits, i);
}

double QuboAdjacency::max_abs_coefficient() const noexcept {
  double best = 0.0;
  for (double v : linear_) best = std::max(best, std::abs(v));
  for (const Neighbor& nb : neighbors_)
    best = std::max(best, std::abs(nb.coefficient));
  return best;
}

double QuboAdjacency::min_abs_nonzero_coefficient() const noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (double v : linear_)
    if (v != 0.0) best = std::min(best, std::abs(v));
  for (const Neighbor& nb : neighbors_)
    if (nb.coefficient != 0.0) best = std::min(best, std::abs(nb.coefficient));
  return std::isinf(best) ? 0.0 : best;
}

QuboModel QuboAdjacency::to_model() const {
  const std::size_t n = linear_.size();
  QuboModel model(n);
  model.set_offset(offset_);
  for (std::size_t i = 0; i < n; ++i) {
    if (linear_[i] != 0.0) model.set_linear(i, linear_[i]);
  }
  // Each edge is stored in both endpoint rows; emit it once from the lower
  // endpoint's row (neighbor index greater than the row index).
  for (std::size_t i = 0; i < n; ++i) {
    for (const Neighbor& nb : neighbors(i)) {
      if (nb.index > i) model.add_quadratic(i, nb.index, nb.coefficient);
    }
  }
  return model;
}

}  // namespace qsmt::qubo

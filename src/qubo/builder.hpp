// Flat COO assembly of QuboModels.
//
// The string-constraint compilers emit long streams of quadratic terms
// (pairwise one-hot penalties, AND-chain gadgets, mirror couplings) where
// the same (i, j) pair recurs many times. Feeding those streams through
// QuboModel::add_quadratic costs one hash probe — and the occasional
// rehash — per term. QuboBuilder instead appends every term to a flat
// (key, value) array and defers deduplication to build(), which merges
// duplicates in encounter order (so floating-point sums are bit-identical
// to the incremental map's accumulation order) — through a dense n×n
// accumulator when that fits in cache, otherwise a stable counting sort —
// then bulk-inserts the unique pairs into a pre-reserved QuboModel.
//
// The mutation API mirrors QuboModel so the penalty/quadratization gadget
// templates (qubo/penalties.hpp, qubo/quadratization.hpp) and the strqubo
// compilers work against either representation unchanged.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "qubo/qubo_model.hpp"

namespace qsmt::qubo {

class QuboBuilder {
 public:
  /// A pending quadratic term: packed (i, j) pair plus its coefficient.
  struct Term {
    std::uint64_t key;
    double value;
  };

  QuboBuilder() = default;
  explicit QuboBuilder(std::size_t num_variables) : linear_(num_variables) {}

  std::size_t num_variables() const noexcept { return linear_.size(); }
  std::size_t num_pending_terms() const noexcept { return terms_.size(); }

  /// Grows the builder to at least `n` variables (never shrinks).
  void ensure_variables(std::size_t n) {
    if (n > linear_.size()) linear_.resize(n, 0.0);
  }

  /// Reserves capacity for `n` further quadratic terms.
  void reserve_terms(std::size_t n) { terms_.reserve(terms_.size() + n); }

  void add_linear(std::size_t i, double value) {
    ensure_variables(i + 1);
    linear_[i] += value;
  }

  void set_linear(std::size_t i, double value) {
    ensure_variables(i + 1);
    linear_[i] = value;
  }

  /// Adds `value` to the quadratic coefficient q_ij (order of i/j does not
  /// matter; i == j is routed to the linear term since x_i^2 = x_i).
  /// Indices are packed into 32-bit key halves, so they must be below 2^32;
  /// larger indices throw rather than silently truncating into another cell.
  void add_quadratic(std::size_t i, std::size_t j, double value) {
    if (i == j) {
      add_linear(i, value);
      return;
    }
    if (i > j) std::swap(i, j);
    // Open-coded rather than require(): building require's std::string
    // message on every call costs an allocation in this hot loop.
    if (j > std::numeric_limits<std::uint32_t>::max()) [[unlikely]] {
      throw std::invalid_argument(
          "QuboBuilder::add_quadratic: variable index exceeds 2^32 - 1");
    }
    ensure_variables(j + 1);
    terms_.push_back(Term{pack_pair(static_cast<std::uint32_t>(i),
                                    static_cast<std::uint32_t>(j)),
                          value});
  }

  double offset() const noexcept { return offset_; }
  void set_offset(double offset) noexcept { offset_ = offset; }
  void add_offset(double delta) noexcept { offset_ += delta; }

  /// Sorts and merges the accumulated terms into a QuboModel. Duplicate
  /// (i, j) pairs are summed in insertion order; pairs whose merged sum is
  /// exactly zero are dropped (QuboModel::operator== treats a missing entry
  /// and a stored zero as equal). The builder may be reused afterwards; it
  /// keeps its accumulated state (though the pending terms may have been
  /// reordered in place — which is why this is a mutating operation, and
  /// why a shared builder must not run build() concurrently with anything).
  QuboModel build();

 private:
  std::vector<double> linear_;
  std::vector<Term> terms_;
  double offset_ = 0.0;
};

}  // namespace qsmt::qubo

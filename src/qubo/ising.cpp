#include "qubo/ising.hpp"

#include <utility>

#include "util/require.hpp"

namespace qsmt::qubo {

void IsingModel::add_coupling(std::size_t i, std::size_t j, double value) {
  require(i != j, "IsingModel::add_coupling: self coupling not allowed");
  if (i > j) std::swap(i, j);
  if (j >= h.size()) h.resize(j + 1, 0.0);
  coupling[pack_pair(static_cast<std::uint32_t>(i),
                     static_cast<std::uint32_t>(j))] += value;
}

double IsingModel::coupling_at(std::size_t i, std::size_t j) const {
  if (i == j) return 0.0;
  if (i > j) std::swap(i, j);
  auto it = coupling.find(pack_pair(static_cast<std::uint32_t>(i),
                                    static_cast<std::uint32_t>(j)));
  return it == coupling.end() ? 0.0 : it->second;
}

double IsingModel::energy(std::span<const std::int8_t> spins) const {
  require(spins.size() == h.size(), "IsingModel::energy: spin size mismatch");
  double e = offset;
  for (std::size_t i = 0; i < h.size(); ++i) e += h[i] * spins[i];
  for (const auto& [key, value] : coupling) {
    const auto i = static_cast<std::size_t>(key >> 32);
    const auto j = static_cast<std::size_t>(key & 0xffffffffULL);
    e += value * spins[i] * spins[j];
  }
  return e;
}

IsingModel qubo_to_ising(const QuboModel& qubo) {
  // x_i = (1 + s_i)/2. Substituting:
  //   q_ii x_i         -> q_ii/2 s_i + q_ii/2
  //   q_ij x_i x_j     -> q_ij/4 (s_i s_j + s_i + s_j + 1)
  IsingModel ising;
  const std::size_t n = qubo.num_variables();
  ising.h.assign(n, 0.0);
  ising.offset = qubo.offset();
  for (std::size_t i = 0; i < n; ++i) {
    const double q = qubo.linear_terms()[i];
    ising.h[i] += q / 2.0;
    ising.offset += q / 2.0;
  }
  for (const auto& [key, value] : qubo.quadratic_terms()) {
    const auto i = static_cast<std::size_t>(key >> 32);
    const auto j = static_cast<std::size_t>(key & 0xffffffffULL);
    ising.add_coupling(i, j, value / 4.0);
    ising.h[i] += value / 4.0;
    ising.h[j] += value / 4.0;
    ising.offset += value / 4.0;
  }
  if (ising.h.size() < n) ising.h.resize(n, 0.0);
  return ising;
}

QuboModel ising_to_qubo(const IsingModel& ising) {
  // s_i = 2 x_i - 1. Substituting:
  //   h_i s_i       -> 2 h_i x_i - h_i
  //   J_ij s_i s_j  -> 4 J_ij x_i x_j - 2 J_ij x_i - 2 J_ij x_j + J_ij
  QuboModel qubo(ising.num_variables());
  qubo.set_offset(ising.offset);
  for (std::size_t i = 0; i < ising.h.size(); ++i) {
    qubo.add_linear(i, 2.0 * ising.h[i]);
    qubo.add_offset(-ising.h[i]);
  }
  for (const auto& [key, value] : ising.coupling) {
    const auto i = static_cast<std::size_t>(key >> 32);
    const auto j = static_cast<std::size_t>(key & 0xffffffffULL);
    qubo.add_quadratic(i, j, 4.0 * value);
    qubo.add_linear(i, -2.0 * value);
    qubo.add_linear(j, -2.0 * value);
    qubo.add_offset(value);
  }
  return qubo;
}

std::vector<std::int8_t> bits_to_spins(std::span<const std::uint8_t> bits) {
  std::vector<std::int8_t> spins(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    spins[i] = bits[i] ? std::int8_t{1} : std::int8_t{-1};
  return spins;
}

std::vector<std::uint8_t> spins_to_bits(std::span<const std::int8_t> spins) {
  std::vector<std::uint8_t> bits(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i)
    bits[i] = spins[i] > 0 ? std::uint8_t{1} : std::uint8_t{0};
  return bits;
}

}  // namespace qsmt::qubo

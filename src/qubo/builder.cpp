#include "qubo/builder.hpp"

#include <algorithm>
#include <string>

#include "telemetry/telemetry.hpp"

namespace qsmt::qubo {

namespace {

using Term = QuboBuilder::Term;

// Records which merge path build() took plus term/density stats; one call
// per build, gated on mode so the disabled path stays a single branch.
void record_build(const char* path, std::size_t n, std::size_t m) {
  if (!telemetry::enabled()) return;
  telemetry::counter(std::string("qubo.build.path.") + path).add();
  static const auto terms =
      telemetry::histogram("qubo.build.terms", telemetry::Unit::kCount);
  static const auto variables =
      telemetry::histogram("qubo.build.variables", telemetry::Unit::kCount);
  static const auto density =
      telemetry::histogram("qubo.build.density", telemetry::Unit::kRatio);
  terms.record(static_cast<double>(m));
  variables.record(static_cast<double>(n));
  if (n > 0) {
    density.record(static_cast<double>(m) / (static_cast<double>(n) *
                                             static_cast<double>(n)));
  }
}

// One stable counting-sort pass over a 32-bit half of the packed key.
// `count` must have at least max_digit+1 entries; contents are clobbered.
void counting_pass(const std::vector<Term>& in, std::vector<Term>& out,
                   std::vector<std::size_t>& count, unsigned shift) {
  std::fill(count.begin(), count.end(), std::size_t{0});
  for (const Term& t : in) ++count[(t.key >> shift) & 0xffffffffULL];
  std::size_t running = 0;
  for (std::size_t& c : count) {
    const std::size_t here = c;
    c = running;
    running += here;
  }
  for (const Term& t : in) out[count[(t.key >> shift) & 0xffffffffULL]++] = t;
}

}  // namespace

QuboModel QuboBuilder::build() {
  const std::size_t n = linear_.size();
  const std::size_t m = terms_.size();

  // Dense-accumulator fast path: duplicate merging does not actually need a
  // sort — only that each key's contributions are summed in insertion
  // order, which a flat n×n accumulator gives for free (per-key adds happen
  // in stream order, so the sums are bit-identical to the incremental
  // map's). Worth it when the n² scratch is small relative to the term
  // stream and fits comfortably in cache.
  telemetry::Span span("qubo.build");
  constexpr std::size_t kDenseCells = std::size_t{1} << 20;
  if (m >= 64 && n * n <= kDenseCells && n * n <= 8 * m) {
    record_build("dense", n, m);
    std::vector<double> value(n * n, 0.0);
    std::vector<std::uint8_t> seen(n * n, 0);
    std::vector<std::uint32_t> touched;
    touched.reserve(m);
    for (const Term& t : terms_) {
      const auto idx = static_cast<std::uint32_t>(
          (t.key >> 32) * n + (t.key & 0xffffffffULL));
      value[idx] += t.value;
      if (!seen[idx]) {
        seen[idx] = 1;
        touched.push_back(idx);
      }
    }
    QuboModel model(n);
    model.set_offset(offset_);
    for (std::size_t i = 0; i < n; ++i) {
      if (linear_[i] != 0.0) model.set_linear(i, linear_[i]);
    }
    model.reserve_interactions(touched.size());
    for (const std::uint32_t idx : touched) {
      if (value[idx] != 0.0) model.add_quadratic(idx / n, idx % n, value[idx]);
    }
    return model;
  }

  // Otherwise sort terms by packed (i, j) key, keeping duplicate keys in
  // insertion order so the merged sum below accumulates in exactly the
  // order QuboModel::add_quadratic would have — bit-identical
  // floating-point results. Both key halves are variable indices < n, so a
  // two-pass LSD counting sort (stable by construction) does it in
  // O(m + n); the comparison sort remains as the fallback for sparse
  // streams where the O(n) count arrays would dominate.
  if (m >= 64 && n <= 4 * m) {
    record_build("counting_sort", n, m);
    std::vector<Term> tmp(m);
    std::vector<std::size_t> count(n);
    counting_pass(terms_, tmp, count, 0);    // minor key: j
    counting_pass(tmp, terms_, count, 32);   // major key: i
  } else {
    record_build("stable_sort", n, m);
    std::stable_sort(
        terms_.begin(), terms_.end(),
        [](const Term& a, const Term& b) { return a.key < b.key; });
  }

  QuboModel model(n);
  model.set_offset(offset_);
  for (std::size_t i = 0; i < n; ++i) {
    if (linear_[i] != 0.0) model.set_linear(i, linear_[i]);
  }

  // Count unique keys so the model's hash map is sized once.
  std::size_t unique = 0;
  for (std::size_t t = 0; t < m; ++t) {
    if (t == 0 || terms_[t].key != terms_[t - 1].key) ++unique;
  }
  model.reserve_interactions(unique);

  for (std::size_t t = 0; t < m;) {
    const std::uint64_t key = terms_[t].key;
    double sum = terms_[t].value;
    for (++t; t < m && terms_[t].key == key; ++t) {
      sum += terms_[t].value;
    }
    if (sum == 0.0) continue;
    model.add_quadratic(static_cast<std::size_t>(key >> 32),
                        static_cast<std::size_t>(key & 0xffffffffULL), sum);
  }
  return model;
}

}  // namespace qsmt::qubo

#include "strenc/ascii7.hpp"

#include "util/require.hpp"

namespace qsmt::strenc {

std::array<std::uint8_t, kBitsPerChar> encode_char(char c) {
  const auto byte = static_cast<unsigned char>(c);
  require(byte < 128, "encode_char: character is not 7-bit ASCII");
  std::array<std::uint8_t, kBitsPerChar> bits{};
  for (std::size_t i = 0; i < kBitsPerChar; ++i) {
    bits[i] = static_cast<std::uint8_t>((byte >> (kBitsPerChar - 1 - i)) & 1u);
  }
  return bits;
}

char decode_char(std::span<const std::uint8_t> bits) {
  require(bits.size() == kBitsPerChar, "decode_char: need exactly 7 bits");
  unsigned value = 0;
  for (std::size_t i = 0; i < kBitsPerChar; ++i) {
    require(bits[i] <= 1, "decode_char: bit values must be 0 or 1");
    value = (value << 1) | bits[i];
  }
  return static_cast<char>(value);
}

std::vector<std::uint8_t> encode_string(std::string_view s) {
  std::vector<std::uint8_t> bits;
  bits.reserve(s.size() * kBitsPerChar);
  for (char c : s) {
    const auto char_bits = encode_char(c);
    bits.insert(bits.end(), char_bits.begin(), char_bits.end());
  }
  return bits;
}

std::string decode_string(std::span<const std::uint8_t> bits) {
  require(bits.size() % kBitsPerChar == 0,
          "decode_string: bit count must be a multiple of 7");
  std::string s;
  s.reserve(bits.size() / kBitsPerChar);
  for (std::size_t pos = 0; pos < bits.size(); pos += kBitsPerChar) {
    s.push_back(decode_char(bits.subspan(pos, kBitsPerChar)));
  }
  return s;
}

bool is_ascii7(std::string_view s) {
  for (char c : s) {
    if (static_cast<unsigned char>(c) >= 128) return false;
  }
  return true;
}

bool is_printable(char c) {
  const auto byte = static_cast<unsigned char>(c);
  return byte >= 0x20 && byte <= 0x7e;
}

bool is_printable(std::string_view s) {
  for (char c : s) {
    if (!is_printable(c)) return false;
  }
  return true;
}

}  // namespace qsmt::strenc

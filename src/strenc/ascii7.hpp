// 7-bit ASCII binary encoding of strings (paper §4, preamble).
//
// The paper represents each character of the target string by 7 bits, MSB
// first ("a" = ASCII 97 = 1100001 maps to diagonal [-A,-A,+A,+A,+A,+A,-A]),
// so bit index i of character j is global QUBO variable 7*j + i and a string
// of length n uses exactly 7n variables:
//   bin : Σ -> {0,1}^7,  f(s) = bin(s_1) || bin(s_2) || ... || bin(s_n).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace qsmt::strenc {

inline constexpr std::size_t kBitsPerChar = 7;

/// bin(c): the 7-bit MSB-first encoding of an ASCII character.
/// Throws std::invalid_argument for bytes >= 128.
std::array<std::uint8_t, kBitsPerChar> encode_char(char c);

/// Inverse of encode_char. `bits.size()` must be 7; values must be 0/1.
char decode_char(std::span<const std::uint8_t> bits);

/// f(s): the 7n-bit encoding of an ASCII string.
std::vector<std::uint8_t> encode_string(std::string_view s);

/// Inverse of encode_string. `bits.size()` must be a multiple of 7.
std::string decode_string(std::span<const std::uint8_t> bits);

/// Global QUBO variable index of bit `bit` (0 = MSB) of character `pos`.
constexpr std::size_t variable_index(std::size_t pos, std::size_t bit) {
  return pos * kBitsPerChar + bit;
}

/// Number of QUBO variables for a string of `length` characters.
constexpr std::size_t num_variables(std::size_t length) {
  return length * kBitsPerChar;
}

/// True when every character of `s` is 7-bit ASCII.
bool is_ascii7(std::string_view s);

/// True when `c` is printable ASCII (space through tilde).
bool is_printable(char c);

/// True when every character of `s` is printable ASCII.
bool is_printable(std::string_view s);

}  // namespace qsmt::strenc

#include "smtlib/compiler.hpp"

#include <algorithm>
#include <stdexcept>

#include "regex/pattern.hpp"
#include "strqubo/verify.hpp"
#include "util/require.hpp"

namespace qsmt::smtlib {

namespace {

bool is_string_lit(const TermPtr& t) {
  return t && t->kind == Term::Kind::kStringLit;
}
bool is_int_lit(const TermPtr& t) {
  return t && t->kind == Term::Kind::kIntLit;
}
bool is_variable(const TermPtr& t, const std::string& name) {
  return t && t->kind == Term::Kind::kVariable && t->atom == name;
}

bool is_single_char(const TermPtr& t) {
  return is_string_lit(t) && t->atom.size() == 1;
}

/// Collects free variable names into `vars`.
void collect_variables(const TermPtr& term, std::vector<std::string>& vars) {
  if (!term) return;
  if (term->kind == Term::Kind::kVariable) {
    if (std::find(vars.begin(), vars.end(), term->atom) == vars.end()) {
      vars.push_back(term->atom);
    }
    return;
  }
  for (const auto& arg : term->args) collect_variables(arg, vars);
}

/// Extracts N from (= (str.len x) N) in either operand order.
std::optional<std::size_t> match_length_fact(const TermPtr& term,
                                             const std::string& variable) {
  if (!term || !term->is_apply("=") || term->args.size() != 2) {
    return std::nullopt;
  }
  for (int flip = 0; flip < 2; ++flip) {
    const TermPtr& lhs = term->args[flip == 0 ? 0 : 1];
    const TermPtr& rhs = term->args[flip == 0 ? 1 : 0];
    if (lhs && lhs->is_apply("str.len") && lhs->args.size() == 1 &&
        is_variable(lhs->args[0], variable) && is_int_lit(rhs) &&
        rhs->int_value >= 0) {
      return static_cast<std::size_t>(rhs->int_value);
    }
  }
  return std::nullopt;
}

/// Compiles the right-hand side of (= x RHS) into a generating constraint.
std::optional<strqubo::Constraint> compile_definition(const TermPtr& rhs,
                                                      std::string& error) {
  if (is_string_lit(rhs)) return strqubo::Equality{rhs->atom};
  if (rhs->is_apply("str.++")) {
    // Fold literals left-to-right into a Concat of (first, rest).
    std::string joined;
    for (const auto& part : rhs->args) {
      if (!is_string_lit(part)) {
        error = "str.++ operands must be string literals";
        return std::nullopt;
      }
      joined += part->atom;
    }
    if (rhs->args.size() < 2 || !is_string_lit(rhs->args[0])) {
      error = "str.++ needs at least two literal operands";
      return std::nullopt;
    }
    const std::string& first = rhs->args[0]->atom;
    return strqubo::Concat{first, joined.substr(first.size())};
  }
  if (rhs->is_apply("str.replace") || rhs->is_apply("str.replace_all") ||
      rhs->is_apply("qsmt.replace_all")) {
    if (rhs->args.size() != 3 || !is_string_lit(rhs->args[0]) ||
        !is_single_char(rhs->args[1]) || !is_single_char(rhs->args[2])) {
      error = rhs->atom + " expects (input from-char to-char) literals";
      return std::nullopt;
    }
    if (rhs->is_apply("str.replace")) {
      return strqubo::Replace{rhs->args[0]->atom, rhs->args[1]->atom[0],
                              rhs->args[2]->atom[0]};
    }
    return strqubo::ReplaceAll{rhs->args[0]->atom, rhs->args[1]->atom[0],
                               rhs->args[2]->atom[0]};
  }
  if (rhs->is_apply("str.rev") || rhs->is_apply("qsmt.rev")) {
    if (rhs->args.size() != 1 || !is_string_lit(rhs->args[0])) {
      error = rhs->atom + " expects one string literal";
      return std::nullopt;
    }
    return strqubo::Reverse{rhs->args[0]->atom};
  }
  error = "unsupported definition " + to_string(rhs);
  return std::nullopt;
}

void escape_into(std::string& pattern, char c) {
  if (c == '[' || c == ']' || c == '+' || c == '*' || c == '?' || c == '\\') {
    pattern.push_back('\\');
  }
  pattern.push_back(c);
}

}  // namespace

std::string regex_term_to_pattern(const TermPtr& term) {
  require(static_cast<bool>(term), "regex_term_to_pattern: null term");
  if (term->is_apply("str.to_re")) {
    require(term->args.size() == 1 && is_string_lit(term->args[0]),
            "str.to_re expects one string literal");
    std::string pattern;
    for (char c : term->args[0]->atom) escape_into(pattern, c);
    return pattern;
  }
  if (term->is_apply("re.++")) {
    std::string pattern;
    for (const auto& arg : term->args) pattern += regex_term_to_pattern(arg);
    return pattern;
  }
  if (term->is_apply("re.union")) {
    // Union of single characters becomes a character class.
    std::string chars;
    for (const auto& arg : term->args) {
      require(arg->is_apply("str.to_re") && arg->args.size() == 1 &&
                  is_single_char(arg->args[0]),
              "re.union is only supported over single-character literals");
      chars.push_back(arg->args[0]->atom[0]);
    }
    require(!chars.empty(), "re.union needs at least one operand");
    std::string pattern = "[";
    for (char c : chars) {
      if (c == ']' || c == '\\') pattern.push_back('\\');
      pattern.push_back(c);
    }
    pattern += "]";
    return pattern;
  }
  if (term->is_apply("re.+") || term->is_apply("re.*") ||
      term->is_apply("re.opt")) {
    require(term->args.size() == 1, term->atom + " expects one operand");
    const std::string inner = regex_term_to_pattern(term->args[0]);
    // The subset only supports quantifiers on a single element.
    const regex::Pattern parsed = regex::parse_pattern(inner);
    require(parsed.elements.size() == 1,
            term->atom + " is only supported on a single literal or class");
    if (term->is_apply("re.+")) return inner + "+";
    if (term->is_apply("re.*")) return inner + "*";
    return inner + "?";
  }
  throw std::invalid_argument("regex_term_to_pattern: unsupported RegLan term " +
                              to_string(term));
}

std::optional<GroundValue> evaluate_ground(const TermPtr& term) {
  if (!term) return std::nullopt;
  switch (term->kind) {
    case Term::Kind::kStringLit:
      return GroundValue{term->atom};
    case Term::Kind::kIntLit:
      return GroundValue{term->int_value};
    case Term::Kind::kBoolLit:
      return GroundValue{term->bool_value};
    case Term::Kind::kVariable:
      return std::nullopt;
    case Term::Kind::kApply:
      break;
  }

  std::vector<GroundValue> args;
  args.reserve(term->args.size());
  for (const auto& arg : term->args) {
    auto value = evaluate_ground(arg);
    if (!value) return std::nullopt;
    args.push_back(std::move(*value));
  }
  auto as_string = [&](std::size_t i) -> const std::string* {
    return std::get_if<std::string>(&args[i]);
  };
  auto as_int = [&](std::size_t i) -> const std::int64_t* {
    return std::get_if<std::int64_t>(&args[i]);
  };
  auto as_bool = [&](std::size_t i) -> const bool* {
    return std::get_if<bool>(&args[i]);
  };

  const std::string& op = term->atom;
  if (op == "=" && args.size() == 2) {
    return GroundValue{args[0] == args[1]};
  }
  if (op == "str.len" && args.size() == 1 && as_string(0)) {
    return GroundValue{static_cast<std::int64_t>(as_string(0)->size())};
  }
  if (op == "str.++") {
    std::string joined;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (!as_string(i)) return std::nullopt;
      joined += *as_string(i);
    }
    return GroundValue{std::move(joined)};
  }
  if (op == "str.contains" && args.size() == 2 && as_string(0) &&
      as_string(1)) {
    return GroundValue{as_string(0)->find(*as_string(1)) != std::string::npos};
  }
  if (op == "str.indexof" && args.size() == 3 && as_string(0) &&
      as_string(1) && as_int(2)) {
    const auto from = static_cast<std::size_t>(std::max<std::int64_t>(0, *as_int(2)));
    const auto at = as_string(0)->find(*as_string(1), from);
    return GroundValue{
        at == std::string::npos ? std::int64_t{-1} : static_cast<std::int64_t>(at)};
  }
  if ((op == "str.replace" || op == "str.replace_all" ||
       op == "qsmt.replace_all") &&
      args.size() == 3 && as_string(0) && as_string(1) && as_string(2) &&
      as_string(1)->size() == 1 && as_string(2)->size() == 1) {
    if (op == "str.replace") {
      return GroundValue{strqubo::replace_first_char(
          *as_string(0), (*as_string(1))[0], (*as_string(2))[0])};
    }
    return GroundValue{strqubo::replace_all_chars(
        *as_string(0), (*as_string(1))[0], (*as_string(2))[0])};
  }
  if (op == "str.at" && args.size() == 2 && as_string(0) && as_int(1)) {
    const auto& s = *as_string(0);
    const std::int64_t k = *as_int(1);
    // SMT-LIB: out-of-range str.at is the empty string.
    if (k < 0 || static_cast<std::size_t>(k) >= s.size()) {
      return GroundValue{std::string()};
    }
    return GroundValue{std::string(1, s[static_cast<std::size_t>(k)])};
  }
  if ((op == "str.rev" || op == "qsmt.rev") && args.size() == 1 &&
      as_string(0)) {
    return GroundValue{std::string(as_string(0)->rbegin(), as_string(0)->rend())};
  }
  if (op == "not" && args.size() == 1 && as_bool(0)) {
    return GroundValue{!*as_bool(0)};
  }
  if (op == "and" || op == "or") {
    bool acc = op == "and";
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (!as_bool(i)) return std::nullopt;
      acc = op == "and" ? (acc && *as_bool(i)) : (acc || *as_bool(i));
    }
    return GroundValue{acc};
  }
  return std::nullopt;
}

std::optional<strqubo::Constraint> compile_atom(
    const TermPtr& atom, const std::string& variable,
    std::optional<std::size_t> length, std::string& error) {
  if (!atom || atom->kind != Term::Kind::kApply) {
    error = "atom is not an application";
    return std::nullopt;
  }
  auto need_length = [&]() -> bool {
    if (!length) {
      error = "atom '" + to_string(atom) +
              "' needs a (= (str.len " + variable + ") N) assertion";
      return false;
    }
    return true;
  };

  if (atom->is_apply("=") && atom->args.size() == 2) {
    for (int flip = 0; flip < 2; ++flip) {
      const TermPtr& lhs = atom->args[flip == 0 ? 0 : 1];
      const TermPtr& rhs = atom->args[flip == 0 ? 1 : 0];
      // (= x RHS)
      if (is_variable(lhs, variable)) {
        return compile_definition(rhs, error);
      }
      // (= (str.indexof x "sub" 0) k)
      if (lhs && lhs->is_apply("str.indexof") && lhs->args.size() == 3 &&
          is_variable(lhs->args[0], variable) && is_string_lit(lhs->args[1]) &&
          is_int_lit(lhs->args[2]) && lhs->args[2]->int_value == 0 &&
          is_int_lit(rhs) && rhs->int_value >= 0) {
        if (!need_length()) return std::nullopt;
        return strqubo::IndexOf{*length, lhs->args[1]->atom,
                                static_cast<std::size_t>(rhs->int_value)};
      }
      // (= (str.at x k) "c")
      if (lhs && lhs->is_apply("str.at") && lhs->args.size() == 2 &&
          is_variable(lhs->args[0], variable) && is_int_lit(lhs->args[1]) &&
          lhs->args[1]->int_value >= 0 && is_single_char(rhs)) {
        if (!need_length()) return std::nullopt;
        const auto index = static_cast<std::size_t>(lhs->args[1]->int_value);
        if (index >= *length) {
          error = "str.at index exceeds declared length";
          return std::nullopt;
        }
        return strqubo::CharAt{*length, index, rhs->atom[0]};
      }
    }
    error = "unsupported equality " + to_string(atom);
    return std::nullopt;
  }
  // (not (str.contains x "sub")) — the one negation with a native QUBO
  // formulation (quadratized not-contains); other negations need DPLL(T).
  if (atom->is_apply("not") && atom->args.size() == 1 &&
      atom->args[0] && atom->args[0]->is_apply("str.contains") &&
      atom->args[0]->args.size() == 2 &&
      is_variable(atom->args[0]->args[0], variable) &&
      is_string_lit(atom->args[0]->args[1])) {
    if (!need_length()) return std::nullopt;
    return strqubo::NotContains{*length, atom->args[0]->args[1]->atom};
  }
  if (atom->is_apply("str.contains") && atom->args.size() == 2 &&
      is_variable(atom->args[0], variable) && is_string_lit(atom->args[1])) {
    if (!need_length()) return std::nullopt;
    return strqubo::SubstringMatch{*length, atom->args[1]->atom};
  }
  if (atom->is_apply("str.prefixof") && atom->args.size() == 2 &&
      is_string_lit(atom->args[0]) && is_variable(atom->args[1], variable)) {
    if (!need_length()) return std::nullopt;
    return strqubo::IndexOf{*length, atom->args[0]->atom, 0};
  }
  if (atom->is_apply("str.suffixof") && atom->args.size() == 2 &&
      is_string_lit(atom->args[0]) && is_variable(atom->args[1], variable)) {
    if (!need_length()) return std::nullopt;
    const std::string& suffix = atom->args[0]->atom;
    if (suffix.size() > *length) {
      error = "str.suffixof literal longer than declared length";
      return std::nullopt;
    }
    return strqubo::IndexOf{*length, suffix, *length - suffix.size()};
  }
  if (atom->is_apply("str.in_re") && atom->args.size() == 2 &&
      is_variable(atom->args[0], variable)) {
    if (!need_length()) return std::nullopt;
    try {
      return strqubo::RegexMatch{regex_term_to_pattern(atom->args[1]), *length};
    } catch (const std::invalid_argument& e) {
      error = e.what();
      return std::nullopt;
    }
  }
  if (atom->is_apply("qsmt.is_palindrome") && atom->args.size() == 1 &&
      is_variable(atom->args[0], variable)) {
    if (!need_length()) return std::nullopt;
    return strqubo::Palindrome{*length};
  }
  error = "unsupported atom " + to_string(atom);
  return std::nullopt;
}

CompiledQuery compile_assertions(const std::vector<TermPtr>& assertions,
                                 const std::map<std::string, Sort>& declared) {
  CompiledQuery query;

  // Flatten top-level conjunctions.
  std::vector<TermPtr> atoms;
  std::vector<TermPtr> pending(assertions.rbegin(), assertions.rend());
  while (!pending.empty()) {
    TermPtr t = pending.back();
    pending.pop_back();
    if (t && t->is_apply("and")) {
      for (auto it = t->args.rbegin(); it != t->args.rend(); ++it) {
        pending.push_back(*it);
      }
    } else {
      atoms.push_back(std::move(t));
    }
  }

  // Identify the free string variable used by the atoms.
  std::vector<std::string> used;
  for (const auto& atom : atoms) collect_variables(atom, used);
  std::vector<std::string> string_vars;
  for (const auto& name : used) {
    auto it = declared.find(name);
    if (it != declared.end() && it->second == Sort::kString) {
      string_vars.push_back(name);
    }
  }
  if (string_vars.size() > 1) {
    query.unsupported.push_back(
        "multiple free string variables in one query (supported: one)");
    return query;
  }
  if (!string_vars.empty()) query.variable = string_vars.front();

  // First pass: length facts.
  for (const auto& atom : atoms) {
    if (query.variable.empty()) break;
    if (auto n = match_length_fact(atom, query.variable)) {
      if (query.declared_length && *query.declared_length != *n) {
        query.falsified_ground.push_back("conflicting str.len facts");
      }
      query.declared_length = n;
    }
  }

  // Second pass: everything else.
  for (const auto& atom : atoms) {
    if (!query.variable.empty() &&
        match_length_fact(atom, query.variable)) {
      continue;  // Consumed in the first pass.
    }
    // Ground atoms are folded classically.
    std::vector<std::string> vars;
    collect_variables(atom, vars);
    if (vars.empty()) {
      auto value = evaluate_ground(atom);
      if (value && std::holds_alternative<bool>(*value)) {
        if (!std::get<bool>(*value)) {
          query.falsified_ground.push_back(to_string(atom));
        }
      } else {
        query.unsupported.push_back("ground atom " + to_string(atom));
      }
      continue;
    }
    std::string error;
    auto constraint =
        compile_atom(atom, query.variable, query.declared_length, error);
    if (constraint) {
      query.constraints.push_back(std::move(*constraint));
    } else {
      query.unsupported.push_back(error);
    }
  }
  return query;
}

}  // namespace qsmt::smtlib

// Incremental solving substrate: compiled-fragment reuse, witness memory,
// retained theory lemmas, and warm-started re-annealing.
//
// The paper's workload is chains of near-identical queries (each §5
// benchmark is solved as a sequence of mutated instances), and the server
// exposes push/pop sessions, so repeated check-sats should cost a delta:
//
//  * FragmentCache — a thread-safe LRU mapping each assertion's constraint
//    (hash-consed by strqubo::structure_key + a build-options fingerprint)
//    to its built QUBO block. An N-assertion re-solve with one mutated
//    constraint rebuilds ONE block; the others are re-linked at their
//    offsets during the merge.
//  * SolveContext — per-session state an SmtDriver keeps across check-sats,
//    keyed to the push/pop stack: a (pop) invalidates only the witnesses
//    and lemmas recorded in the frames it removes. Holds the last verified
//    witness (warm-start seed), the retained exact theory lemmas
//    (ClauseMemory), and deterministic per-context counters mirroring the
//    incremental.* telemetry.
//  * solve_conjunction_incremental — the hot re-solve: try the remembered
//    witness outright, then a cheap ReverseAnnealer refinement seeded from
//    it, then fall back to the caller's cold sampler. Every answer is
//    classically verified, so the shortcuts can never change a verdict,
//    only reach it faster.
//
// Invalidation rules and warm-start semantics: docs/incremental.md.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "anneal/reverse.hpp"
#include "anneal/sampler.hpp"
#include "qubo/qubo_model.hpp"
#include "strqubo/builders.hpp"
#include "strqubo/constraint.hpp"

namespace qsmt::smtlib {

/// Cache key of one compiled fragment: the constraint's structural key
/// plus a fingerprint of every BuildOptions field that changes the QUBO.
std::string fragment_key(const strqubo::Constraint& constraint,
                         const strqubo::BuildOptions& options);

/// Thread-safe LRU of built QUBO blocks, shareable across drivers and
/// server sessions (blocks are immutable; per-session state never enters
/// the cache, so sharing cannot leak anything between tenants).
class FragmentCache {
 public:
  explicit FragmentCache(std::size_t capacity = 256);

  /// Returns the cached block for `constraint` under `options`, building
  /// and inserting it on a miss. Emits incremental.fragment.{hits,misses}.
  std::shared_ptr<const qubo::QuboModel> get_or_build(
      const strqubo::Constraint& constraint,
      const strqubo::BuildOptions& options);

  std::size_t size() const;
  /// Approximate retained footprint (keys + block coefficients), the value
  /// mirrored into the incremental.fragment.bytes gauge.
  std::size_t bytes() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Occupancy mirror of the incremental.fragment.{entries,bytes} gauges.
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const qubo::QuboModel> block;
    std::size_t bytes = 0;
  };

  void publish_occupancy_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
  std::size_t bytes_ = 0;
};

/// One retained theory lemma: a clause over (printed atom, polarity)
/// pairs, valid in any solve whose atom set contains every one of them.
/// Only *exact* conflicts (ground-fact refutations) are remembered —
/// heuristic blocks (the annealer merely gave up) are not sound lemmas.
struct TheoryLemma {
  /// Push/pop depth at which the lemma was learned; a pop below this
  /// depth drops it (conservative: the lemma may mention assumption
  /// atoms that only exist in the popped frames).
  std::size_t depth = 0;
  /// (printed atom form, polarity): true = the atom appears positively.
  std::vector<std::pair<std::string, bool>> literals;
};

/// Learned-lemma store carried across DPLL(T) calls by a SolveContext.
class ClauseMemory {
 public:
  void remember(std::size_t depth,
                std::vector<std::pair<std::string, bool>> literals);

  /// Drops every lemma learned at a depth greater than `depth` (the
  /// frames a pop removes).
  void drop_deeper_than(std::size_t depth);

  void clear() { lemmas_.clear(); }
  std::size_t size() const noexcept { return lemmas_.size(); }
  const std::vector<TheoryLemma>& lemmas() const noexcept { return lemmas_; }

 private:
  std::vector<TheoryLemma> lemmas_;
};

struct IncrementalParams {
  /// Budget of the warm-start refinement pass (ReverseAnnealer seeded from
  /// the previous witness). Deliberately small: it either polishes the old
  /// model into the new constraints in a few sweeps or the cold sampler
  /// takes over.
  anneal::ReverseAnnealerParams warm;
  std::size_t fragment_capacity = 256;
  bool enabled = true;

  IncrementalParams() {
    warm.num_reads = 8;
    warm.num_sweeps = 64;
    warm.reheat_fraction = 0.35;
  }
};

/// Deterministic per-context mirror of the incremental.* counters, so
/// tests and benches can assert cache behaviour without telemetry.
struct IncrementalStats {
  std::uint64_t witness_reuses = 0;   ///< Old witness still verified.
  std::uint64_t warm_starts = 0;      ///< Reverse-anneal passes attempted.
  std::uint64_t warm_hits = 0;        ///< ... that produced the verdict.
  std::uint64_t cold_starts = 0;      ///< Full-budget sampler passes.
  std::uint64_t clauses_retained = 0; ///< Lemmas re-added to a later solve.
};

/// Per-session incremental state, keyed to the push/pop stack.
class SolveContext {
 public:
  explicit SolveContext(IncrementalParams params = {},
                        std::shared_ptr<FragmentCache> fragments = nullptr);

  FragmentCache& fragments() noexcept { return *fragments_; }
  const std::shared_ptr<FragmentCache>& shared_fragments() const noexcept {
    return fragments_;
  }
  const IncrementalParams& params() const noexcept { return params_; }

  /// Push/pop bookkeeping (mirrors the driver's frame stack).
  void push(std::size_t levels) { depth_ += levels; }
  void pop(std::size_t levels);
  std::size_t depth() const noexcept { return depth_; }

  /// Records a verified witness at the current depth; it seeds witness
  /// reuse and warm starts until a pop drops its frame.
  void note_witness(std::string value);
  /// Deepest surviving witness, if any.
  const std::string* last_witness() const;

  ClauseMemory& clause_memory() noexcept { return clauses_; }

  /// Full reset — the (reset) command and tests.
  void clear();

  IncrementalStats& stats() noexcept { return stats_; }
  const IncrementalStats& stats() const noexcept { return stats_; }

 private:
  IncrementalParams params_;
  std::shared_ptr<FragmentCache> fragments_;
  std::size_t depth_ = 0;
  /// (depth, witness), shallowest first; pops truncate from the back.
  std::vector<std::pair<std::size_t, std::string>> witnesses_;
  ClauseMemory clauses_;
  IncrementalStats stats_;
};

/// Result of a conjunction solve (cold or incremental). Declared here —
/// driver.hpp re-exports it — so the incremental layer has no dependency
/// on the driver.
struct ConjunctionResult {
  bool solved = false;      ///< A sample satisfying all conjuncts was found.
  std::string value;        ///< The witness when solved.
  std::string note;         ///< Why not, otherwise.
  std::size_t num_qubo_variables = 0;
};

/// Cold-path conjunction solve: merge per-constraint QUBO blocks, sample
/// once with `sampler`, return the lowest-energy sample whose decoding
/// classically verifies every conjunct (and `accept`, when given).
ConjunctionResult solve_conjunction(
    const std::vector<strqubo::Constraint>& constraints,
    const anneal::Sampler& sampler, const strqubo::BuildOptions& options,
    const std::function<bool(const std::string&)>& accept = {});

/// Incremental conjunction solve: per-assertion blocks come from the
/// context's FragmentCache (rebuild one block on a single-constraint
/// mutation), the previous witness is tried outright and then used to seed
/// a small ReverseAnnealer pass, and only when both miss does the cold
/// sampler run. Verified-sat witnesses are recorded back into the context.
ConjunctionResult solve_conjunction_incremental(
    const std::vector<strqubo::Constraint>& constraints,
    const anneal::Sampler& sampler, const strqubo::BuildOptions& options,
    SolveContext& context,
    const std::function<bool(const std::string&)>& accept = {});

}  // namespace qsmt::smtlib

#include "smtlib/driver.hpp"

#include "baseline/unsat.hpp"
#include "smtlib/parser.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/solver.hpp"
#include "strqubo/verify.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace qsmt::smtlib {

namespace {

// SMT-LIB string literals double embedded quotes.
void append_quoted(std::string& out, const std::string& value) {
  out += '"';
  for (char c : value) {
    out += c;
    if (c == '"') out += '"';
  }
  out += '"';
}

// SMT-LIB (error "...") reply, same quote-doubling as the server transport
// so driver and daemon transcripts stay byte-compatible.
void append_error(std::string& out, const std::string& message) {
  out += "(error ";
  append_quoted(out, message);
  out += ")\n";
}

// First undeclared free variable in `term`, if any. Operators are kApply
// nodes, so every kVariable leaf is a symbol that must be declared.
const std::string* find_undeclared(const TermPtr& term,
                                   const std::map<std::string, Sort>& declared) {
  if (!term) return nullptr;
  if (term->kind == Term::Kind::kVariable) {
    return declared.contains(term->atom) ? nullptr : &term->atom;
  }
  for (const auto& arg : term->args) {
    if (const std::string* hit = find_undeclared(arg, declared)) return hit;
  }
  return nullptr;
}

}  // namespace

// One counter per verdict so a run's sat/unsat/unknown split shows up in the
// summary table without post-processing.
void record_verdict(CheckSatStatus status) {
  if (!telemetry::enabled()) return;
  switch (status) {
    case CheckSatStatus::kSat:
      telemetry::counter("smtlib.verdict.sat").add();
      break;
    case CheckSatStatus::kUnsat:
      telemetry::counter("smtlib.verdict.unsat").add();
      break;
    case CheckSatStatus::kUnknown:
      telemetry::counter("smtlib.verdict.unknown").add();
      break;
  }
}

std::string status_name(CheckSatStatus status) {
  switch (status) {
    case CheckSatStatus::kSat:
      return "sat";
    case CheckSatStatus::kUnsat:
      return "unsat";
    case CheckSatStatus::kUnknown:
      return "unknown";
  }
  return "unknown";
}

PresolveResult presolve_check_sat(
    const std::vector<TermPtr>& assertions,
    const std::map<std::string, Sort>& declared) {
  PresolveResult result;
  CheckSatRecord& record = result.record;
  telemetry::Span compile_span("smtlib.compile");
  result.query = compile_assertions(assertions, declared);
  compile_span.close();
  const CompiledQuery& query = result.query;
  if (telemetry::enabled()) {
    telemetry::counter("smtlib.check_sat.calls").add();
    telemetry::counter("smtlib.check_sat.constraints")
        .add(static_cast<std::uint64_t>(query.constraints.size()));
  }
  record.variable = query.variable;
  record.num_constraints = query.constraints.size();
  record.notes = query.unsupported;

  if (!query.falsified_ground.empty()) {
    record.status = CheckSatStatus::kUnsat;
    for (const auto& fact : query.falsified_ground) {
      record.notes.push_back("falsified: " + fact);
    }
    result.decided = true;
    record_verdict(record.status);
    return result;
  }
  if (!query.unsupported.empty()) {
    record.status = CheckSatStatus::kUnknown;
    result.decided = true;
    record_verdict(record.status);
    return result;
  }
  if (query.constraints.empty()) {
    // All assertions were ground and true (or there were none).
    record.status = CheckSatStatus::kSat;
    result.decided = true;
    record_verdict(record.status);
    return result;
  }

  // A cheap exact refutation (length conflicts, impossible regex lengths,
  // pinned witnesses, bounded exhaustive search) upgrades the verdict from
  // the annealer's best-effort `unknown` to a certified `unsat`.
  const baseline::UnsatCertificate certificate =
      baseline::certify_unsat(query.constraints);
  if (certificate.proven) {
    record.status = CheckSatStatus::kUnsat;
    record.notes.push_back("certified: " + certificate.reason);
    if (telemetry::enabled()) {
      telemetry::counter("smtlib.check_sat.certified_unsat").add();
    }
    result.decided = true;
    record_verdict(record.status);
    return result;
  }
  return result;
}

std::string render_model(const CheckSatRecord* last) {
  if (last == nullptr || last->status != CheckSatStatus::kSat) {
    return "(error \"no model available\")\n";
  }
  if (last->variable.empty()) return "(model)\n";
  std::string out = "(model (define-fun " + last->variable + " () String ";
  append_quoted(out, last->model_value);
  out += "))\n";
  return out;
}

std::string render_get_value(const std::vector<std::string>& names,
                             const CheckSatRecord* last) {
  if (last == nullptr || last->status != CheckSatStatus::kSat) {
    return "(error \"no model available\")\n";
  }
  std::string out = "(";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ' ';
    out += '(';
    out += names[i];
    out += ' ';
    if (names[i] == last->variable) {
      append_quoted(out, last->model_value);
    } else {
      out += "(error \"unknown constant\")";
    }
    out += ')';
  }
  out += ")\n";
  return out;
}

SmtDriver::SmtDriver(const anneal::Sampler& sampler,
                     strqubo::BuildOptions options,
                     std::shared_ptr<FragmentCache> fragments)
    : sampler_(&sampler),
      options_(options),
      context_(std::make_shared<SolveContext>(IncrementalParams{},
                                              std::move(fragments))) {}

SmtDriver::SmtDriver(strqubo::BuildOptions options)
    : sampler_(nullptr),
      options_(options),
      context_(std::make_shared<SolveContext>()) {}

void SmtDriver::adopt_context(std::shared_ptr<SolveContext> context) {
  require(context != nullptr, "smtlib: adopt_context requires a context");
  context_ = std::move(context);
}

void SmtDriver::reset() {
  declared_.clear();
  assertions_.clear();
  frames_.clear();
  context_->clear();
}

CheckSatRecord SmtDriver::check_sat() {
  telemetry::Span span("smtlib.check_sat");
  span.arg("num_assertions", static_cast<double>(assertions_.size()));
  PresolveResult presolved = presolve_check_sat(assertions_, declared_);
  span.arg("num_constraints",
           static_cast<double>(presolved.query.constraints.size()));
  if (presolved.decided) return presolved.record;
  CheckSatRecord record = std::move(presolved.record);
  require(sampler_ != nullptr,
          "smtlib: SmtDriver without a sampler must override check_sat");

  const ConjunctionResult solved = solve_conjunction_incremental(
      presolved.query.constraints, *sampler_, options_, *context_);
  record.num_qubo_variables = solved.num_qubo_variables;
  if (solved.solved) {
    record.status = CheckSatStatus::kSat;
    record.model_value = solved.value;
  } else {
    record.status = CheckSatStatus::kUnknown;
    record.notes.push_back(solved.note);
  }
  record_verdict(record.status);
  return record;
}

bool SmtDriver::execute(const Command& command, std::string& out) {
  return std::visit(
      [&](const auto& cmd) -> bool {
        using T = std::decay_t<decltype(cmd)>;
        if constexpr (std::is_same_v<T, SetLogic> ||
                      std::is_same_v<T, SetOption> ||
                      std::is_same_v<T, SetInfo>) {
          return true;
        } else if constexpr (std::is_same_v<T, DeclareConst>) {
          require(!declared_.contains(cmd.name),
                  "smtlib: duplicate declaration of " + cmd.name);
          declared_.emplace(cmd.name, cmd.sort);
          return true;
        } else if constexpr (std::is_same_v<T, AssertCmd>) {
          assertions_.push_back(cmd.term);
          return true;
        } else if constexpr (std::is_same_v<T, CheckSat>) {
          history_.push_back(check_sat());
          out += status_name(history_.back().status);
          out += '\n';
          return true;
        } else if constexpr (std::is_same_v<T, GetModel>) {
          out += render_model(history_.empty() ? nullptr : &history_.back());
          return true;
        } else if constexpr (std::is_same_v<T, Echo>) {
          out += cmd.message;
          out += '\n';
          return true;
        } else if constexpr (std::is_same_v<T, Push>) {
          for (std::size_t k = 0; k < cmd.levels; ++k) {
            frames_.push_back(Frame{assertions_.size(), declared_});
          }
          context_->push(cmd.levels);
          return true;
        } else if constexpr (std::is_same_v<T, Pop>) {
          if (cmd.levels > frames_.size()) {
            // SMT-LIB error reply, not a thrown exception: the session
            // (and a scripted transcript) survives and the stack is
            // untouched, matching z3's behaviour.
            append_error(out,
                         "pop below the bottom of the assertion stack");
            return true;
          }
          for (std::size_t k = 0; k < cmd.levels; ++k) {
            assertions_.resize(frames_.back().num_assertions);
            declared_ = std::move(frames_.back().declared);
            frames_.pop_back();
          }
          context_->pop(cmd.levels);
          return true;
        } else if constexpr (std::is_same_v<T, CheckSatAssuming>) {
          for (const auto& assumption : cmd.assumptions) {
            if (const std::string* name =
                    find_undeclared(assumption, declared_)) {
              append_error(out, "check-sat-assuming: undeclared symbol '" +
                                    *name + "'");
              return true;
            }
          }
          // Assumptions join the assertion set for this check only.
          const std::size_t restore = assertions_.size();
          for (const auto& assumption : cmd.assumptions) {
            assertions_.push_back(assumption);
          }
          history_.push_back(check_sat());
          assertions_.resize(restore);
          out += status_name(history_.back().status);
          out += '\n';
          return true;
        } else if constexpr (std::is_same_v<T, GetValue>) {
          out += render_get_value(cmd.names,
                                  history_.empty() ? nullptr
                                                   : &history_.back());
          return true;
        } else if constexpr (std::is_same_v<T, ResetCmd>) {
          // (reset) erases everything, including the model history — a
          // subsequent (get-model) reports no model, per SMT-LIB.
          reset();
          history_.clear();
          return true;
        } else {
          static_assert(std::is_same_v<T, ExitCmd>);
          return false;
        }
      },
      command);
}

std::string SmtDriver::run_script(const std::string& text) {
  std::string out;
  for (const Command& command : parse_script(text)) {
    if (!execute(command, out)) break;
  }
  return out;
}

}  // namespace qsmt::smtlib

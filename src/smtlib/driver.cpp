#include "smtlib/driver.hpp"

#include "baseline/unsat.hpp"
#include "smtlib/parser.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/solver.hpp"
#include "strqubo/verify.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace qsmt::smtlib {

namespace {

// SMT-LIB string literals double embedded quotes.
void append_quoted(std::string& out, const std::string& value) {
  out += '"';
  for (char c : value) {
    out += c;
    if (c == '"') out += '"';
  }
  out += '"';
}

}  // namespace

// One counter per verdict so a run's sat/unsat/unknown split shows up in the
// summary table without post-processing.
void record_verdict(CheckSatStatus status) {
  if (!telemetry::enabled()) return;
  switch (status) {
    case CheckSatStatus::kSat:
      telemetry::counter("smtlib.verdict.sat").add();
      break;
    case CheckSatStatus::kUnsat:
      telemetry::counter("smtlib.verdict.unsat").add();
      break;
    case CheckSatStatus::kUnknown:
      telemetry::counter("smtlib.verdict.unknown").add();
      break;
  }
}

std::string status_name(CheckSatStatus status) {
  switch (status) {
    case CheckSatStatus::kSat:
      return "sat";
    case CheckSatStatus::kUnsat:
      return "unsat";
    case CheckSatStatus::kUnknown:
      return "unknown";
  }
  return "unknown";
}

ConjunctionResult solve_conjunction(
    const std::vector<strqubo::Constraint>& constraints,
    const anneal::Sampler& sampler, const strqubo::BuildOptions& options,
    const std::function<bool(const std::string&)>& accept) {
  ConjunctionResult result;
  telemetry::Span span("smtlib.solve_conjunction");
  span.arg("num_constraints", static_cast<double>(constraints.size()));
  if (constraints.empty()) {
    result.solved = !accept || accept(std::string());
    if (!result.solved) result.note = "empty witness rejected by filter";
    return result;
  }
  for (const auto& constraint : constraints) {
    if (!strqubo::produces_string(constraint)) {
      result.note = "includes-style atoms cannot join a generation conjunction";
      return result;
    }
  }

  // All conjuncts must generate the same number of characters so their QUBO
  // matrices can be summed variable-for-variable.
  const std::size_t string_bits =
      strqubo::constraint_num_variables(constraints.front());
  for (const auto& constraint : constraints) {
    if (strqubo::constraint_num_variables(constraint) != string_bits) {
      result.note =
          "conjuncts disagree on string length; cannot merge QUBO models";
      return result;
    }
  }

  // Merged models share the string bits at the same indices. Auxiliary
  // variables past the string block (regex one-hot selectors) would collide
  // across conjuncts, so each conjunct's auxiliary block is remapped to a
  // fresh range at the end of the merged model.
  qubo::QuboModel merged(string_bits);
  std::size_t aux_base = string_bits;
  telemetry::Span merge_span("smtlib.merge_qubo");
  for (const auto& constraint : constraints) {
    const qubo::QuboModel part = strqubo::build(constraint, options);
    const std::size_t part_aux =
        part.num_variables() > string_bits ? part.num_variables() - string_bits
                                           : 0;
    auto remap = [&](std::size_t v) {
      return v < string_bits ? v : aux_base + (v - string_bits);
    };
    merged.add_offset(part.offset());
    for (std::size_t v = 0; v < part.num_variables(); ++v) {
      const double lin = part.linear_terms()[v];
      if (lin != 0.0) merged.add_linear(remap(v), lin);
    }
    for (const auto& [key, value] : part.quadratic_terms()) {
      if (value == 0.0) continue;
      merged.add_quadratic(remap(key >> 32), remap(key & 0xffffffffULL),
                           value);
    }
    aux_base += part_aux;
  }
  result.num_qubo_variables = std::max(merged.num_variables(), string_bits);
  merge_span.close();
  if (telemetry::enabled()) {
    telemetry::gauge("smtlib.qubo_variables")
        .set(static_cast<double>(result.num_qubo_variables));
  }

  const anneal::SampleSet samples = sampler.sample(merged);
  if (samples.empty()) {
    result.note = "sampler returned no samples";
    return result;
  }
  // Take the lowest-energy sample whose decoding satisfies every conjunct
  // (and the caller's acceptance filter, when given).
  telemetry::Span verify_span("smtlib.verify");
  for (const auto& sample : samples) {
    const std::string value = strenc::decode_string(
        std::span(sample.bits).subspan(0, string_bits));
    bool all_satisfied = true;
    for (const auto& constraint : constraints) {
      if (!strqubo::verify_string(constraint, value)) {
        all_satisfied = false;
        break;
      }
    }
    if (all_satisfied && accept && !accept(value)) all_satisfied = false;
    if (all_satisfied) {
      result.solved = true;
      result.value = value;
      if (telemetry::enabled()) {
        telemetry::counter("smtlib.conjunction.solved").add();
      }
      return result;
    }
  }
  result.note = "no sample satisfied every conjunct";
  if (telemetry::enabled()) {
    telemetry::counter("smtlib.conjunction.unsolved").add();
  }
  return result;
}

PresolveResult presolve_check_sat(
    const std::vector<TermPtr>& assertions,
    const std::map<std::string, Sort>& declared) {
  PresolveResult result;
  CheckSatRecord& record = result.record;
  telemetry::Span compile_span("smtlib.compile");
  result.query = compile_assertions(assertions, declared);
  compile_span.close();
  const CompiledQuery& query = result.query;
  if (telemetry::enabled()) {
    telemetry::counter("smtlib.check_sat.calls").add();
    telemetry::counter("smtlib.check_sat.constraints")
        .add(static_cast<std::uint64_t>(query.constraints.size()));
  }
  record.variable = query.variable;
  record.num_constraints = query.constraints.size();
  record.notes = query.unsupported;

  if (!query.falsified_ground.empty()) {
    record.status = CheckSatStatus::kUnsat;
    for (const auto& fact : query.falsified_ground) {
      record.notes.push_back("falsified: " + fact);
    }
    result.decided = true;
    record_verdict(record.status);
    return result;
  }
  if (!query.unsupported.empty()) {
    record.status = CheckSatStatus::kUnknown;
    result.decided = true;
    record_verdict(record.status);
    return result;
  }
  if (query.constraints.empty()) {
    // All assertions were ground and true (or there were none).
    record.status = CheckSatStatus::kSat;
    result.decided = true;
    record_verdict(record.status);
    return result;
  }

  // A cheap exact refutation (length conflicts, impossible regex lengths,
  // pinned witnesses, bounded exhaustive search) upgrades the verdict from
  // the annealer's best-effort `unknown` to a certified `unsat`.
  const baseline::UnsatCertificate certificate =
      baseline::certify_unsat(query.constraints);
  if (certificate.proven) {
    record.status = CheckSatStatus::kUnsat;
    record.notes.push_back("certified: " + certificate.reason);
    if (telemetry::enabled()) {
      telemetry::counter("smtlib.check_sat.certified_unsat").add();
    }
    result.decided = true;
    record_verdict(record.status);
    return result;
  }
  return result;
}

std::string render_model(const CheckSatRecord* last) {
  if (last == nullptr || last->status != CheckSatStatus::kSat) {
    return "(error \"no model available\")\n";
  }
  if (last->variable.empty()) return "(model)\n";
  std::string out = "(model (define-fun " + last->variable + " () String ";
  append_quoted(out, last->model_value);
  out += "))\n";
  return out;
}

std::string render_get_value(const std::vector<std::string>& names,
                             const CheckSatRecord* last) {
  if (last == nullptr || last->status != CheckSatStatus::kSat) {
    return "(error \"no model available\")\n";
  }
  std::string out = "(";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ' ';
    out += '(';
    out += names[i];
    out += ' ';
    if (names[i] == last->variable) {
      append_quoted(out, last->model_value);
    } else {
      out += "(error \"unknown constant\")";
    }
    out += ')';
  }
  out += ")\n";
  return out;
}

SmtDriver::SmtDriver(const anneal::Sampler& sampler,
                     strqubo::BuildOptions options)
    : sampler_(&sampler), options_(options) {}

SmtDriver::SmtDriver(strqubo::BuildOptions options)
    : sampler_(nullptr), options_(options) {}

void SmtDriver::reset() {
  declared_.clear();
  assertions_.clear();
  frames_.clear();
}

CheckSatRecord SmtDriver::check_sat() {
  telemetry::Span span("smtlib.check_sat");
  span.arg("num_assertions", static_cast<double>(assertions_.size()));
  PresolveResult presolved = presolve_check_sat(assertions_, declared_);
  span.arg("num_constraints",
           static_cast<double>(presolved.query.constraints.size()));
  if (presolved.decided) return presolved.record;
  CheckSatRecord record = std::move(presolved.record);
  require(sampler_ != nullptr,
          "smtlib: SmtDriver without a sampler must override check_sat");

  const ConjunctionResult solved =
      solve_conjunction(presolved.query.constraints, *sampler_, options_);
  record.num_qubo_variables = solved.num_qubo_variables;
  if (solved.solved) {
    record.status = CheckSatStatus::kSat;
    record.model_value = solved.value;
  } else {
    record.status = CheckSatStatus::kUnknown;
    record.notes.push_back(solved.note);
  }
  record_verdict(record.status);
  return record;
}

bool SmtDriver::execute(const Command& command, std::string& out) {
  return std::visit(
      [&](const auto& cmd) -> bool {
        using T = std::decay_t<decltype(cmd)>;
        if constexpr (std::is_same_v<T, SetLogic> ||
                      std::is_same_v<T, SetOption> ||
                      std::is_same_v<T, SetInfo>) {
          return true;
        } else if constexpr (std::is_same_v<T, DeclareConst>) {
          require(!declared_.contains(cmd.name),
                  "smtlib: duplicate declaration of " + cmd.name);
          declared_.emplace(cmd.name, cmd.sort);
          return true;
        } else if constexpr (std::is_same_v<T, AssertCmd>) {
          assertions_.push_back(cmd.term);
          return true;
        } else if constexpr (std::is_same_v<T, CheckSat>) {
          history_.push_back(check_sat());
          out += status_name(history_.back().status);
          out += '\n';
          return true;
        } else if constexpr (std::is_same_v<T, GetModel>) {
          out += render_model(history_.empty() ? nullptr : &history_.back());
          return true;
        } else if constexpr (std::is_same_v<T, Echo>) {
          out += cmd.message;
          out += '\n';
          return true;
        } else if constexpr (std::is_same_v<T, Push>) {
          for (std::size_t k = 0; k < cmd.levels; ++k) {
            frames_.push_back(Frame{assertions_.size(), declared_});
          }
          return true;
        } else if constexpr (std::is_same_v<T, Pop>) {
          require(cmd.levels <= frames_.size(),
                  "smtlib: pop below the bottom of the assertion stack");
          for (std::size_t k = 0; k < cmd.levels; ++k) {
            assertions_.resize(frames_.back().num_assertions);
            declared_ = std::move(frames_.back().declared);
            frames_.pop_back();
          }
          return true;
        } else if constexpr (std::is_same_v<T, CheckSatAssuming>) {
          // Assumptions join the assertion set for this check only.
          const std::size_t restore = assertions_.size();
          for (const auto& assumption : cmd.assumptions) {
            assertions_.push_back(assumption);
          }
          history_.push_back(check_sat());
          assertions_.resize(restore);
          out += status_name(history_.back().status);
          out += '\n';
          return true;
        } else if constexpr (std::is_same_v<T, GetValue>) {
          out += render_get_value(cmd.names,
                                  history_.empty() ? nullptr
                                                   : &history_.back());
          return true;
        } else if constexpr (std::is_same_v<T, ResetCmd>) {
          // (reset) erases everything, including the model history — a
          // subsequent (get-model) reports no model, per SMT-LIB.
          reset();
          history_.clear();
          return true;
        } else {
          static_assert(std::is_same_v<T, ExitCmd>);
          return false;
        }
      },
      command);
}

std::string SmtDriver::run_script(const std::string& text) {
  std::string out;
  for (const Command& command : parse_script(text)) {
    if (!execute(command, out)) break;
  }
  return out;
}

}  // namespace qsmt::smtlib

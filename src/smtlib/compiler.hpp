// Compiles asserted SMT-LIB terms into the strqubo constraint IR.
//
// The supported query shape is the paper's: a single free String constant
// constrained by a conjunction of str.* atoms. Atoms that need to know the
// generated string's length (str.contains, str.in_re, str.indexof,
// qsmt.is_palindrome, str.prefixof/suffixof) require a companion
// (= (str.len x) N) assertion, mirroring how the paper's formulations all
// take the output length as an input argument.
//
// Ground terms (no free variable) are folded classically so scripts can mix
// concrete checks with generation queries.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "smtlib/ast.hpp"
#include "strqubo/constraint.hpp"

namespace qsmt::smtlib {

/// Result of compiling one check-sat's assertion set.
struct CompiledQuery {
  /// The single free string variable (empty when the query is ground).
  std::string variable;
  /// Conjunction of compiled constraints on `variable`.
  std::vector<strqubo::Constraint> constraints;
  /// Length extracted from a (= (str.len x) N) assertion, if any.
  std::optional<std::size_t> declared_length;
  /// Ground assertions that evaluated to false (query is trivially unsat).
  std::vector<std::string> falsified_ground;
  /// Assertions outside the fragment (query outcome becomes unknown).
  std::vector<std::string> unsupported;
};

/// Compiles the assertion conjunction. Boolean `and` is flattened; `or` and
/// `not` are outside this compiler's fragment (the DPLL(T) layer in src/sat
/// handles them) and land in `unsupported`.
CompiledQuery compile_assertions(const std::vector<TermPtr>& assertions,
                                 const std::map<std::string, Sort>& declared);

/// Compiles a single atomic predicate over `variable`. Returns std::nullopt
/// and fills `error` when the atom is outside the fragment or needs a
/// length that was not provided.
std::optional<strqubo::Constraint> compile_atom(
    const TermPtr& atom, const std::string& variable,
    std::optional<std::size_t> length, std::string& error);

/// Rebuilds the paper's regex subset pattern text from a RegLan term
/// (str.to_re / re.++ / re.union of single characters / re.+).
/// Throws std::invalid_argument for RegLan constructs outside the subset.
std::string regex_term_to_pattern(const TermPtr& term);

/// Value of a ground term.
using GroundValue = std::variant<std::string, std::int64_t, bool>;

/// Classically evaluates a term with no free variables. Returns nullopt for
/// non-ground terms or operations outside the fragment.
std::optional<GroundValue> evaluate_ground(const TermPtr& term);

}  // namespace qsmt::smtlib

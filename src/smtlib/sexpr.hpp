// S-expression reader for the SMT-LIB v2 concrete syntax (paper §2.1.1:
// "The SMT-LIB format uses a LISP-like prefix notation").
//
// Supports symbols, decimal numerals, SMT-LIB 2.6 string literals
// ("" escapes a quote inside a string), parenthesised lists, and ';'
// line comments.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace qsmt::smtlib {

struct SExpr;

using SList = std::vector<SExpr>;

struct SExpr {
  // Exactly one alternative is meaningful, tagged by `kind`.
  enum class Kind { kSymbol, kString, kNumeral, kList };
  Kind kind = Kind::kList;
  std::string atom;      ///< Symbol text or decoded string literal.
  std::int64_t numeral = 0;
  SList list;

  bool is_symbol(std::string_view s) const {
    return kind == Kind::kSymbol && atom == s;
  }
  bool is_list() const { return kind == Kind::kList; }

  static SExpr symbol(std::string s);
  static SExpr string(std::string s);
  static SExpr number(std::int64_t n);
  static SExpr make_list(SList items);
};

/// Parses a whole input into the sequence of top-level s-expressions.
/// Throws std::invalid_argument with a line number on malformed input
/// (unbalanced parens, unterminated string, stray ')').
std::vector<SExpr> parse_sexprs(std::string_view input);

/// Renders an s-expression back to SMT-LIB concrete syntax.
std::string to_string(const SExpr& expr);

}  // namespace qsmt::smtlib

// S-expression -> command/term parser for the supported SMT-LIB fragment.
#pragma once

#include <string_view>
#include <vector>

#include "smtlib/ast.hpp"
#include "smtlib/sexpr.hpp"

namespace qsmt::smtlib {

/// Parses a full script. Throws std::invalid_argument on commands outside
/// the supported fragment (push/pop, define-fun, quantifiers, ...) with a
/// message naming the offending command.
std::vector<Command> parse_script(std::string_view input);

/// Parses one command s-expression.
Command parse_command(const SExpr& expr);

/// Parses a term s-expression (used by parse_command and by tests).
TermPtr parse_term(const SExpr& expr);

}  // namespace qsmt::smtlib

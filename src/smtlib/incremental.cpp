#include "smtlib/incremental.hpp"

#include <algorithm>
#include <span>
#include <sstream>

#include "strenc/ascii7.hpp"
#include "strqubo/verify.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace qsmt::smtlib {

namespace {

/// Merged conjunction model plus the layout facts the scan needs.
struct MergedConjunction {
  qubo::QuboModel model{0};
  std::size_t string_bits = 0;
  std::size_t num_variables = 0;
};

/// Sums per-constraint blocks into one model: string bits share indices,
/// auxiliary blocks (regex one-hot selectors, not-contains ancillas) are
/// re-linked to fresh ranges past the string block. When `fragments` is
/// given, blocks come from the cache — a re-solve with one mutated
/// assertion rebuilds exactly one block.
MergedConjunction merge_conjunction(
    const std::vector<strqubo::Constraint>& constraints,
    const strqubo::BuildOptions& options, FragmentCache* fragments,
    std::size_t string_bits) {
  MergedConjunction merged;
  merged.string_bits = string_bits;
  merged.model = qubo::QuboModel(string_bits);
  std::size_t aux_base = string_bits;
  telemetry::Span merge_span("smtlib.merge_qubo");
  for (const auto& constraint : constraints) {
    std::shared_ptr<const qubo::QuboModel> cached;
    const qubo::QuboModel* part = nullptr;
    qubo::QuboModel built{0};
    if (fragments != nullptr) {
      cached = fragments->get_or_build(constraint, options);
      part = cached.get();
    } else {
      built = strqubo::build(constraint, options);
      part = &built;
    }
    const std::size_t part_aux =
        part->num_variables() > string_bits
            ? part->num_variables() - string_bits
            : 0;
    auto remap = [&](std::size_t v) {
      return v < string_bits ? v : aux_base + (v - string_bits);
    };
    merged.model.add_offset(part->offset());
    for (std::size_t v = 0; v < part->num_variables(); ++v) {
      const double lin = part->linear_terms()[v];
      if (lin != 0.0) merged.model.add_linear(remap(v), lin);
    }
    for (const auto& [key, value] : part->quadratic_terms()) {
      if (value == 0.0) continue;
      merged.model.add_quadratic(remap(key >> 32), remap(key & 0xffffffffULL),
                                 value);
    }
    aux_base += part_aux;
  }
  merged.num_variables = std::max(merged.model.num_variables(), string_bits);
  return merged;
}

/// True when `value` satisfies every conjunct and the caller's filter.
bool witness_verifies(const std::string& value,
                      const std::vector<strqubo::Constraint>& constraints,
                      const std::function<bool(const std::string&)>& accept) {
  for (const auto& constraint : constraints) {
    if (!strqubo::verify_string(constraint, value)) return false;
  }
  return !accept || accept(value);
}

/// Scans samples best-first for a verified witness; fills `result` on hit.
bool scan_samples(const anneal::SampleSet& samples, std::size_t string_bits,
                  const std::vector<strqubo::Constraint>& constraints,
                  const std::function<bool(const std::string&)>& accept,
                  ConjunctionResult& result) {
  telemetry::Span verify_span("smtlib.verify");
  for (const auto& sample : samples) {
    const std::string value = strenc::decode_string(
        std::span(sample.bits).subspan(0, string_bits));
    if (!witness_verifies(value, constraints, accept)) continue;
    result.solved = true;
    result.value = value;
    if (telemetry::enabled()) {
      telemetry::counter("smtlib.conjunction.solved").add();
    }
    return true;
  }
  return false;
}

/// Shared admission checks; returns false (with result.note/solved set)
/// when the conjunction cannot be merged at all.
bool admit_conjunction(const std::vector<strqubo::Constraint>& constraints,
                       const std::function<bool(const std::string&)>& accept,
                       std::size_t& string_bits, ConjunctionResult& result) {
  if (constraints.empty()) {
    result.solved = !accept || accept(std::string());
    if (!result.solved) result.note = "empty witness rejected by filter";
    return false;
  }
  for (const auto& constraint : constraints) {
    if (!strqubo::produces_string(constraint)) {
      result.note = "includes-style atoms cannot join a generation conjunction";
      return false;
    }
  }
  // All conjuncts must generate the same number of characters so their QUBO
  // matrices can be summed variable-for-variable.
  string_bits = strqubo::constraint_num_variables(constraints.front());
  for (const auto& constraint : constraints) {
    if (strqubo::constraint_num_variables(constraint) != string_bits) {
      result.note =
          "conjuncts disagree on string length; cannot merge QUBO models";
      return false;
    }
  }
  return true;
}

void publish_model_size(ConjunctionResult& result,
                        const MergedConjunction& merged) {
  result.num_qubo_variables = merged.num_variables;
  if (telemetry::enabled()) {
    telemetry::gauge("smtlib.qubo_variables")
        .set(static_cast<double>(result.num_qubo_variables));
  }
}

}  // namespace

std::string fragment_key(const strqubo::Constraint& constraint,
                         const strqubo::BuildOptions& options) {
  std::ostringstream out;
  out << strqubo::structure_key(constraint) << '\x1e'
      << strqubo::options_fingerprint(options);
  return out.str();
}

namespace {

/// Approximate retained footprint of one cached block: its key plus the
/// model's linear and quadratic coefficient storage.
std::size_t block_bytes(const std::string& key, const qubo::QuboModel& block) {
  return key.size() + block.num_variables() * sizeof(double) +
         block.num_interactions() *
             (sizeof(std::uint64_t) + sizeof(double)) +
         64;  // list/map node overhead.
}

}  // namespace

FragmentCache::FragmentCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

std::shared_ptr<const qubo::QuboModel> FragmentCache::get_or_build(
    const strqubo::Constraint& constraint,
    const strqubo::BuildOptions& options) {
  const std::string key = fragment_key(constraint, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      if (telemetry::enabled()) {
        telemetry::counter("incremental.fragment.hits").add();
      }
      return it->second->block;
    }
  }
  // Build outside the lock: builders dominate and would serialise every
  // session otherwise. Two threads may race the same key; the loser's
  // insert is a no-op and its build is wasted once.
  auto block = std::make_shared<const qubo::QuboModel>(
      strqubo::build(constraint, options));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  if (telemetry::enabled()) {
    telemetry::counter("incremental.fragment.misses").add();
  }
  auto it = index_.find(key);
  if (it != index_.end()) return it->second->block;
  const std::size_t entry_bytes = block_bytes(key, *block);
  lru_.push_front(Entry{key, block, entry_bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += entry_bytes;
  while (index_.size() > capacity_) {
    bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  publish_occupancy_locked();
  return block;
}

void FragmentCache::publish_occupancy_locked() {
  if (telemetry::enabled()) {
    telemetry::gauge("incremental.fragment.entries")
        .set(static_cast<double>(index_.size()));
    telemetry::gauge("incremental.fragment.bytes", telemetry::Unit::kBytes)
        .set(static_cast<double>(bytes_));
  }
}

std::size_t FragmentCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

std::size_t FragmentCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

FragmentCache::Stats FragmentCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  stats.entries = index_.size();
  stats.bytes = bytes_;
  return stats;
}

void ClauseMemory::remember(
    std::size_t depth, std::vector<std::pair<std::string, bool>> literals) {
  TheoryLemma lemma;
  lemma.depth = depth;
  lemma.literals = std::move(literals);
  lemmas_.push_back(std::move(lemma));
}

void ClauseMemory::drop_deeper_than(std::size_t depth) {
  lemmas_.erase(std::remove_if(lemmas_.begin(), lemmas_.end(),
                               [&](const TheoryLemma& lemma) {
                                 return lemma.depth > depth;
                               }),
                lemmas_.end());
}

SolveContext::SolveContext(IncrementalParams params,
                           std::shared_ptr<FragmentCache> fragments)
    : params_(params),
      fragments_(fragments ? std::move(fragments)
                           : std::make_shared<FragmentCache>(
                                 params.fragment_capacity)) {}

void SolveContext::pop(std::size_t levels) {
  depth_ = levels >= depth_ ? 0 : depth_ - levels;
  // Invalidate only what the removed frames recorded; shallower state
  // survives the pop untouched.
  while (!witnesses_.empty() && witnesses_.back().first > depth_) {
    witnesses_.pop_back();
  }
  clauses_.drop_deeper_than(depth_);
}

void SolveContext::note_witness(std::string value) {
  if (!witnesses_.empty() && witnesses_.back().first == depth_) {
    witnesses_.back().second = std::move(value);
    return;
  }
  witnesses_.emplace_back(depth_, std::move(value));
}

const std::string* SolveContext::last_witness() const {
  return witnesses_.empty() ? nullptr : &witnesses_.back().second;
}

void SolveContext::clear() {
  depth_ = 0;
  witnesses_.clear();
  clauses_.clear();
}

ConjunctionResult solve_conjunction(
    const std::vector<strqubo::Constraint>& constraints,
    const anneal::Sampler& sampler, const strqubo::BuildOptions& options,
    const std::function<bool(const std::string&)>& accept) {
  ConjunctionResult result;
  telemetry::Span span("smtlib.solve_conjunction");
  span.arg("num_constraints", static_cast<double>(constraints.size()));
  std::size_t string_bits = 0;
  if (!admit_conjunction(constraints, accept, string_bits, result)) {
    return result;
  }

  const MergedConjunction merged =
      merge_conjunction(constraints, options, nullptr, string_bits);
  publish_model_size(result, merged);

  const anneal::SampleSet samples = sampler.sample(merged.model);
  if (samples.empty()) {
    result.note = "sampler returned no samples";
    return result;
  }
  if (scan_samples(samples, string_bits, constraints, accept, result)) {
    return result;
  }
  result.note = "no sample satisfied every conjunct";
  if (telemetry::enabled()) {
    telemetry::counter("smtlib.conjunction.unsolved").add();
  }
  return result;
}

ConjunctionResult solve_conjunction_incremental(
    const std::vector<strqubo::Constraint>& constraints,
    const anneal::Sampler& sampler, const strqubo::BuildOptions& options,
    SolveContext& context,
    const std::function<bool(const std::string&)>& accept) {
  if (!context.params().enabled) {
    ConjunctionResult result =
        solve_conjunction(constraints, sampler, options, accept);
    if (result.solved) context.note_witness(result.value);
    return result;
  }

  ConjunctionResult result;
  telemetry::Span span("smtlib.solve_conjunction");
  span.arg("num_constraints", static_cast<double>(constraints.size()));
  std::size_t string_bits = 0;
  if (!admit_conjunction(constraints, accept, string_bits, result)) {
    return result;
  }

  // Fast path 0: the previous witness still satisfies everything — a
  // re-check after an assumption retraction or a pop costs one classical
  // verification, no QUBO and no sampling at all.
  const std::string* previous = context.last_witness();
  if (previous != nullptr &&
      strenc::num_variables(previous->size()) == string_bits &&
      witness_verifies(*previous, constraints, accept)) {
    ++context.stats().witness_reuses;
    if (telemetry::enabled()) {
      telemetry::counter("incremental.witness.reuse").add();
      telemetry::counter("smtlib.conjunction.solved").add();
    }
    result.solved = true;
    result.value = *previous;
    result.num_qubo_variables = 0;  // No model was assembled.
    context.note_witness(result.value);
    return result;
  }

  const MergedConjunction merged = merge_conjunction(
      constraints, options, &context.fragments(), string_bits);
  publish_model_size(result, merged);

  // Fast path 1: warm start — seed a small reverse-anneal pass from the
  // previous witness when it still type-checks against the new variable
  // map (same string block; auxiliary bits start at zero).
  if (previous != nullptr &&
      strenc::num_variables(previous->size()) == string_bits &&
      strenc::is_ascii7(*previous)) {
    ++context.stats().warm_starts;
    if (telemetry::enabled()) {
      telemetry::counter("incremental.warm.starts").add();
    }
    std::vector<std::uint8_t> initial = strenc::encode_string(*previous);
    initial.resize(merged.num_variables, 0);
    anneal::ReverseAnnealerParams warm = context.params().warm;
    warm.seed = mix_seed(warm.seed, context.stats().warm_starts);
    const anneal::ReverseAnnealer refiner(std::move(initial), warm);
    const anneal::SampleSet refined = refiner.sample(merged.model);
    if (scan_samples(refined, string_bits, constraints, accept, result)) {
      ++context.stats().warm_hits;
      if (telemetry::enabled()) {
        telemetry::counter("incremental.warm.hits").add();
      }
      context.note_witness(result.value);
      return result;
    }
  }

  // Cold fallback: the caller's full-budget sampler.
  ++context.stats().cold_starts;
  if (telemetry::enabled()) {
    telemetry::counter("incremental.cold.starts").add();
  }
  const anneal::SampleSet samples = sampler.sample(merged.model);
  if (samples.empty()) {
    result.note = "sampler returned no samples";
    return result;
  }
  if (scan_samples(samples, string_bits, constraints, accept, result)) {
    context.note_witness(result.value);
    return result;
  }
  result.note = "no sample satisfied every conjunct";
  if (telemetry::enabled()) {
    telemetry::counter("smtlib.conjunction.unsolved").add();
  }
  return result;
}

}  // namespace qsmt::smtlib

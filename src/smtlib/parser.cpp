#include "smtlib/parser.hpp"

#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace qsmt::smtlib {

namespace {

[[noreturn]] void unsupported(const std::string& what) {
  throw std::invalid_argument("smtlib: unsupported construct: " + what);
}

Sort parse_sort(const SExpr& expr) {
  if (expr.is_symbol("Bool")) return Sort::kBool;
  if (expr.is_symbol("Int")) return Sort::kInt;
  if (expr.is_symbol("String")) return Sort::kString;
  if (expr.is_symbol("RegLan")) return Sort::kRegLan;
  unsupported("sort " + to_string(expr));
}

}  // namespace

TermPtr parse_term(const SExpr& expr) {
  switch (expr.kind) {
    case SExpr::Kind::kString:
      return Term::string_lit(expr.atom);
    case SExpr::Kind::kNumeral:
      return Term::int_lit(expr.numeral);
    case SExpr::Kind::kSymbol:
      if (expr.atom == "true") return Term::bool_lit(true);
      if (expr.atom == "false") return Term::bool_lit(false);
      return Term::variable(expr.atom);
    case SExpr::Kind::kList: {
      require(!expr.list.empty(), "smtlib: empty application");
      const SExpr& head = expr.list.front();
      require(head.kind == SExpr::Kind::kSymbol,
              "smtlib: application head must be a symbol, got " +
                  to_string(head));
      std::vector<TermPtr> args;
      args.reserve(expr.list.size() - 1);
      for (std::size_t i = 1; i < expr.list.size(); ++i) {
        args.push_back(parse_term(expr.list[i]));
      }
      return Term::apply(head.atom, std::move(args));
    }
  }
  unsupported("term " + to_string(expr));
}

Command parse_command(const SExpr& expr) {
  require(expr.is_list() && !expr.list.empty(),
          "smtlib: command must be a non-empty list");
  const SExpr& head = expr.list.front();
  require(head.kind == SExpr::Kind::kSymbol,
          "smtlib: command head must be a symbol");
  const std::string& name = head.atom;
  const auto arity = expr.list.size() - 1;

  if (name == "set-logic") {
    require(arity == 1 && expr.list[1].kind == SExpr::Kind::kSymbol,
            "smtlib: set-logic expects one symbol");
    return SetLogic{expr.list[1].atom};
  }
  if (name == "set-option") return SetOption{to_string(expr)};
  if (name == "set-info") return SetInfo{to_string(expr)};
  if (name == "declare-const") {
    require(arity == 2 && expr.list[1].kind == SExpr::Kind::kSymbol,
            "smtlib: declare-const expects a name and a sort");
    return DeclareConst{expr.list[1].atom, parse_sort(expr.list[2])};
  }
  if (name == "declare-fun") {
    // Only zero-arity declare-fun (equivalent to declare-const).
    require(arity == 3, "smtlib: declare-fun expects 3 arguments");
    require(expr.list[2].is_list() && expr.list[2].list.empty(),
            "smtlib: only zero-arity declare-fun is supported");
    return DeclareConst{expr.list[1].atom, parse_sort(expr.list[3])};
  }
  if (name == "assert") {
    require(arity == 1, "smtlib: assert expects one term");
    return AssertCmd{parse_term(expr.list[1])};
  }
  if (name == "check-sat") {
    require(arity == 0, "smtlib: check-sat expects no arguments");
    return CheckSat{};
  }
  if (name == "get-model") {
    require(arity == 0, "smtlib: get-model expects no arguments");
    return GetModel{};
  }
  if (name == "echo") {
    require(arity == 1 && expr.list[1].kind == SExpr::Kind::kString,
            "smtlib: echo expects one string");
    return Echo{expr.list[1].atom};
  }
  if (name == "push" || name == "pop") {
    std::size_t levels = 1;
    if (arity == 1) {
      require(expr.list[1].kind == SExpr::Kind::kNumeral &&
                  expr.list[1].numeral >= 0,
              "smtlib: push/pop expects a non-negative numeral");
      levels = static_cast<std::size_t>(expr.list[1].numeral);
    } else {
      require(arity == 0, "smtlib: push/pop expects at most one numeral");
    }
    if (name == "push") return Push{levels};
    return Pop{levels};
  }
  if (name == "check-sat-assuming") {
    require(arity == 1 && expr.list[1].is_list(),
            "smtlib: check-sat-assuming expects a term list");
    CheckSatAssuming check;
    for (const SExpr& item : expr.list[1].list) {
      check.assumptions.push_back(parse_term(item));
    }
    return check;
  }
  if (name == "get-value") {
    require(arity == 1 && expr.list[1].is_list() && !expr.list[1].list.empty(),
            "smtlib: get-value expects a non-empty term list");
    GetValue get_value;
    for (const SExpr& item : expr.list[1].list) {
      require(item.kind == SExpr::Kind::kSymbol,
              "smtlib: get-value only supports plain constants");
      get_value.names.push_back(item.atom);
    }
    return get_value;
  }
  if (name == "reset") {
    require(arity == 0, "smtlib: reset expects no arguments");
    return ResetCmd{};
  }
  if (name == "exit") return ExitCmd{};
  unsupported("command " + name);
}

std::vector<Command> parse_script(std::string_view input) {
  telemetry::Span span("smtlib.parse");
  span.arg("bytes", static_cast<double>(input.size()));
  std::vector<Command> commands;
  for (const SExpr& expr : parse_sexprs(input)) {
    commands.push_back(parse_command(expr));
  }
  span.arg("num_commands", static_cast<double>(commands.size()));
  return commands;
}

}  // namespace qsmt::smtlib

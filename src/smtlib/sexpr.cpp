#include "smtlib/sexpr.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace qsmt::smtlib {

SExpr SExpr::symbol(std::string s) {
  SExpr e;
  e.kind = Kind::kSymbol;
  e.atom = std::move(s);
  return e;
}

SExpr SExpr::string(std::string s) {
  SExpr e;
  e.kind = Kind::kString;
  e.atom = std::move(s);
  return e;
}

SExpr SExpr::number(std::int64_t n) {
  SExpr e;
  e.kind = Kind::kNumeral;
  e.numeral = n;
  return e;
}

SExpr SExpr::make_list(SList items) {
  SExpr e;
  e.kind = Kind::kList;
  e.list = std::move(items);
  return e;
}

namespace {

class Reader {
 public:
  explicit Reader(std::string_view input) : input_(input) {}

  std::vector<SExpr> read_all() {
    std::vector<SExpr> out;
    skip_space();
    while (!at_end()) {
      out.push_back(read_expr());
      skip_space();
    }
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream out;
    out << "smtlib parse error (line " << line_ << "): " << message;
    throw std::invalid_argument(out.str());
  }

  bool at_end() const { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }
  char advance() {
    const char c = input_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void skip_space() {
    while (!at_end()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == ';') {
        while (!at_end() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  SExpr read_expr() {
    const char c = peek();
    if (c == '(') return read_list();
    if (c == ')') fail("unexpected ')'");
    if (c == '"') return read_string();
    return read_atom();
  }

  SExpr read_list() {
    advance();  // consume '('
    SList items;
    while (true) {
      skip_space();
      if (at_end()) fail("unterminated '('");
      if (peek() == ')') {
        advance();
        return SExpr::make_list(std::move(items));
      }
      items.push_back(read_expr());
    }
  }

  SExpr read_string() {
    advance();  // consume opening quote
    std::string value;
    while (true) {
      if (at_end()) fail("unterminated string literal");
      const char c = advance();
      if (c == '"') {
        // SMT-LIB 2.6: "" inside a string denotes a single quote.
        if (!at_end() && peek() == '"') {
          advance();
          value.push_back('"');
          continue;
        }
        return SExpr::string(std::move(value));
      }
      value.push_back(c);
    }
  }

  SExpr read_atom() {
    std::string text;
    while (!at_end()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
          c == ')' || c == ';' || c == '"') {
        break;
      }
      text.push_back(advance());
    }
    if (text.empty()) fail("empty atom");
    // Numeral: optional minus then digits only.
    const bool negative = text[0] == '-' && text.size() > 1;
    const std::size_t digits_from = negative ? 1 : 0;
    bool all_digits = text.size() > digits_from;
    for (std::size_t i = digits_from; i < text.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
        all_digits = false;
        break;
      }
    }
    if (all_digits) {
      try {
        return SExpr::number(std::stoll(text));
      } catch (const std::out_of_range&) {
        fail("numeral out of range: " + text);
      }
    }
    return SExpr::symbol(std::move(text));
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

void append(std::string& out, const SExpr& expr) {
  switch (expr.kind) {
    case SExpr::Kind::kSymbol:
      out += expr.atom;
      break;
    case SExpr::Kind::kNumeral:
      out += std::to_string(expr.numeral);
      break;
    case SExpr::Kind::kString: {
      out += '"';
      for (char c : expr.atom) {
        out += c;
        if (c == '"') out += '"';
      }
      out += '"';
      break;
    }
    case SExpr::Kind::kList: {
      out += '(';
      for (std::size_t i = 0; i < expr.list.size(); ++i) {
        if (i > 0) out += ' ';
        append(out, expr.list[i]);
      }
      out += ')';
      break;
    }
  }
}

}  // namespace

std::vector<SExpr> parse_sexprs(std::string_view input) {
  return Reader(input).read_all();
}

std::string to_string(const SExpr& expr) {
  std::string out;
  append(out, expr);
  return out;
}

}  // namespace qsmt::smtlib

// Typed AST for the supported SMT-LIB fragment.
//
// The fragment is quantifier-free string theory over a single free string
// variable per query: string literals, str.* operations (SMT-LIB theory of
// Unicode strings, restricted to 7-bit ASCII), regular-expression terms,
// linear facts about str.len, boolean structure (and/or/not), plus two qsmt
// extension predicates the paper contributes formulations for
// (qsmt.is_palindrome, qsmt.replace_all alias str.replace_all).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace qsmt::smtlib {

enum class Sort { kBool, kInt, kString, kRegLan };

/// Returns the SMT-LIB name of a sort ("Bool", "Int", "String", "RegLan").
std::string sort_name(Sort sort);

struct Term;
using TermPtr = std::shared_ptr<const Term>;

struct Term {
  enum class Kind {
    kStringLit,  ///< atom = value
    kIntLit,     ///< int_value
    kBoolLit,    ///< bool_value
    kVariable,   ///< atom = name
    kApply,      ///< atom = operator symbol, args = operands
  };

  Kind kind = Kind::kApply;
  std::string atom;
  std::int64_t int_value = 0;
  bool bool_value = false;
  std::vector<TermPtr> args;

  static TermPtr string_lit(std::string value);
  static TermPtr int_lit(std::int64_t value);
  static TermPtr bool_lit(bool value);
  static TermPtr variable(std::string name);
  static TermPtr apply(std::string op, std::vector<TermPtr> operands);

  bool is_apply(std::string_view op) const {
    return kind == Kind::kApply && atom == op;
  }
};

/// Renders a term back to SMT-LIB concrete syntax (for diagnostics).
std::string to_string(const TermPtr& term);

// ---- Commands -------------------------------------------------------------

struct SetLogic {
  std::string logic;
};
struct SetOption {
  std::string text;  ///< Raw option text, recorded but ignored.
};
struct SetInfo {
  std::string text;
};
struct DeclareConst {
  std::string name;
  Sort sort;
};
struct AssertCmd {
  TermPtr term;
};
struct CheckSat {};
struct GetModel {};
struct Echo {
  std::string message;
};
struct Push {
  std::size_t levels = 1;
};
struct Pop {
  std::size_t levels = 1;
};
struct GetValue {
  std::vector<std::string> names;  ///< Declared constants to report.
};
struct CheckSatAssuming {
  std::vector<TermPtr> assumptions;  ///< Extra conjuncts for this check only.
};
struct ResetCmd {};
struct ExitCmd {};

using Command =
    std::variant<SetLogic, SetOption, SetInfo, DeclareConst, AssertCmd,
                 CheckSat, GetModel, Echo, Push, Pop, GetValue,
                 CheckSatAssuming, ResetCmd, ExitCmd>;

}  // namespace qsmt::smtlib

// SMT-LIB script driver: executes a script against the annealing solver.
//
// The interactive surface of the system: feed it a .smt2 script, it answers
// check-sat with `sat` (annealer found a verified model), `unsat` (a ground
// assertion is false, or baseline::certify_unsat produced an exact proof —
// length conflicts, impossible regex lengths, pinned witnesses, bounded
// exhaustive search; the solver never claims unsatisfiability without a
// certificate), or `unknown` (out of fragment, or the annealer's best
// sample failed classical verification).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "anneal/sampler.hpp"
#include "smtlib/ast.hpp"
#include "smtlib/compiler.hpp"
#include "strqubo/builders.hpp"

namespace qsmt::smtlib {

enum class CheckSatStatus { kSat, kUnsat, kUnknown };

std::string status_name(CheckSatStatus status);

struct CheckSatRecord {
  CheckSatStatus status = CheckSatStatus::kUnknown;
  /// Model value for the string variable when status == kSat.
  std::string model_value;
  std::string variable;
  /// Diagnostics (unsupported atoms, falsified ground facts, ...).
  std::vector<std::string> notes;
  std::size_t num_constraints = 0;
  std::size_t num_qubo_variables = 0;
};

class SmtDriver {
 public:
  /// `sampler` must outlive the driver.
  explicit SmtDriver(const anneal::Sampler& sampler,
                     strqubo::BuildOptions options = {});

  /// Executes a whole script; returns the printed output (one line per
  /// check-sat / echo / get-model, z3-style).
  std::string run_script(const std::string& text);

  /// Executes one parsed command; appends any output to `out`.
  /// Returns false when the command was (exit).
  bool execute(const Command& command, std::string& out);

  /// Records of every check-sat performed (for tests and benches).
  const std::vector<CheckSatRecord>& history() const noexcept {
    return history_;
  }

  /// Resets declarations, assertions, and the push/pop stack.
  void reset();

  /// Current push/pop nesting depth.
  std::size_t scope_depth() const noexcept { return frames_.size(); }

 private:
  CheckSatRecord check_sat();

  /// One (push) scope: everything to restore on the matching (pop).
  struct Frame {
    std::size_t num_assertions;
    std::map<std::string, Sort> declared;
  };

  const anneal::Sampler* sampler_;
  strqubo::BuildOptions options_;
  std::map<std::string, Sort> declared_;
  std::vector<TermPtr> assertions_;
  std::vector<Frame> frames_;
  std::vector<CheckSatRecord> history_;
};

/// Solves a conjunction of same-variable constraints by summing their QUBO
/// models (an extension over the paper's sequential §4.12 combination; see
/// DESIGN.md), sampling once, and returning the lowest-energy sample whose
/// decoding classically verifies every conjunct. Auxiliary variables past
/// the shared string block (regex one-hot selectors) are remapped to fresh
/// ranges so any mix of encodings merges soundly.
///
/// `accept`, when set, is an extra predicate the witness must pass — the
/// DPLL(T) layer uses it to require that atoms assigned false actually fail
/// on the witness, steering the scan toward a fully consistent model
/// instead of rejecting the whole boolean assignment.
struct ConjunctionResult {
  bool solved = false;      ///< A sample satisfying all conjuncts was found.
  std::string value;        ///< The witness when solved.
  std::string note;         ///< Why not, otherwise.
  std::size_t num_qubo_variables = 0;
};
ConjunctionResult solve_conjunction(
    const std::vector<strqubo::Constraint>& constraints,
    const anneal::Sampler& sampler, const strqubo::BuildOptions& options,
    const std::function<bool(const std::string&)>& accept = {});

}  // namespace qsmt::smtlib

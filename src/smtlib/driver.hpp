// SMT-LIB script driver: executes a script against the annealing solver.
//
// The interactive surface of the system: feed it a .smt2 script, it answers
// check-sat with `sat` (annealer found a verified model), `unsat` (a ground
// assertion is false, or baseline::certify_unsat produced an exact proof —
// length conflicts, impossible regex lengths, pinned witnesses, bounded
// exhaustive search; the solver never claims unsatisfiability without a
// certificate), or `unknown` (out of fragment, or the annealer's best
// sample failed classical verification).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "anneal/sampler.hpp"
#include "smtlib/ast.hpp"
#include "smtlib/compiler.hpp"
#include "smtlib/incremental.hpp"
#include "strqubo/builders.hpp"

namespace qsmt::smtlib {

enum class CheckSatStatus { kSat, kUnsat, kUnknown };

std::string status_name(CheckSatStatus status);

struct CheckSatRecord {
  CheckSatStatus status = CheckSatStatus::kUnknown;
  /// Model value for the string variable when status == kSat.
  std::string model_value;
  std::string variable;
  /// Diagnostics (unsupported atoms, falsified ground facts, ...).
  std::vector<std::string> notes;
  std::size_t num_constraints = 0;
  std::size_t num_qubo_variables = 0;
};

/// Outcome of the deterministic pre-solve decision tree every check-sat
/// runs before touching a sampler: compile, then falsified ground fact ->
/// unsat, unsupported atom -> unknown, no residual constraints -> sat,
/// exact certificate -> unsat. `decided` means `record` carries the final
/// verdict; otherwise `query.constraints` still needs a solver. Shared by
/// SmtDriver::check_sat and the server's service-backed session so both
/// front ends answer the cheap cases identically without a round trip.
struct PresolveResult {
  bool decided = false;
  CheckSatRecord record;
  CompiledQuery query;
};

/// Runs the deterministic pre-solve tree over the current assertion set.
/// Records the smtlib.verdict.* counter when the verdict is decided.
PresolveResult presolve_check_sat(const std::vector<TermPtr>& assertions,
                                  const std::map<std::string, Sort>& declared);

/// Bumps the smtlib.verdict.{sat,unsat,unknown} counter for a verdict
/// reached outside presolve_check_sat (i.e. after an actual solve).
void record_verdict(CheckSatStatus status);

/// Renders the (get-model) reply for the most recent check-sat record
/// (nullptr when no check-sat has run). z3-style: an error when the last
/// verdict was not sat, `(model)` for variable-free sat scripts, otherwise
/// a single define-fun with SMT-LIB quote escaping.
std::string render_model(const CheckSatRecord* last);

/// Renders the (get-value (...)) reply against the most recent check-sat
/// record, mirroring render_model's error behaviour.
std::string render_get_value(const std::vector<std::string>& names,
                             const CheckSatRecord* last);

class SmtDriver {
 public:
  /// `sampler` must outlive the driver. `fragments`, when given, shares a
  /// compiled-fragment cache across drivers (blocks are immutable, so
  /// sharing is tenant-safe); by default the driver owns a private one.
  explicit SmtDriver(const anneal::Sampler& sampler,
                     strqubo::BuildOptions options = {},
                     std::shared_ptr<FragmentCache> fragments = nullptr);

  virtual ~SmtDriver() = default;

  /// Executes a whole script; returns the printed output (one line per
  /// check-sat / echo / get-model, z3-style).
  std::string run_script(const std::string& text);

  /// Executes one parsed command; appends any output to `out`.
  /// Returns false when the command was (exit).
  bool execute(const Command& command, std::string& out);

  /// Records of every check-sat performed (for tests and benches).
  const std::vector<CheckSatRecord>& history() const noexcept {
    return history_;
  }

  /// Resets declarations, assertions, and the push/pop stack. The
  /// check-sat history survives; the (reset) command clears it too.
  void reset();

  /// Current push/pop nesting depth.
  std::size_t scope_depth() const noexcept { return frames_.size(); }

  /// The incremental state carried across check-sats: compiled-fragment
  /// cache, witness memory, retained theory lemmas, per-context counters.
  SolveContext& solve_context() noexcept { return *context_; }
  const SolveContext& solve_context() const noexcept { return *context_; }

  /// Replaces the context (engine/bench plumbing: share one context across
  /// several driver instantiations of the same logical session).
  void adopt_context(std::shared_ptr<SolveContext> context);

 protected:
  /// For subclasses that answer check-sat without a local sampler (the
  /// server session dispatches to the service pool instead).
  explicit SmtDriver(strqubo::BuildOptions options);

  /// The check-sat strategy. The base runs presolve + an in-process
  /// solve_conjunction; overrides keep every other command's semantics
  /// (push/pop, get-model, ...) from execute() by construction.
  virtual CheckSatRecord check_sat();

  const std::vector<TermPtr>& assertions() const noexcept {
    return assertions_;
  }
  const std::map<std::string, Sort>& declared() const noexcept {
    return declared_;
  }
  const strqubo::BuildOptions& build_options() const noexcept {
    return options_;
  }

 private:
  /// One (push) scope: everything to restore on the matching (pop).
  struct Frame {
    std::size_t num_assertions;
    std::map<std::string, Sort> declared;
  };

  const anneal::Sampler* sampler_;
  strqubo::BuildOptions options_;
  std::shared_ptr<SolveContext> context_;
  std::map<std::string, Sort> declared_;
  std::vector<TermPtr> assertions_;
  std::vector<Frame> frames_;
  std::vector<CheckSatRecord> history_;
};

// ConjunctionResult, solve_conjunction and the incremental variant live in
// smtlib/incremental.hpp (included above); solve_conjunction merges the
// per-constraint QUBO models — an extension over the paper's sequential
// §4.12 combination, see DESIGN.md — samples once, and returns the
// lowest-energy sample whose decoding classically verifies every conjunct.
// `accept` is the DPLL(T) false-atom falsification filter.

}  // namespace qsmt::smtlib

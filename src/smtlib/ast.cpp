#include "smtlib/ast.hpp"

#include <sstream>
#include <variant>

namespace qsmt::smtlib {

std::string sort_name(Sort sort) {
  switch (sort) {
    case Sort::kBool:
      return "Bool";
    case Sort::kInt:
      return "Int";
    case Sort::kString:
      return "String";
    case Sort::kRegLan:
      return "RegLan";
  }
  return "?";
}

TermPtr Term::string_lit(std::string value) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kStringLit;
  t->atom = std::move(value);
  return t;
}

TermPtr Term::int_lit(std::int64_t value) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kIntLit;
  t->int_value = value;
  return t;
}

TermPtr Term::bool_lit(bool value) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kBoolLit;
  t->bool_value = value;
  return t;
}

TermPtr Term::variable(std::string name) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kVariable;
  t->atom = std::move(name);
  return t;
}

TermPtr Term::apply(std::string op, std::vector<TermPtr> operands) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kApply;
  t->atom = std::move(op);
  t->args = std::move(operands);
  return t;
}

std::string to_string(const TermPtr& term) {
  if (!term) return "<null>";
  switch (term->kind) {
    case Term::Kind::kStringLit: {
      std::string out = "\"";
      for (char c : term->atom) {
        out += c;
        if (c == '"') out += '"';
      }
      out += '"';
      return out;
    }
    case Term::Kind::kIntLit:
      return std::to_string(term->int_value);
    case Term::Kind::kBoolLit:
      return term->bool_value ? "true" : "false";
    case Term::Kind::kVariable:
      return term->atom;
    case Term::Kind::kApply: {
      std::ostringstream out;
      out << '(' << term->atom;
      for (const auto& arg : term->args) out << ' ' << to_string(arg);
      out << ')';
      return out.str();
    }
  }
  return "<invalid>";
}

}  // namespace qsmt::smtlib

// Counter-seedable pseudo-random number generation for parallel sampling.
//
// Multi-read annealing runs are parallelised across OpenMP threads; to keep
// results bit-for-bit deterministic regardless of the thread count, each
// read owns an independent generator seeded as splitmix64(seed, read_index).
// xoshiro256** is the workhorse generator: fast, 2^256-1 period, passes
// BigCrush, and trivially seedable from splitmix64 per its authors'
// recommendation.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace qsmt {

/// SplitMix64 step function: the standard way to expand a 64-bit seed into
/// the larger state of another generator (Steele et al., OOPSLA'14).
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// Hashes (seed, stream) into a single well-mixed 64-bit value. Used to give
/// each parallel annealing read its own independent stream.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Convenience: generator for parallel stream `stream` of a master seed.
  Xoshiro256(std::uint64_t seed, std::uint64_t stream) noexcept
      : Xoshiro256(mix_seed(seed, stream)) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1): 53 random mantissa bits.
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Single random bit.
  bool coin() noexcept { return (operator()() >> 63) != 0; }

  /// Equivalent to 2^128 calls to operator(); used to split non-overlapping
  /// sequences when counter seeding is not appropriate.
  void jump() noexcept;

  /// Snapshot / restore of the full 256-bit state. The batched sweep kernel
  /// runs four interleaved lane streams through SIMD registers and writes
  /// the advanced states back, so each lane's sequence stays bit-identical
  /// to a scalar generator that was stepped on its own.
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    state_ = state;
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace qsmt

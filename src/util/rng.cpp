#include "util/rng.hpp"

namespace qsmt {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Hash seed and stream independently, then mix the combination once more.
  // A single XOR-combine of the raw inputs is NOT enough: with
  // seed ^ (C + stream), the pairs (seed, r) and (seed ^ 1, r') collide
  // whenever (C + r) ^ (C + r') == 1, so adjacent seeds would share most of
  // their per-read streams.
  std::uint64_t a = seed;
  std::uint64_t b = stream ^ 0x6a09e667f3bcc909ULL;
  std::uint64_t combined = splitmix64_next(a) ^ splitmix64_next(b);
  return splitmix64_next(combined);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64_next(s);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  if (bound == 0) return 0;
  std::uint64_t x = operator()();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = operator()();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
      }
      operator()();
    }
  }
  state_ = acc;
}

}  // namespace qsmt

#include "util/stopwatch.hpp"

namespace qsmt {

double Stopwatch::elapsed_seconds() const noexcept {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

std::int64_t Stopwatch::elapsed_us() const noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start_)
      .count();
}

}  // namespace qsmt

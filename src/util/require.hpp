// Precondition checking for public API boundaries.
//
// Following the C++ Core Guidelines (I.5 "State preconditions" and
// E.12/E.13 on exceptions), public entry points validate their arguments
// and throw std::invalid_argument / std::out_of_range on violation rather
// than invoking UB. Hot inner loops use plain assert() instead.
#pragma once

#include <stdexcept>
#include <string>

namespace qsmt {

/// Throws std::invalid_argument with `msg` when `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

/// Throws std::out_of_range with `msg` when `cond` is false.
inline void require_in_range(bool cond, const std::string& msg) {
  if (!cond) throw std::out_of_range(msg);
}

}  // namespace qsmt

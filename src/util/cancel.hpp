// Cooperative cancellation for long-running solver work.
//
// A CancelSource owns a cancellation request plus an optional deadline; the
// CancelTokens it hands out are cheap shared views that sweep loops poll.
// The split mirrors std::stop_source/std::stop_token (which lacks deadline
// support) and keeps the polling side trivially cheap: a default-constructed
// token is permanently "not cancelled" with no allocation, and a live token
// costs one relaxed atomic load per poll — the clock is only consulted while
// a deadline is pending, and the first expiry observation latches the flag
// so later polls never read the clock again.
//
// Deadlines use std::chrono::steady_clock exclusively (the solver-wide rule:
// wall-clock time never feeds solver control flow or reported durations —
// see util/stopwatch.hpp), so a host NTP step can neither fire a deadline
// early nor hold a job alive past its budget.
//
// Poll sites in the tree: the Metropolis sweep loops of SimulatedAnnealer,
// ParallelTempering, and PathIntegralAnnealer (once per sweep, via their
// Params::cancel token), and qsmt::service between portfolio attempts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace qsmt {

namespace detail {

struct CancelState {
  /// Sentinel for "no deadline": steady_clock durations are signed 64-bit
  /// nanoseconds here, so max() is unreachable in practice.
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  std::atomic<bool> cancelled{false};
  /// Deadline as steady_clock nanoseconds-since-epoch (kNoDeadline = none).
  std::atomic<std::int64_t> deadline_ns{kNoDeadline};
};

}  // namespace detail

/// Pollable cancellation view. Copyable and cheap; safe to share across
/// threads. A default-constructed token never reports cancellation.
class CancelToken {
 public:
  CancelToken() = default;

  /// True when this token is connected to a CancelSource (a null token can
  /// be passed wherever cancellation is optional).
  bool cancellable() const noexcept { return state_ != nullptr; }

  /// True once cancel() was requested on the source or its deadline passed.
  /// Monotonic: never reverts to false. Deadline expiry is latched into the
  /// flag on first observation, so steady-state polls after cancellation
  /// are a single relaxed load.
  bool cancelled() const noexcept {
    if (!state_) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline =
        state_->deadline_ns.load(std::memory_order_relaxed);
    if (deadline == detail::CancelState::kNoDeadline) return false;
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    if (now < deadline) return false;
    state_->cancelled.store(true, std::memory_order_relaxed);
    return true;
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<detail::CancelState> state) noexcept
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CancelState> state_;
};

/// Owner side: requests cancellation and/or sets the deadline the tokens
/// observe. Copying a source shares the same cancellation state.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<detail::CancelState>()) {}

  CancelToken token() const noexcept { return CancelToken(state_); }

  /// Requests cancellation; every token observes it on its next poll.
  void cancel() noexcept {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// True when cancel() was called or a previously set deadline has been
  /// observed as expired by any token.
  bool cancel_requested() const noexcept {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

  /// Sets (or moves) the deadline after which tokens report cancellation.
  void set_deadline(std::chrono::steady_clock::time_point deadline) noexcept {
    state_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  /// Sets the deadline `budget` from now. Non-positive budgets expire
  /// immediately.
  void set_deadline_after(std::chrono::nanoseconds budget) noexcept {
    set_deadline(std::chrono::steady_clock::now() + budget);
  }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

}  // namespace qsmt

// Monotonic wall-clock stopwatch used by benches and solver statistics.
#pragma once

#include <chrono>

namespace qsmt {

/// Starts running on construction; `elapsed_*()` reads do not stop it.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  /// Resets the start point to now.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  double elapsed_seconds() const noexcept;

  /// Microseconds since construction or the last reset().
  std::int64_t elapsed_us() const noexcept;

 private:
  using Clock = std::chrono::steady_clock;
  // Solver-wide rule: every duration the solver reports or acts on
  // (SolveResult::build_seconds/sample_seconds, bench timers, service
  // deadlines) comes from a monotonic clock, so NTP steps cannot produce
  // negative or inflated timings under load. system_clock and the
  // sometimes-non-steady high_resolution_clock are banned from timing code.
  static_assert(Clock::is_steady,
                "Stopwatch must be backed by a monotonic clock");
  Clock::time_point start_;
};

}  // namespace qsmt

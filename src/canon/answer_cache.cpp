#include "canon/answer_cache.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace qsmt::canon {

namespace {

constexpr char kSnapshotHeader[] = "qsmt-answer-cache v1";

std::string hex_encode(const std::string& text) {
  static const char kDigits[] = "0123456789abcdef";
  if (text.empty()) return "-";
  std::string out;
  out.reserve(text.size() * 2);
  for (unsigned char c : text) {
    out += kDigits[c >> 4];
    out += kDigits[c & 0xf];
  }
  return out;
}

/// "-" decodes to ""; anything else must be well-formed lowercase hex.
bool hex_decode(const std::string& token, std::string& out) {
  out.clear();
  if (token == "-") return true;
  if (token.empty() || token.size() % 2 != 0) return false;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  out.reserve(token.size() / 2);
  for (std::size_t i = 0; i < token.size(); i += 2) {
    const int hi = nibble(token[i]);
    const int lo = nibble(token[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out += static_cast<char>((hi << 4) | lo);
  }
  return true;
}

const char* status_token(smtlib::CheckSatStatus status) {
  switch (status) {
    case smtlib::CheckSatStatus::kSat:
      return "sat";
    case smtlib::CheckSatStatus::kUnsat:
      return "unsat";
    case smtlib::CheckSatStatus::kUnknown:
      break;
  }
  return "unknown";
}

}  // namespace

AnswerCache::AnswerCache(AnswerCacheOptions options) : options_(options) {
  if (options_.max_entries == 0) options_.max_entries = 1;
}

std::size_t AnswerCache::entry_bytes(const std::string& key,
                                     const CachedAnswer& answer) {
  return key.size() + (answer.text ? answer.text->size() : 0) +
         answer.variable.size() + answer.note.size() +
         96;  // list/map node overhead.
}

std::optional<CachedAnswer> AnswerCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    if (telemetry::enabled()) {
      telemetry::counter("answer_cache.misses").add();
    }
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  if (telemetry::enabled()) {
    telemetry::counter("answer_cache.hits").add();
  }
  return lru_.front().answer;
}

void AnswerCache::insert(const std::string& key, CachedAnswer answer) {
  if (answer.status == smtlib::CheckSatStatus::kUnknown) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh: same canonical form re-solved (e.g. after a snapshot load
    // raced an in-flight job). Keep the newer answer.
    bytes_ -= it->second->bytes;
    it->second->bytes = entry_bytes(key, answer);
    bytes_ += it->second->bytes;
    it->second->answer = std::move(answer);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    Entry entry;
    entry.key = key;
    entry.bytes = entry_bytes(key, answer);
    entry.answer = std::move(answer);
    bytes_ += entry.bytes;
    lru_.push_front(std::move(entry));
    index_.emplace(key, lru_.begin());
  }
  ++stats_.insertions;
  if (telemetry::enabled()) {
    telemetry::counter("answer_cache.insertions").add();
  }
  evict_to_budget_locked();
  publish_occupancy_locked();
}

void AnswerCache::evict_to_budget_locked() {
  while (lru_.size() > 1 &&
         (lru_.size() > options_.max_entries || bytes_ > options_.max_bytes)) {
    bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    if (telemetry::enabled()) {
      telemetry::counter("answer_cache.evictions").add();
    }
  }
}

void AnswerCache::publish_occupancy_locked() {
  if (telemetry::enabled()) {
    telemetry::gauge("answer_cache.entries")
        .set(static_cast<double>(lru_.size()));
    telemetry::gauge("answer_cache.bytes", telemetry::Unit::kBytes)
        .set(static_cast<double>(bytes_));
  }
}

void AnswerCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  publish_occupancy_locked();
}

std::size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::size_t AnswerCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

AnswerCache::Stats AnswerCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  return stats;
}

std::string AnswerCache::save_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << kSnapshotHeader << '\n';
  for (const Entry& entry : lru_) {
    out << "entry " << status_token(entry.answer.status) << ' ';
    if (entry.answer.position) {
      out << *entry.answer.position;
    } else {
      out << '~';
    }
    out << ' ' << hex_encode(entry.key) << ' ';
    if (entry.answer.text) {
      out << 't' << hex_encode(*entry.answer.text);
    } else {
      out << '~';
    }
    out << ' ' << hex_encode(entry.answer.variable) << ' '
        << hex_encode(entry.answer.note) << '\n';
  }
  return out.str();
}

bool AnswerCache::load_snapshot(const std::string& snapshot) {
  std::istringstream in(snapshot);
  std::string line;
  if (!std::getline(in, line) || line != kSnapshotHeader) return false;
  std::list<Entry> loaded;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag, status, position, key, text, variable, note;
    if (!(fields >> tag >> status >> position >> key >> text >> variable >>
          note)) {
      return false;
    }
    std::string trailing;
    if (fields >> trailing) return false;
    if (tag != "entry") return false;
    Entry entry;
    if (status == "sat") {
      entry.answer.status = smtlib::CheckSatStatus::kSat;
    } else if (status == "unsat") {
      entry.answer.status = smtlib::CheckSatStatus::kUnsat;
    } else {
      return false;
    }
    if (position != "~") {
      std::size_t parsed = 0;
      try {
        std::size_t consumed = 0;
        parsed = std::stoull(position, &consumed);
        if (consumed != position.size()) return false;
      } catch (const std::exception&) {
        return false;
      }
      entry.answer.position = parsed;
    }
    if (!hex_decode(key, entry.key) || entry.key.empty()) return false;
    if (text != "~") {
      if (text.empty() || text[0] != 't') return false;
      std::string decoded;
      if (!hex_decode(text.substr(1), decoded)) return false;
      entry.answer.text = std::move(decoded);
    }
    if (!hex_decode(variable, entry.answer.variable)) return false;
    if (!hex_decode(note, entry.answer.note)) return false;
    entry.bytes = entry_bytes(entry.key, entry.answer);
    loaded.push_back(std::move(entry));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  lru_ = std::move(loaded);
  index_.clear();
  bytes_ = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (!index_.emplace(it->key, it).second) {
      it = lru_.erase(it);  // Duplicate key: keep the more recent (earlier).
      continue;
    }
    bytes_ += it->bytes;
    ++it;
  }
  evict_to_budget_locked();
  publish_occupancy_locked();
  return true;
}

}  // namespace qsmt::canon

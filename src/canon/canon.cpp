#include "canon/canon.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>

#include "smtlib/parser.hpp"

namespace qsmt::canon {

namespace {

using smtlib::Term;
using smtlib::TermPtr;

/// Rebuilds `term` with every variable name mapped through `rename`.
/// Shares unchanged subtrees (terms are immutable shared_ptrs).
TermPtr map_variables(
    const TermPtr& term,
    const std::function<std::string(const std::string&)>& rename) {
  if (!term) return term;
  if (term->kind == Term::Kind::kVariable) {
    std::string mapped = rename(term->atom);
    if (mapped == term->atom) return term;
    return Term::variable(std::move(mapped));
  }
  if (term->kind != Term::Kind::kApply) return term;
  bool changed = false;
  std::vector<TermPtr> args;
  args.reserve(term->args.size());
  for (const TermPtr& arg : term->args) {
    TermPtr mapped = map_variables(arg, rename);
    changed |= mapped != arg;
    args.push_back(std::move(mapped));
  }
  if (!changed) return term;
  return Term::apply(term->atom, std::move(args));
}

bool is_commutative(const std::string& op) {
  return op == "and" || op == "or" || op == "=" || op == "distinct" ||
         op == "re.union";
}

/// `and`/`or` are associative as well: nested same-op applications flatten
/// into one argument list before sorting.
bool is_associative(const std::string& op) {
  return op == "and" || op == "or" || op == "re.union";
}

/// Collects every variable name in first-use (depth-first, argument-order)
/// order.
void collect_first_use(const TermPtr& term, std::vector<std::string>& order,
                       std::set<std::string>& seen) {
  if (!term) return;
  if (term->kind == Term::Kind::kVariable) {
    if (seen.insert(term->atom).second) order.push_back(term->atom);
    return;
  }
  for (const TermPtr& arg : term->args) collect_first_use(arg, order, seen);
}

/// True when every variable occurring in `term` is in `declared`.
bool variables_declared(const TermPtr& term,
                        const std::map<std::string, smtlib::Sort>& declared) {
  if (!term) return true;
  if (term->kind == Term::Kind::kVariable) {
    return declared.count(term->atom) != 0;
  }
  for (const TermPtr& arg : term->args) {
    if (!variables_declared(arg, declared)) return false;
  }
  return true;
}

}  // namespace

std::string erased_print(const TermPtr& term) {
  return smtlib::to_string(
      map_variables(term, [](const std::string&) { return "?"; }));
}

TermPtr normalize_term(const TermPtr& term) {
  if (!term || term->kind != Term::Kind::kApply) return term;
  std::vector<TermPtr> args;
  args.reserve(term->args.size());
  for (const TermPtr& arg : term->args) {
    TermPtr normalized = normalize_term(arg);
    if (is_associative(term->atom) && normalized &&
        normalized->is_apply(term->atom)) {
      args.insert(args.end(), normalized->args.begin(),
                  normalized->args.end());
    } else {
      args.push_back(std::move(normalized));
    }
  }
  if (is_commutative(term->atom)) {
    // Stable sort on the name-erased print: alpha-variant scripts present
    // erased-equal arguments in the same positional order, so ties resolve
    // identically for both and the canonical forms still collide.
    std::stable_sort(args.begin(), args.end(),
                     [](const TermPtr& a, const TermPtr& b) {
                       return erased_print(a) < erased_print(b);
                     });
  }
  return Term::apply(term->atom, std::move(args));
}

CanonicalScript canonicalize_script(const std::string& script) {
  CanonicalScript result;
  std::vector<smtlib::Command> commands;
  try {
    commands = smtlib::parse_script(script);
  } catch (const std::exception& error) {
    result.note = std::string("parse error: ") + error.what();
    return result;
  }

  std::size_t check_sats = 0;
  std::vector<std::string> declaration_order;
  for (const smtlib::Command& command : commands) {
    if (const auto* declare = std::get_if<smtlib::DeclareConst>(&command)) {
      if (check_sats > 0) {
        result.note = "declaration after check-sat";
        return result;
      }
      if (!result.declared.emplace(declare->name, declare->sort).second) {
        result.note = "duplicate declaration";
        return result;
      }
      declaration_order.push_back(declare->name);
    } else if (const auto* assert_cmd =
                   std::get_if<smtlib::AssertCmd>(&command)) {
      if (check_sats > 0) {
        result.note = "assertion after check-sat";
        return result;
      }
      result.assertions.push_back(assert_cmd->term);
    } else if (std::holds_alternative<smtlib::CheckSat>(command)) {
      ++check_sats;
    } else if (std::holds_alternative<smtlib::SetLogic>(command) ||
               std::holds_alternative<smtlib::SetOption>(command) ||
               std::holds_alternative<smtlib::SetInfo>(command) ||
               std::holds_alternative<smtlib::ExitCmd>(command)) {
      // Verdict-neutral; erased from the canonical form.
    } else {
      // push/pop, check-sat-assuming, reset, get-model, get-value, echo:
      // stateful or output-bearing commands whose replies a single cached
      // verdict cannot stand in for.
      result.note = "command outside the cacheable fragment";
      return result;
    }
  }
  if (check_sats != 1) {
    result.note = check_sats == 0 ? "no check-sat" : "multiple check-sats";
    return result;
  }
  for (const TermPtr& assertion : result.assertions) {
    if (!variables_declared(assertion, result.declared)) {
      result.note = "undeclared variable";
      return result;
    }
  }

  // Normalize every assertion, then sort the sequence by its name-erased
  // print. The sort is stable, so assertions that erase identically keep
  // their original relative order — which alpha-variant scripts share.
  std::vector<TermPtr> normalized;
  normalized.reserve(result.assertions.size());
  for (const TermPtr& assertion : result.assertions) {
    normalized.push_back(normalize_term(assertion));
  }
  std::stable_sort(normalized.begin(), normalized.end(),
                   [](const TermPtr& a, const TermPtr& b) {
                     return erased_print(a) < erased_print(b);
                   });

  // Canonical names by first use over the sorted sequence; variables never
  // used in an assertion follow in declaration order (positional, so
  // alpha-variants still agree).
  std::vector<std::string> first_use;
  std::set<std::string> seen;
  for (const TermPtr& assertion : normalized) {
    collect_first_use(assertion, first_use, seen);
  }
  for (const std::string& name : declaration_order) {
    if (seen.insert(name).second) first_use.push_back(name);
  }
  std::unordered_map<std::string, std::string> rename;
  result.renaming.reserve(first_use.size());
  for (std::size_t i = 0; i < first_use.size(); ++i) {
    std::string canonical = "v" + std::to_string(i);
    rename.emplace(first_use[i], canonical);
    result.renaming.emplace_back(first_use[i], std::move(canonical));
  }

  std::string text;
  for (std::size_t i = 0; i < first_use.size(); ++i) {
    text += "(declare-const " + result.renaming[i].second + " " +
            smtlib::sort_name(result.declared.at(first_use[i])) + ")\n";
  }
  const auto apply_rename = [&rename](const std::string& name) {
    const auto it = rename.find(name);
    return it == rename.end() ? name : it->second;
  };
  for (const TermPtr& assertion : normalized) {
    text += "(assert " +
            smtlib::to_string(map_variables(assertion, apply_rename)) + ")\n";
  }
  text += "(check-sat)\n";
  result.text = std::move(text);
  result.cacheable = true;
  return result;
}

std::string original_name(const CanonicalScript& canonical,
                          const std::string& canonical_name) {
  for (const auto& [original, renamed] : canonical.renaming) {
    if (renamed == canonical_name) return original;
  }
  return "";
}

std::string canonical_name(const CanonicalScript& canonical,
                           const std::string& original_name) {
  for (const auto& [original, renamed] : canonical.renaming) {
    if (original == original_name) return renamed;
  }
  return "";
}

std::string constraint_answer_key(
    const std::vector<strqubo::Constraint>& constraints,
    const strqubo::BuildOptions& options) {
  std::vector<std::string> keys;
  keys.reserve(constraints.size());
  for (const strqubo::Constraint& constraint : constraints) {
    keys.push_back(strqubo::structure_key(constraint));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::string out = "qsmt-answer-constraints";
  for (const std::string& key : keys) {
    out += '\x1d';
    out += key;
  }
  out += '\x1e';
  out += strqubo::options_fingerprint(options);
  return out;
}

std::string constraint_answer_key(const strqubo::Constraint& constraint,
                                  const strqubo::BuildOptions& options) {
  return constraint_answer_key(std::vector<strqubo::Constraint>{constraint},
                               options);
}

std::string script_answer_key(const CanonicalScript& canonical,
                              const strqubo::BuildOptions& options) {
  if (!canonical.cacheable) return "";
  std::string out = "qsmt-answer-script\x1d";
  out += canonical.text;
  out += '\x1e';
  out += strqubo::options_fingerprint(options);
  return out;
}

}  // namespace qsmt::canon

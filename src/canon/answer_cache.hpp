// Content-addressed answer cache: alpha-equivalent solve memoization.
//
// The existing cache layers (prepared-model LRU, fragment cache, embedding
// cache) memoize *inputs to solving*; this one memoizes *answers*. Entries
// are keyed by a canonical alpha-equivalence form of the job (canon.hpp)
// joined with the BuildOptions fingerprint, and store the verdict plus the
// canonical witness (sat) or the UNSAT note. The SolveService looks a job
// up at enqueue — ahead of the router — and on a hit confirms the remapped
// witness with one classical verification before serving it; any mismatch
// falls through to a normal solve, so a cache (even a poisoned or stale
// one) can cost at most one cheap check, never a wrong verdict.
//
// Thread-safe, byte-budgeted LRU. One instance is meant to be shared
// across services, server sessions, and tenants (like the FragmentCache):
// entries carry no session state, and a witness can only be observed
// through a canonical-key hit — i.e. by a tenant who already holds a
// structurally identical query (pinned by tests/server_stress_test.cpp).
//
// Telemetry: answer_cache.{hits,misses,insertions,evictions} counters and
// answer_cache.{bytes,entries} gauges, mirrored deterministically by
// Stats. save_snapshot/load_snapshot round-trip the cache as text (like
// the PR 9 router snapshot) so a warmed cache survives daemon restarts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "smtlib/driver.hpp"

namespace qsmt::canon {

/// One memoized verdict. `text` is the canonical witness (string-producing
/// constraint jobs and script model values); `position` is the Includes
/// verdict (std::nullopt inside an engaged entry = verified "no
/// occurrence"); `variable` is the canonical model-variable name of a
/// script entry (remapped through the hit script's inverse renaming);
/// `note` carries the UNSAT explanation.
struct CachedAnswer {
  smtlib::CheckSatStatus status = smtlib::CheckSatStatus::kUnknown;
  std::optional<std::string> text;
  std::optional<std::size_t> position;
  std::string variable;
  std::string note;
};

struct AnswerCacheOptions {
  /// Retained-footprint budget (keys + stored answers); the LRU tail is
  /// evicted past it. Minimum one entry is always kept.
  std::size_t max_bytes = 8u << 20;
  /// Entry-count ceiling, applied alongside the byte budget.
  std::size_t max_entries = 65536;
};

class AnswerCache {
 public:
  explicit AnswerCache(AnswerCacheOptions options = {});

  /// Returns the entry for `key`, refreshing its LRU position. Emits
  /// answer_cache.hits / answer_cache.misses.
  std::optional<CachedAnswer> lookup(const std::string& key);

  /// Inserts (or refreshes) `key`. Unknown verdicts are rejected — they
  /// describe a budget, not an answer. Evicts the LRU tail past the byte
  /// and entry budgets.
  void insert(const std::string& key, CachedAnswer answer);

  void clear();

  std::size_t size() const;
  std::size_t bytes() const;

  /// Deterministic mirror of the answer_cache.* counters and gauges.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };
  Stats stats() const;

  /// Serializes every entry (most recent first) as line-oriented text
  /// ("qsmt-answer-cache v1"; fields hex-encoded so canonical keys with
  /// separators and newlines survive).
  std::string save_snapshot() const;

  /// Replaces the contents from save_snapshot() output, re-applying the
  /// budgets. Returns false — leaving the cache untouched — on malformed
  /// input. Counters (hits/misses/...) are not restored; occupancy is.
  bool load_snapshot(const std::string& snapshot);

 private:
  struct Entry {
    std::string key;
    CachedAnswer answer;
    std::size_t bytes = 0;
  };

  static std::size_t entry_bytes(const std::string& key,
                                 const CachedAnswer& answer);
  void evict_to_budget_locked();
  void publish_occupancy_locked();

  AnswerCacheOptions options_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
  std::size_t bytes_ = 0;
};

}  // namespace qsmt::canon

// Alpha-equivalence canonicalizer for answer-cache keys.
//
// Millions of users means floods of structurally identical queries whose
// only differences are variable names and the order in which commutative
// arguments were written. The answer cache (answer_cache.hpp) memoizes
// *verdicts*, so its key must erase exactly those differences and nothing
// else:
//
//  * canonicalize_script — parses one SMT-LIB script, normalizes
//    commutative/symmetric argument orders (and/or flattened and sorted,
//    =/distinct/re.union operands sorted) with variables name-erased during
//    comparison, sorts the assertion sequence by its name-erased printed
//    form, then renames every declared variable to a positional normal form
//    (first-use order over the sorted assertion sequence). Two
//    alpha-equivalent scripts — same assertions up to variable names,
//    assertion order, and commutative argument order — produce byte-equal
//    canonical text; the inverse renaming lets a cached witness's variable
//    be reported under the querying script's own name.
//  * constraint_answer_key / script_answer_key — the full cache keys: the
//    canonical form joined with the strqubo::options_fingerprint of the
//    job's BuildOptions (PR 8's fragment-key machinery), because a verdict
//    is only reusable under the solve configuration that produced it. Keys
//    are full canonical strings, not lossy hashes: a key match proves
//    structural identity, so replaying a cached UNSAT is sound.
//
// Scripts outside the single-check-sat assertion fragment (push/pop,
// check-sat-assuming, reset, get-model/get-value, echo, multiple or
// missing check-sats, undeclared variables) are marked not cacheable and
// bypass the answer cache entirely — canonicalization never guesses.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "smtlib/ast.hpp"
#include "strqubo/builders.hpp"
#include "strqubo/constraint.hpp"

namespace qsmt::canon {

/// Canonical alpha-equivalence form of one SMT-LIB script.
struct CanonicalScript {
  /// False when the script is outside the cacheable fragment; `note` says
  /// why and every other field is unspecified.
  bool cacheable = false;
  std::string note;
  /// Canonical renamed/normalized script text (declare-consts in canonical
  /// name order, assertions in name-erased sorted order, one check-sat).
  std::string text;
  /// original name -> canonical name, one pair per declared variable.
  std::vector<std::pair<std::string, std::string>> renaming;
  /// The script's original declarations and assertions (unrenamed), kept so
  /// a cache hit can be verified against — and a completed solve checked
  /// into the cache from — the querying script itself.
  std::map<std::string, smtlib::Sort> declared;
  std::vector<smtlib::TermPtr> assertions;
};

/// Canonicalizes one SMT-LIB script. Never throws: parse errors come back
/// as cacheable == false.
CanonicalScript canonicalize_script(const std::string& script);

/// Canonical-to-original lookup over `renaming` (empty string when the
/// canonical name is unknown — e.g. an entry written by a script with more
/// variables).
std::string original_name(const CanonicalScript& canonical,
                          const std::string& canonical_name);

/// Original-to-canonical lookup over `renaming` (empty string when
/// unknown).
std::string canonical_name(const CanonicalScript& canonical,
                           const std::string& original_name);

/// Normalizes one term: commutative/symmetric operators (`and`, `or`,
/// `=`, `distinct`, `re.union`) get their arguments flattened (for the
/// associative ones) and stably sorted by name-erased printed form.
/// Deterministic and idempotent; variables are untouched.
smtlib::TermPtr normalize_term(const smtlib::TermPtr& term);

/// Renders `term` with every variable name replaced by "?" — the
/// name-independent ordering key the canonicalizer sorts by.
std::string erased_print(const smtlib::TermPtr& term);

/// Answer key of a constraint set under `options`: sorted, deduplicated
/// structure keys (conjunction satisfaction is set-based, so order and
/// multiplicity are erased) joined with the options fingerprint. Constraint
/// payloads carry no variable names, so alpha-equivalence is free here.
std::string constraint_answer_key(
    const std::vector<strqubo::Constraint>& constraints,
    const strqubo::BuildOptions& options);

/// Single-constraint convenience (the SolveService submit() path).
std::string constraint_answer_key(const strqubo::Constraint& constraint,
                                  const strqubo::BuildOptions& options);

/// Answer key of a cacheable canonical script under `options`. Returns ""
/// when `canonical.cacheable` is false.
std::string script_answer_key(const CanonicalScript& canonical,
                              const strqubo::BuildOptions& options);

}  // namespace qsmt::canon

// Distributed-systems configuration — the paper's other headline use case
// ("configuring relationships in distributed systems", §1/§2.1.2).
//
// A deployment tool must mint a replica identifier that simultaneously
// satisfies naming rules from several subsystems:
//   * the service mesh requires the id to match  r[012]+s  (rack digit run),
//   * the shard router requires the shard tag "12" at offset 1,
//   * the DNS layer forbids the reserved name "r120s" — a negated
//     constraint, so the boolean skeleton needs the DPLL(T) engine.
//
// The query runs through the full stack: SMT-LIB terms -> Tseitin CNF ->
// CDCL -> QUBO conjunction on the annealer -> classically verified witness.
#include <iostream>

#include "anneal/simulated_annealer.hpp"
#include "sat/dpllt.hpp"
#include "smtlib/parser.hpp"

int main() {
  using namespace qsmt;

  const std::string query = R"(
    (declare-const replica String)
    (assert (= (str.len replica) 5))
    (assert (str.in_re replica
      (re.++ (str.to_re "r")
             (re.+ (re.union (str.to_re "0") (str.to_re "1") (str.to_re "2")))
             (str.to_re "s"))))
    (assert (= (str.indexof replica "12" 0) 1))
    (assert (not (= replica "r120s")))
  )";

  std::vector<smtlib::TermPtr> assertions;
  std::map<std::string, smtlib::Sort> declared;
  for (const auto& command : smtlib::parse_script(query)) {
    if (const auto* decl = std::get_if<smtlib::DeclareConst>(&command)) {
      declared.emplace(decl->name, decl->sort);
    } else if (const auto* assert_cmd =
                   std::get_if<smtlib::AssertCmd>(&command)) {
      assertions.push_back(assert_cmd->term);
    }
  }

  anneal::SimulatedAnnealerParams params;
  params.num_reads = 96;
  params.num_sweeps = 512;
  params.seed = 4242;
  const anneal::SimulatedAnnealer annealer(params);

  // The one-hot class encoding keeps digit classes exact (see DESIGN.md E6).
  strqubo::BuildOptions options;
  options.regex_encoding = strqubo::RegexClassEncoding::kOneHotSelectors;
  const sat::DpllTSolver solver(annealer, options, {});

  const auto result = solver.solve(assertions, declared);
  std::cout << "status:  " << smtlib::status_name(result.status) << '\n';
  if (result.status == smtlib::CheckSatStatus::kSat) {
    std::cout << "replica: '" << result.model_value << "'\n";
    std::cout << "checks:  starts 'r', ends 's', digits in {0,1,2}, shard "
                 "tag '12' at offset 1, not the reserved 'r120s'\n";
  }
  for (const auto& note : result.notes) std::cout << "note:    " << note << '\n';
  std::cout << "theory rounds: " << result.theory_rounds << '\n';

  const bool ok = result.status == smtlib::CheckSatStatus::kSat &&
                  result.model_value.size() == 5 &&
                  result.model_value != "r120s" &&
                  result.model_value.compare(1, 2, "12") == 0;
  std::cout << (ok ? "verified against all subsystem rules\n"
                   : "FAILED verification\n");
  return ok ? 0 : 1;
}

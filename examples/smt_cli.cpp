// smt_cli — a z3-style command-line front end for the annealing solver.
//
// Usage:
//   smt_cli [file.smt2]       run a script from a file
//   smt_cli -                 read the script from stdin
//   smt_cli                   run a built-in demo script
//   smt_cli --dpllt [file]    force the DPLL(T) engine
//   smt_cli --one-hot [file]  exact one-hot regex class encoding (E6)
//
// Engine selection is automatic (engine::solve_script): plain conjunctions
// use the merged-QUBO driver, boolean structure routes to DPLL(T).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "anneal/simulated_annealer.hpp"
#include "engine/engine.hpp"

namespace {

constexpr const char* kDemoScript = R"((set-logic QF_S)
(declare-const x String)
(assert (= (str.len x) 6))
(assert (str.contains x "hi"))
(check-sat)
(get-model)
(echo "demo finished"))";

}  // namespace

int main(int argc, char** argv) {
  bool force_dpllt = false;
  qsmt::strqubo::BuildOptions options;
  std::string source;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--dpllt") {
      force_dpllt = true;
      it = args.erase(it);
    } else if (*it == "--one-hot") {
      options.regex_encoding =
          qsmt::strqubo::RegexClassEncoding::kOneHotSelectors;
      it = args.erase(it);
    } else {
      ++it;
    }
  }

  if (args.empty()) {
    std::cout << "; no input file, running the built-in demo script\n";
    source = kDemoScript;
  } else if (args[0] == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream file(args[0]);
    if (!file) {
      std::cerr << "error: cannot open " << args[0] << '\n';
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  }

  qsmt::anneal::SimulatedAnnealerParams params;
  params.num_reads = 64;
  params.num_sweeps = 512;
  params.seed = 7;
  const qsmt::anneal::SimulatedAnnealer annealer(params);

  try {
    const qsmt::engine::ScriptResult result =
        qsmt::engine::solve_script(source, annealer, options, force_dpllt);
    if (result.engine == qsmt::engine::EngineKind::kDpllT) {
      std::cout << "; boolean structure detected, using DPLL(T)\n";
    }
    std::cout << result.transcript;
    for (const auto& note : result.notes) std::cout << "; " << note << '\n';
    return result.status == qsmt::smtlib::CheckSatStatus::kUnknown ? 2 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

// benchmark_run — execute a directory of .smt2 benchmarks (e.g. one written
// by benchmark_gen) and print a per-file and aggregate report, SMT-COMP
// style.
//
// Usage:
//   benchmark_run DIR [--dpllt] [--one-hot] [--reads N] [--sweeps N]
//                 [--seed S]
//
// --one-hot switches regex character classes to the exact selector encoding
// (the paper's averaged encoding fails on classes whose members differ in
// several bits; see DESIGN.md E6).
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "anneal/simulated_annealer.hpp"
#include "engine/engine.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace qsmt;

  std::string dir;
  bool force_dpllt = false;
  strqubo::BuildOptions options;
  anneal::SimulatedAnnealerParams params;
  params.num_reads = 64;
  params.num_sweeps = 512;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--dpllt") {
        force_dpllt = true;
      } else if (arg == "--one-hot") {
        options.regex_encoding = strqubo::RegexClassEncoding::kOneHotSelectors;
      } else if (arg == "--reads") {
        params.num_reads = std::stoull(next());
      } else if (arg == "--sweeps") {
        params.num_sweeps = std::stoull(next());
      } else if (arg == "--seed") {
        params.seed = std::stoull(next());
      } else {
        dir = arg;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 1;
    }
  }
  if (dir.empty()) {
    std::cerr << "usage: benchmark_run DIR [--dpllt] [--one-hot] [--reads N]"
                 " [--sweeps N] [--seed S]\n";
    return 1;
  }

  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".smt2") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "error: no .smt2 files in " << dir << '\n';
    return 1;
  }

  const anneal::SimulatedAnnealer annealer(params);
  std::size_t sat = 0;
  std::size_t unsat = 0;
  std::size_t unknown = 0;
  std::size_t errors = 0;
  double total_seconds = 0.0;

  for (const auto& path : files) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();

    std::cout << std::setw(40) << std::left << path.filename().string()
              << "  ";
    try {
      Stopwatch timer;
      const engine::ScriptResult result =
          engine::solve_script(buffer.str(), annealer, options, force_dpllt);
      const double seconds = timer.elapsed_seconds();
      total_seconds += seconds;
      switch (result.status) {
        case smtlib::CheckSatStatus::kSat:
          ++sat;
          break;
        case smtlib::CheckSatStatus::kUnsat:
          ++unsat;
          break;
        case smtlib::CheckSatStatus::kUnknown:
          ++unknown;
          break;
      }
      std::cout << std::setw(8) << std::left
                << smtlib::status_name(result.status) << std::fixed
                << std::setprecision(1) << 1000.0 * seconds << " ms";
      if (!result.model_value.empty()) {
        std::cout << "  \"" << result.model_value << "\"";
      }
      std::cout << '\n';
    } catch (const std::exception& e) {
      ++errors;
      std::cout << "error: " << e.what() << '\n';
    }
  }

  std::cout << '\n'
            << files.size() << " benchmarks: " << sat << " sat, " << unsat
            << " unsat, " << unknown << " unknown, " << errors
            << " errors  (" << std::fixed << std::setprecision(2)
            << total_seconds << " s total)\n";
  return errors == 0 ? 0 : 1;
}

// Quickstart: the five-minute tour of the qsmt public API.
//
//   1. Pick a sampler (here: the simulated annealer the paper used).
//   2. Wrap it in a StringConstraintSolver.
//   3. Hand it string constraints; get verified strings back.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "anneal/simulated_annealer.hpp"
#include "strqubo/pipeline.hpp"
#include "strqubo/solver.hpp"

int main() {
  using namespace qsmt;

  // 1. A sampler. 64 reads x 512 sweeps is plenty for these sizes; `seed`
  //    makes every run reproducible.
  anneal::SimulatedAnnealerParams params;
  params.num_reads = 64;
  params.num_sweeps = 512;
  params.seed = 1;
  const anneal::SimulatedAnnealer annealer(params);

  // 2. The solver facade: compiles constraints to QUBO (7 bits per ASCII
  //    character), samples, decodes, and classically verifies the answer.
  const strqubo::StringConstraintSolver solver(annealer);

  // 3a. Generate a string equal to a target (paper §4.1).
  const auto equality = solver.solve(strqubo::Equality{"hello"});
  std::cout << "equality:    '" << *equality.text << "'  (verified: "
            << std::boolalpha << equality.satisfied << ", QUBO "
            << equality.num_variables << " vars)\n";

  // 3b. Generate a 6-character string containing "hi" at index 2 (§4.5).
  const auto index_of = solver.solve(strqubo::IndexOf{6, "hi", 2});
  std::cout << "index-of:    '" << *index_of.text << "'  (verified: "
            << index_of.satisfied << ")\n";

  // 3c. Generate a string matching the regex a[bc]+ (§4.11).
  const auto regex = solver.solve(strqubo::RegexMatch{"a[bc]+", 5});
  std::cout << "regex:       '" << *regex.text << "'  (verified: "
            << regex.satisfied << ")\n";

  // 3d. Ask where a substring first occurs (§4.4) — a position, not a
  //     string.
  const auto includes = solver.solve(strqubo::Includes{"say hi twice", "hi"});
  std::cout << "includes:    position "
            << (includes.position ? std::to_string(*includes.position)
                                  : std::string("none"))
            << "  (verified: " << includes.satisfied << ")\n";

  // 3e. Chain operations the paper's way (§4.12): each stage's output feeds
  //     the next stage's QUBO build.
  strqubo::Pipeline pipeline{strqubo::Reverse{"hello"}};
  pipeline.then(strqubo::ThenReplaceAll{'e', 'a'});
  const auto chained = pipeline.run(solver);
  std::cout << "pipeline:    '" << chained.final_value
            << "'  (all stages verified: " << chained.all_satisfied << ")\n";

  return equality.satisfied && index_of.satisfied && regex.satisfied &&
                 includes.satisfied && chained.all_satisfied
             ? 0
             : 1;
}

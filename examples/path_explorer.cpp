// Path exploration for a branching string validator — the symbolic-
// execution application the paper's future work names ("using these
// formulas in applications such as symbolic execution and program
// testing").
//
// The program under test is a small routing function with four branches.
// For each branch, the path condition is expressed as solver constraints;
// the annealer generates a concrete input driving execution down that
// branch, and the harness runs the real function to confirm coverage.
#include <iostream>
#include <string>
#include <vector>

#include "anneal/simulated_annealer.hpp"
#include "smtlib/driver.hpp"
#include "strqubo/solver.hpp"

namespace {

// The concrete program under test: routes a 6-character message key.
//   branch A: keys starting with "adm" are admin traffic
//   branch B: keys containing "00" are test traffic
//   branch C: palindromic keys are loopback probes
//   branch D: everything else
std::string route(const std::string& key) {
  if (key.size() != 6) return "reject";
  if (key.compare(0, 3, "adm") == 0) return "A:admin";
  if (key.find("00") != std::string::npos) return "B:test";
  if (std::equal(key.begin(), key.begin() + 3, key.rbegin())) {
    return "C:loopback";
  }
  return "D:default";
}

struct PathGoal {
  std::string name;
  std::string expected_route;
  std::vector<qsmt::strqubo::Constraint> condition;
};

}  // namespace

int main() {
  using namespace qsmt;

  anneal::SimulatedAnnealerParams params;
  params.num_reads = 96;
  params.num_sweeps = 512;
  params.seed = 99;
  const anneal::SimulatedAnnealer annealer(params);

  const std::vector<PathGoal> goals{
      {"branch A (admin prefix)",
       "A:admin",
       {strqubo::IndexOf{6, "adm", 0}}},
      {"branch B (contains 00)",
       "B:test",
       // Avoid the admin prefix so execution reaches the B test.
       {strqubo::IndexOf{6, "00", 3}, strqubo::CharAt{6, 0, 'q'}}},
      {"branch C (palindrome)",
       "C:loopback",
       // A palindrome with no '0's and not starting adm.
       {strqubo::Palindrome{6}, strqubo::CharAt{6, 0, 'p'}}},
      {"branch D (fallthrough)",
       "D:default",
       {strqubo::Equality{"zzyxwv"}}},
  };

  std::cout << "Path exploration of route(key):\n\n";
  std::size_t covered = 0;
  for (const PathGoal& goal : goals) {
    const smtlib::ConjunctionResult solved =
        smtlib::solve_conjunction(goal.condition, annealer, {});
    if (!solved.solved) {
      std::cout << "  " << goal.name << ": solver gave up (" << solved.note
                << ")\n";
      continue;
    }
    const std::string taken = route(solved.value);
    const bool hit = taken == goal.expected_route;
    covered += hit ? 1 : 0;
    std::cout << "  " << goal.name << ": input '" << solved.value
              << "' -> " << taken << (hit ? "  [covered]" : "  [MISSED]")
              << '\n';
  }
  std::cout << "\n" << covered << "/" << goals.size()
            << " branches covered by generated inputs.\n";
  return covered == goals.size() ? 0 : 1;
}

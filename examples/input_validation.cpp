// Test-input generation for an input-validation routine — the use case the
// paper's introduction motivates (string constraints are "ubiquitous in
// software, particularly in applications dealing with input validation").
//
// A toy web service validates a coupon code:
//   * exactly 8 characters,
//   * matches the format letter [ab]... : pattern "c[ab]+x",
//   * must embed the campaign tag "ab" starting at index 2.
//
// A symbolic-execution engine exploring the accept branch would emit these
// as string constraints. We compile each into QUBO form, solve on the
// annealer, merge them as a conjunction, and cross-check every generated
// input against the real (classical) validator.
#include <iostream>
#include <string>
#include <vector>

#include "anneal/simulated_annealer.hpp"
#include "smtlib/driver.hpp"
#include "strqubo/solver.hpp"

namespace {

// The concrete validation routine under test (ground truth).
bool validate_coupon(const std::string& code) {
  if (code.size() != 8) return false;
  if (code.front() != 'c' || code.back() != 'x') return false;
  for (std::size_t i = 1; i + 1 < code.size(); ++i) {
    if (code[i] != 'a' && code[i] != 'b') return false;
  }
  return code.compare(2, 2, "ab") == 0;
}

}  // namespace

int main() {
  using namespace qsmt;

  anneal::SimulatedAnnealerParams params;
  params.num_reads = 64;
  params.num_sweeps = 512;
  const anneal::SimulatedAnnealer annealer(params);

  std::cout << "Generating accepting inputs for validate_coupon() via the "
               "annealer:\n\n";

  // The accept-branch path condition as solver constraints.
  const std::vector<strqubo::Constraint> path_condition{
      strqubo::RegexMatch{"c[ab]+x", 8},
      strqubo::IndexOf{8, "ab", 2},
  };

  // Different seeds give different satisfying inputs — a test-input fuzzer.
  int accepted = 0;
  constexpr int kInputs = 5;
  for (int trial = 0; trial < kInputs; ++trial) {
    anneal::SimulatedAnnealerParams p = params;
    p.seed = 1000 + static_cast<std::uint64_t>(trial);
    const anneal::SimulatedAnnealer trial_annealer(p);

    const smtlib::ConjunctionResult joint =
        smtlib::solve_conjunction(path_condition, trial_annealer, {});
    if (!joint.solved) {
      std::cout << "  trial " << trial << ": solver gave up (" << joint.note
                << ")\n";
      continue;
    }
    const bool accepts = validate_coupon(joint.value);
    accepted += accepts ? 1 : 0;
    std::cout << "  trial " << trial << ": '" << joint.value << "'  -> "
              << (accepts ? "ACCEPTED by validator" : "rejected (BUG)")
              << '\n';
  }

  std::cout << "\n" << accepted << "/" << kInputs
            << " generated inputs accepted by the concrete validator.\n";

  // The same query through the SMT-LIB front end.
  smtlib::SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (set-logic QF_S)
    (declare-const code String)
    (assert (= (str.len code) 8))
    (assert (str.in_re code (re.++ (str.to_re "c")
                                   (re.+ (re.union (str.to_re "a")
                                                   (str.to_re "b")))
                                   (str.to_re "x"))))
    (assert (= (str.indexof code "ab" 0) 2))
    (check-sat)
    (get-model)
  )");
  std::cout << "\nSMT-LIB front end says:\n" << out;
  return accepted == kInputs ? 0 : 1;
}

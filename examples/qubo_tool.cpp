// qubo_tool — solve a standalone QUBO from a COO text file with any of the
// suite's samplers. Useful for debugging formulations and for feeding the
// annealing substrate problems that did not come from string constraints.
//
// Usage:
//   qubo_tool [--sampler sa|pimc|tabu|pt|greedy|random|exact]
//             [--reads N] [--sweeps N] [--seed N] [--top K] [file|-]
//
// With no file, a small built-in demo QUBO (a 4-variable double well) is
// solved. Input format is qubo/serialize.hpp's COO text:
//   qubo <num_vars> <num_entries> <offset>
//   i j value        (i == j: linear term)
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "anneal/exact.hpp"
#include "anneal/greedy.hpp"
#include "anneal/pimc.hpp"
#include "anneal/random_sampler.hpp"
#include "anneal/simulated_annealer.hpp"
#include "anneal/tabu.hpp"
#include "anneal/tempering.hpp"
#include "qubo/serialize.hpp"

namespace {

using namespace qsmt;

constexpr const char* kDemoQubo = R"(qubo 4 10 0
0 0 1.0
1 1 1.0
2 2 1.0
3 3 1.0
0 1 -0.8
0 2 -0.8
0 3 -0.8
1 2 -0.8
1 3 -0.8
2 3 -0.8
)";

struct Options {
  std::string sampler = "sa";
  std::size_t reads = 64;
  std::size_t sweeps = 512;
  std::uint64_t seed = 0;
  std::size_t top = 5;
  std::string file;
};

std::unique_ptr<anneal::Sampler> make_sampler(const Options& options) {
  if (options.sampler == "sa") {
    anneal::SimulatedAnnealerParams p;
    p.num_reads = options.reads;
    p.num_sweeps = options.sweeps;
    p.seed = options.seed;
    return std::make_unique<anneal::SimulatedAnnealer>(p);
  }
  if (options.sampler == "pimc") {
    anneal::PathIntegralParams p;
    p.num_reads = options.reads;
    p.num_sweeps = options.sweeps;
    p.seed = options.seed;
    return std::make_unique<anneal::PathIntegralAnnealer>(p);
  }
  if (options.sampler == "tabu") {
    anneal::TabuParams p;
    p.num_restarts = options.reads;
    p.seed = options.seed;
    return std::make_unique<anneal::TabuSampler>(p);
  }
  if (options.sampler == "pt") {
    anneal::ParallelTemperingParams p;
    p.num_reads = options.reads;
    p.num_sweeps = options.sweeps;
    p.seed = options.seed;
    return std::make_unique<anneal::ParallelTempering>(p);
  }
  if (options.sampler == "greedy") {
    anneal::GreedyDescentParams p;
    p.num_reads = options.reads;
    p.seed = options.seed;
    return std::make_unique<anneal::GreedyDescent>(p);
  }
  if (options.sampler == "random") {
    anneal::RandomSamplerParams p;
    p.num_reads = options.reads;
    p.seed = options.seed;
    return std::make_unique<anneal::RandomSampler>(p);
  }
  if (options.sampler == "exact") {
    return std::make_unique<anneal::ExactSolver>();
  }
  throw std::invalid_argument("unknown sampler: " + options.sampler);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--sampler") {
        options.sampler = next();
      } else if (arg == "--reads") {
        options.reads = std::stoull(next());
      } else if (arg == "--sweeps") {
        options.sweeps = std::stoull(next());
      } else if (arg == "--seed") {
        options.seed = std::stoull(next());
      } else if (arg == "--top") {
        options.top = std::stoull(next());
      } else if (arg == "--help") {
        std::cout << "usage: qubo_tool [--sampler sa|pimc|tabu|pt|greedy|"
                     "random|exact] [--reads N]\n"
                     "                 [--sweeps N] [--seed N] [--top K] "
                     "[file|-]\n";
        return 0;
      } else {
        options.file = arg;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 1;
    }
  }

  std::string source;
  if (options.file.empty()) {
    std::cout << "; no input, solving the built-in demo QUBO\n";
    source = kDemoQubo;
  } else if (options.file == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream in(options.file);
    if (!in) {
      std::cerr << "error: cannot open " << options.file << '\n';
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  try {
    const qubo::QuboModel model = qubo::from_coo_string(source);
    const auto sampler = make_sampler(options);
    std::cout << "; " << model.num_variables() << " variables, "
              << model.num_interactions() << " interactions, sampler "
              << sampler->name() << '\n';
    const anneal::SampleSet samples = sampler->sample(model);
    std::size_t shown = 0;
    for (const auto& sample : samples) {
      if (shown++ >= options.top) break;
      std::cout << "energy " << sample.energy << "  x" << sample.num_occurrences
                << "  [";
      for (std::size_t i = 0; i < sample.bits.size(); ++i) {
        std::cout << int{sample.bits[i]};
      }
      std::cout << "]\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

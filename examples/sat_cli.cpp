// sat_cli — solve a DIMACS CNF file with the embedded CDCL solver.
//
// Usage:
//   sat_cli [file.cnf]   solve a DIMACS file ("-" for stdin)
//   sat_cli              solve a built-in demo instance
//
// Output follows SAT-competition conventions: an "s" status line and, for
// satisfiable instances, a "v" model line.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sat/dimacs.hpp"

namespace {

constexpr const char* kDemoCnf = R"(c demo: (x1 | ~x2) & (x2 | x3) & (~x1)
p cnf 3 3
1 -2 0
2 3 0
-1 0
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  if (argc < 2) {
    std::cout << "c no input file, solving the built-in demo instance\n";
    source = kDemoCnf;
  } else if (std::string(argv[1]) == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "error: cannot open " << argv[1] << '\n';
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  }

  try {
    const qsmt::sat::DimacsResult result = qsmt::sat::solve_dimacs(source);
    if (result.status == qsmt::sat::SolveStatus::kSat) {
      std::cout << "s SATISFIABLE\nv ";
      for (qsmt::sat::Literal lit : result.model) std::cout << lit << ' ';
      std::cout << "0\n";
      return 10;  // SAT-competition exit code for sat.
    }
    std::cout << "s UNSATISFIABLE\n";
    return 20;  // SAT-competition exit code for unsat.
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

#include <gtest/gtest.h>

#include "smtlib/sexpr.hpp"

namespace qsmt::smtlib {
namespace {

TEST(ParseSexprs, Symbols) {
  const auto exprs = parse_sexprs("foo str.len -abc");
  ASSERT_EQ(exprs.size(), 3u);
  EXPECT_TRUE(exprs[0].is_symbol("foo"));
  EXPECT_TRUE(exprs[1].is_symbol("str.len"));
  EXPECT_TRUE(exprs[2].is_symbol("-abc"));
}

TEST(ParseSexprs, Numerals) {
  const auto exprs = parse_sexprs("0 42 -17");
  ASSERT_EQ(exprs.size(), 3u);
  EXPECT_EQ(exprs[0].kind, SExpr::Kind::kNumeral);
  EXPECT_EQ(exprs[0].numeral, 0);
  EXPECT_EQ(exprs[1].numeral, 42);
  EXPECT_EQ(exprs[2].numeral, -17);
}

TEST(ParseSexprs, LoneMinusIsSymbol) {
  const auto exprs = parse_sexprs("-");
  ASSERT_EQ(exprs.size(), 1u);
  EXPECT_TRUE(exprs[0].is_symbol("-"));
}

TEST(ParseSexprs, StringLiterals) {
  const auto exprs = parse_sexprs(R"("hello world" "")");
  ASSERT_EQ(exprs.size(), 2u);
  EXPECT_EQ(exprs[0].kind, SExpr::Kind::kString);
  EXPECT_EQ(exprs[0].atom, "hello world");
  EXPECT_EQ(exprs[1].atom, "");
}

TEST(ParseSexprs, DoubledQuoteEscape) {
  // SMT-LIB 2.6: "" inside a string is a literal quote.
  const auto exprs = parse_sexprs(R"("say ""hi""")");
  ASSERT_EQ(exprs.size(), 1u);
  EXPECT_EQ(exprs[0].atom, "say \"hi\"");
}

TEST(ParseSexprs, NestedLists) {
  const auto exprs = parse_sexprs("(assert (= x (str.++ \"a\" \"b\")))");
  ASSERT_EQ(exprs.size(), 1u);
  const SExpr& top = exprs[0];
  ASSERT_TRUE(top.is_list());
  ASSERT_EQ(top.list.size(), 2u);
  EXPECT_TRUE(top.list[0].is_symbol("assert"));
  const SExpr& eq = top.list[1];
  ASSERT_EQ(eq.list.size(), 3u);
  EXPECT_TRUE(eq.list[0].is_symbol("="));
  EXPECT_EQ(eq.list[2].list.size(), 3u);
}

TEST(ParseSexprs, EmptyList) {
  const auto exprs = parse_sexprs("()");
  ASSERT_EQ(exprs.size(), 1u);
  EXPECT_TRUE(exprs[0].is_list());
  EXPECT_TRUE(exprs[0].list.empty());
}

TEST(ParseSexprs, CommentsIgnored) {
  const auto exprs = parse_sexprs(
      "; leading comment\n(check-sat) ; trailing\n; done");
  ASSERT_EQ(exprs.size(), 1u);
  EXPECT_TRUE(exprs[0].is_list());
}

TEST(ParseSexprs, SemicolonInsideStringIsNotComment) {
  const auto exprs = parse_sexprs(R"(" ; not a comment ")");
  ASSERT_EQ(exprs.size(), 1u);
  EXPECT_EQ(exprs[0].atom, " ; not a comment ");
}

TEST(ParseSexprs, EmptyInputGivesNothing) {
  EXPECT_TRUE(parse_sexprs("").empty());
  EXPECT_TRUE(parse_sexprs("  \n ; just a comment\n").empty());
}

TEST(ParseSexprs, Errors) {
  EXPECT_THROW(parse_sexprs("("), std::invalid_argument);
  EXPECT_THROW(parse_sexprs(")"), std::invalid_argument);
  EXPECT_THROW(parse_sexprs("(a (b)"), std::invalid_argument);
  EXPECT_THROW(parse_sexprs("\"unterminated"), std::invalid_argument);
}

TEST(ParseSexprs, ErrorMessageCarriesLineNumber) {
  try {
    parse_sexprs("(a)\n(b\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(ToString, RoundTripsConcreteSyntax) {
  const char* inputs[] = {"(assert (= x \"hi\"))", "(check-sat)",
                          "(a 1 -2 (b c))"};
  for (const char* input : inputs) {
    const auto exprs = parse_sexprs(input);
    ASSERT_EQ(exprs.size(), 1u);
    EXPECT_EQ(to_string(exprs[0]), input);
  }
}

TEST(ToString, ReescapesQuotes) {
  const auto exprs = parse_sexprs(R"("a""b")");
  EXPECT_EQ(to_string(exprs[0]), R"("a""b")");
}

TEST(SExprFactories, BuildExpectedKinds) {
  EXPECT_TRUE(SExpr::symbol("x").is_symbol("x"));
  EXPECT_EQ(SExpr::number(5).numeral, 5);
  EXPECT_EQ(SExpr::string("s").kind, SExpr::Kind::kString);
  EXPECT_TRUE(SExpr::make_list({SExpr::symbol("a")}).is_list());
}

}  // namespace
}  // namespace qsmt::smtlib

// Conformance suite (ctest label: conformance): exhaustively proves every
// §4 QUBO formulation sound, complete over its documented ground domain,
// and gap-safe, via the spectrum oracle in src/conformance.
//
// Alongside the per-case property checks the suite enforces registry
// coverage from both ends:
//   * every alternative of the strqubo::Constraint variant must appear as
//     the `op` of some registered case (compile-time enumeration), and
//   * every `build_*` function declared in src/strqubo/builders.hpp must be
//     exercised by some case (the header is parsed at test runtime via the
//     QSMT_BUILDERS_HPP path injected by CMake),
// so adding an operation without a conformance spec fails this suite.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <limits>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "anneal/exact.hpp"
#include "conformance/conformance.hpp"
#include "conformance/registry.hpp"
#include "conformance/spectrum.hpp"
#include "qubo/qubo_model.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/builders.hpp"
#include "strqubo/constraint.hpp"

namespace qsmt::conformance {
namespace {

std::string failure_details(const ConformanceReport& report) {
  std::ostringstream out;
  out << report_json(report);
  for (const std::string& f : report.failures) out << "\n  " << f;
  return out.str();
}

// ---------------------------------------------------------------------------
// The kit itself: one parameterised test per registered case.

class ConformanceCaseTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConformanceCaseTest, PropertiesMatchSpec) {
  const std::vector<ConformanceCase> cases = all_cases();
  const ConformanceCase& c = cases.at(GetParam());
  const ConformanceReport report = check_case(c);

  EXPECT_EQ(report.sound, c.expect_sound)
      << c.name << ": " << failure_details(report);
  EXPECT_EQ(report.complete, c.expect_complete)
      << c.name << ": " << failure_details(report);
  EXPECT_TRUE(report.gap_safe) << c.name << ": " << failure_details(report);
  EXPECT_TRUE(report.as_expected) << c.name << ": " << failure_details(report);

  // Structural sanity: the sweep saw every object, the ground band is
  // non-empty, and counts partition the object space.
  EXPECT_GT(report.ground_band_size, 0u);
  EXPECT_EQ(report.num_satisfying + report.num_violating, report.num_objects);
  EXPECT_GE(report.num_satisfying, report.num_ground_domain);
}

std::string case_test_name(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string name = all_cases().at(info.param).name;
  for (char& c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Registry, ConformanceCaseTest,
                         ::testing::Range<std::size_t>(0, all_cases().size()),
                         case_test_name);

// ---------------------------------------------------------------------------
// Registry coverage: the two auto-discovery directions.

template <std::size_t... I>
std::set<std::string> variant_op_names(std::index_sequence<I...>) {
  return {strqubo::constraint_name(strqubo::Constraint{
      std::variant_alternative_t<I, strqubo::Constraint>{}})...};
}

TEST(ConformanceRegistry, CoversEveryConstraintAlternative) {
  const std::set<std::string> ops = covered_ops();
  for (const std::string& op : variant_op_names(
           std::make_index_sequence<
               std::variant_size_v<strqubo::Constraint>>())) {
    EXPECT_TRUE(ops.count(op))
        << "Constraint alternative '" << op
        << "' has no conformance case; add one to src/conformance/registry.cpp";
  }
}

TEST(ConformanceRegistry, CoversEveryDeclaredBuilder) {
  std::ifstream in(QSMT_BUILDERS_HPP);
  ASSERT_TRUE(in) << "cannot open " << QSMT_BUILDERS_HPP;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string header = buffer.str();

  const std::regex builder_re(R"(qubo::QuboModel\s+(build_\w+)\s*\()");
  const std::set<std::string> covered = covered_builders();
  std::size_t declared = 0;
  for (auto it = std::sregex_iterator(header.begin(), header.end(), builder_re);
       it != std::sregex_iterator(); ++it) {
    const std::string builder = (*it)[1];
    if (builder == "build") continue;  // The dispatcher, not a formulation.
    ++declared;
    EXPECT_TRUE(covered.count(builder))
        << "builders.hpp declares '" << builder
        << "' but no conformance case lists it; add one to "
           "src/conformance/registry.cpp";
  }
  // The regex must actually be finding the catalog (guards against a
  // signature-style change silently turning this test into a no-op).
  EXPECT_GE(declared, 15u);
  for (const std::string& builder : covered) {
    EXPECT_NE(header.find(builder), std::string::npos)
        << "registry lists unknown builder '" << builder << "'";
  }
}

TEST(ConformanceRegistry, CaseNamesUniqueAndWellFormed) {
  std::set<std::string> names;
  for (const ConformanceCase& c : all_cases()) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate case " << c.name;
    EXPECT_FALSE(c.op.empty()) << c.name;
    EXPECT_FALSE(c.builders.empty()) << c.name;
    EXPECT_TRUE(static_cast<bool>(c.classify)) << c.name;
    EXPECT_TRUE(static_cast<bool>(c.describe)) << c.name;
    EXPECT_GE(c.gap_floor, 0.0) << c.name;
  }
}

// ---------------------------------------------------------------------------
// Spectrum oracle self-tests: the sweep must agree with brute force and
// with the existing exact solver.

TEST(SpectrumOracle, MatchesBruteForceOnHandBuiltModel) {
  // 4 variables: 2 object bits, 2 auxiliaries, with couplings across the
  // boundary so per-object minimisation actually has work to do.
  qubo::QuboModel model(4);
  model.set_offset(0.25);
  model.set_linear(0, -1.0);
  model.set_linear(1, 0.5);
  model.set_linear(2, 1.5);
  model.set_linear(3, -0.75);
  model.add_quadratic(0, 1, 2.0);
  model.add_quadratic(0, 2, -1.0);
  model.add_quadratic(1, 3, -2.5);
  model.add_quadratic(2, 3, 1.0);

  const Spectrum spectrum = sweep_spectrum(model, 2);
  ASSERT_EQ(spectrum.object_min_energy.size(), 4u);

  double ground = std::numeric_limits<double>::infinity();
  std::vector<double> expect(4, std::numeric_limits<double>::infinity());
  for (std::uint64_t state = 0; state < 16; ++state) {
    std::vector<std::uint8_t> bits(4);
    for (std::size_t i = 0; i < 4; ++i) bits[i] = state >> i & 1ULL;
    const double e = model.energy(bits);
    ground = std::min(ground, e);
    expect[state & 3] = std::min(expect[state & 3], e);
  }
  EXPECT_DOUBLE_EQ(spectrum.ground_energy, ground);
  for (std::size_t object = 0; object < 4; ++object) {
    EXPECT_DOUBLE_EQ(spectrum.object_min_energy[object], expect[object])
        << "object " << object;
  }
}

TEST(SpectrumOracle, GroundEnergyMatchesExactSolver) {
  const qubo::QuboModel model = strqubo::build_equality("hi");
  const Spectrum spectrum = sweep_spectrum(model, 14);
  const anneal::ExactSolver exact;
  EXPECT_DOUBLE_EQ(spectrum.ground_energy, exact.ground_energy(model));
}

TEST(SpectrumOracle, RejectsOversizedModels) {
  EXPECT_THROW(sweep_spectrum(qubo::QuboModel(kMaxSpectrumVariables + 1), 1),
               std::invalid_argument);
  EXPECT_THROW(sweep_spectrum(qubo::QuboModel(4), 5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Checker teeth: deliberately wrong specs must be caught, not absorbed.

ConformanceCase tiny_equality_case() {
  ConformanceCase c;
  c.name = "selftest/equality_a";
  c.op = "equality";
  c.builders = {"build_equality"};
  c.model = strqubo::build_equality("a");
  c.object_bits = 7;
  c.classify = [](std::uint64_t object) {
    const std::string s = decode_object_string(object, 1);
    Classified v;
    v.satisfies = s == "a";
    v.in_ground_domain = v.satisfies;
    return v;
  };
  c.gap_floor = 1.0;
  return c;
}

TEST(CheckerSelfTest, DetectsUnsoundGround) {
  ConformanceCase c = tiny_equality_case();
  // Lie: claim the true ground state violates. The checker must flag the
  // formulation unsound (a violating object in the ground band).
  c.classify = [](std::uint64_t object) {
    const std::string s = decode_object_string(object, 1);
    Classified v;
    v.satisfies = s == "b";
    v.in_ground_domain = v.satisfies;
    return v;
  };
  const ConformanceReport report = check_case(c);
  EXPECT_FALSE(report.sound);
  EXPECT_FALSE(report.as_expected);
  ASSERT_FALSE(report.failures.empty());
  // The lie also breaks completeness ("b" is not at ground), and objects are
  // scanned in numeric order, so search every failure for the unsound flag.
  std::string joined;
  for (const std::string& failure : report.failures) joined += failure + "\n";
  EXPECT_NE(joined.find("unsound"), std::string::npos) << joined;
}

TEST(CheckerSelfTest, DetectsIncompleteGroundDomain) {
  ConformanceCase c = tiny_equality_case();
  // Lie: claim both "a" and "b" should be at ground. "b" is not, so the
  // checker must flag incompleteness.
  c.classify = [](std::uint64_t object) {
    const std::string s = decode_object_string(object, 1);
    Classified v;
    v.satisfies = s == "a" || s == "b";
    v.in_ground_domain = v.satisfies;
    return v;
  };
  const ConformanceReport report = check_case(c);
  EXPECT_TRUE(report.sound);
  EXPECT_FALSE(report.complete);
  EXPECT_FALSE(report.as_expected);
}

TEST(CheckerSelfTest, DetectsGapBelowFloor) {
  ConformanceCase c = tiny_equality_case();
  c.gap_floor = 1.5;  // The true gap is exactly A = 1.
  const ConformanceReport report = check_case(c);
  EXPECT_TRUE(report.sound);
  EXPECT_TRUE(report.complete);
  EXPECT_FALSE(report.gap_safe);
  EXPECT_FALSE(report.as_expected);
}

TEST(CheckerSelfTest, RejectsEmptyGroundDomain) {
  ConformanceCase c = tiny_equality_case();
  c.classify = [](std::uint64_t) { return Classified{}; };
  EXPECT_THROW(check_case(c), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Decoder adapter: must invert the strenc encoding exactly.

TEST(DecodeObjectString, RoundTripsThroughStrenc) {
  for (const std::string& s : {std::string("a"), std::string("zyx"),
                               std::string("\x7f\x00\x41", 3)}) {
    const std::vector<std::uint8_t> bits = strenc::encode_string(s);
    std::uint64_t object = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      object |= static_cast<std::uint64_t>(bits[i]) << i;
    }
    EXPECT_EQ(decode_object_string(object, s.size()), s);
  }
}

TEST(DecodeObjectString, EscapesNonPrintables) {
  EXPECT_EQ(printable(std::string("a\x01", 2)), "\"a\\x01\"");
  EXPECT_EQ(printable("ok"), "\"ok\"");
}

// ---------------------------------------------------------------------------
// Report serialisation.

TEST(ReportJson, EmitsStableKeysAndFiniteSentinels) {
  const std::vector<ConformanceCase> cases = all_cases();
  const ConformanceReport report = check_case(cases.front());
  const std::string json = report_json(report);
  for (const char* key :
       {"\"name\"", "\"op\"", "\"num_variables\"", "\"ground_energy\"",
        "\"min_gap\"", "\"gap_floor\"", "\"sound\"", "\"complete\"",
        "\"gap_safe\"", "\"as_expected\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace qsmt::conformance

#include <gtest/gtest.h>

#include "baseline/classical.hpp"
#include "strqubo/verify.hpp"

namespace qsmt::baseline {
namespace {

using strqubo::Constraint;

TEST(DirectBaseline, SolvesDeterministicConstraints) {
  const DirectBaseline solver;
  EXPECT_EQ(solver.solve(strqubo::Equality{"abc"}).text, "abc");
  EXPECT_EQ(solver.solve(strqubo::Concat{"ab", "cd"}).text, "abcd");
  EXPECT_EQ(solver.solve(strqubo::Reverse{"hello"}).text, "olleh");
  EXPECT_EQ(solver.solve(strqubo::ReplaceAll{"hello", 'l', 'x'}).text,
            "hexxo");
  EXPECT_EQ(solver.solve(strqubo::Replace{"hello", 'l', 'x'}).text, "hexlo");
}

TEST(DirectBaseline, ConstructsWitnessesForOpenConstraints) {
  const DirectBaseline solver;
  const std::vector<Constraint> constraints{
      strqubo::SubstringMatch{6, "hi"}, strqubo::IndexOf{6, "hi", 2},
      strqubo::Palindrome{5}, strqubo::RegexMatch{"a[bc]+", 5}};
  for (const auto& c : constraints) {
    const BaselineResult result = solver.solve(c);
    EXPECT_TRUE(result.satisfied) << strqubo::describe(c);
    ASSERT_TRUE(result.text.has_value());
    EXPECT_TRUE(strqubo::verify_string(c, *result.text));
  }
}

TEST(DirectBaseline, SolvesIncludes) {
  const DirectBaseline solver;
  const BaselineResult found =
      solver.solve(strqubo::Includes{"hello world", "world"});
  EXPECT_EQ(found.position, 6u);
  EXPECT_TRUE(found.satisfied);

  const BaselineResult missing =
      solver.solve(strqubo::Includes{"hello", "xyz"});
  EXPECT_EQ(missing.position, std::nullopt);
  EXPECT_TRUE(missing.satisfied);
}

TEST(EnumerationBaseline, SolvesSmallConstraints) {
  const EnumerationBaseline solver;
  const std::vector<Constraint> constraints{
      strqubo::Equality{"cab"}, strqubo::SubstringMatch{4, "cat"},
      strqubo::Palindrome{4}, strqubo::RegexMatch{"a[bc]+", 4},
      strqubo::IndexOf{4, "hi", 1}};
  for (const auto& c : constraints) {
    const BaselineResult result = solver.solve(c);
    EXPECT_TRUE(result.satisfied) << strqubo::describe(c);
    ASSERT_TRUE(result.text.has_value());
    EXPECT_TRUE(strqubo::verify_string(c, *result.text));
    EXPECT_GT(result.nodes_explored, 0u);
  }
}

TEST(EnumerationBaseline, IncludesCountsPositions) {
  const EnumerationBaseline solver;
  const BaselineResult result =
      solver.solve(strqubo::Includes{"xxcat", "cat"});
  EXPECT_EQ(result.position, 2u);
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ(result.nodes_explored, 3u);  // Positions 0, 1, 2.
}

TEST(EnumerationBaseline, FailsOutsideAlphabet) {
  EnumerationBaseline::Params params;
  params.alphabet = "ab";
  params.max_nodes = 10000;
  const EnumerationBaseline solver(params);
  const BaselineResult result = solver.solve(strqubo::Equality{"xyz"});
  EXPECT_FALSE(result.satisfied);
  EXPECT_FALSE(result.text.has_value());
  EXPECT_FALSE(result.budget_exhausted);  // Pruning exhausts quickly.
}

TEST(EnumerationBaseline, BudgetExhaustionIsReported) {
  EnumerationBaseline::Params params;
  params.max_nodes = 10;
  params.prune = false;
  const EnumerationBaseline solver(params);
  const BaselineResult result = solver.solve(strqubo::Equality{"zzzz"});
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_FALSE(result.satisfied);
}

TEST(EnumerationBaseline, PruningReducesWork) {
  EnumerationBaseline::Params pruned;
  pruned.alphabet = "abcdefgh";
  EnumerationBaseline::Params unpruned = pruned;
  unpruned.prune = false;
  const auto c = strqubo::Equality{"hhh"};
  const auto with = EnumerationBaseline(pruned).solve(c);
  const auto without = EnumerationBaseline(unpruned).solve(c);
  EXPECT_TRUE(with.satisfied);
  EXPECT_TRUE(without.satisfied);
  EXPECT_LT(with.nodes_explored, without.nodes_explored);
}

TEST(EnumerationBaseline, WorkGrowsWithLength) {
  EnumerationBaseline::Params params;
  params.alphabet = "abcd";
  params.prune = false;
  const EnumerationBaseline solver(params);
  // 'd...d' is the last string in enumeration order: full tree explored.
  const auto n2 = solver.solve(strqubo::Equality{"dd"}).nodes_explored;
  const auto n3 = solver.solve(strqubo::Equality{"ddd"}).nodes_explored;
  const auto n4 = solver.solve(strqubo::Equality{"dddd"}).nodes_explored;
  EXPECT_GT(n3, n2);
  EXPECT_GT(n4, n3);
  EXPECT_NEAR(static_cast<double>(n4) / static_cast<double>(n3), 4.0, 1.0);
}

TEST(EnumerationBaseline, RejectsEmptyAlphabet) {
  EnumerationBaseline::Params params;
  params.alphabet = "";
  EXPECT_THROW(EnumerationBaseline{params}, std::invalid_argument);
}

TEST(EnumerationBaseline, EmptyTargetLength) {
  const EnumerationBaseline solver;
  const BaselineResult result = solver.solve(strqubo::Equality{""});
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ(result.text, "");
}

TEST(PrefixFeasible, NeverPrunesExtendablePrefixes) {
  // Property: for every satisfying string over a tiny alphabet, every prefix
  // of it must be considered feasible.
  const std::string alphabet = "abc";
  const std::vector<Constraint> constraints{
      strqubo::Palindrome{4}, strqubo::SubstringMatch{4, "ab"},
      strqubo::RegexMatch{"a[bc]+", 4}, strqubo::IndexOf{4, "b", 2},
      strqubo::Equality{"acab"}};
  for (const auto& c : constraints) {
    const std::size_t length = strqubo::constraint_num_variables(c) / 7;
    // Enumerate all strings of `length` over the alphabet.
    std::vector<std::string> all{""};
    for (std::size_t p = 0; p < length; ++p) {
      std::vector<std::string> next;
      for (const auto& prefix : all) {
        for (char ch : alphabet) next.push_back(prefix + ch);
      }
      all = std::move(next);
    }
    for (const auto& candidate : all) {
      if (!strqubo::verify_string(c, candidate)) continue;
      for (std::size_t p = 0; p <= length; ++p) {
        EXPECT_TRUE(prefix_feasible(c, candidate.substr(0, p), length))
            << strqubo::describe(c) << " prefix of " << candidate;
      }
    }
  }
}

TEST(PrefixFeasible, PrunesObviousDeadEnds) {
  EXPECT_FALSE(prefix_feasible(strqubo::Equality{"abc"}, "x", 3));
  EXPECT_FALSE(prefix_feasible(strqubo::Palindrome{4}, "abcb", 4));
  EXPECT_FALSE(prefix_feasible(strqubo::IndexOf{4, "hi", 1}, "ax", 4));
  EXPECT_FALSE(prefix_feasible(strqubo::SubstringMatch{3, "ab"}, "xxx", 3));
}

}  // namespace
}  // namespace qsmt::baseline

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "util/cancel.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace qsmt {
namespace {

TEST(SplitMix64, ProducesKnownSequence) {
  // Reference values for seed 0 from the splitmix64 reference
  // implementation.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64_next(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64_next(state), 0x06c45d188009454fULL);
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t state = 42;
  const std::uint64_t before = state;
  (void)splitmix64_next(state);
  EXPECT_NE(state, before);
}

TEST(MixSeed, DistinctStreamsGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(mix_seed(12345, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(MixSeed, DependsOnBothArguments) {
  EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
  EXPECT_NE(mix_seed(1, 0), mix_seed(1, 1));
}

TEST(Xoshiro256, DeterministicForFixedSeed) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, StreamConstructorMatchesMixSeed) {
  Xoshiro256 direct(mix_seed(7, 3));
  Xoshiro256 stream(7, 3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(direct(), stream());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, BelowStaysInBounds) {
  Xoshiro256 rng(17);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowZeroBoundReturnsZero) {
  Xoshiro256 rng(17);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro256, BelowCoversAllResidues) {
  Xoshiro256 rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(31);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Xoshiro256, CoinIsRoughlyFair) {
  Xoshiro256 rng(3);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.coin();
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Xoshiro256, JumpChangesSequence) {
  Xoshiro256 a(11);
  Xoshiro256 b(11);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~0ULL);
}

TEST(Require, ThrowsOnViolation) {
  EXPECT_THROW(require(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require_in_range(false, "oob"), std::out_of_range);
  EXPECT_NO_THROW(require_in_range(true, "fine"));
}

TEST(Require, PropagatesMessage) {
  try {
    require(false, "specific message");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.elapsed_us(), 15000);
  EXPECT_GE(sw.elapsed_seconds(), 0.015);
}

TEST(Stopwatch, ResetRestartsFromZero) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.reset();
  EXPECT_LT(sw.elapsed_us(), 15000);
}

TEST(Stopwatch, ReadsAreMonotonic) {
  Stopwatch sw;
  const auto first = sw.elapsed_us();
  const auto second = sw.elapsed_us();
  EXPECT_LE(first, second);
}

// Pins the solver-wide monotonic-clock rule (see the static_assert in
// stopwatch.hpp): a tight read loop must never observe time going
// backwards, which a system_clock-backed stopwatch cannot promise across
// NTP steps.
TEST(Stopwatch, ElapsedNeverDecreasesAcrossManyReads) {
  Stopwatch sw;
  std::int64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t now = sw.elapsed_us();
    EXPECT_GE(now, last);
    last = now;
  }
}

// CancelSource deadlines are steady_clock time points by signature — the
// other half of the monotonic-clock rule. A deadline an hour out must not
// read as already expired, and one in the past must.
TEST(CancelDeadline, UsesMonotonicClock) {
  CancelSource future_deadline;
  future_deadline.set_deadline(std::chrono::steady_clock::now() +
                               std::chrono::hours(1));
  EXPECT_FALSE(future_deadline.token().cancelled());

  CancelSource past_deadline;
  past_deadline.set_deadline(std::chrono::steady_clock::now() -
                             std::chrono::milliseconds(1));
  EXPECT_TRUE(past_deadline.token().cancelled());
}

}  // namespace
}  // namespace qsmt

#include <gtest/gtest.h>

#include <vector>

#include "sat/cdcl.hpp"
#include "util/rng.hpp"

namespace qsmt::sat {
namespace {

// Independent brute-force satisfiability oracle.
bool brute_force_sat(std::size_t num_vars,
                     const std::vector<std::vector<Literal>>& clauses) {
  for (std::uint64_t mask = 0; mask < (1ULL << num_vars); ++mask) {
    bool all_clauses = true;
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (Literal lit : clause) {
        const auto v = static_cast<std::size_t>(lit > 0 ? lit : -lit);
        const bool value = (mask >> (v - 1)) & 1;
        if ((lit > 0) == value) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        all_clauses = false;
        break;
      }
    }
    if (all_clauses) return true;
  }
  return false;
}

TEST(CdclSolver, EmptyInstanceIsSat) {
  CdclSolver solver;
  EXPECT_EQ(solver.solve(), SolveStatus::kSat);
}

TEST(CdclSolver, SingleUnit) {
  CdclSolver solver;
  const auto x = solver.add_variable();
  solver.add_clause({x});
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_TRUE(solver.value(x));
}

TEST(CdclSolver, ContradictoryUnitsAreUnsat) {
  CdclSolver solver;
  const auto x = solver.add_variable();
  solver.add_clause({x});
  solver.add_clause({-x});
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(CdclSolver, EmptyClauseIsUnsat) {
  CdclSolver solver;
  solver.add_variable();
  solver.add_clause({});
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(CdclSolver, TautologiesAreDropped) {
  CdclSolver solver;
  const auto x = solver.add_variable();
  solver.add_clause({x, -x});  // Tautology: no constraint.
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
}

TEST(CdclSolver, DuplicateLiteralsDeduplicated) {
  CdclSolver solver;
  const auto x = solver.add_variable();
  solver.add_clause({x, x, x});
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_TRUE(solver.value(x));
}

TEST(CdclSolver, UnknownVariableThrows) {
  CdclSolver solver;
  solver.add_variable();
  EXPECT_THROW(solver.add_clause({2}), std::invalid_argument);
  EXPECT_THROW(solver.add_clause({0}), std::invalid_argument);
}

TEST(CdclSolver, ImplicationChainPropagates) {
  CdclSolver solver;
  std::vector<std::int32_t> v;
  for (int i = 0; i < 10; ++i) v.push_back(solver.add_variable());
  solver.add_clause({v[0]});
  for (int i = 0; i + 1 < 10; ++i) solver.add_clause({-v[i], v[i + 1]});
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(solver.value(v[i]));
  EXPECT_GT(solver.stats().propagations, 0u);
}

TEST(CdclSolver, PigeonholeThreeIntoTwoIsUnsat) {
  // PHP(3,2): 3 pigeons, 2 holes. Var p_{i,h} = pigeon i in hole h.
  CdclSolver solver;
  std::int32_t p[3][2];
  for (auto& row : p) {
    for (auto& var : row) var = solver.add_variable();
  }
  for (auto& row : p) solver.add_clause({row[0], row[1]});
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        solver.add_clause({-p[i][h], -p[j][h]});
      }
    }
  }
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
  EXPECT_GT(solver.stats().conflicts, 0u);
}

TEST(CdclSolver, GraphColoringTriangleTwoColorsUnsat) {
  CdclSolver solver;
  // Node i gets color via boolean c_i; triangle needs adjacent different.
  const auto a = solver.add_variable();
  const auto b = solver.add_variable();
  const auto c = solver.add_variable();
  for (auto [u, v] : std::vector<std::pair<std::int32_t, std::int32_t>>{
           {a, b}, {b, c}, {a, c}}) {
    solver.add_clause({u, v});    // Not both color-0.
    solver.add_clause({-u, -v});  // Not both color-1.
  }
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

TEST(CdclSolver, ModelReturnsAllVariables) {
  CdclSolver solver;
  const auto x = solver.add_variable();
  const auto y = solver.add_variable();
  solver.add_clause({x});
  solver.add_clause({-y});
  ASSERT_EQ(solver.solve(), SolveStatus::kSat);
  const auto model = solver.model();
  ASSERT_EQ(model.size(), 2u);
  EXPECT_EQ(model[0], x);
  EXPECT_EQ(model[1], -y);
}

TEST(CdclSolver, IncrementalBlockingEnumeratesAllModels) {
  // 2 free variables: 4 models; blocking each in turn ends unsat after 4.
  CdclSolver solver;
  const auto x = solver.add_variable();
  const auto y = solver.add_variable();
  solver.add_clause({x, y, -x});  // Tautology, just to have a clause.
  int models = 0;
  while (solver.solve() == SolveStatus::kSat && models < 10) {
    ++models;
    solver.add_clause({solver.value(x) ? -x : x, solver.value(y) ? -y : y});
  }
  EXPECT_EQ(models, 4);
}

class RandomThreeSat : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomThreeSat, AgreesWithBruteForce) {
  Xoshiro256 rng(GetParam());
  for (int instance = 0; instance < 20; ++instance) {
    const std::size_t num_vars = 8;
    // ~4.3 clauses/var sits near the hard threshold.
    const std::size_t num_clauses = 34;
    std::vector<std::vector<Literal>> clauses;
    CdclSolver solver;
    for (std::size_t v = 0; v < num_vars; ++v) solver.add_variable();
    for (std::size_t c = 0; c < num_clauses; ++c) {
      std::vector<Literal> clause;
      for (int k = 0; k < 3; ++k) {
        const auto v = static_cast<Literal>(1 + rng.below(num_vars));
        clause.push_back(rng.coin() ? v : -v);
      }
      clauses.push_back(clause);
      solver.add_clause(clause);
    }
    const bool expected = brute_force_sat(num_vars, clauses);
    const bool actual = solver.solve() == SolveStatus::kSat;
    EXPECT_EQ(actual, expected) << "instance " << instance;
    if (actual) {
      // Verify the returned model satisfies every clause.
      for (const auto& clause : clauses) {
        bool satisfied = false;
        for (Literal lit : clause) {
          const auto v = lit > 0 ? lit : -lit;
          if ((lit > 0) == solver.value(v)) {
            satisfied = true;
            break;
          }
        }
        EXPECT_TRUE(satisfied);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomThreeSat,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(CdclSolver, AssumptionsGuideTheModelButDoNotPersist) {
  CdclSolver solver;
  const auto a = solver.add_variable();
  const auto b = solver.add_variable();
  solver.add_clause({a, b});

  EXPECT_EQ(solver.solve({-a}), SolveStatus::kSat);
  EXPECT_FALSE(solver.value(a));
  EXPECT_TRUE(solver.value(b));

  // The previous assumption leaves no trace: its negation is satisfiable.
  EXPECT_EQ(solver.solve({a, -b}), SolveStatus::kSat);
  EXPECT_TRUE(solver.value(a));
  EXPECT_FALSE(solver.value(b));

  EXPECT_EQ(solver.solve(), SolveStatus::kSat);
}

TEST(CdclSolver, FalsifiedAssumptionIsUnsatWithoutPoisoningTheSolver) {
  CdclSolver solver;
  const auto a = solver.add_variable();
  const auto b = solver.add_variable();
  // a|b and ~a|b together imply b, so assuming ~b must fail...
  solver.add_clause({a, b});
  solver.add_clause({-a, b});
  EXPECT_EQ(solver.solve({-b}), SolveStatus::kUnsat);
  // ... and the clause learned doing so is valid without the assumption.
  EXPECT_GT(solver.stats().learned_clauses, 0u);
  EXPECT_EQ(solver.solve(), SolveStatus::kSat);
  EXPECT_TRUE(solver.value(b));
}

TEST(CdclSolver, StatsAccumulate) {
  CdclSolver solver;
  std::vector<std::int32_t> v;
  for (int i = 0; i < 6; ++i) v.push_back(solver.add_variable());
  // A small unsat core buried under free variables forces real conflicts.
  solver.add_clause({v[0], v[1]});
  solver.add_clause({v[0], -v[1]});
  solver.add_clause({-v[0], v[2]});
  solver.add_clause({-v[0], -v[2]});
  EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
  EXPECT_GT(solver.stats().conflicts, 0u);
}

}  // namespace
}  // namespace qsmt::sat

// Routing must never change answers: seeded differential fuzzing of
// router-on vs router-off services over a mixed 216-job workload spanning
// every op family (ISSUE 9 satellite).
//
// Two router configurations are checked against the same router-off run:
//
//  * a pre-warmed router that dispatches every bucket to member 0 — under
//    one worker the full race tries members in index order with
//    per-(member, attempt) seeds, so this routed run (including its
//    fallbacks) replays the race's exact attempt sequence and every field
//    of every result must be byte-identical;
//  * a live-learning router that starts empty and trains on the stream —
//    the member it converges to per bucket is history-dependent, so the
//    contract is verdict identity plus classically verified witnesses
//    (and exact-text identity for unique-output operations), with the
//    router required to have actually routed most of the stream.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "route/features.hpp"
#include "route/router.hpp"
#include "service/service.hpp"
#include "strqubo/constraint.hpp"
#include "strqubo/verify.hpp"
#include "util/rng.hpp"

namespace qsmt {
namespace {

constexpr std::size_t kCasesPerKind = 18;

std::string random_word(Xoshiro256& rng, std::size_t min_len,
                        std::size_t max_len) {
  std::string word(min_len + rng.below(max_len - min_len + 1), 'a');
  for (char& c : word) c = static_cast<char>('a' + rng.below(5));
  return word;
}

/// One seeded case for family `kind` (the differential_fuzz_test generator
/// shapes, one draw per call so families interleave round-robin).
strqubo::Constraint make_case(std::size_t kind, Xoshiro256& rng) {
  switch (kind) {
    case 0:
      return strqubo::Equality{random_word(rng, 2, 6)};
    case 1:
      return strqubo::Concat{random_word(rng, 1, 3), random_word(rng, 1, 3)};
    case 2: {
      const std::string text = random_word(rng, 3, 7);
      const std::size_t len =
          1 + rng.below(std::min<std::size_t>(3, text.size()));
      return strqubo::Includes{text,
                               text.substr(rng.below(text.size() - len + 1),
                                           len)};
    }
    case 3: {
      const std::size_t string_length = 2 + rng.below(5);
      return strqubo::Length{string_length, rng.below(string_length + 1)};
    }
    case 4:
      return strqubo::Replace{random_word(rng, 2, 6),
                              static_cast<char>('a' + rng.below(5)),
                              static_cast<char>('a' + rng.below(5))};
    case 5:
      return strqubo::Reverse{random_word(rng, 2, 6)};
    case 6:
      return strqubo::ReplaceAll{random_word(rng, 2, 6),
                                 static_cast<char>('a' + rng.below(5)),
                                 static_cast<char>('a' + rng.below(5))};
    case 7: {
      const std::size_t length = 3 + rng.below(3);
      return strqubo::SubstringMatch{length, random_word(rng, 1, 2)};
    }
    case 8: {
      const std::size_t length = 3 + rng.below(2);
      const std::string substring = random_word(rng, 1, 2);
      return strqubo::IndexOf{length, substring,
                              rng.below(length - substring.size() + 1)};
    }
    case 9: {
      const std::size_t length = 2 + rng.below(4);
      return strqubo::CharAt{length, rng.below(length),
                             static_cast<char>('a' + rng.below(5))};
    }
    case 10:
      return strqubo::Palindrome{1 + rng.below(5)};
    default: {
      // Patterns the default class encoding solves exactly (see
      // differential_fuzz_test.cpp's pool note).
      static const std::vector<std::pair<std::string, std::size_t>> kPool = {
          {"ab", 2},    {"abc", 3},   {"a+b", 2},    {"a+b", 3},
          {"ab+", 3},   {"a+", 3},    {"a+b+", 3},   {"[ac]b", 2},
          {"a[bc]", 2}, {"[ac]b+", 3}};
      const auto& [pattern, length] = kPool[rng.below(kPool.size())];
      return strqubo::RegexMatch{pattern, length};
    }
  }
}

/// The mixed workload: kCasesPerKind draws from each of the 12 families,
/// round-robin interleaved so every bucket accrues observations gradually
/// (the shape a live router actually trains on).
std::vector<strqubo::Constraint> mixed_workload(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<strqubo::Constraint> cases;
  cases.reserve(12 * kCasesPerKind);
  for (std::size_t round = 0; round < kCasesPerKind; ++round) {
    for (std::size_t kind = 0; kind < 12; ++kind) {
      cases.push_back(make_case(kind, rng));
    }
  }
  return cases;
}

/// Ops whose satisfying string (or Includes position) is unique, so any
/// winning member must produce it verbatim.
bool unique_output(const strqubo::Constraint& constraint) {
  return std::holds_alternative<strqubo::Equality>(constraint) ||
         std::holds_alternative<strqubo::Concat>(constraint) ||
         std::holds_alternative<strqubo::Length>(constraint) ||
         std::holds_alternative<strqubo::Replace>(constraint) ||
         std::holds_alternative<strqubo::ReplaceAll>(constraint) ||
         std::holds_alternative<strqubo::Reverse>(constraint);
}

void verify_witness(const strqubo::Constraint& constraint,
                    const service::JobResult& result) {
  if (const auto* includes = std::get_if<strqubo::Includes>(&constraint)) {
    EXPECT_TRUE(strqubo::verify_position(*includes, result.position));
    return;
  }
  ASSERT_TRUE(result.text.has_value());
  EXPECT_TRUE(strqubo::verify_string(constraint, *result.text));
}

TEST(RouterFuzz, WarmedRouterByteIdenticalToRace) {
  const std::vector<strqubo::Constraint> cases = mixed_workload(0xB00);
  ASSERT_GE(cases.size(), 200u);

  service::ServiceOptions base;
  base.num_workers = 1;
  service::SolveService race_service(base);

  // Every bucket pre-trained to member 0 — the member a one-worker race
  // tries first — with exploration off.
  route::RouterOptions router_options;
  router_options.min_observations = 1;
  router_options.min_win_rate = 0.5;
  router_options.explore_period = 0;
  auto router = std::make_shared<route::Router>(
      race_service.portfolio_names(), router_options);
  for (const strqubo::Constraint& c : cases) {
    const route::JobFeatures features = route::extract_features(c);
    router->decide(features);
    router->record_win(features.bucket_key(), 0, /*was_race=*/true);
  }

  service::ServiceOptions routed_options;
  routed_options.num_workers = 1;
  routed_options.router = router;
  service::SolveService routed_service(routed_options);

  service::JobOptions job;
  job.seed = 0xF077;
  const std::vector<service::JobResult> raced =
      race_service.solve_constraints(cases, job);
  const std::vector<service::JobResult> routed =
      routed_service.solve_constraints(cases, job);
  ASSERT_EQ(raced.size(), routed.size());

  std::size_t fallbacks = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i) + ": " +
                 strqubo::describe(cases[i]));
    EXPECT_EQ(routed[i].status, raced[i].status);
    EXPECT_EQ(routed[i].text, raced[i].text);
    EXPECT_EQ(routed[i].position, raced[i].position);
    EXPECT_EQ(routed[i].winner, raced[i].winner);
    ASSERT_EQ(routed[i].status, smtlib::CheckSatStatus::kSat);
    verify_witness(cases[i], routed[i]);
    if (routed[i].route == "routed+fallback") ++fallbacks;
  }
  // Every job consulted the router and was dispatched, not raced.
  EXPECT_EQ(routed_service.stats().jobs_routed, cases.size());
  EXPECT_EQ(routed_service.stats().route_fallbacks, fallbacks);
}

TEST(RouterFuzz, LiveLearningRouterKeepsVerdictsAndWitnesses) {
  const std::vector<strqubo::Constraint> cases = mixed_workload(0xB00);
  ASSERT_GE(cases.size(), 200u);

  service::ServiceOptions base;
  base.num_workers = 1;
  service::SolveService race_service(base);

  route::RouterOptions router_options;
  router_options.min_observations = 2;  // One full 2-member race suffices.
  router_options.min_win_rate = 0.55;
  router_options.explore_period = 16;
  auto router = std::make_shared<route::Router>(
      race_service.portfolio_names(), router_options);

  service::ServiceOptions routed_options;
  routed_options.num_workers = 1;
  routed_options.router = router;
  service::SolveService routed_service(routed_options);

  service::JobOptions batch;
  batch.seed = 0xF077;
  const std::vector<service::JobResult> raced =
      race_service.solve_constraints(cases, batch);

  // Live learning needs sequential submission: decide_route runs at
  // enqueue, so a whole batch submitted up front would be decided against
  // an untrained table. Seeds mirror solve_constraints (mix_seed by index)
  // so each job is the exact counterpart of its raced twin.
  std::vector<service::JobResult> routed;
  routed.reserve(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    service::JobOptions job;
    job.seed = mix_seed(batch.seed, i);
    job.tag = i;
    routed.push_back(routed_service.submit(cases[i], job).get());
  }
  ASSERT_EQ(raced.size(), routed.size());

  for (std::size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i) + ": " +
                 strqubo::describe(cases[i]));
    // Verdict identity: these generators only emit satisfiable
    // constraints and the budgets solve them at 100% (the same contract
    // differential_fuzz_test.cpp holds the race to).
    ASSERT_EQ(raced[i].status, smtlib::CheckSatStatus::kSat);
    EXPECT_EQ(routed[i].status, raced[i].status);
    // Whatever member the router converged to, its witness must verify
    // classically — and unique-output ops leave it no freedom at all.
    verify_witness(cases[i], routed[i]);
    if (unique_output(cases[i])) {
      EXPECT_EQ(routed[i].text, raced[i].text);
    }
    if (std::holds_alternative<strqubo::Includes>(cases[i])) {
      EXPECT_EQ(routed[i].position, raced[i].position);
    }
  }

  // The differential is not vacuous: after warmup the router routed the
  // bulk of the stream single-member.
  const service::SolveService::Stats stats = routed_service.stats();
  EXPECT_GT(stats.jobs_routed, cases.size() / 2);
  const route::RouterStats router_stats = router->stats();
  EXPECT_EQ(router_stats.decisions, cases.size());
  EXPECT_GT(router_stats.buckets, 10u);
}

}  // namespace
}  // namespace qsmt

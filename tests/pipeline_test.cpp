#include <gtest/gtest.h>

#include "anneal/simulated_annealer.hpp"
#include "strqubo/pipeline.hpp"

namespace qsmt::strqubo {
namespace {

anneal::SimulatedAnnealer fast_annealer(std::uint64_t seed) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 48;
  p.num_sweeps = 192;
  p.seed = seed;
  return anneal::SimulatedAnnealer(p);
}

TEST(Materialize, TransformsBecomeConstraints) {
  EXPECT_TRUE(std::holds_alternative<Reverse>(
      materialize(ThenReverse{}, "abc")));
  EXPECT_EQ(std::get<Reverse>(materialize(ThenReverse{}, "abc")).input, "abc");

  const auto replace_all = materialize(ThenReplaceAll{'a', 'b'}, "aaa");
  EXPECT_EQ(std::get<ReplaceAll>(replace_all).input, "aaa");
  EXPECT_EQ(std::get<ReplaceAll>(replace_all).from, 'a');

  const auto replace = materialize(ThenReplace{'a', 'b'}, "aaa");
  EXPECT_TRUE(std::holds_alternative<Replace>(replace));

  const auto concat = materialize(ThenConcat{"xyz"}, "ab");
  EXPECT_EQ(std::get<Concat>(concat).lhs, "ab");
  EXPECT_EQ(std::get<Concat>(concat).rhs, "xyz");
}

TEST(Pipeline, Table1ReverseThenReplace) {
  // Table 1 row 1: "Reverse 'hello' and replace 'e' with 'a'" -> "ollah".
  const auto annealer = fast_annealer(1);
  const StringConstraintSolver solver(annealer);
  Pipeline pipeline{Reverse{"hello"}};
  pipeline.then(ThenReplaceAll{'e', 'a'});
  const auto result = pipeline.run(solver);
  EXPECT_EQ(result.final_value, "ollah");
  EXPECT_TRUE(result.all_satisfied);
  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_EQ(result.stages[0].result.text, "olleh");
}

TEST(Pipeline, Table1ConcatThenReplaceAll) {
  // Table 1 row 4: concatenate 'hello' and ' world', replace all 'l' with
  // 'x' -> "hexxo worxd".
  const auto annealer = fast_annealer(2);
  const StringConstraintSolver solver(annealer);
  Pipeline pipeline{Concat{"hello", " world"}};
  pipeline.then(ThenReplaceAll{'l', 'x'});
  const auto result = pipeline.run(solver);
  EXPECT_EQ(result.final_value, "hexxo worxd");
  EXPECT_TRUE(result.all_satisfied);
}

TEST(Pipeline, ChainsManyTransforms) {
  const auto annealer = fast_annealer(3);
  const StringConstraintSolver solver(annealer);
  Pipeline pipeline{Equality{"ab"}};
  pipeline.then(ThenConcat{"cd"})
      .then(ThenReverse{})
      .then(ThenReplace{'d', 'x'});
  const auto result = pipeline.run(solver);
  // ab -> abcd -> dcba -> xcba.
  EXPECT_EQ(result.final_value, "xcba");
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.stages.size(), 4u);
  EXPECT_EQ(pipeline.num_stages(), 4u);
}

TEST(Pipeline, StartingFromGeneratedPalindrome) {
  const auto annealer = fast_annealer(4);
  const StringConstraintSolver solver(annealer);
  Pipeline pipeline{Palindrome{4}};
  pipeline.then(ThenReverse{});
  const auto result = pipeline.run(solver);
  EXPECT_TRUE(result.all_satisfied);
  // Reversing a palindrome returns it unchanged.
  EXPECT_EQ(result.final_value, *result.stages[0].result.text);
}

TEST(Pipeline, RejectsIncludesAsFirstStage) {
  EXPECT_THROW((Pipeline{Includes{"abc", "b"}}), std::invalid_argument);
}

TEST(Pipeline, RecordsPerStageStatistics) {
  const auto annealer = fast_annealer(5);
  const StringConstraintSolver solver(annealer);
  Pipeline pipeline{Equality{"hi"}};
  pipeline.then(ThenReverse{});
  const auto result = pipeline.run(solver);
  for (const auto& stage : result.stages) {
    EXPECT_GT(stage.result.num_variables, 0u);
    EXPECT_TRUE(stage.result.satisfied);
  }
  EXPECT_EQ(constraint_name(result.stages[1].constraint), "reverse");
}

}  // namespace
}  // namespace qsmt::strqubo

// Server/driver parity over the golden corpus (ctest label: conformance):
// every .smt2 script under tests/corpus/ is replayed through a live
// `qsmt-server --exact --stdio` subprocess and the reply transcript must
// equal the in-process SmtDriver+ExactSolver transcript byte for byte —
// verdicts, models, get-value frames, echoes, everything. Scripts pinned
// as expect-throw (malformed input) must instead draw an (error ...)
// reply carrying the pinned substring; the unterminated-command script
// exercises the end-of-stream error path.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "anneal/exact.hpp"
#include "smtlib/driver.hpp"

namespace qsmt::server {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(QSMT_CORPUS_DIR)) {
    if (entry.path().extension() == ".smt2") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// The `; expect-throw: <substr>` pin, if the script carries one.
struct ThrowPin {
  bool expected = false;
  std::string substring;
};

ThrowPin parse_throw_pin(const std::string& script) {
  ThrowPin pin;
  std::istringstream lines(script);
  std::string line;
  const std::string prefix = "; expect-throw:";
  while (std::getline(lines, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    pin.expected = true;
    pin.substring = line.substr(prefix.size());
    if (!pin.substring.empty() && pin.substring.front() == ' ') {
      pin.substring.erase(0, 1);
    }
  }
  return pin;
}

/// Pipes `script` into a fresh `qsmt-server --exact --stdio` subprocess and
/// returns everything the daemon wrote to stdout up to end of stream.
std::string run_server_stdio(const std::string& script) {
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    throw std::runtime_error("pipe() failed");
  }
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("fork() failed");
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl(QSMT_SERVER_BIN, "qsmt-server", "--exact", "--stdio",
          static_cast<char*>(nullptr));
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);

  std::size_t written = 0;
  while (written < script.size()) {
    const ssize_t n = write(to_child[1], script.data() + written,
                            script.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // Child exited early; its transcript tells the story.
    }
    written += static_cast<std::size_t>(n);
  }
  close(to_child[1]);

  std::string output;
  char buffer[4096];
  for (;;) {
    const ssize_t n = read(from_child[0], buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    output.append(buffer, static_cast<std::size_t>(n));
  }
  close(from_child[0]);

  int status = 0;
  waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status)) << "server did not exit cleanly";
  if (WIFEXITED(status)) {
    EXPECT_NE(WEXITSTATUS(status), 127) << "could not exec " QSMT_SERVER_BIN;
  }
  return output;
}

class ServerCorpusTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ServerCorpusTest, MatchesInProcessDriverTranscript) {
  const fs::path path = corpus_files().at(GetParam());
  const std::string script = read_file(path);
  const ThrowPin pin = parse_throw_pin(script);
  const std::string served = run_server_stdio(script);

  if (pin.expected) {
    // The in-process driver throws; the daemon answers (error ...) and
    // keeps the session alive. Parity here means the pinned failure
    // substring reaches the client.
    EXPECT_NE(served.find("(error"), std::string::npos)
        << path << ": no error reply in\n"
        << served;
    EXPECT_NE(served.find(pin.substring), std::string::npos)
        << path << ": error reply lacks '" << pin.substring << "'\n"
        << served;
    return;
  }

  const anneal::ExactSolver exact;
  smtlib::SmtDriver driver(exact);
  const std::string expected = driver.run_script(script);
  EXPECT_EQ(served, expected) << path;
}

std::string corpus_test_name(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string name = corpus_files().at(info.param).stem().string();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Golden, ServerCorpusTest,
                         ::testing::Range<std::size_t>(0,
                                                       corpus_files().size()),
                         corpus_test_name);

}  // namespace
}  // namespace qsmt::server

#include <gtest/gtest.h>

#include <vector>

#include "qubo/qubo_model.hpp"

namespace qsmt::qubo {
namespace {

std::vector<std::uint8_t> bits(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(PackPair, OrdersBytes) {
  EXPECT_EQ(pack_pair(0, 1), 1u);
  EXPECT_EQ(pack_pair(1, 0), (1ULL << 32));
  EXPECT_EQ(pack_pair(2, 3), (2ULL << 32) | 3);
}

TEST(QuboModel, StartsEmpty) {
  QuboModel model;
  EXPECT_EQ(model.num_variables(), 0u);
  EXPECT_EQ(model.num_interactions(), 0u);
  EXPECT_EQ(model.offset(), 0.0);
}

TEST(QuboModel, SizedConstructorAllocatesZeros) {
  QuboModel model(5);
  EXPECT_EQ(model.num_variables(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(model.linear(i), 0.0);
}

TEST(QuboModel, AddLinearAccumulates) {
  QuboModel model(2);
  model.add_linear(0, 1.5);
  model.add_linear(0, -0.5);
  EXPECT_DOUBLE_EQ(model.linear(0), 1.0);
}

TEST(QuboModel, SetLinearOverwrites) {
  QuboModel model(1);
  model.add_linear(0, 3.0);
  model.set_linear(0, -2.0);
  EXPECT_DOUBLE_EQ(model.linear(0), -2.0);
}

TEST(QuboModel, AddLinearGrowsModel) {
  QuboModel model;
  model.add_linear(7, 1.0);
  EXPECT_EQ(model.num_variables(), 8u);
}

TEST(QuboModel, LinearOutOfRangeThrows) {
  QuboModel model(3);
  EXPECT_THROW(model.linear(3), std::out_of_range);
}

TEST(QuboModel, QuadraticIsSymmetricInArguments) {
  QuboModel model(4);
  model.add_quadratic(2, 1, 5.0);
  EXPECT_DOUBLE_EQ(model.quadratic(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(model.quadratic(2, 1), 5.0);
}

TEST(QuboModel, QuadraticAccumulates) {
  QuboModel model(3);
  model.add_quadratic(0, 1, 2.0);
  model.add_quadratic(1, 0, 3.0);
  EXPECT_DOUBLE_EQ(model.quadratic(0, 1), 5.0);
  EXPECT_EQ(model.num_interactions(), 1u);
}

TEST(QuboModel, SelfQuadraticRoutesToLinear) {
  // x^2 == x for binary variables.
  QuboModel model(2);
  model.add_quadratic(1, 1, 4.0);
  EXPECT_DOUBLE_EQ(model.linear(1), 4.0);
  EXPECT_EQ(model.num_interactions(), 0u);
}

TEST(QuboModel, SetQuadraticOverwrites) {
  QuboModel model(3);
  model.add_quadratic(0, 2, 1.0);
  model.set_quadratic(2, 0, -7.0);
  EXPECT_DOUBLE_EQ(model.quadratic(0, 2), -7.0);
}

TEST(QuboModel, QuadraticOutOfRangeThrows) {
  QuboModel model(2);
  EXPECT_THROW(model.quadratic(0, 5), std::out_of_range);
}

TEST(QuboModel, UntouchedQuadraticIsZero) {
  QuboModel model(3);
  EXPECT_DOUBLE_EQ(model.quadratic(0, 1), 0.0);
}

TEST(QuboModel, EnergyEvaluatesAllTerms) {
  QuboModel model(3);
  model.set_offset(2.0);
  model.add_linear(0, -1.0);
  model.add_linear(1, 0.5);
  model.add_quadratic(0, 1, 3.0);
  model.add_quadratic(1, 2, -4.0);

  EXPECT_DOUBLE_EQ(model.energy(bits({0, 0, 0})), 2.0);
  EXPECT_DOUBLE_EQ(model.energy(bits({1, 0, 0})), 1.0);
  EXPECT_DOUBLE_EQ(model.energy(bits({1, 1, 0})), 4.5);
  EXPECT_DOUBLE_EQ(model.energy(bits({1, 1, 1})), 0.5);
}

TEST(QuboModel, EnergySizeMismatchThrows) {
  QuboModel model(3);
  const auto b = bits({1, 0});
  EXPECT_THROW(model.energy(b), std::invalid_argument);
}

TEST(QuboModel, ScaleMultipliesEverything) {
  QuboModel model(2);
  model.set_offset(1.0);
  model.add_linear(0, 2.0);
  model.add_quadratic(0, 1, -3.0);
  model.scale(2.0);
  EXPECT_DOUBLE_EQ(model.offset(), 2.0);
  EXPECT_DOUBLE_EQ(model.linear(0), 4.0);
  EXPECT_DOUBLE_EQ(model.quadratic(0, 1), -6.0);
}

TEST(QuboModel, AddModelMergesTerms) {
  QuboModel a(2);
  a.add_linear(0, 1.0);
  a.add_quadratic(0, 1, 2.0);
  a.set_offset(0.5);

  QuboModel b(2);
  b.add_linear(0, -3.0);
  b.add_quadratic(0, 1, 1.0);
  b.set_offset(1.5);

  a.add_model(b);
  EXPECT_DOUBLE_EQ(a.linear(0), -2.0);
  EXPECT_DOUBLE_EQ(a.quadratic(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.offset(), 2.0);
}

TEST(QuboModel, AddModelWithOffsetShiftsVariables) {
  QuboModel a(1);
  a.add_linear(0, 1.0);

  QuboModel b(2);
  b.add_linear(0, 5.0);
  b.add_quadratic(0, 1, 7.0);

  a.add_model(b, 3);
  EXPECT_EQ(a.num_variables(), 5u);
  EXPECT_DOUBLE_EQ(a.linear(3), 5.0);
  EXPECT_DOUBLE_EQ(a.quadratic(3, 4), 7.0);
  EXPECT_DOUBLE_EQ(a.linear(0), 1.0);
}

TEST(QuboModel, AddModelEnergyIsSumOfEnergies) {
  QuboModel a(3);
  a.add_linear(1, -2.0);
  a.add_quadratic(0, 2, 1.5);
  QuboModel b(3);
  b.add_linear(0, 4.0);
  b.add_quadratic(1, 2, -1.0);
  b.set_offset(0.25);

  QuboModel sum = a;
  sum.add_model(b);
  for (int mask = 0; mask < 8; ++mask) {
    const auto x = bits({mask & 1, (mask >> 1) & 1, (mask >> 2) & 1});
    EXPECT_DOUBLE_EQ(sum.energy(x), a.energy(x) + b.energy(x));
  }
}

TEST(QuboModel, MaxAbsCoefficient) {
  QuboModel model(3);
  EXPECT_DOUBLE_EQ(model.max_abs_coefficient(), 0.0);
  model.add_linear(0, -2.5);
  model.add_quadratic(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(model.max_abs_coefficient(), 2.5);
}

TEST(QuboModel, MinAbsNonzeroCoefficient) {
  QuboModel model(3);
  EXPECT_DOUBLE_EQ(model.min_abs_nonzero_coefficient(), 0.0);
  model.add_linear(0, -2.5);
  model.add_quadratic(1, 2, 0.5);
  EXPECT_DOUBLE_EQ(model.min_abs_nonzero_coefficient(), 0.5);
}

TEST(QuboModel, ToDensePlacesUpperTriangular) {
  QuboModel model(3);
  model.add_linear(0, 1.0);
  model.add_quadratic(0, 2, -2.0);
  const auto dense = model.to_dense();
  ASSERT_EQ(dense.size(), 9u);
  EXPECT_DOUBLE_EQ(dense[0 * 3 + 0], 1.0);
  EXPECT_DOUBLE_EQ(dense[0 * 3 + 2], -2.0);
  EXPECT_DOUBLE_EQ(dense[2 * 3 + 0], 0.0);  // Lower triangle untouched.
}

TEST(QuboModel, PruneZerosDropsExactZeroEntries) {
  QuboModel model(3);
  model.add_quadratic(0, 1, 1.0);
  model.add_quadratic(0, 1, -1.0);
  model.add_quadratic(1, 2, 2.0);
  EXPECT_EQ(model.num_interactions(), 2u);
  model.prune_zeros();
  EXPECT_EQ(model.num_interactions(), 1u);
  EXPECT_DOUBLE_EQ(model.quadratic(1, 2), 2.0);
}

TEST(QuboModel, EqualityComparesSemantically) {
  QuboModel a(2);
  a.add_quadratic(0, 1, 1.0);
  a.add_quadratic(0, 1, -1.0);  // Stored zero entry.
  QuboModel b(2);
  EXPECT_TRUE(a == b);
  b.add_linear(0, 0.1);
  EXPECT_FALSE(a == b);
}

TEST(QuboModel, EnsureVariablesNeverShrinks) {
  QuboModel model(4);
  model.ensure_variables(2);
  EXPECT_EQ(model.num_variables(), 4u);
  model.ensure_variables(6);
  EXPECT_EQ(model.num_variables(), 6u);
}

}  // namespace
}  // namespace qsmt::qubo

#include <gtest/gtest.h>

#include "anneal/simulated_annealer.hpp"
#include "sat/dpllt.hpp"
#include "smtlib/incremental.hpp"
#include "smtlib/parser.hpp"

namespace qsmt::sat {
namespace {

using smtlib::CheckSatStatus;

anneal::SimulatedAnnealer fast_annealer(std::uint64_t seed) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 48;
  p.num_sweeps = 192;
  p.seed = seed;
  return anneal::SimulatedAnnealer(p);
}

struct Query {
  std::vector<smtlib::TermPtr> assertions;
  std::map<std::string, smtlib::Sort> declared;
};

Query parse_query(const std::string& script) {
  Query query;
  for (const auto& command : smtlib::parse_script(script)) {
    if (const auto* decl = std::get_if<smtlib::DeclareConst>(&command)) {
      query.declared.emplace(decl->name, decl->sort);
    } else if (const auto* assert_cmd =
                   std::get_if<smtlib::AssertCmd>(&command)) {
      query.assertions.push_back(assert_cmd->term);
    }
  }
  return query;
}

DpllTResult run(const std::string& script, std::uint64_t seed = 1) {
  const auto annealer = fast_annealer(seed);
  const DpllTSolver solver(annealer);
  const Query query = parse_query(script);
  return solver.solve(query.assertions, query.declared);
}

TEST(DpllT, PlainConjunctionStillWorks) {
  const auto result = run(R"(
    (declare-const x String)
    (assert (= x "hello"))
  )");
  EXPECT_EQ(result.status, CheckSatStatus::kSat);
  EXPECT_EQ(result.model_value, "hello");
  EXPECT_EQ(result.theory_rounds, 1u);
}

TEST(DpllT, DisjunctionPicksABranch) {
  const auto result = run(R"(
    (declare-const x String)
    (assert (or (= x "cat") (= x "dog")))
  )");
  EXPECT_EQ(result.status, CheckSatStatus::kSat);
  EXPECT_TRUE(result.model_value == "cat" || result.model_value == "dog");
}

TEST(DpllT, NegationForcesTheOtherBranch) {
  const auto result = run(R"(
    (declare-const y String)
    (assert (or (= y "cat") (= y "dog")))
    (assert (not (= y "cat")))
  )");
  EXPECT_EQ(result.status, CheckSatStatus::kSat);
  EXPECT_EQ(result.model_value, "dog");
}

TEST(DpllT, LengthDisjunctionSelectsConsistentLength) {
  const auto result = run(R"(
    (declare-const x String)
    (assert (or (= (str.len x) 4) (= (str.len x) 6)))
    (assert (str.contains x "hi"))
  )");
  EXPECT_EQ(result.status, CheckSatStatus::kSat);
  EXPECT_TRUE(result.model_value.size() == 4 || result.model_value.size() == 6);
  EXPECT_NE(result.model_value.find("hi"), std::string::npos);
}

TEST(DpllT, GroundContradictionIsUnsat) {
  const auto result = run(R"(
    (assert (and (= "a" "a") (= "b" "c")))
  )");
  EXPECT_EQ(result.status, CheckSatStatus::kUnsat);
}

TEST(DpllT, BooleanOnlyUnsat) {
  const auto result = run(R"(
    (declare-const x String)
    (assert (= x "a"))
    (assert (not (= x "a")))
  )");
  // The skeleton itself is a direct contradiction over one atom.
  EXPECT_EQ(result.status, CheckSatStatus::kUnsat);
}

TEST(DpllT, ConflictingEqualityBranchesDegradeToUnknown) {
  // Both branches are theory-conflicting with the fixed equality; since the
  // annealer-based T-solver only blocks heuristically, the final boolean
  // UNSAT cannot be trusted and must come back unknown.
  const auto result = run(R"(
    (declare-const x String)
    (assert (= x "aa"))
    (assert (or (= x "bb") (= x "cc")))
  )");
  EXPECT_EQ(result.status, CheckSatStatus::kUnknown);
}

TEST(DpllT, NestedStructure) {
  const auto result = run(R"(
    (declare-const x String)
    (assert (and (or (= x "aba") (= x "zzz")) (not (= x "zzz"))))
  )");
  EXPECT_EQ(result.status, CheckSatStatus::kSat);
  EXPECT_EQ(result.model_value, "aba");
}

TEST(DpllT, WitnessMustFalsifyNegatedAtoms) {
  // "abab..." contains "ab"; branch picking only the equality must reject
  // models that accidentally satisfy the negated contains atom.
  const auto result = run(R"(
    (declare-const x String)
    (assert (= x "cdcd"))
    (assert (not (str.contains x "ab")))
  )");
  EXPECT_EQ(result.status, CheckSatStatus::kSat);
  EXPECT_EQ(result.model_value, "cdcd");
}

TEST(DpllT, ReportsSatStats) {
  const auto result = run(R"(
    (declare-const x String)
    (assert (or (= x "a") (= x "b")))
    (assert (or (not (= x "a")) (= x "b")))
  )");
  EXPECT_EQ(result.status, CheckSatStatus::kSat);
  EXPECT_GE(result.theory_rounds, 1u);
}

TEST(DpllT, RoundBudgetExhaustionIsUnknown) {
  const auto annealer = fast_annealer(3);
  DpllTSolver::Params params;
  params.max_rounds = 0;
  const DpllTSolver solver(annealer, {}, params);
  const Query query = parse_query(R"(
    (declare-const x String)
    (assert (= x "a"))
  )");
  const auto result = solver.solve(query.assertions, query.declared);
  EXPECT_EQ(result.status, CheckSatStatus::kUnknown);
  EXPECT_FALSE(result.notes.empty());
}

TEST(DpllT, AssumptionsRestrictOnlyTheCurrentSolve) {
  const auto annealer = fast_annealer(7);
  const DpllTSolver solver(annealer);
  const Query query = parse_query(R"(
    (declare-const x String)
    (assert (or (= x "cat") (= x "dog")))
  )");
  const Query assumption = parse_query(R"(
    (declare-const x String)
    (assert (not (= x "cat")))
  )");

  const auto restricted = solver.solve(query.assertions,
                                       assumption.assertions, query.declared,
                                       /*context=*/nullptr);
  EXPECT_EQ(restricted.status, CheckSatStatus::kSat);
  EXPECT_EQ(restricted.model_value, "dog");

  // The same solver without the assumption is free to pick either branch.
  const auto free = solver.solve(query.assertions, query.declared);
  EXPECT_EQ(free.status, CheckSatStatus::kSat);
}

TEST(DpllT, ContradictoryAssumptionIsUnsat) {
  const auto annealer = fast_annealer(8);
  const DpllTSolver solver(annealer);
  const Query query = parse_query(R"(
    (declare-const x String)
    (assert (= x "cat"))
  )");
  const Query assumption = parse_query(R"(
    (declare-const x String)
    (assert (not (= x "cat")))
  )");
  const auto result = solver.solve(query.assertions, assumption.assertions,
                                   query.declared, /*context=*/nullptr);
  EXPECT_EQ(result.status, CheckSatStatus::kUnsat);
}

TEST(DpllT, ExactLemmasRetainAcrossSolvesThroughContext) {
  const auto annealer = fast_annealer(9);
  const DpllTSolver solver(annealer);
  // Every boolean model must pick a second str.len fact that contradicts
  // the asserted one, so each round hits an exact ground conflict and the
  // final verdict is a certified unsat.
  const Query query = parse_query(R"(
    (declare-const x String)
    (assert (= (str.len x) 1))
    (assert (or (= (str.len x) 2) (= (str.len x) 3)))
  )");

  smtlib::SolveContext context;
  const auto first = solver.solve(query.assertions, {}, query.declared,
                                  &context);
  EXPECT_EQ(first.status, CheckSatStatus::kUnsat);
  EXPECT_EQ(first.lemmas_retained, 0u);
  EXPECT_GT(context.clause_memory().size(), 0u);

  // The re-solve starts from the remembered conflicts.
  const auto second = solver.solve(query.assertions, {}, query.declared,
                                   &context);
  EXPECT_EQ(second.status, CheckSatStatus::kUnsat);
  EXPECT_GT(second.lemmas_retained, 0u);
  EXPECT_EQ(context.stats().clauses_retained, second.lemmas_retained);
}

TEST(DpllT, PalindromeDisjunction) {
  const auto result = run(R"(
    (declare-const x String)
    (assert (= (str.len x) 4))
    (assert (or (qsmt.is_palindrome x) (= x "abcd")))
  )");
  EXPECT_EQ(result.status, CheckSatStatus::kSat);
}

}  // namespace
}  // namespace qsmt::sat

// QuboBuilder must be a drop-in replacement for incremental QuboModel
// construction: for any term stream — duplicates, reversed index pairs,
// diagonal terms, zero and cancelling coefficients — build() yields a
// model equal to the one add_linear/add_quadratic would have produced.
// The randomized sizes are chosen to drive all three merge strategies:
// the stable_sort path (m < 64), the dense-accumulator path (small n·n),
// and the counting-sort path (large n, long stream).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "qubo/builder.hpp"
#include "qubo/qubo_model.hpp"
#include "util/rng.hpp"

namespace qsmt::qubo {
namespace {

struct Term {
  std::size_t i;
  std::size_t j;
  double value;
};

std::vector<Term> random_stream(std::size_t n, std::size_t m,
                                Xoshiro256& rng) {
  std::vector<Term> terms;
  terms.reserve(m);
  for (std::size_t t = 0; t < m; ++t) {
    const auto i = rng.below(n);
    const auto j = rng.below(n);
    double value = rng.uniform() * 2.0 - 1.0;
    if (rng.uniform() < 0.05) value = 0.0;  // explicit zero coefficients
    terms.push_back(Term{i, j, value});
  }
  // Make some duplicates cancel exactly, so merged sums hit 0.0.
  for (std::size_t t = 16; t + 1 < terms.size(); t += 97) {
    terms[t + 1] = Term{terms[t].j, terms[t].i, -terms[t].value};
  }
  return terms;
}

QuboModel incremental(std::size_t n, const std::vector<Term>& terms) {
  QuboModel model(n);
  for (const Term& t : terms) {
    if (t.i == t.j) {
      model.add_linear(t.i, t.value);
    } else {
      model.add_quadratic(t.i, t.j, t.value);
    }
  }
  return model;
}

QuboModel built(std::size_t n, const std::vector<Term>& terms) {
  QuboBuilder builder(n);
  for (const Term& t : terms) builder.add_quadratic(t.i, t.j, t.value);
  return builder.build();
}

class BuilderMatchesIncremental
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(BuilderMatchesIncremental, OnRandomStreams) {
  const auto [n, m] = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Xoshiro256 rng(seed, n * 1000003 + m);
    const std::vector<Term> terms = random_stream(n, m, rng);
    EXPECT_EQ(incremental(n, terms), built(n, terms))
        << "n=" << n << " m=" << m << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMergePaths, BuilderMatchesIncremental,
    ::testing::Values(std::pair<std::size_t, std::size_t>{8, 20},   // sort
                      std::pair<std::size_t, std::size_t>{5, 400},  // dense
                      std::pair<std::size_t, std::size_t>{64, 4000},  // dense
                      std::pair<std::size_t, std::size_t>{1200, 5000},
                      // ^ n*n too big for dense, n <= 4m: counting sort
                      std::pair<std::size_t, std::size_t>{3000, 500}));
                      // ^ n > 4m: stable_sort fallback

TEST(QuboBuilder, MergesDuplicatesInInsertionOrder) {
  // Three contributions to (1, 2) in an order whose floating-point sum
  // depends on association; both paths must agree bit-for-bit.
  const double a = 0.1, b = 0.3, c = -0.4;
  QuboBuilder builder(4);
  builder.add_quadratic(2, 1, a);  // reversed pair normalises to (1, 2)
  builder.add_quadratic(1, 2, b);
  builder.add_quadratic(1, 2, c);
  QuboModel expected(4);
  expected.add_quadratic(1, 2, a);
  expected.add_quadratic(1, 2, b);
  expected.add_quadratic(1, 2, c);
  EXPECT_EQ(builder.build(), expected);
}

TEST(QuboBuilder, DiagonalTermsFoldIntoLinear) {
  QuboBuilder builder(3);
  builder.add_quadratic(1, 1, 2.5);  // x^2 = x for binaries
  builder.add_linear(1, -1.0);
  QuboModel expected(3);
  expected.add_linear(1, 2.5);
  expected.add_linear(1, -1.0);
  EXPECT_EQ(builder.build(), expected);
}

TEST(QuboBuilder, ZeroSumPairsAreDropped) {
  QuboBuilder builder(4);
  builder.add_quadratic(0, 3, 1.25);
  builder.add_quadratic(3, 0, -1.25);
  const QuboModel model = builder.build();
  EXPECT_EQ(model.quadratic_terms().size(), 0u);
  EXPECT_EQ(model, QuboModel(4));
}

TEST(QuboBuilder, OffsetAndGrowthCarryThrough) {
  QuboBuilder builder;
  builder.set_offset(1.5);
  builder.add_offset(0.25);
  builder.add_quadratic(9, 2, -0.5);  // grows to 10 variables
  const QuboModel model = builder.build();
  EXPECT_EQ(model.num_variables(), 10u);
  EXPECT_DOUBLE_EQ(model.offset(), 1.75);
}

TEST(QuboBuilder, RejectsIndicesBeyondPackedKeyRange) {
  // Packed keys hold 32 bits per index; larger indices must throw before
  // any state changes rather than silently truncate into another cell.
  QuboBuilder builder(4);
  EXPECT_THROW(builder.add_quadratic(0, std::size_t{1} << 32, 1.0),
               std::invalid_argument);
  EXPECT_THROW(builder.add_quadratic(std::size_t{1} << 33, 1, 1.0),
               std::invalid_argument);
  EXPECT_EQ(builder.num_pending_terms(), 0u);
  EXPECT_EQ(builder.num_variables(), 4u);
}

TEST(QuboBuilder, ReusableAfterBuild) {
  QuboBuilder builder(4);
  builder.add_quadratic(0, 1, 1.0);
  const QuboModel first = builder.build();
  builder.add_quadratic(0, 1, 1.0);
  const QuboModel second = builder.build();
  QuboModel expected(4);
  expected.add_quadratic(0, 1, 2.0);
  EXPECT_EQ(second, expected);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace qsmt::qubo

#include <gtest/gtest.h>

#include "regex/nfa.hpp"
#include "regex/pattern.hpp"

namespace qsmt::regex {
namespace {

TEST(ParsePattern, Literals) {
  const Pattern p = parse_pattern("abc");
  ASSERT_EQ(p.elements.size(), 3u);
  EXPECT_EQ(p.elements[0].chars, "a");
  EXPECT_FALSE(p.elements[0].is_class);
  EXPECT_FALSE(p.elements[0].plus());
  EXPECT_EQ(p.min_length(), 3u);
  EXPECT_FALSE(p.has_plus());
}

TEST(ParsePattern, CharacterClass) {
  const Pattern p = parse_pattern("[bc]");
  ASSERT_EQ(p.elements.size(), 1u);
  EXPECT_TRUE(p.elements[0].is_class);
  EXPECT_EQ(p.elements[0].chars, "bc");
}

TEST(ParsePattern, ClassDeduplicatesCharacters) {
  const Pattern p = parse_pattern("[aba]");
  EXPECT_EQ(p.elements[0].chars, "ab");
}

TEST(ParsePattern, PaperExample) {
  // §4.11: a[tyz]+b.
  const Pattern p = parse_pattern("a[tyz]+b");
  ASSERT_EQ(p.elements.size(), 3u);
  EXPECT_EQ(p.elements[0].chars, "a");
  EXPECT_TRUE(p.elements[1].is_class);
  EXPECT_EQ(p.elements[1].chars, "tyz");
  EXPECT_TRUE(p.elements[1].plus());
  EXPECT_EQ(p.elements[2].chars, "b");
  EXPECT_TRUE(p.has_plus());
}

TEST(ParsePattern, PlusOnLiteral) {
  const Pattern p = parse_pattern("ab+");
  EXPECT_FALSE(p.elements[0].plus());
  EXPECT_TRUE(p.elements[1].plus());
}

TEST(ParsePattern, Escapes) {
  const Pattern p = parse_pattern(R"(\+\[\]a)");
  ASSERT_EQ(p.elements.size(), 4u);
  EXPECT_EQ(p.elements[0].chars, "+");
  EXPECT_EQ(p.elements[1].chars, "[");
  EXPECT_EQ(p.elements[2].chars, "]");
  EXPECT_EQ(p.elements[3].chars, "a");
}

TEST(ParsePattern, EscapeInsideClass) {
  const Pattern p = parse_pattern(R"([a\]b])");
  EXPECT_EQ(p.elements[0].chars, "a]b");
}

TEST(ParsePattern, Errors) {
  EXPECT_THROW(parse_pattern(""), std::invalid_argument);
  EXPECT_THROW(parse_pattern("+a"), std::invalid_argument);
  EXPECT_THROW(parse_pattern("a++"), std::invalid_argument);
  EXPECT_THROW(parse_pattern("a*?"), std::invalid_argument);
  EXPECT_THROW(parse_pattern("*x"), std::invalid_argument);
  EXPECT_THROW(parse_pattern("[ab"), std::invalid_argument);
  EXPECT_THROW(parse_pattern("[]"), std::invalid_argument);
  EXPECT_THROW(parse_pattern("ab]"), std::invalid_argument);
  EXPECT_THROW(parse_pattern("a\\"), std::invalid_argument);
}

TEST(ParsePattern, StarAndOptionalQuantifiers) {
  const Pattern p = parse_pattern("a*b?c");
  ASSERT_EQ(p.elements.size(), 3u);
  EXPECT_EQ(p.elements[0].quantifier, Quantifier::kStar);
  EXPECT_EQ(p.elements[1].quantifier, Quantifier::kOpt);
  EXPECT_EQ(p.elements[2].quantifier, Quantifier::kOne);
  EXPECT_EQ(p.min_length(), 1u);  // Only 'c' is mandatory.
  EXPECT_TRUE(p.has_plus());      // '*' counts as unbounded.
}

TEST(ParsePattern, EscapedQuantifiersAreLiterals) {
  const Pattern p = parse_pattern(R"(\*\?)");
  ASSERT_EQ(p.elements.size(), 2u);
  EXPECT_EQ(p.elements[0].chars, "*");
  EXPECT_EQ(p.elements[1].chars, "?");
  EXPECT_EQ(p.elements[0].quantifier, Quantifier::kOne);
}

TEST(ExpandToLength, ExactFitWithoutPlus) {
  const auto tokens = expand_to_length(parse_pattern("a[bc]d"), 3);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].chars, "a");
  EXPECT_EQ(tokens[1].chars, "bc");
  EXPECT_TRUE(tokens[1].is_class);
  EXPECT_EQ(tokens[2].chars, "d");
}

TEST(ExpandToLength, PlusAbsorbsExtras) {
  // Paper: "if we have the regex a[bc]+, and we are generating a string of
  // length 3 ... a literal, a character class, and another character class".
  const auto tokens = expand_to_length(parse_pattern("a[bc]+"), 3);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].chars, "a");
  EXPECT_EQ(tokens[1].chars, "bc");
  EXPECT_EQ(tokens[2].chars, "bc");
}

TEST(ExpandToLength, FirstPlusTakesExtras) {
  const auto tokens = expand_to_length(parse_pattern("a+b+"), 5);
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].chars, "a");
  EXPECT_EQ(tokens[1].chars, "a");
  EXPECT_EQ(tokens[2].chars, "a");
  EXPECT_EQ(tokens[3].chars, "a");
  EXPECT_EQ(tokens[4].chars, "b");
}

TEST(ExpandToLength, Errors) {
  EXPECT_THROW(expand_to_length(parse_pattern("abc"), 2),
               std::invalid_argument);
  EXPECT_THROW(expand_to_length(parse_pattern("abc"), 4),
               std::invalid_argument);
  EXPECT_NO_THROW(expand_to_length(parse_pattern("abc"), 3));
  // Optionals bound the maximum reachable length.
  EXPECT_THROW(expand_to_length(parse_pattern("a?b?"), 3),
               std::invalid_argument);
}

TEST(ExpandToLength, StarCanVanish) {
  const auto tokens = expand_to_length(parse_pattern("a*bc"), 2);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].chars, "b");
  EXPECT_EQ(tokens[1].chars, "c");
}

TEST(ExpandToLength, StarAbsorbsExtras) {
  const auto tokens = expand_to_length(parse_pattern("a*b"), 4);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].chars, "a");
  EXPECT_EQ(tokens[2].chars, "a");
  EXPECT_EQ(tokens[3].chars, "b");
}

TEST(ExpandToLength, OptionalsAbsorbOneEach) {
  const auto tokens = expand_to_length(parse_pattern("a?b?c"), 2);
  ASSERT_EQ(tokens.size(), 2u);
  // First optional takes the single extra slot.
  EXPECT_EQ(tokens[0].chars, "a");
  EXPECT_EQ(tokens[1].chars, "c");
}

// --- NFA ---------------------------------------------------------------------

struct MatchCase {
  const char* pattern;
  const char* input;
  bool expected;
};

class NfaMatch : public ::testing::TestWithParam<MatchCase> {};

TEST_P(NfaMatch, FullMatch) {
  const auto& c = GetParam();
  EXPECT_EQ(full_match(c.pattern, c.input), c.expected)
      << c.pattern << " vs " << c.input;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, NfaMatch,
    ::testing::Values(
        MatchCase{"abc", "abc", true}, MatchCase{"abc", "abd", false},
        MatchCase{"abc", "ab", false}, MatchCase{"abc", "abcc", false},
        MatchCase{"[bc]", "b", true}, MatchCase{"[bc]", "c", true},
        MatchCase{"[bc]", "d", false},
        // Paper §4.11 examples for a[tyz]+b.
        MatchCase{"a[tyz]+b", "atytyzb", true},
        MatchCase{"a[tyz]+b", "azb", true},
        MatchCase{"a[tyz]+b", "atyzb", true},
        MatchCase{"a[tyz]+b", "ab", false},
        MatchCase{"a[tyz]+b", "aqb", false},
        MatchCase{"a+", "aaaa", true}, MatchCase{"a+", "", false},
        MatchCase{"a+", "ab", false},
        MatchCase{"a[bc]+", "abcbb", true},  // Table 1 output.
        MatchCase{"a[bc]+", "a", false},
        // Star / optional extensions.
        MatchCase{"a*b", "b", true}, MatchCase{"a*b", "aaab", true},
        MatchCase{"a*b", "aaa", false}, MatchCase{"a?b", "b", true},
        MatchCase{"a?b", "ab", true}, MatchCase{"a?b", "aab", false},
        MatchCase{"[xy]*z?", "", true}, MatchCase{"[xy]*z?", "xyxz", true},
        MatchCase{"[xy]*z?", "xzz", false}));

TEST(Nfa, ShortestAcceptedLength) {
  EXPECT_EQ(Nfa::compile(parse_pattern("abc")).shortest_accepted_length(), 3u);
  EXPECT_EQ(Nfa::compile(parse_pattern("a+")).shortest_accepted_length(), 1u);
  EXPECT_EQ(Nfa::compile(parse_pattern("a[bc]+d")).shortest_accepted_length(),
            3u);
}

TEST(Nfa, MatchesEveryExpansionWitness) {
  // Property: a string built by picking any char from each expansion token
  // matches the pattern.
  for (const char* pattern : {"a[bc]+", "x+y", "[ab][cd]e+"}) {
    const Pattern parsed = parse_pattern(pattern);
    for (std::size_t length = parsed.min_length();
         length < parsed.min_length() + 4; ++length) {
      const auto tokens = expand_to_length(parsed, length);
      std::string first;
      std::string last;
      for (const auto& token : tokens) {
        first.push_back(token.chars.front());
        last.push_back(token.chars.back());
      }
      EXPECT_TRUE(full_match(pattern, first)) << pattern << " " << first;
      EXPECT_TRUE(full_match(pattern, last)) << pattern << " " << last;
    }
  }
}

}  // namespace
}  // namespace qsmt::regex

// Focused tests for corners the per-module suites don't reach.
#include <gtest/gtest.h>

#include "anneal/exact.hpp"
#include "anneal/simulated_annealer.hpp"
#include "engine/engine.hpp"
#include "smtlib/compiler.hpp"
#include "smtlib/parser.hpp"
#include "strenc/ascii7.hpp"
#include "strqubo/pipeline.hpp"
#include "strqubo/solver.hpp"
#include "strqubo/verify.hpp"

namespace qsmt {
namespace {

anneal::SimulatedAnnealer fast_annealer(std::uint64_t seed) {
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 48;
  p.num_sweeps = 256;
  p.seed = seed;
  return anneal::SimulatedAnnealer(p);
}

TEST(LengthPrintable, SolvesToLetterPrefixWithNulTail) {
  const auto model = strqubo::build_length_printable(5, 3);
  const auto annealer = fast_annealer(1);
  const auto samples = annealer.sample(model);
  const std::string decoded = strenc::decode_string(samples.best().bits);
  ASSERT_EQ(decoded.size(), 5u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NE(decoded[i], '\0') << i;
  }
  EXPECT_EQ(decoded[3], '\0');
  EXPECT_EQ(decoded[4], '\0');
}

TEST(PaperLengthForm, SolvesToExpectedBitPrefix) {
  const auto annealer = fast_annealer(2);
  const strqubo::StringConstraintSolver solver(annealer);
  const auto result = solver.solve(strqubo::Length{3, 2});
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ(*result.text, std::string("\x7f\x7f\0", 3));
}

TEST(EvaluateGround, PrefixSuffixStayNonGroundOverVariables) {
  const auto exprs = smtlib::parse_sexprs("(str.prefixof \"a\" x)");
  const auto term = smtlib::parse_term(exprs[0]);
  EXPECT_FALSE(smtlib::evaluate_ground(term).has_value());
}

TEST(GetValue, MultipleNamesMixKnownAndUnknown) {
  const auto annealer = fast_annealer(3);
  smtlib::SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= x "gv"))
    (check-sat)
    (get-value (x missing))
  )");
  EXPECT_NE(out.find("(x \"gv\")"), std::string::npos);
  EXPECT_NE(out.find("(missing (error \"unknown constant\"))"),
            std::string::npos);
}

TEST(Engine, TranscriptIncludesGetModelOutput) {
  const auto annealer = fast_annealer(4);
  const auto result = engine::solve_script(
      "(declare-const x String)(assert (= x \"tr\"))(check-sat)(get-model)",
      annealer);
  EXPECT_NE(result.transcript.find("(model (define-fun x () String \"tr\"))"),
            std::string::npos);
}

TEST(Solver, TieRescueScanFindsVerifiedSample) {
  // The averaged [bd] class has a 4-way tied ground manifold per position;
  // with enough reads the solver's scan must find a verified decoding even
  // though the single best sample is usually an artifact.
  anneal::SimulatedAnnealerParams p;
  p.num_reads = 128;
  p.num_sweeps = 128;
  p.seed = 5;
  const anneal::SimulatedAnnealer annealer(p);
  const strqubo::StringConstraintSolver solver(annealer);
  const auto result = solver.solve(strqubo::RegexMatch{"[bd]+", 2});
  EXPECT_TRUE(result.satisfied) << *result.text;
}

TEST(Pipeline, BoundedLengthOutputFeedsTransforms) {
  // A generated padded buffer can seed a pipeline; reversal keeps the
  // buffer's character multiset, so verification is on the reversed string.
  const auto annealer = fast_annealer(6);
  const strqubo::StringConstraintSolver solver(annealer);
  strqubo::Pipeline pipeline{strqubo::BoundedLength{4, 4, 4}};
  pipeline.then(strqubo::ThenReverse{});
  const auto result = pipeline.run(solver);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.final_value.size(), 4u);
}

TEST(ConstraintMeta, NewOperationsCovered) {
  EXPECT_EQ(strqubo::constraint_name(strqubo::BoundedLength{4, 1, 2}),
            "bounded-length");
  EXPECT_NE(strqubo::describe(strqubo::BoundedLength{4, 1, 2}).find("[1, 2]"),
            std::string::npos);
  EXPECT_TRUE(strqubo::produces_string(strqubo::BoundedLength{4, 1, 2}));
  EXPECT_NE(strqubo::describe(strqubo::NotContains{3, "q"}).find("'q'"),
            std::string::npos);
}

TEST(ExactSolver, SampleBitsizesMatchModelWithAncillas) {
  // Models with appended auxiliary variables still round-trip through the
  // exact solver with full-width samples.
  const auto model = strqubo::build_not_contains(1, "a");
  const auto samples = anneal::ExactSolver().sample(model);
  for (const auto& s : samples) {
    EXPECT_EQ(s.bits.size(), model.num_variables());
  }
}

TEST(VerifyPosition, EmptyishEdges) {
  // Substring equal to the text: position 0 is the only answer.
  EXPECT_TRUE(strqubo::verify_position(strqubo::Includes{"abc", "abc"}, 0));
  EXPECT_FALSE(
      strqubo::verify_position(strqubo::Includes{"abc", "abc"}, std::nullopt));
}

TEST(CheckSatAssuming, AssumptionsAreScopedToOneCheck) {
  const auto annealer = fast_annealer(7);
  smtlib::SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= x "base"))
    (check-sat-assuming ((= x "other")))
    (check-sat)
  )");
  // With the conflicting assumption the lengths disagree, which the baseline
  // certifier refutes exactly; afterwards the assumption is gone and the base
  // assertion holds.
  EXPECT_EQ(out, "unsat\nsat\n");
  EXPECT_EQ(driver.history().back().model_value, "base");
}

TEST(CheckSatAssuming, SatisfiableAssumptions) {
  const auto annealer = fast_annealer(8);
  smtlib::SmtDriver driver(annealer);
  const std::string out = driver.run_script(R"(
    (declare-const x String)
    (assert (= (str.len x) 4))
    (check-sat-assuming ((str.contains x "zz")))
  )");
  EXPECT_EQ(out, "sat\n");
  EXPECT_NE(driver.history().back().model_value.find("zz"),
            std::string::npos);
}

TEST(CheckSatAssuming, RoutesBooleanAssumptionsToDpllT) {
  const auto annealer = fast_annealer(9);
  const auto result = engine::solve_script(R"(
    (declare-const x String)
    (check-sat-assuming ((or (= x "aa") (= x "bb"))))
  )",
                                           annealer);
  EXPECT_EQ(result.engine, engine::EngineKind::kDpllT);
  EXPECT_EQ(result.status, smtlib::CheckSatStatus::kSat);
  EXPECT_TRUE(result.model_value == "aa" || result.model_value == "bb");
}

TEST(SolveWithRetries, EasyConstraintSucceedsFirstAttempt) {
  strqubo::RetryParams params;
  params.seed = 1;
  const auto retry = strqubo::solve_with_retries(strqubo::Equality{"rt"},
                                                 params);
  EXPECT_TRUE(retry.result.satisfied);
  EXPECT_EQ(retry.attempts, 1u);
  EXPECT_EQ(retry.final_sweeps, params.initial_sweeps);
}

TEST(SolveWithRetries, EscalatesSweepsOnFailure) {
  // A starvation-level budget on a long target forces escalation.
  strqubo::RetryParams params;
  params.num_reads = 2;
  params.initial_sweeps = 1;
  params.max_attempts = 6;
  params.seed = 2;
  const auto retry = strqubo::solve_with_retries(
      strqubo::Equality{"a much longer target string"}, params);
  EXPECT_GE(retry.attempts, 1u);
  if (retry.result.satisfied) {
    EXPECT_EQ(retry.final_sweeps,
              params.initial_sweeps << (retry.attempts - 1));
  } else {
    EXPECT_EQ(retry.attempts, params.max_attempts);
  }
}

TEST(SolveWithRetries, ValidatesParams) {
  strqubo::RetryParams params;
  params.max_attempts = 0;
  EXPECT_THROW(strqubo::solve_with_retries(strqubo::Equality{"x"}, params),
               std::invalid_argument);
}

TEST(CompileAssertions, AndOfLengthAndCharAt) {
  const auto exprs = smtlib::parse_sexprs(
      "(and (= (str.len x) 3) (= (str.at x 1) \"z\"))");
  const std::vector<smtlib::TermPtr> assertions{
      smtlib::parse_term(exprs[0])};
  const auto query = smtlib::compile_assertions(
      assertions, {{"x", smtlib::Sort::kString}});
  EXPECT_TRUE(query.unsupported.empty());
  ASSERT_EQ(query.constraints.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<strqubo::CharAt>(query.constraints[0]));
}

}  // namespace
}  // namespace qsmt

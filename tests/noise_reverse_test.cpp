// Tests for the coefficient-noise model and the reverse annealer.
#include <gtest/gtest.h>

#include <cmath>

#include "anneal/exact.hpp"
#include "anneal/noise.hpp"
#include "anneal/reverse.hpp"
#include "anneal/simulated_annealer.hpp"
#include "strqubo/builders.hpp"
#include "util/rng.hpp"

namespace qsmt::anneal {
namespace {

qubo::QuboModel random_model(std::size_t n, Xoshiro256& rng) {
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i)
    model.add_linear(i, rng.uniform() * 2.0 - 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < 0.4)
        model.add_quadratic(i, j, rng.uniform() * 2.0 - 1.0);
    }
  }
  return model;
}

// --- perturb_coefficients ----------------------------------------------------

TEST(PerturbCoefficients, ZeroSigmaIsIdentity) {
  Xoshiro256 rng(1);
  const auto model = random_model(8, rng);
  EXPECT_TRUE(perturb_coefficients(model, 0.0, 42) == model);
}

TEST(PerturbCoefficients, DeterministicInSeed) {
  Xoshiro256 rng(2);
  const auto model = random_model(8, rng);
  const auto a = perturb_coefficients(model, 0.05, 7);
  const auto b = perturb_coefficients(model, 0.05, 7);
  EXPECT_TRUE(a == b);
  const auto c = perturb_coefficients(model, 0.05, 8);
  EXPECT_FALSE(a == c);
}

TEST(PerturbCoefficients, PreservesSparsityPattern) {
  qubo::QuboModel model(4);
  model.add_linear(0, 1.0);
  model.add_quadratic(1, 2, -1.0);
  const auto noisy = perturb_coefficients(model, 0.1, 3);
  // Zero coefficients stay exactly zero (hardware has no coupler there).
  EXPECT_DOUBLE_EQ(noisy.linear(3), 0.0);
  EXPECT_DOUBLE_EQ(noisy.quadratic(0, 3), 0.0);
  EXPECT_NE(noisy.linear(0), 1.0);
  EXPECT_NE(noisy.quadratic(1, 2), -1.0);
}

TEST(PerturbCoefficients, NoiseScaleTracksSigma) {
  Xoshiro256 rng(4);
  const auto model = random_model(20, rng);
  const double max_coeff = model.max_abs_coefficient();
  for (double sigma : {0.01, 0.1}) {
    const auto noisy = perturb_coefficients(model, sigma, 9);
    double sum_sq = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < model.num_variables(); ++i) {
      const double v = model.linear_terms()[i];
      if (v == 0.0) continue;
      const double d = noisy.linear(i) - v;
      sum_sq += d * d;
      ++count;
    }
    const double rms = std::sqrt(sum_sq / static_cast<double>(count));
    EXPECT_NEAR(rms, sigma * max_coeff, sigma * max_coeff)  // Within 2x.
        << "sigma " << sigma;
  }
}

TEST(PerturbCoefficients, NegativeSigmaThrows) {
  qubo::QuboModel model(2);
  EXPECT_THROW(perturb_coefficients(model, -0.1, 0), std::invalid_argument);
}

// --- NoisySampler --------------------------------------------------------------

TEST(NoisySampler, ReportsEnergiesAgainstTrueModel) {
  Xoshiro256 rng(5);
  const auto model = random_model(10, rng);
  SimulatedAnnealerParams p;
  p.num_reads = 16;
  p.num_sweeps = 64;
  p.seed = 1;
  const SimulatedAnnealer inner(p);
  NoisySamplerParams noise;
  noise.sigma = 0.2;
  const NoisySampler sampler(inner, noise);
  const SampleSet samples = sampler.sample(model);
  for (const Sample& s : samples) {
    EXPECT_NEAR(model.energy(s.bits), s.energy, 1e-9);
  }
}

TEST(NoisySampler, ZeroNoiseMatchesInner) {
  Xoshiro256 rng(6);
  const auto model = random_model(10, rng);
  SimulatedAnnealerParams p;
  p.seed = 3;
  const SimulatedAnnealer inner(p);
  NoisySamplerParams noise;
  noise.sigma = 0.0;
  const NoisySampler sampler(inner, noise);
  EXPECT_DOUBLE_EQ(sampler.sample(model).lowest_energy(),
                   inner.sample(model).lowest_energy());
}

TEST(NoisySampler, NameMentionsInner) {
  const SimulatedAnnealer inner{SimulatedAnnealerParams{}};
  const NoisySampler sampler(inner, {});
  EXPECT_EQ(sampler.name(), "noisy+simulated-annealing");
}

TEST(NoisySampler, LargeNoiseDegradesQuality) {
  // With sigma far beyond the coefficient scale the inner sampler optimises
  // an unrelated model; best-found true energy should (usually) be worse.
  const auto model = strqubo::build_equality("hello world");
  SimulatedAnnealerParams p;
  p.num_reads = 8;
  p.num_sweeps = 64;
  p.seed = 4;
  p.polish_with_greedy = false;
  const SimulatedAnnealer inner(p);
  NoisySamplerParams noise;
  noise.sigma = 10.0;
  const NoisySampler noisy(inner, noise);
  EXPECT_GT(noisy.sample(model).lowest_energy(),
            inner.sample(model).lowest_energy());
}

// --- ReverseAnnealer -------------------------------------------------------------

TEST(ReverseSchedule, VShape) {
  const auto schedule = make_reverse_schedule(10.0, 2.0, 8);
  ASSERT_EQ(schedule.size(), 8u);
  EXPECT_DOUBLE_EQ(schedule.front(), 10.0);
  EXPECT_DOUBLE_EQ(schedule.back(), 10.0);
  const double dip = *std::min_element(schedule.begin(), schedule.end());
  EXPECT_DOUBLE_EQ(dip, 2.0);
  // Monotone down then monotone up.
  const auto dip_at = static_cast<std::size_t>(
      std::min_element(schedule.begin(), schedule.end()) - schedule.begin());
  for (std::size_t i = 1; i <= dip_at; ++i)
    EXPECT_LE(schedule[i], schedule[i - 1] + 1e-12);
  for (std::size_t i = dip_at + 1; i < schedule.size(); ++i)
    EXPECT_GE(schedule[i], schedule[i - 1] - 1e-12);
}

TEST(ReverseSchedule, Validation) {
  EXPECT_THROW(make_reverse_schedule(1.0, 2.0, 8), std::invalid_argument);
  EXPECT_THROW(make_reverse_schedule(1.0, 0.5, 1), std::invalid_argument);
}

TEST(ReverseAnnealer, ValidatesParams) {
  ReverseAnnealerParams p;
  p.reheat_fraction = 0.0;
  EXPECT_THROW(ReverseAnnealer({0}, p), std::invalid_argument);
  p = {};
  p.num_reads = 0;
  EXPECT_THROW(ReverseAnnealer({0}, p), std::invalid_argument);
}

TEST(ReverseAnnealer, RejectsMismatchedInitialState) {
  qubo::QuboModel model(4);
  const ReverseAnnealer sampler(std::vector<std::uint8_t>{0, 1}, {});
  EXPECT_THROW(sampler.sample(model), std::invalid_argument);
}

TEST(ReverseAnnealer, RefinesNearMissToGround) {
  // Start one flipped bit away from the ground state of an equality model;
  // a mild reheat must recover it.
  const auto model = strqubo::build_equality("refine");
  std::vector<std::uint8_t> start(model.num_variables());
  for (std::size_t i = 0; i < start.size(); ++i) {
    start[i] = model.linear_terms()[i] < 0 ? 1 : 0;
  }
  start[3] ^= 1;  // Corrupt one bit.
  ReverseAnnealerParams p;
  p.num_reads = 8;
  p.num_sweeps = 64;
  p.seed = 11;
  const ReverseAnnealer sampler(start, p);
  const SampleSet samples = sampler.sample(model);
  // Diagonal model ground = sum of negative terms.
  double expected = 0.0;
  for (double v : model.linear_terms()) expected += std::min(0.0, v);
  EXPECT_DOUBLE_EQ(samples.lowest_energy(), expected);
}

TEST(ReverseAnnealer, MildReheatStaysNearStart) {
  // On a flat model (no coefficients), a mild reverse anneal with even
  // sweep count returns states correlated with the start, not uniform.
  qubo::QuboModel model(16);
  model.add_linear(0, 1e-9);  // Avoid the all-flat degenerate beta range.
  std::vector<std::uint8_t> start(16, 1);
  ReverseAnnealerParams p;
  p.num_reads = 4;
  p.num_sweeps = 16;
  p.reheat_fraction = 1.0;  // No reheat at all: stays cold.
  p.seed = 2;
  p.polish_with_greedy = false;
  const ReverseAnnealer sampler(start, p);
  const SampleSet samples = sampler.sample(model);
  // With zero fields every flip has delta 0 and is always accepted; after
  // an even number of sweeps the state returns to the start.
  for (const Sample& s : samples) {
    std::size_t agree = 0;
    for (std::size_t i = 1; i < 16; ++i) agree += s.bits[i] == 1;
    EXPECT_EQ(agree, 15u);
  }
}

TEST(ReverseAnnealer, DeterministicInSeed) {
  Xoshiro256 rng(7);
  const auto model = random_model(10, rng);
  std::vector<std::uint8_t> start(10, 0);
  ReverseAnnealerParams p;
  p.seed = 5;
  const ReverseAnnealer sampler(start, p);
  const auto a = sampler.sample(model);
  const auto b = sampler.sample(model);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].bits, b[i].bits);
}

TEST(ReverseAnnealer, NameIsStable) {
  EXPECT_EQ(ReverseAnnealer({}, {}).name(), "reverse-annealing");
}

}  // namespace
}  // namespace qsmt::anneal

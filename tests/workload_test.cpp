#include <gtest/gtest.h>

#include <set>

#include "baseline/classical.hpp"
#include "smtlib/compiler.hpp"
#include "smtlib/parser.hpp"
#include "strqubo/verify.hpp"
#include "workload/generator.hpp"
#include "workload/smt2_render.hpp"

namespace qsmt::workload {
namespace {

TEST(Generator, ValidatesParams) {
  GeneratorParams params;
  params.alphabet = "";
  EXPECT_THROW(Generator{params}, std::invalid_argument);
  params = {};
  params.min_length = 0;
  EXPECT_THROW(Generator{params}, std::invalid_argument);
  params = {};
  params.min_length = 5;
  params.max_length = 3;
  EXPECT_THROW(Generator{params}, std::invalid_argument);
}

TEST(Generator, DeterministicInSeed) {
  GeneratorParams params;
  params.seed = 11;
  Generator a(params);
  Generator b(params);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(strqubo::describe(a.next()), strqubo::describe(b.next()));
  }
}

TEST(Generator, RandomStringsRespectBounds) {
  GeneratorParams params;
  params.min_length = 3;
  params.max_length = 5;
  params.alphabet = "xy";
  Generator generator(params);
  for (int i = 0; i < 100; ++i) {
    const std::string s = generator.random_string();
    EXPECT_GE(s.size(), 3u);
    EXPECT_LE(s.size(), 5u);
    for (char c : s) EXPECT_TRUE(c == 'x' || c == 'y');
  }
}

TEST(Generator, ProducesEveryRequestedKind) {
  Generator generator;
  for (Kind kind : all_kinds()) {
    const auto constraint = generator.next(kind);
    EXPECT_EQ(strqubo::constraint_name(constraint), kind_name(kind))
        << kind_name(kind);
  }
}

TEST(Generator, SuiteCyclesThroughKinds) {
  Generator generator;
  const auto suite = generator.suite(2 * all_kinds().size());
  ASSERT_EQ(suite.size(), 2 * all_kinds().size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(strqubo::constraint_name(suite[i]),
              kind_name(all_kinds()[i % all_kinds().size()]));
  }
}

TEST(Generator, InstancesAreClassicallySatisfiable) {
  // Every generated instance must admit a witness — checked via the direct
  // classical solver (positions for includes, strings otherwise).
  GeneratorParams params;
  params.seed = 3;
  Generator generator(params);
  const baseline::DirectBaseline solver;
  for (int i = 0; i < 200; ++i) {
    const auto constraint = generator.next();
    const auto result = solver.solve(constraint);
    EXPECT_TRUE(result.satisfied) << strqubo::describe(constraint);
  }
}

TEST(Smt2Render, EverySupportedKindRenders) {
  Generator generator;
  for (Kind kind : all_kinds()) {
    const auto constraint = generator.next(kind);
    const auto script = to_smt2(constraint);
    if (kind == Kind::kIncludes) {
      EXPECT_FALSE(script.has_value());
    } else {
      ASSERT_TRUE(script.has_value()) << kind_name(kind);
      EXPECT_NE(script->find("(check-sat)"), std::string::npos);
      EXPECT_NE(script->find("(declare-const x String)"), std::string::npos);
    }
  }
}

TEST(Smt2Render, ScriptsParse) {
  GeneratorParams params;
  params.seed = 5;
  Generator generator(params);
  for (int i = 0; i < 100; ++i) {
    const auto constraint = generator.next();
    const auto script = to_smt2(constraint);
    if (!script) continue;
    EXPECT_NO_THROW(smtlib::parse_script(*script))
        << strqubo::describe(constraint) << "\n"
        << *script;
  }
}

TEST(Smt2Render, RoundTripsThroughCompiler) {
  // generator -> smt2 -> parse -> compile must reproduce a constraint whose
  // witnesses coincide with the original's (checked on the direct witness).
  GeneratorParams params;
  params.seed = 9;
  Generator generator(params);
  const baseline::DirectBaseline direct;
  std::size_t checked = 0;
  for (int i = 0; i < 150; ++i) {
    const auto original = generator.next();
    const auto script = to_smt2(original);
    if (!script) continue;

    std::vector<smtlib::TermPtr> assertions;
    std::map<std::string, smtlib::Sort> declared;
    for (const auto& command : smtlib::parse_script(*script)) {
      if (const auto* decl = std::get_if<smtlib::DeclareConst>(&command)) {
        declared.emplace(decl->name, decl->sort);
      } else if (const auto* a = std::get_if<smtlib::AssertCmd>(&command)) {
        assertions.push_back(a->term);
      }
    }
    const smtlib::CompiledQuery query =
        smtlib::compile_assertions(assertions, declared);
    EXPECT_TRUE(query.unsupported.empty())
        << strqubo::describe(original) << ": "
        << (query.unsupported.empty() ? "" : query.unsupported[0]);
    EXPECT_TRUE(query.falsified_ground.empty());
    ASSERT_GE(query.constraints.size(), 1u) << strqubo::describe(original);

    // The original's classical witness must satisfy every compiled conjunct.
    const auto witness = direct.solve(original);
    ASSERT_TRUE(witness.text.has_value());
    for (const auto& compiled : query.constraints) {
      EXPECT_TRUE(strqubo::verify_string(compiled, *witness.text))
          << strqubo::describe(original) << " -> "
          << strqubo::describe(compiled);
    }
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST(KindName, CoversAll) {
  std::set<std::string> names;
  for (Kind kind : all_kinds()) names.insert(kind_name(kind));
  EXPECT_EQ(names.size(), all_kinds().size());
  EXPECT_EQ(kind_name(Kind::kAny), "any");
}

}  // namespace
}  // namespace qsmt::workload
